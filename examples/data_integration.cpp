// Data-integration / query-by-example scenario (Section 1): "the analyst
// might want to specify the schema of a table she wants to create as well
// as a few sample tuples this table should contain. QRE then finds a query
// that, when applied on the database, would generate the desired table
// containing the sample tuples."
//
// We hand-write three sample tuples of (customer name, nation name, region
// name) and use the superset QRE variant to discover the join query that
// produces a table containing them — then materialize the full table.
#include <cstdio>

#include "datagen/tpch.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

using namespace fastqre;

int main() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 11}).ValueOrDie();

  // The analyst knows three example rows of the table she wants. We pull
  // real values out of the database the way she would read them off a
  // screen, then present them to the engine as bare CSV.
  const Table& customer = db.table(*db.FindTable("customer"));
  const Table& nation = db.table(*db.FindTable("nation"));
  const Table& region = db.table(*db.FindTable("region"));
  const Dictionary& dict = *db.dictionary();

  std::string csv = "who,nation,region\n";
  int written = 0;
  for (RowId c = 0; c < customer.num_rows() && written < 3; c += 37) {
    int64_t nkey =
        dict.Get(customer.column(*customer.FindColumn("c_nationkey")).at(c))
            .AsInt64();
    // Find the nation and region rows (small tables; linear scan is fine).
    for (RowId n = 0; n < nation.num_rows(); ++n) {
      if (dict.Get(nation.column(0).at(n)).AsInt64() != nkey) continue;
      int64_t rkey = dict.Get(nation.column(2).at(n)).AsInt64();
      for (RowId r = 0; r < region.num_rows(); ++r) {
        if (dict.Get(region.column(0).at(r)).AsInt64() != rkey) continue;
        csv += dict.Get(customer.column(1).at(c)).ToString() + "," +
               dict.Get(nation.column(1).at(n)).ToString() + "," +
               dict.Get(region.column(1).at(r)).ToString() + "\n";
        ++written;
      }
    }
  }
  std::printf("Sample tuples provided by the analyst:\n%s\n", csv.c_str());

  Table sample = LoadCsvString(csv, "sample", db.dictionary()).ValueOrDie();

  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  FastQre engine(&db, opts);
  QreAnswer answer = engine.Reverse(sample).ValueOrDie();
  if (!answer.found) {
    std::printf("No query found: %s\n", answer.failure_reason.c_str());
    return 1;
  }
  std::printf("Discovered query (%.3fs):\n  %s\n\n", answer.stats.total_seconds,
              answer.sql.c_str());

  Table full = ExecuteToTable(db, answer.query, "integrated",
                              {"who", "nation", "region"})
                   .ValueOrDie();
  std::printf("Materialized the full table: %zu rows. First five:\n",
              full.num_rows());
  for (RowId r = 0; r < full.num_rows() && r < 5; ++r) {
    auto vals = full.RowValues(r);
    std::printf("  %s | %s | %s\n", vals[0].ToString().c_str(),
                vals[1].ToString().c_str(), vals[2].ToString().c_str());
  }

  // Sanity: the sample is contained in the result.
  TupleSet result = TableToTupleSet(full);
  Table sample_enc = LoadCsvString(csv, "s2", db.dictionary()).ValueOrDie();
  bool contained = true;
  for (RowId r = 0; r < sample_enc.num_rows(); ++r) {
    if (result.count(sample_enc.RowIds(r)) == 0) contained = false;
  }
  std::printf("\nSample contained in result: %s\n", contained ? "yes" : "NO");
  return contained ? 0 : 1;
}
