// Quickstart: reverse engineer a query from a spreadsheet-style CSV.
//
// Builds a small TPC-H database, materializes the output of a secret query
// into CSV text (simulating the analyst's exported spreadsheet of Example
// 2.1), and asks FastQRE to recover a generating SQL query.
#include <cstdio>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

using namespace fastqre;

int main() {
  // 1. The database D.
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 7}).ValueOrDie();
  std::printf("Database: %zu tables, %zu total rows\n", db.num_tables(),
              db.TotalRows());

  // 2. Someone once ran a query and kept only its output ...
  PJQuery secret = BuildPaperQuery1(db).ValueOrDie();
  Table secret_out = ExecuteToTable(
      db, secret, "report", {"A", "B", "C", "D", "E"}).ValueOrDie();
  std::string csv = TableToCsv(secret_out);
  std::printf("R_out: %zu rows x %zu columns (as CSV: %zu bytes)\n",
              secret_out.num_rows(), secret_out.num_columns(), csv.size());

  // 3. ... which we now ingest back, as an analyst would a spreadsheet.
  Table rout = LoadCsvString(csv, "rout", db.dictionary()).ValueOrDie();

  // 4. Reverse engineer the generating query.
  FastQre engine(&db);
  QreAnswer answer = engine.Reverse(rout).ValueOrDie();
  if (!answer.found) {
    std::printf("No generating query found: %s\n", answer.failure_reason.c_str());
    return 1;
  }
  std::printf("\nFound generating query in %.3fs:\n  %s\n\n",
              answer.stats.total_seconds, answer.sql.c_str());
  std::printf("%s\n", answer.stats.ToString().c_str());

  // 5. Verify: the recovered query regenerates R_out exactly.
  Table regen = ExecuteToTable(db, answer.query, "regen").ValueOrDie();
  std::printf("Regenerated %zu rows (expected %zu)\n", regen.num_rows(),
              rout.num_rows());
  return 0;
}
