// The business-report scenario of Example 2.1: an analyst finds a useful
// spreadsheet (saved as CSV on disk), the author of the generating query is
// long gone, and she wants the query back so she can modify it.
//
// This example goes through the filesystem: it exports a report to a real
// CSV file, re-ingests that file (type inference and all), reverse
// engineers the query, then demonstrates the "augment it" payoff — editing
// the recovered query to add a column and rerunning it.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "datagen/tpch.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

using namespace fastqre;

int main() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 23}).ValueOrDie();

  // The report someone produced years ago: suppliers with their nations and
  // account balances.
  QueryBuilder b(&db);
  InstanceId s = b.Instance("supplier");
  InstanceId n = b.Instance("nation");
  b.Join(s, "s_nationkey", n, "n_nationkey");
  b.Project(s, "s_name");
  b.Project(n, "n_name");
  b.Project(s, "s_acctbal");
  PJQuery original = b.Build().ValueOrDie();
  Table report = ExecuteToTable(db, original, "report",
                                {"supplier", "country", "balance"})
                     .ValueOrDie();

  const char* path = "/tmp/fastqre_report.csv";
  {
    std::ofstream out(path);
    out << TableToCsv(report);
  }
  std::printf("Report exported to %s (%zu rows).\n", path, report.num_rows());

  // Years later: only the file remains.
  Table rout = LoadCsvFile(path, "report", db.dictionary()).ValueOrDie();
  std::printf("Re-ingested: %zu rows, %zu columns (types:", rout.num_rows(),
              rout.num_columns());
  for (size_t c = 0; c < rout.num_columns(); ++c) {
    std::printf(" %s=%s", rout.column(c).name().c_str(),
                ValueTypeToString(rout.column(c).type()));
  }
  std::printf(")\n\n");

  FastQre engine(&db);
  QreAnswer answer = engine.Reverse(rout).ValueOrDie();
  if (!answer.found) {
    std::printf("No generating query found: %s\n",
                answer.failure_reason.c_str());
    return 1;
  }
  std::printf("Recovered in %.3fs:\n  %s\n\n", answer.stats.total_seconds,
              answer.sql.c_str());

  // The payoff: augment the recovered query with the supplier's phone.
  PJQuery augmented = answer.query;
  for (InstanceId i = 0; i < augmented.num_instances(); ++i) {
    const Table& t = db.table(augmented.instance_table(i));
    if (t.name() == "supplier") {
      augmented.AddProjection(i, *t.FindColumn("s_phone"));
      break;
    }
  }
  std::printf("Augmented query:\n  %s\n", augmented.ToSql(db).c_str());
  Table more = ExecuteToTable(db, augmented, "augmented").ValueOrDie();
  std::printf("Augmented report has %zu columns, %zu rows. First row:\n",
              more.num_columns(), more.num_rows());
  if (more.num_rows() > 0) {
    for (const Value& v : more.RowValues(0)) {
      std::printf("  %s\n", v.ToString().c_str());
    }
  }
  std::remove(path);
  return 0;
}
