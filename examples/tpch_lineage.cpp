// Data-lineage discovery on the paper's running example (Section 2).
//
// Walks through the full FastQRE pipeline on TPC-H for both Query 1 and
// Query 2 of Figure 2, printing the intermediate artifacts the paper
// discusses: column covers, maximal CGMs (Figure 8), the top-ranked column
// mapping, discovered walks, and the recovered SQL — then cross-checks that
// Query 2's answer is found even though its R_out lacks the availqty column.
#include <cstdio>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/fastqre.h"
#include "qre/mapping.h"
#include "qre/walks.h"

using namespace fastqre;

namespace {

void ShowPipeline(const Database& db, const Table& rout) {
  QreOptions opts;
  QreStats stats;

  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  std::printf("Column covers:\n");
  for (ColumnId c = 0; c < rout.num_columns(); ++c) {
    std::printf("  S_%s = {", rout.column(c).name().c_str());
    for (size_t i = 0; i < cover.covers[c].size(); ++i) {
      const auto& e = cover.covers[c][i];
      std::printf("%s%s.%s", i ? ", " : "", db.table(e.table).name().c_str(),
                  db.table(e.table).column(e.column).name().c_str());
    }
    std::printf("}\n");
  }

  CgmSet cgms = DiscoverCgms(db, rout, cover, opts, &stats);
  std::printf("\nMaximal CGMs (%zu):\n", cgms.cgms.size());
  for (const Cgm& g : cgms.cgms) {
    std::printf("  %s\n", g.ToString(db, rout).c_str());
  }

  MappingEnumerator mappings(&db, &rout, &cover, &cgms, &opts);
  ColumnMapping m;
  if (mappings.Next(&m)) {
    std::printf("\nTop-ranked column mapping (%zu instances):\n  %s\n",
                m.NumInstances(), m.ToString(db, rout).c_str());
    auto walks = DiscoverWalks(db, m, opts);
    std::printf("\nDiscovered %zu walks (L=%d); first few:\n", walks.size(),
                opts.max_walk_length);
    for (size_t i = 0; i < walks.size() && i < 6; ++i) {
      std::printf("  %s\n", walks[i].ToString(db).c_str());
    }
  }
}

}  // namespace

int main() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  std::printf("TPC-H with %zu rows total.\n\n", db.TotalRows());

  // ---- Query 1 (Figure 2) --------------------------------------------------
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout1 =
      ExecuteToTable(db, q1, "rout1", {"A", "B", "C", "D", "E"}).ValueOrDie();
  std::printf("=== Paper Query 1: |R_out| = %zu (Table 1 of the paper) ===\n\n",
              rout1.num_rows());
  ShowPipeline(db, rout1);

  FastQre engine(&db);
  QreAnswer a1 = engine.Reverse(rout1).ValueOrDie();
  std::printf("\nRecovered in %.3fs (%llu candidates, %llu full checks):\n  %s\n",
              a1.stats.total_seconds,
              static_cast<unsigned long long>(a1.stats.candidates_generated),
              static_cast<unsigned long long>(a1.stats.full_validations),
              a1.found ? a1.sql.c_str() : a1.failure_reason.c_str());

  // ---- Query 2 -------------------------------------------------------------
  PJQuery q2 = BuildPaperQuery2(db).ValueOrDie();
  Table rout2 =
      ExecuteToTable(db, q2, "rout2", {"A", "B", "D", "E"}).ValueOrDie();
  std::printf("\n=== Paper Query 2: |R_out| = %zu ===\n", rout2.num_rows());
  QreAnswer a2 = engine.Reverse(rout2).ValueOrDie();
  std::printf("Recovered in %.3fs:\n  %s\n", a2.stats.total_seconds,
              a2.found ? a2.sql.c_str() : a2.failure_reason.c_str());

  // Verify both answers by re-execution.
  auto verify = [&](const QreAnswer& a, const Table& rout) {
    if (!a.found) return false;
    Table regen = ExecuteToTable(db, a.query, "regen").ValueOrDie();
    return regen.num_rows() == rout.num_rows();
  };
  if (!verify(a1, rout1) || !verify(a2, rout2)) {
    std::printf("verification FAILED\n");
    return 1;
  }
  std::printf("\nBoth recovered queries verified against their R_out.\n");
  return 0;
}
