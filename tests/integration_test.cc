// Cross-module integration tests: the full analyst workflows the examples
// demonstrate, exercised end-to-end with assertions (CSV file round trips,
// persistence + reverse + SQL-parse + re-run pipelines, trace coverage).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/block_executor.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "engine/sql_parser.h"
#include "qre/fastqre.h"
#include "storage/catalog_io.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

namespace fs = std::filesystem;

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fastqre_flow_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(WorkflowTest, FullAnalystLoop) {
  // 1. A database exists on disk.
  Database original = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  FASTQRE_CHECK_OK(SaveDatabase(original, (dir_ / "db").string()));

  // 2. Someone exports a report (L04) to CSV and walks away.
  auto workload = StandardTpchWorkload(original).ValueOrDie();
  {
    std::ofstream out(dir_ / "report.csv");
    out << TableToCsv(workload[3].rout);
  }

  // 3. Later: load the database, ingest the report, reverse engineer.
  Database db = LoadDatabase((dir_ / "db").string()).ValueOrDie();
  Table rout = LoadCsvFile((dir_ / "report.csv").string(), "report",
                           db.dictionary())
                   .ValueOrDie();
  FastQre engine(&db);
  QreAnswer a = engine.Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;

  // 4. The recovered SQL survives a text round trip and regenerates the
  // report on the *re-loaded* database.
  PJQuery reparsed = ParsePJQuery(db, a.sql).ValueOrDie();
  Table regen = ExecuteToTable(db, reparsed, "regen").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(rout)) << a.sql;

  // 5. Both executors agree on the recovered query.
  Table block = ExecuteBlock(db, reparsed, "block").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(block), TableToTupleSet(regen));
}

TEST_F(WorkflowTest, SupersetFromHandWrittenSample) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  // Two sample rows the analyst "knows": nation/region pairs.
  Table rout = LoadCsvString(
                   "nation,region\nFRANCE,EUROPE\nCHINA,ASIA\n", "sample",
                   db.dictionary())
                   .ValueOrDie();
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  FastQre engine(&db, opts);
  QreAnswer a = engine.Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table result = ExecuteToTable(db, a.query, "result").ValueOrDie();
  EXPECT_TRUE(IsSubsetOf(TableToTupleSet(rout), TableToTupleSet(result)))
      << a.sql;
}

TEST_F(WorkflowTest, AugmentRecoveredQuery) {
  // Recover, then add a projection column and re-run — the
  // spreadsheet_reverse example's payoff, with assertions.
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  FastQre engine(&db);
  QreAnswer a = engine.Reverse(workload[1].rout).ValueOrDie();  // L02
  ASSERT_TRUE(a.found);

  PJQuery augmented = a.query;
  bool added = false;
  for (InstanceId i = 0; i < augmented.num_instances() && !added; ++i) {
    const Table& t = db.table(augmented.instance_table(i));
    if (t.name() == "supplier") {
      augmented.AddProjection(i, *t.FindColumn("s_phone"));
      added = true;
    }
  }
  ASSERT_TRUE(added);
  Table more = ExecuteToTable(db, augmented, "augmented").ValueOrDie();
  EXPECT_EQ(more.num_columns(), workload[1].rout.num_columns() + 1);
  // Projecting away the new column recovers the original result.
  std::vector<ColumnId> original_cols;
  for (size_t c = 0; c + 1 < more.num_columns(); ++c) {
    original_cols.push_back(static_cast<ColumnId>(c));
  }
  EXPECT_EQ(ProjectToTupleSet(more, original_cols),
            TableToTupleSet(workload[1].rout));
}

TEST_F(WorkflowTest, ReverseAcrossIndependentDatabaseCopies) {
  // The same seed regenerates an identical database; a report exported from
  // one copy reverse engineers against the other (values, not ids, carry).
  Database db1 = BuildTpch({.scale_factor = 0.001, .seed = 4}).ValueOrDie();
  Database db2 = BuildTpch({.scale_factor = 0.001, .seed = 4}).ValueOrDie();
  auto workload = StandardTpchWorkload(db1).ValueOrDie();
  FastQre engine(&db2);
  QreAnswer a = engine.Reverse(workload[2].rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table regen = ExecuteToTable(db2, a.query, "regen").ValueOrDie();
  // Compare by values (dictionaries differ across the two databases).
  ASSERT_EQ(regen.num_rows(), workload[2].rout.num_rows());
}

TEST_F(WorkflowTest, DifferentSeedsAreDifferentDatabases) {
  Database db1 = BuildTpch({.scale_factor = 0.001, .seed = 4}).ValueOrDie();
  Database db2 = BuildTpch({.scale_factor = 0.001, .seed = 5}).ValueOrDie();
  const Table& s1 = db1.table(*db1.FindTable("supplier"));
  const Table& s2 = db2.table(*db2.FindTable("supplier"));
  bool differs = false;
  for (RowId r = 0; r < s1.num_rows() && !differs; ++r) {
    if (s1.RowValues(r) != s2.RowValues(r)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(WorkflowTest, RecoveredSqlIsValidAgainstParser) {
  // Every answer the engine ever prints must be re-parseable (the textual
  // contract between ToSql and ParsePJQuery).
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  FastQre engine(&db);
  for (int i : {0, 2, 4, 8}) {
    QreAnswer a = engine.Reverse(workload[i].rout).ValueOrDie();
    ASSERT_TRUE(a.found) << workload[i].name;
    auto reparsed = ParsePJQuery(db, a.sql);
    ASSERT_TRUE(reparsed.ok()) << a.sql << "\n" << reparsed.status();
    EXPECT_EQ(reparsed->ToSql(db), a.sql);
  }
}

TEST_F(WorkflowTest, StatsPhaseAttributionAddsUp) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  FastQre engine(&db);
  QreAnswer a = engine.Reverse(workload[9].rout).ValueOrDie();  // L10
  ASSERT_TRUE(a.found);
  const QreStats& s = a.stats;
  EXPECT_EQ(s.validation_rows,
            s.probe_rows + s.coherence_rows + s.alltuple_rows + s.fullscan_rows);
  EXPECT_EQ(s.cover_pairs_total, s.cover_pairs_checked + s.cover_pairs_pruned);
}

}  // namespace
}  // namespace fastqre
