// Tests for QreOptions extremes and defaults: the engine must stay correct
// (or fail honestly) at the edges of every knob.
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
  }

  bool Solves(const QreOptions& opts, const Table& rout) {
    FastQre engine(&db_, opts);
    QreAnswer a = engine.Reverse(rout).ValueOrDie();
    if (!a.found) return false;
    Table regen = ExecuteToTable(db_, a.query, "regen").ValueOrDie();
    return TableToTupleSet(regen) == TableToTupleSet(rout);
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(OptionsTest, DefaultsSolveTheWholeLadder) {
  for (const auto& wq : workload_) {
    EXPECT_TRUE(Solves(QreOptions(), wq.rout)) << wq.name;
  }
}

TEST_F(OptionsTest, MaxMappingsOneStillSolvesUnambiguousQueries) {
  QreOptions opts;
  opts.max_mappings = 1;
  // The ranking puts the correct mapping first on these.
  for (int i : {0, 1, 2, 3}) {
    EXPECT_TRUE(Solves(opts, workload_[i].rout)) << workload_[i].name;
  }
}

TEST_F(OptionsTest, TinyCandidateBudgetNeverMisAnswers) {
  // With a budget of one candidate per mapping, the search either fails
  // honestly or returns a *correct* answer (the MST-seeded first candidate
  // can legitimately be generating) — never a wrong one.
  QreOptions opts;
  opts.max_candidates_per_mapping = 1;
  opts.max_mappings = 1;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[9].rout).ValueOrDie();
  if (a.found) {
    Table regen = ExecuteToTable(db_, a.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload_[9].rout))
        << a.sql;
  }
}

TEST_F(OptionsTest, ProbeTuplesZeroDisablesQuickProbes) {
  QreOptions opts;
  opts.probe_tuples = 0;
  EXPECT_TRUE(Solves(opts, workload_[4].rout));
}

TEST_F(OptionsTest, LargePoolAndSlackStillCorrect) {
  QreOptions opts;
  opts.pool_min_size = 1000;
  opts.pool_dc_slack = 100.0;
  EXPECT_TRUE(Solves(opts, workload_[8].rout));  // L09
}

TEST_F(OptionsTest, ZeroPoolBehavesLikeEagerValidation) {
  QreOptions opts;
  opts.pool_min_size = 1;
  opts.pool_dc_slack = 0.0;
  EXPECT_TRUE(Solves(opts, workload_[8].rout));
}

TEST_F(OptionsTest, WalksPerPairCapOne) {
  // Keeping only the single shortest walk per pair preserves solvability of
  // the chain ladder queries (their generating walks are the shortest).
  QreOptions opts;
  opts.max_walks_per_pair = 1;
  for (int i : {0, 1, 2, 3, 4}) {
    EXPECT_TRUE(Solves(opts, workload_[i].rout)) << workload_[i].name;
  }
}

TEST_F(OptionsTest, CgmColumnCapOneDegradesGracefully) {
  // With max_cgm_columns = 1 all CGMs are singletons: grouping evidence is
  // lost but the search must still find the simple queries.
  QreOptions opts;
  opts.max_cgm_columns = 1;
  opts.time_budget_seconds = 30.0;
  for (int i : {0, 1, 2}) {
    EXPECT_TRUE(Solves(opts, workload_[i].rout)) << workload_[i].name;
  }
}

TEST_F(OptionsTest, AllAblationsAtOnceIsTheNaiveBaseline) {
  // NaiveQre must behave exactly like FastQre under BaselineOptions.
  QreOptions opts = NaiveQre::BaselineOptions(30.0);
  FastQre as_options(&db_, opts);
  NaiveQre baseline(&db_, 30.0);
  for (int i : {0, 2}) {
    QreAnswer a = as_options.Reverse(workload_[i].rout).ValueOrDie();
    QreAnswer b = baseline.Reverse(workload_[i].rout).ValueOrDie();
    ASSERT_EQ(a.found, b.found) << workload_[i].name;
    EXPECT_EQ(a.sql, b.sql) << workload_[i].name;
  }
}

TEST_F(OptionsTest, SupersetSolvesEverythingExactSolves) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  for (int i : {0, 3, 8}) {
    FastQre engine(&db_, opts);
    QreAnswer a = engine.Reverse(workload_[i].rout).ValueOrDie();
    ASSERT_TRUE(a.found) << workload_[i].name;
    Table result = ExecuteToTable(db_, a.query, "r").ValueOrDie();
    EXPECT_TRUE(IsSubsetOf(TableToTupleSet(workload_[i].rout),
                           TableToTupleSet(result)))
        << workload_[i].name << ": " << a.sql;
  }
}

TEST_F(OptionsTest, AlphaOutOfHabitualRangeStillWorks) {
  // alpha is documented in [0, 1] but the blend is linear; values slightly
  // outside must not break correctness (only ranking quality).
  for (double alpha : {-0.5, 1.5}) {
    QreOptions opts;
    opts.alpha = alpha;
    opts.time_budget_seconds = 30.0;
    EXPECT_TRUE(Solves(opts, workload_[1].rout)) << alpha;
  }
}

}  // namespace
}  // namespace fastqre
