// Unit tests for src/common: Status, Result, strings, rng, hashing,
// duration/count formatting, table printing.
#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace fastqre {
namespace {

// ---------- Status ----------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad thing");
}

TEST(Status, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, CopyIsCheapAndEqualityWorks) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == Status::OK());
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    FASTQRE_RETURN_NOT_OK(fail ? Status::IOError("disk") : Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_TRUE(f(true).IsIOError());
  EXPECT_TRUE(f(false).IsInvalidArgument());
}

TEST(Status, CodeToStringCoversAll) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

// ---------- Result ----------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    FASTQRE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

// ---------- strings ---------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"one", "two", "three"};
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(TrimString("  hi  "), "hi");
  EXPECT_EQ(TrimString("hi"), "hi");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString("\t a b \n"), "a b");
}

TEST(Strings, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(Strings, ToLowerAndFormat) {
  EXPECT_EQ(ToLower("MiXeD 42"), "mixed 42");
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%05d", 42), "00042");
}

// ---------- rng -------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversDomain) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, StringIsLowercaseAsciiOfRequestedLength) {
  Rng rng(3);
  std::string s = rng.String(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

// ---------- hash ------------------------------------------------------------

TEST(Hash, IdTupleHashDistinguishesOrderAndLength) {
  std::vector<uint32_t> a{1, 2, 3}, b{3, 2, 1}, c{1, 2}, d{1, 2, 3};
  IdTupleHash h;
  EXPECT_EQ(h(a), h(d));
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
}

TEST(Hash, HashStringStable) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Hash, SplitMix64Mixes) {
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(0), 0u);
}

// ---------- timer / printing -------------------------------------------------

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
}

TEST(Format, Duration) {
  EXPECT_EQ(FormatDuration(0.0000032), "3.2us");
  EXPECT_EQ(FormatDuration(0.014), "14.0ms");
  EXPECT_EQ(FormatDuration(2.51), "2.51s");
  EXPECT_EQ(FormatDuration(252.0), "4m12s");
  EXPECT_EQ(FormatDuration(-1.0), "-");
}

TEST(Format, Count) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t("demo", {"a", "long_header"});
  t.AddRow({"xxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a    | long_header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxx | 1           |"), std::string::npos);
}

}  // namespace
}  // namespace fastqre
