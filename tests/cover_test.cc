// Unit tests for column patterns and column-cover computation (the
// preprocessing module, Section 4.1 / Example 2.2).
#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "qre/column_cover.h"
#include "storage/pattern.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

// The toy database of Example 2.2 (Figure 4).
Database ToyDb() {
  Database db;
  TableId r1 = db.AddTable("R1").ValueOrDie();
  Table& t1 = db.table(r1);
  EXPECT_TRUE(t1.AddColumn("A", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("B", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("C", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{2}), Value(int64_t{4}), Value(int64_t{3})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{3}), Value(int64_t{6}), Value(int64_t{5})}).ok());
  TableId r2 = db.AddTable("R2").ValueOrDie();
  Table& t2 = db.table(r2);
  EXPECT_TRUE(t2.AddColumn("D", ValueType::kInt64).ok());
  EXPECT_TRUE(t2.AddColumn("E", ValueType::kString).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{1}), Value("a7")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{2}), Value("a2")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{3}), Value("a1")}).ok());
  EXPECT_TRUE(db.AddForeignKey("R2", "D", "R1", "A").ok());
  return db;
}

ColumnPattern Pattern(const Database& db, const char* table, const char* col) {
  const Table& t = db.table(*db.FindTable(table));
  return ComputeColumnPattern(t.column(*t.FindColumn(col)), *db.dictionary());
}

TEST(Patterns, CapturesTypeRangeDistinct) {
  Database db = ToyDb();
  ColumnPattern p = Pattern(db, "R1", "A");
  EXPECT_EQ(p.type, ValueType::kInt64);
  EXPECT_EQ(p.num_distinct, 3u);
  EXPECT_FALSE(p.has_nulls);
  EXPECT_EQ(p.min_value, Value(int64_t{1}));
  EXPECT_EQ(p.max_value, Value(int64_t{3}));
}

TEST(Patterns, StringColumn) {
  Database db = ToyDb();
  ColumnPattern p = Pattern(db, "R2", "E");
  EXPECT_EQ(p.type, ValueType::kString);
  EXPECT_EQ(p.min_value, Value("a1"));
  EXPECT_EQ(p.max_value, Value("a7"));
}

TEST(Patterns, NullHandling) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ColumnPattern all_null = ComputeColumnPattern(t.column(0), *dict);
  EXPECT_EQ(all_null.type, ValueType::kNull);
  EXPECT_TRUE(all_null.has_nulls);
  ASSERT_TRUE(t.AppendRow({Value(int64_t{5})}).ok());
  ColumnPattern mixed = ComputeColumnPattern(t.column(0), *dict);
  EXPECT_EQ(mixed.type, ValueType::kInt64);
  EXPECT_TRUE(mixed.has_nulls);
  EXPECT_EQ(mixed.num_distinct, 2u);  // includes NULL
}

TEST(Patterns, CompatibilityRules) {
  ColumnPattern small{ValueType::kInt64, 2, false, Value(int64_t{5}),
                      Value(int64_t{8})};
  ColumnPattern big{ValueType::kInt64, 10, false, Value(int64_t{0}),
                    Value(int64_t{100})};
  EXPECT_TRUE(PatternCompatible(small, big));
  EXPECT_FALSE(PatternCompatible(big, small));  // more distinct values
  ColumnPattern str{ValueType::kString, 2, false, Value("a"), Value("b")};
  EXPECT_FALSE(PatternCompatible(small, str));  // type mismatch
  ColumnPattern shifted{ValueType::kInt64, 10, false, Value(int64_t{6}),
                        Value(int64_t{100})};
  EXPECT_FALSE(PatternCompatible(small, shifted));  // min below super's min
  ColumnPattern with_null = small;
  with_null.has_nulls = true;
  with_null.num_distinct = 3;
  EXPECT_FALSE(PatternCompatible(with_null, big));  // super lacks nulls
  ColumnPattern big_null = big;
  big_null.has_nulls = true;
  EXPECT_TRUE(PatternCompatible(with_null, big_null));
}

TEST(Patterns, AllNullSubNeedsNullInSuper) {
  ColumnPattern all_null;
  all_null.has_nulls = true;
  all_null.num_distinct = 1;
  ColumnPattern no_null{ValueType::kInt64, 5, false, Value(int64_t{0}),
                        Value(int64_t{9})};
  EXPECT_FALSE(PatternCompatible(all_null, no_null));
  ColumnPattern yes_null = no_null;
  yes_null.has_nulls = true;
  EXPECT_TRUE(PatternCompatible(all_null, yes_null));
}

TEST(Cover, Example22Covers) {
  // From the paper: S_X = {A, C, D}, S_Y = {B}, S_Z = {E} for the R_out of
  // Example 2.2 (column W / table R3 omitted in this fixture).
  Database db = ToyDb();
  Table rout = LoadCsvString("X,Y,Z\n1,2,a7\n3,4,a2\n", "rout",
                             db.dictionary())
                   .ValueOrDie();
  QreOptions opts;
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  auto names_of = [&](ColumnId c) {
    std::vector<std::string> names;
    for (const auto& e : cover.covers[c]) {
      names.push_back(db.table(e.table).column(e.column).name());
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(names_of(0), (std::vector<std::string>{"A", "C", "D"}));
  EXPECT_EQ(names_of(1), (std::vector<std::string>{"B"}));
  EXPECT_EQ(names_of(2), (std::vector<std::string>{"E"}));
  EXPECT_FALSE(cover.HasEmptyCover());
}

TEST(Cover, EmptyCoverDetected) {
  Database db = ToyDb();
  Table rout =
      LoadCsvString("X\n999\n", "rout", db.dictionary()).ValueOrDie();
  QreOptions opts;
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  EXPECT_TRUE(cover.HasEmptyCover());
}

TEST(Cover, JaccardIsContainmentRatio) {
  Database db = ToyDb();
  // X = {1, 3} against A = {1, 2, 3}: jaccard 2/3; same for D.
  Table rout =
      LoadCsvString("X\n1\n3\n", "rout", db.dictionary()).ValueOrDie();
  QreOptions opts;
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  double j_a = -1, j_d = -1;
  for (const auto& e : cover.covers[0]) {
    std::string name = db.table(e.table).column(e.column).name();
    if (name == "A") j_a = e.jaccard;
    if (name == "D") j_d = e.jaccard;
  }
  EXPECT_NEAR(j_a, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(j_d, 2.0 / 3.0, 1e-9);
}

TEST(Cover, PatternPruningPreservesResult) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 11}).ValueOrDie();
  const Table& sup = db.table(*db.FindTable("supplier"));
  // R_out = pi_{s_name, s_nationkey}(supplier) prefix.
  Table rout("rout", db.dictionary());
  ASSERT_TRUE(rout.AddColumn("x", ValueType::kString).ok());
  ASSERT_TRUE(rout.AddColumn("y", ValueType::kInt64).ok());
  for (RowId r = 0; r < 5; ++r) {
    rout.AppendRowIds({sup.column(1).at(r), sup.column(3).at(r)});
  }
  QreOptions with, without;
  with.use_pattern_pruning = true;
  without.use_pattern_pruning = false;
  QreStats s1, s2;
  ColumnCover c1 = ComputeColumnCover(db, rout, with, &s1);
  ColumnCover c2 = ComputeColumnCover(db, rout, without, &s2);
  ASSERT_EQ(c1.covers.size(), c2.covers.size());
  for (size_t i = 0; i < c1.covers.size(); ++i) {
    ASSERT_EQ(c1.covers[i].size(), c2.covers[i].size()) << i;
    for (size_t j = 0; j < c1.covers[i].size(); ++j) {
      EXPECT_EQ(c1.covers[i][j].table, c2.covers[i][j].table);
      EXPECT_EQ(c1.covers[i][j].column, c2.covers[i][j].column);
    }
  }
  // Pruning must actually prune and must never prune a checked pair into
  // existence: checked + pruned == total.
  EXPECT_GT(s1.cover_pairs_pruned, 0u);
  EXPECT_EQ(s1.cover_pairs_checked + s1.cover_pairs_pruned, s1.cover_pairs_total);
  EXPECT_EQ(s2.cover_pairs_pruned, 0u);
  EXPECT_LT(s1.cover_pairs_checked, s2.cover_pairs_checked);
}

TEST(Cover, ValueAbsentFromDictionary) {
  // An R_out value never seen by the database cannot be covered even though
  // it is interned into the shared dictionary at load time.
  Database db = ToyDb();
  Table rout = LoadCsvString("Y\n2\n4\n12345\n", "rout", db.dictionary())
                   .ValueOrDie();
  QreOptions opts;
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  EXPECT_TRUE(cover.covers[0].empty());
}

}  // namespace
}  // namespace fastqre
