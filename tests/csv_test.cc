// Unit tests for CSV ingestion/export (the "Parsing Data" component).
#include <gtest/gtest.h>

#include "storage/csv.h"

namespace fastqre {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(Csv, BasicParseWithHeader) {
  Table t = LoadCsvString("a,b\n1,x\n2,y\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).name(), "a");
  EXPECT_EQ(t.column(0).type(), ValueType::kInt64);
  EXPECT_EQ(t.column(1).type(), ValueType::kString);
  EXPECT_EQ(t.RowValues(1)[0], Value(int64_t{2}));
  EXPECT_EQ(t.RowValues(1)[1], Value("y"));
}

TEST(Csv, NoHeaderNamesColumns) {
  CsvOptions opts;
  opts.has_header = false;
  Table t = LoadCsvString("1,2\n3,4\n", "t", Dict(), opts).ValueOrDie();
  EXPECT_EQ(t.column(0).name(), "c0");
  EXPECT_EQ(t.column(1).name(), "c1");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Csv, TypeInferenceWidening) {
  // ints -> double once a decimal appears; -> string once non-numeric.
  Table t =
      LoadCsvString("i,d,s\n1,1,1\n2,2.5,x\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(t.column(0).type(), ValueType::kInt64);
  EXPECT_EQ(t.column(1).type(), ValueType::kDouble);
  EXPECT_EQ(t.column(2).type(), ValueType::kString);
  // The int-looking cell of a double column parses as double.
  EXPECT_EQ(t.RowValues(0)[1], Value(1.0));
  EXPECT_EQ(t.RowValues(0)[2], Value("1"));
}

TEST(Csv, EmptyCellsBecomeNull) {
  Table t = LoadCsvString("a,b\n1,\n,x\n", "t", Dict()).ValueOrDie();
  EXPECT_TRUE(t.RowValues(0)[1].is_null());
  EXPECT_TRUE(t.RowValues(1)[0].is_null());
  EXPECT_EQ(t.column(0).type(), ValueType::kInt64);
}

TEST(Csv, CustomNullToken) {
  CsvOptions opts;
  opts.null_token = "NA";
  Table t = LoadCsvString("a\n1\nNA\n", "t", Dict(), opts).ValueOrDie();
  EXPECT_TRUE(t.RowValues(1)[0].is_null());
}

TEST(Csv, AllNullColumnIsString) {
  Table t = LoadCsvString("a,b\n1,\n2,\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(t.column(1).type(), ValueType::kString);
}

TEST(Csv, QuotedFields) {
  Table t = LoadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n", "t", Dict())
                .ValueOrDie();
  EXPECT_EQ(t.RowValues(0)[0], Value("x,y"));
  EXPECT_EQ(t.RowValues(0)[1], Value("he said \"hi\""));
}

TEST(Csv, CrLfLineEndings) {
  Table t = LoadCsvString("a\r\n1\r\n2\r\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).type(), ValueType::kInt64);
}

TEST(Csv, CustomSeparator) {
  CsvOptions opts;
  opts.separator = ';';
  Table t = LoadCsvString("a;b\n1;2\n", "t", Dict(), opts).ValueOrDie();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.RowValues(0)[1], Value(int64_t{2}));
}

TEST(Csv, Errors) {
  EXPECT_TRUE(LoadCsvString("", "t", Dict()).status().IsInvalidArgument());
  EXPECT_TRUE(
      LoadCsvString("a,b\n1\n", "t", Dict()).status().IsInvalidArgument());
  EXPECT_TRUE(
      LoadCsvFile("/no/such/file.csv", "t", Dict()).status().IsIOError());
}

TEST(Csv, NegativeAndScientificNumbers) {
  Table t = LoadCsvString("a,b\n-5,1e3\n7,-2.5e-1\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(t.column(0).type(), ValueType::kInt64);
  EXPECT_EQ(t.column(1).type(), ValueType::kDouble);
  EXPECT_EQ(t.RowValues(0)[0], Value(int64_t{-5}));
  EXPECT_DOUBLE_EQ(t.RowValues(1)[1].AsDouble(), -0.25);
}

TEST(Csv, RoundTripThroughExport) {
  Table t = LoadCsvString("k,name,price\n1,widget,9.5\n2,\"a,b\",0.25\n", "t",
                          Dict())
                .ValueOrDie();
  std::string csv = TableToCsv(t);
  Table t2 = LoadCsvString(csv, "t2", t.dictionary()).ValueOrDie();
  ASSERT_EQ(t2.num_rows(), t.num_rows());
  ASSERT_EQ(t2.num_columns(), t.num_columns());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(t.RowValues(r), t2.RowValues(r));
  }
}

TEST(Csv, ExportRendersNullAsEmpty) {
  Table t = LoadCsvString("a,b\n1,\n", "t", Dict()).ValueOrDie();
  EXPECT_EQ(TableToCsv(t), "a,b\n1,\n");
}

TEST(Csv, DeclaredTypesOverrideInference) {
  CsvOptions opts;
  opts.column_types = {ValueType::kString, ValueType::kDouble};
  Table t = LoadCsvString("code,amount\n05,2\n007,1.5\n", "t", Dict(), opts)
                .ValueOrDie();
  EXPECT_EQ(t.column(0).type(), ValueType::kString);
  EXPECT_EQ(t.RowValues(0)[0], Value("05"));   // not narrowed to 5
  EXPECT_EQ(t.RowValues(1)[0], Value("007"));
  EXPECT_EQ(t.RowValues(0)[1], Value(2.0));    // parsed as double
}

TEST(Csv, DeclaredTypesMismatchErrors) {
  CsvOptions opts;
  opts.column_types = {ValueType::kInt64};
  EXPECT_TRUE(LoadCsvString("a\nnot-a-number\n", "t", Dict(), opts)
                  .status()
                  .IsInvalidArgument());
  opts.column_types = {ValueType::kInt64, ValueType::kInt64};
  EXPECT_TRUE(
      LoadCsvString("a\n1\n", "t", Dict(), opts).status().IsInvalidArgument());
}

TEST(Csv, InteriorEmptyLineIsANullRow) {
  Table t = LoadCsvString("a\n\n7\n", "t", Dict()).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.RowValues(0)[0].is_null());
  EXPECT_EQ(t.RowValues(1)[0], Value(int64_t{7}));
}

TEST(Csv, SharedDictionaryEncoding) {
  auto dict = Dict();
  ValueId pre = dict->Intern(Value("shared"));
  Table t = LoadCsvString("a\nshared\n", "t", dict).ValueOrDie();
  EXPECT_EQ(t.column(0).at(0), pre);  // same id as the pre-interned value
}

}  // namespace
}  // namespace fastqre
