// Unit tests for Feedback and the ranked walk composer (Algorithm 1).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/composer.h"
#include "qre/feedback.h"
#include "qre/mapping.h"
#include "qre/walks.h"

namespace fastqre {
namespace {

// ---------- Feedback --------------------------------------------------------

TEST(Feedback, WalkCoherenceMemo) {
  Feedback f(4);
  EXPECT_FALSE(f.WalkCoherence(2).has_value());
  f.SetWalkCoherence(2, true);
  ASSERT_TRUE(f.WalkCoherence(2).has_value());
  EXPECT_TRUE(*f.WalkCoherence(2));
  f.SetWalkCoherence(3, false);
  EXPECT_FALSE(*f.WalkCoherence(3));
}

TEST(Feedback, IncoherentWalkKillsSupersets) {
  Feedback f(4);
  f.SetWalkCoherence(1, false);
  EXPECT_TRUE(f.IsDead({1}));
  EXPECT_TRUE(f.IsDead({0, 1, 3}));
  EXPECT_FALSE(f.IsDead({0, 2, 3}));
}

TEST(Feedback, DeadSetsKillSupersetsOnly) {
  Feedback f(6);
  f.AddDeadSet({1, 3});
  EXPECT_TRUE(f.IsDead({1, 3}));
  EXPECT_TRUE(f.IsDead({0, 1, 3, 5}));
  EXPECT_FALSE(f.IsDead({1}));      // proper subset is not dead
  EXPECT_FALSE(f.IsDead({1, 4}));   // misses 3
  EXPECT_FALSE(f.IsDead({0, 2}));
  EXPECT_EQ(f.num_dead_sets(), 1u);
}

TEST(Feedback, SingletonDeadSetFoldsIntoWalkState) {
  Feedback f(3);
  f.AddDeadSet({2});
  EXPECT_EQ(f.num_dead_sets(), 0u);
  EXPECT_TRUE(f.IsDead({2}));
  ASSERT_TRUE(f.WalkCoherence(2).has_value());
  EXPECT_FALSE(*f.WalkCoherence(2));
}

// ---------- Composer fixture -------------------------------------------------

struct ComposerFixture {
  Database db;
  Table rout;
  QreOptions opts;
  QreStats stats;
  ColumnCover cover;
  CgmSet cgms;
  ColumnMapping mapping;
  std::vector<Walk> walks;

  ComposerFixture(Database d, Table r, QreOptions o = QreOptions())
      : db(std::move(d)), rout(std::move(r)), opts(o) {
    cover = ComputeColumnCover(db, rout, opts, &stats);
    cgms = DiscoverCgms(db, rout, cover, opts, &stats);
    MappingEnumerator e(&db, &rout, &cover, &cgms, &opts);
    EXPECT_TRUE(e.Next(&mapping));
    walks = DiscoverWalks(db, mapping, opts);
  }

  std::vector<CandidateQuery> Candidates(int limit, Feedback* fb) {
    RankedComposer composer(&db, &mapping, &walks, &opts, fb);
    std::vector<CandidateQuery> out;
    CandidateQuery c;
    while (static_cast<int>(out.size()) < limit && composer.Next(&c)) {
      out.push_back(c);
    }
    return out;
  }
};

ComposerFixture L02Fixture(QreOptions opts = QreOptions()) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  Table rout = std::move(workload[1].rout);
  return ComposerFixture(std::move(db), std::move(rout), opts);
}

TEST(Composer, CandidatesAreConnectedAndDistinct) {
  ComposerFixture f = L02Fixture();
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(20, &fb);
  ASSERT_GT(candidates.size(), 1u);
  std::set<std::vector<int>> seen;
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.query.IsConnected());
    EXPECT_TRUE(seen.insert(c.walk_ids).second) << "duplicate walk set";
    EXPECT_TRUE(std::is_sorted(c.walk_ids.begin(), c.walk_ids.end()));
  }
}

TEST(Composer, DcIsSumOfWalkLengths) {
  ComposerFixture f = L02Fixture();
  Feedback fb(f.walks.size());
  for (const auto& c : f.Candidates(10, &fb)) {
    double dc = 0;
    for (int id : c.walk_ids) dc += f.walks[id].length();
    EXPECT_DOUBLE_EQ(c.dc, dc);
  }
}

TEST(Composer, BasicModeEmitsInDcOrder) {
  QreOptions opts;
  opts.use_two_queue_composer = false;
  ComposerFixture f = L02Fixture(opts);
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(15, &fb);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].dc, candidates[i].dc);
  }
}

TEST(Composer, SubsetEnumerationIsExhaustiveAndUnique) {
  // With a tiny walk set, the composer must enumerate every connected subset
  // exactly once. Use a 2-instance mapping where every subset of walks is
  // connected (all walks share the same endpoints).
  ComposerFixture f = L02Fixture();
  // Keep only 4 walks to make 2^4 enumerable.
  if (f.walks.size() > 4) f.walks.resize(4);
  QreOptions opts = f.opts;
  opts.pool_min_size = 1000;  // pool everything
  f.opts = opts;
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(100, &fb);
  EXPECT_EQ(candidates.size(), 15u);  // 2^4 - 1 nonempty subsets
}

TEST(Composer, TwoQueueValidatesCheapCandidatesFirst) {
  // Among candidates of equal dc, the two-queue composer pops lower
  // Q_alpha first (pool permitting).
  ComposerFixture f = L02Fixture();
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(10, &fb);
  ASSERT_GT(candidates.size(), 2u);
  // alpha_cost within the pool window should be mostly non-decreasing for
  // equal-dc runs; check the global first candidate is not the most
  // expensive one.
  double first = candidates.front().alpha_cost;
  double max_cost = first;
  for (const auto& c : candidates) max_cost = std::max(max_cost, c.alpha_cost);
  EXPECT_LE(first, max_cost);
}

TEST(Composer, FeedbackPruningSkipsDeadSubtrees) {
  ComposerFixture f = L02Fixture();
  // Kill every walk: no candidates may be produced at all.
  Feedback fb(f.walks.size());
  for (size_t i = 0; i < f.walks.size(); ++i) {
    fb.SetWalkCoherence(static_cast<int>(i), false);
  }
  auto candidates = f.Candidates(10, &fb);
  EXPECT_TRUE(candidates.empty());
}

TEST(Composer, FeedbackPruningDisabledStillEmits) {
  QreOptions opts;
  opts.use_feedback_pruning = false;
  ComposerFixture f = L02Fixture(opts);
  Feedback fb(f.walks.size());
  for (size_t i = 0; i < f.walks.size(); ++i) {
    fb.SetWalkCoherence(static_cast<int>(i), false);
  }
  auto candidates = f.Candidates(5, &fb);
  EXPECT_FALSE(candidates.empty());
}

TEST(Composer, DeadSetAddedMidstreamPrunesDescendants) {
  ComposerFixture f = L02Fixture();
  Feedback fb(f.walks.size());
  RankedComposer composer(&f.db, &f.mapping, &f.walks, &f.opts, &fb);
  CandidateQuery c;
  ASSERT_TRUE(composer.Next(&c));
  std::vector<int> first_set = c.walk_ids;
  fb.AddDeadSet(first_set);  // as the driver does on a missing-tuple failure
  while (composer.Next(&c)) {
    // No later candidate may be a superset of the dead set.
    bool superset = std::includes(c.walk_ids.begin(), c.walk_ids.end(),
                                  first_set.begin(), first_set.end());
    EXPECT_FALSE(superset);
  }
}

TEST(Composer, SingleInstanceMappingEmitsBareInstance) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 4}).ValueOrDie();
  // R_out = pi_{n_name}(nation).
  QueryBuilder b(&db);
  InstanceId n = b.Instance("nation");
  b.Project(n, "n_name");
  Table rout = ExecuteToTable(db, b.Build().ValueOrDie(), "rout").ValueOrDie();
  ComposerFixture f(std::move(db), std::move(rout));
  ASSERT_EQ(f.mapping.instances.size(), 1u);
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(5, &fb);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].query.num_instances(), 1u);
  EXPECT_TRUE(candidates[0].walk_ids.empty());
}

TEST(Composer, SupersetVariantOnlyEmitsTrees) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();
  ComposerFixture f(std::move(db), std::move(rout), opts);
  ASSERT_EQ(f.mapping.instances.size(), 3u);
  Feedback fb(f.walks.size());
  for (const auto& c : f.Candidates(20, &fb)) {
    EXPECT_EQ(c.walk_ids.size(), 2u);  // n-1 walks over 3 instances
  }
}

TEST(Composer, SpanningTreeSeedAvailableImmediately) {
  // The MST component (Figure 6) pushes a spanning walk group into PQ2 at
  // construction: the very first emitted candidate connects all instances
  // with exactly n-1 walks of minimal total length.
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();
  ComposerFixture f(std::move(db), std::move(rout));
  ASSERT_EQ(f.mapping.instances.size(), 3u);
  Feedback fb(f.walks.size());
  RankedComposer composer(&f.db, &f.mapping, &f.walks, &f.opts, &fb);
  CandidateQuery first;
  ASSERT_TRUE(composer.Next(&first));
  EXPECT_EQ(first.walk_ids.size(), 2u);  // spans 3 instances as a tree
  EXPECT_TRUE(first.query.IsConnected());
  // Minimality: no spanning pair of walks has smaller total length.
  double best = 1e9;
  for (size_t i = 0; i < f.walks.size(); ++i) {
    for (size_t j = i + 1; j < f.walks.size(); ++j) {
      std::set<int> ends{f.walks[i].from_instance, f.walks[i].to_instance,
                         f.walks[j].from_instance, f.walks[j].to_instance};
      if (ends.size() == 3) {
        best = std::min(
            best, static_cast<double>(f.walks[i].length() + f.walks[j].length()));
      }
    }
  }
  EXPECT_DOUBLE_EQ(first.dc, best);
}

TEST(Composer, SeedIsNotEmittedTwice) {
  ComposerFixture f = L02Fixture();
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(50, &fb);
  std::set<std::vector<int>> seen;
  for (const auto& c : candidates) {
    EXPECT_TRUE(seen.insert(c.walk_ids).second);
  }
}

TEST(Composer, AlphaZeroReducesToDcOrdering) {
  QreOptions opts;
  opts.alpha = 1.0;  // Q_alpha == Q_dc
  opts.pool_min_size = 1;
  opts.pool_dc_slack = 0.0;
  ComposerFixture f = L02Fixture(opts);
  Feedback fb(f.walks.size());
  auto candidates = f.Candidates(10, &fb);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].dc, candidates[i].dc + 1e-9);
  }
}

}  // namespace
}  // namespace fastqre
