// Tests for the walk-materialization cache (DESIGN.md §9): canonical walk
// signatures, relation correctness, admission, LRU eviction under a byte
// budget, and end-to-end answer invariance with the cache on/off/tiny.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"
#include "qre/walk_cache.h"
#include "qre/walks.h"
#include "storage/database.h"

namespace fastqre {
namespace {

// L(lk) <- M(mk_l, mk_r) -> R(rk): one intermediate table M chaining the
// two endpoint tables, the smallest length-2 walk shape.
Database ChainDb() {
  Database db;
  TableId l = db.AddTable("l").ValueOrDie();
  EXPECT_TRUE(db.table(l).AddColumn("lk", ValueType::kInt64).ok());
  TableId m = db.AddTable("m").ValueOrDie();
  EXPECT_TRUE(db.table(m).AddColumn("mk_l", ValueType::kInt64).ok());
  EXPECT_TRUE(db.table(m).AddColumn("mk_r", ValueType::kInt64).ok());
  TableId r = db.AddTable("r").ValueOrDie();
  EXPECT_TRUE(db.table(r).AddColumn("rk", ValueType::kInt64).ok());
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(db.table(l).AppendRow({Value(k)}).ok());
    EXPECT_TRUE(db.table(r).AppendRow({Value(k)}).ok());
  }
  // M: 0->{1,2}, 1->{2}, 2->{} (plus a duplicate edge 0->1).
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 1}, {0, 2}, {1, 2}, {0, 1}}) {
    EXPECT_TRUE(db.table(m).AppendRow({Value(a), Value(b)}).ok());
  }
  EXPECT_TRUE(db.AddForeignKey("m", "mk_l", "l", "lk").ok());  // edge 0
  EXPECT_TRUE(db.AddForeignKey("m", "mk_r", "r", "rk").ok());  // edge 1
  return db;
}

// The L -> M -> R walk of ChainDb (and its reversal when `reversed`).
Walk ChainWalk(bool reversed) {
  Walk w;
  w.from_instance = 0;
  w.to_instance = 1;
  if (!reversed) {
    // Edge 0 traversed from its parent side (L is side 1) => forward=false.
    w.steps = {WalkStep{0, false}, WalkStep{1, true}};
    w.tables = {0, 1, 2};
  } else {
    w.steps = {WalkStep{1, false}, WalkStep{0, true}};
    w.tables = {2, 1, 0};
  }
  return w;
}

TEST(WalkSignature, CanonicalUpToReversal) {
  Database db = ChainDb();
  WalkSignature fwd = CanonicalWalkSignature(db, ChainWalk(false));
  WalkSignature rev = CanonicalWalkSignature(db, ChainWalk(true));

  ASSERT_TRUE(fwd.cacheable);
  ASSERT_TRUE(rev.cacheable);
  EXPECT_EQ(fwd.key, rev.key) << "reversal must not change the cache key";
  EXPECT_NE(fwd.flipped, rev.flipped);

  // The chain is the single hop through M, entering on mk_l (col 0).
  ASSERT_EQ(fwd.hops.size(), 1u);
  EXPECT_EQ(fwd.hops[0].table, 1u);
  EXPECT_EQ(fwd.hops[0].in_col, 0u);
  EXPECT_EQ(fwd.hops[0].out_col, 1u);
  // Endpoint join columns follow each walk's own orientation.
  EXPECT_EQ(fwd.from_col, 0u);  // l.lk
  EXPECT_EQ(fwd.to_col, 0u);    // r.rk
}

TEST(WalkSignature, DirectJoinIsNotCacheable) {
  Database db = ChainDb();
  Walk w;
  w.from_instance = 0;
  w.to_instance = 1;
  w.steps = {WalkStep{0, false}};  // L -> M directly
  w.tables = {0, 1};
  WalkSignature sig = CanonicalWalkSignature(db, w);
  EXPECT_FALSE(sig.cacheable);
  EXPECT_TRUE(sig.hops.empty());
}

TEST(BuildWalkRelation, MatchesBruteForceSingleHop) {
  Database db = ChainDb();
  const Table& m = db.table(1);
  auto rel = BuildWalkRelation(db, {WalkHop{1, 0, 1}}, {});
  ASSERT_NE(rel, nullptr);
  EXPECT_GT(rel->bytes, 0u);

  // Brute force: forward[u] = sorted distinct mk_r over rows with mk_l = u.
  ReachMap expect;
  for (RowId r = 0; r < m.num_rows(); ++r) {
    expect[m.column(0).at(r)].push_back(m.column(1).at(r));
  }
  for (auto& [u, vals] : expect) {
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
  EXPECT_EQ(rel->forward.size(), expect.size());
  for (const auto& [u, vals] : expect) {
    ASSERT_TRUE(rel->forward.count(u)) << u;
    EXPECT_EQ(rel->forward.at(u), vals) << u;
  }
  // Reverse is the exact inverse.
  for (const auto& [u, vals] : rel->forward) {
    for (ValueId v : vals) {
      const auto& back = rel->reverse.at(v);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u));
    }
  }
}

TEST(BuildWalkRelation, MatchesBruteForceTwoHops) {
  Database db = ChainDb();
  const Table& m = db.table(1);
  // Chain M with itself: u -> o -> v iff rows (u,o) and (o,v) exist.
  auto rel = BuildWalkRelation(db, {WalkHop{1, 0, 1}, WalkHop{1, 0, 1}}, {});
  ASSERT_NE(rel, nullptr);

  ReachMap expect;
  for (RowId r1 = 0; r1 < m.num_rows(); ++r1) {
    for (RowId r2 = 0; r2 < m.num_rows(); ++r2) {
      if (m.column(1).at(r1) != m.column(0).at(r2)) continue;
      expect[m.column(0).at(r1)].push_back(m.column(1).at(r2));
    }
  }
  for (auto& [u, vals] : expect) {
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
  EXPECT_EQ(rel->forward.size(), expect.size());
  for (const auto& [u, vals] : expect) {
    ASSERT_TRUE(rel->forward.count(u)) << u;
    EXPECT_EQ(rel->forward.at(u), vals) << u;
  }
}

TEST(BuildWalkRelation, InterruptAbortsAndReturnsNull) {
  // The interrupt is polled every kInterruptPollMask+1 work items, so the
  // table must be big enough to reach a poll point.
  Database db;
  TableId m = db.AddTable("m").ValueOrDie();
  ASSERT_TRUE(db.table(m).AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(db.table(m).AddColumn("b", ValueType::kInt64).ok());
  for (int64_t i = 0; i < 3 * (kInterruptPollMask + 1); ++i) {
    ASSERT_TRUE(db.table(m).AppendRow({Value(i % 17), Value(i % 13)}).ok());
  }
  auto rel = BuildWalkRelation(db, {WalkHop{m, 0, 1}}, [] { return true; });
  EXPECT_EQ(rel, nullptr);
}

TEST(WalkCache, AdmissionThresholdDelaysMaterialization) {
  Database db = ChainDb();
  WalkSignature sig = CanonicalWalkSignature(db, ChainWalk(false));
  WalkCache cache(/*budget_bytes=*/1 << 20, /*admission=*/2);
  QreStats stats;
  EXPECT_EQ(cache.Acquire(db, sig, &stats, {}), nullptr);  // use 1
  EXPECT_EQ(cache.Acquire(db, sig, &stats, {}), nullptr);  // use 2
  EXPECT_EQ(cache.bytes(), 0u);
  WalkCache::Handle h = cache.Acquire(db, sig, &stats, {});  // use 3: builds
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(cache.bytes(), h->bytes);
  EXPECT_EQ(stats.walk_cache_misses, 3u);
  EXPECT_EQ(stats.walk_cache_hits, 0u);
  WalkCache::Handle h2 = cache.Acquire(db, sig, &stats, {});
  EXPECT_EQ(h2.get(), h.get());
  EXPECT_EQ(stats.walk_cache_hits, 1u);
}

TEST(WalkCache, UncacheableAndDisabledReturnNull) {
  Database db = ChainDb();
  Walk direct;
  direct.from_instance = 0;
  direct.to_instance = 1;
  direct.steps = {WalkStep{0, false}};
  direct.tables = {0, 1};
  WalkSignature sig1 = CanonicalWalkSignature(db, direct);
  WalkCache cache(1 << 20, 0);
  EXPECT_EQ(cache.Acquire(db, sig1, nullptr, {}), nullptr);

  WalkSignature sig2 = CanonicalWalkSignature(db, ChainWalk(false));
  WalkCache disabled(0, 0);
  EXPECT_EQ(disabled.Acquire(db, sig2, nullptr, {}), nullptr);
}

// Two distinct cacheable signatures over ChainDb: the single hop and the
// doubled hop.
std::pair<WalkSignature, WalkSignature> TwoSignatures(const Database& db) {
  WalkSignature one = CanonicalWalkSignature(db, ChainWalk(false));
  WalkSignature two = one;
  two.hops = {WalkHop{1, 0, 1}, WalkHop{1, 0, 1}};
  two.key = {1, 0, 1, 1, 0, 1};
  return {one, two};
}

TEST(WalkCache, LruEvictionRespectsByteBudget) {
  Database db = ChainDb();
  auto [sig1, sig2] = TwoSignatures(db);
  const size_t b1 = BuildWalkRelation(db, sig1.hops, {})->bytes;
  const size_t b2 = BuildWalkRelation(db, sig2.hops, {})->bytes;

  // Each relation fits alone; both together do not.
  WalkCache cache(b1 + b2 - 1, /*admission=*/0);
  QreStats stats;
  WalkCache::Handle h1 = cache.Acquire(db, sig1, &stats, {});
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(cache.bytes(), b1);
  WalkCache::Handle h2 = cache.Acquire(db, sig2, &stats, {});
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(stats.walk_cache_evictions, 1u);
  EXPECT_EQ(cache.bytes(), b2);
  EXPECT_LE(cache.bytes(), b1 + b2 - 1);
  // The evicted relation is still usable through the pin.
  EXPECT_FALSE(h1->forward.empty());
  // Re-acquiring sig1 rebuilds (another miss) and evicts sig2 in turn.
  WalkCache::Handle h1b = cache.Acquire(db, sig1, &stats, {});
  ASSERT_NE(h1b, nullptr);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.bytes(), b1);
}

TEST(WalkCache, OversizedRelationIsServedButNeverCached) {
  Database db = ChainDb();
  WalkSignature sig = CanonicalWalkSignature(db, ChainWalk(false));
  const size_t bytes = BuildWalkRelation(db, sig.hops, {})->bytes;
  WalkCache cache(bytes - 1, /*admission=*/0);
  QreStats stats;
  WalkCache::Handle h = cache.Acquire(db, sig, &stats, {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(WalkCacheEndToEnd, AnswersInvariantAcrossCacheBudgets) {
  // DESIGN.md §9 determinism requirement: the cache must never change the
  // accepted answer. Run the whole ladder serially with the cache off,
  // pathologically tiny (constant churn), and ample, and require
  // byte-identical SQL.
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  uint64_t cache_traffic = 0;
  for (const auto& wq : workload) {
    QreOptions off;
    off.walk_cache_budget_bytes = 0;
    FastQre reference_engine(&db, off);
    QreAnswer reference = reference_engine.Reverse(wq.rout).ValueOrDie();

    for (uint64_t budget : {uint64_t{4} << 10, uint64_t{64} << 20}) {
      QreOptions opts;
      opts.walk_cache_budget_bytes = budget;
      opts.walk_cache_admission = 0;  // maximal cache involvement
      FastQre engine(&db, opts);
      QreAnswer got = engine.Reverse(wq.rout).ValueOrDie();
      SCOPED_TRACE(wq.name + " budget=" + std::to_string(budget));
      EXPECT_EQ(got.found, reference.found);
      EXPECT_EQ(got.sql, reference.sql);
      EXPECT_EQ(got.failure_reason, reference.failure_reason);
      cache_traffic += got.stats.walk_cache_hits + got.stats.walk_cache_misses;
    }
  }
  // The invariance above must not be vacuous: the ladder exercises the cache.
  EXPECT_GT(cache_traffic, 0u);
}

}  // namespace
}  // namespace fastqre
