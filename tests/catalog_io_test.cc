// Unit tests for database persistence (save/load CSV directory + manifest).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/catalog_io.h"

namespace fastqre {
namespace {

namespace fs = std::filesystem;

class CatalogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fastqre_catio_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void ExpectSameData(const Database& a, const Database& b) {
    ASSERT_EQ(a.num_tables(), b.num_tables());
    for (TableId t = 0; t < a.num_tables(); ++t) {
      const Table& ta = a.table(t);
      const Table& tb = b.table(t);
      ASSERT_EQ(ta.name(), tb.name());
      ASSERT_EQ(ta.num_columns(), tb.num_columns());
      ASSERT_EQ(ta.num_rows(), tb.num_rows()) << ta.name();
      for (ColumnId c = 0; c < ta.num_columns(); ++c) {
        EXPECT_EQ(ta.column(c).name(), tb.column(c).name());
        EXPECT_EQ(ta.column(c).type(), tb.column(c).type());
      }
      for (RowId r = 0; r < ta.num_rows(); ++r) {
        ASSERT_EQ(ta.RowValues(r), tb.RowValues(r))
            << ta.name() << " row " << r;
      }
    }
    ASSERT_EQ(a.foreign_keys().size(), b.foreign_keys().size());
    ASSERT_EQ(a.schema_graph().num_edges(), b.schema_graph().num_edges());
  }

  fs::path dir_;
};

TEST_F(CatalogIoTest, TpchRoundTrip) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 5}).ValueOrDie();
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();
  ExpectSameData(db, loaded);
}

TEST_F(CatalogIoTest, RandomDbRoundTrip) {
  Database db = BuildRandomDb({.seed = 3, .num_tables = 4}).ValueOrDie();
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();
  ExpectSameData(db, loaded);
}

TEST_F(CatalogIoTest, QreWorksOnReloadedDatabase) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 5}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();

  // R_out from the original db re-encodes transparently against the loaded
  // db's own dictionary inside Reverse.
  FastQre engine(&loaded);
  QreAnswer a = engine.Reverse(workload[1].rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table regen = ExecuteToTable(loaded, a.query, "regen").ValueOrDie();
  EXPECT_EQ(regen.num_rows(), workload[1].rout.num_rows());
}

TEST_F(CatalogIoTest, TypePreservationForDigitStrings) {
  // The classic corruption case: a string column whose values look numeric.
  Database db;
  TableId t = db.AddTable("codes").ValueOrDie();
  ASSERT_TRUE(db.table(t).AddColumn("code", ValueType::kString).ok());
  ASSERT_TRUE(db.table(t).AddColumn("amount", ValueType::kDouble).ok());
  ASSERT_TRUE(db.table(t).AppendRow({Value("05"), Value(2.0)}).ok());
  ASSERT_TRUE(db.table(t).AppendRow({Value("007"), Value(1.5)}).ok());
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();
  EXPECT_EQ(loaded.table(0).RowValues(0)[0], Value("05"));
  EXPECT_EQ(loaded.table(0).RowValues(1)[0], Value("007"));
  // The integral double stays a double.
  EXPECT_EQ(loaded.table(0).column(1).type(), ValueType::kDouble);
  EXPECT_EQ(loaded.table(0).RowValues(0)[1], Value(2.0));
}

TEST_F(CatalogIoTest, NullRoundTrip) {
  Database db;
  TableId t = db.AddTable("n").ValueOrDie();
  ASSERT_TRUE(db.table(t).AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(db.table(t).AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(db.table(t).AppendRow({Value(int64_t{7})}).ok());
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();
  EXPECT_TRUE(loaded.table(0).RowValues(0)[0].is_null());
  EXPECT_EQ(loaded.table(0).RowValues(1)[0], Value(int64_t{7}));
}

TEST_F(CatalogIoTest, ManifestRejectsUnsafeNames) {
  Database db;
  TableId t = db.AddTable("bad name").ValueOrDie();
  ASSERT_TRUE(db.table(t).AddColumn("a", ValueType::kInt64).ok());
  EXPECT_TRUE(SaveDatabase(db, dir_.string()).IsInvalidArgument());
}

TEST_F(CatalogIoTest, LoadErrors) {
  EXPECT_TRUE(LoadDatabase((dir_ / "nope").string()).status().IsIOError());

  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ / "schema.fqre");
    out << "not-a-manifest\n";
  }
  EXPECT_TRUE(LoadDatabase(dir_.string()).status().IsInvalidArgument());

  {
    std::ofstream out(dir_ / "schema.fqre");
    out << "fastqre-db 1\ntable ghost 1\ncolumn ghost a int64\n";
  }
  // Missing ghost.csv.
  EXPECT_TRUE(LoadDatabase(dir_.string()).status().IsIOError());
}

TEST_F(CatalogIoTest, ExtraJoinEdgesPersist) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 5}).ValueOrDie();
  size_t edges_before = db.schema_graph().num_edges();
  ASSERT_GT(edges_before, db.foreign_keys().size());  // the L-PS joins
  FASTQRE_CHECK_OK(SaveDatabase(db, dir_.string()));
  Database loaded = LoadDatabase(dir_.string()).ValueOrDie();
  EXPECT_EQ(loaded.schema_graph().num_edges(), edges_before);
  EXPECT_EQ(loaded.foreign_keys().size(), db.foreign_keys().size());
}

}  // namespace
}  // namespace fastqre
