// Unit tests for the resource governor (DESIGN.md §11): byte accounting,
// the degradation ladder, fault-injection spec parsing, and the RunControl
// stop predicate that folds deadline, cancellation, and memory exhaustion
// into one interrupt callback.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/resource_governor.h"

namespace fastqre {
namespace {

// ---- Accounting -------------------------------------------------------------

TEST(ResourceGovernorTest, UnlimitedBudgetTracksAndPeaks) {
  ResourceGovernor gov(0);
  EXPECT_TRUE(gov.TryCharge(1000, "walk-cache-build"));
  gov.Charge(500, "index-build");
  EXPECT_EQ(gov.tracked_bytes(), 1500u);
  EXPECT_EQ(gov.peak_tracked_bytes(), 1500u);
  gov.Release(1000);
  EXPECT_EQ(gov.tracked_bytes(), 500u);
  EXPECT_EQ(gov.peak_tracked_bytes(), 1500u);  // peak is monotone
  EXPECT_EQ(gov.degradation_level(), 0);
  EXPECT_EQ(gov.degradation_events(), 0u);
  EXPECT_FALSE(gov.memory_exhausted());
  EXPECT_TRUE(gov.materialization_allowed());
}

TEST(ResourceGovernorTest, TryChargeWithinBudgetSucceeds) {
  ResourceGovernor gov(4096);
  EXPECT_TRUE(gov.TryCharge(4096, "walk-cache-build"));
  EXPECT_EQ(gov.tracked_bytes(), 4096u);
  EXPECT_EQ(gov.degradation_level(), 0);
}

TEST(ResourceGovernorTest, TryChargeOverBudgetRefusesAndDegrades) {
  ResourceGovernor gov(4096);
  EXPECT_TRUE(gov.TryCharge(4000, "walk-cache-build"));
  // No pressure hook can free anything, so the optional charge is refused
  // and the ladder climbs to pipelined-only — never to exhaustion.
  EXPECT_FALSE(gov.TryCharge(4000, "walk-cache-build"));
  EXPECT_EQ(gov.tracked_bytes(), 4000u);  // failed charge left nothing behind
  EXPECT_EQ(gov.degradation_level(), 2);
  EXPECT_FALSE(gov.materialization_allowed());
  EXPECT_FALSE(gov.memory_exhausted());
  EXPECT_EQ(gov.degradation_events(), 2u);  // rungs 0->1 and 1->2
  // Once materialization is degraded away, every optional charge refuses
  // up front.
  EXPECT_FALSE(gov.TryCharge(1, "walk-cache-build"));
}

TEST(ResourceGovernorTest, PressureHookThatFreesEnoughStopsTheClimb) {
  ResourceGovernor gov(4096);
  EXPECT_TRUE(gov.TryCharge(4000, "walk-cache-build"));
  // Simulates the walk cache's shrink: evict previously charged bytes.
  gov.SetPressureHook([&gov] { gov.Release(3000); });
  EXPECT_TRUE(gov.TryCharge(2000, "walk-cache-build"));
  EXPECT_EQ(gov.degradation_level(), 1);  // shrink sufficed
  EXPECT_TRUE(gov.materialization_allowed());
  EXPECT_EQ(gov.tracked_bytes(), 3000u);
  EXPECT_EQ(gov.degradation_events(), 1u);
}

TEST(ResourceGovernorTest, RequiredChargeOverBudgetExhausts) {
  ResourceGovernor gov(1024);
  gov.Charge(4096, "index-build");  // required charges never fail...
  EXPECT_EQ(gov.tracked_bytes(), 4096u);
  EXPECT_TRUE(gov.memory_exhausted());  // ...they escalate instead
  EXPECT_EQ(gov.degradation_level(), 3);
  EXPECT_GE(gov.degradation_events(), 3u);
}

TEST(ResourceGovernorTest, ConcurrentChargeReleaseBalancesToZero) {
  ResourceGovernor gov(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gov] {
      for (int i = 0; i < 10000; ++i) {
        gov.Charge(64, "mapping-frontier");
        gov.Release(64);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gov.tracked_bytes(), 0u);
  EXPECT_GE(gov.peak_tracked_bytes(), 64u);
  EXPECT_EQ(gov.degradation_level(), 0);
}

// ---- Fault-injection spec parsing ------------------------------------------

TEST(FaultInjectorTest, ParsesMultiRuleSpec) {
  auto r = FaultInjector::Parse(
      "index-build=alloc-fail,parallel-worker=delay@3,answer-found=cancel@2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rules(), 3u);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"nonsense", "site=", "site=explode", "=cancel", "site=cancel@0",
        "site=cancel@", "site=cancel@x"}) {
    auto r = FaultInjector::Parse(spec);
    EXPECT_FALSE(r.ok()) << "spec should have been rejected: " << spec;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST(FaultInjectorTest, AllocFailFiresFromNthHitOnward) {
  auto injector = std::move(FaultInjector::Parse("s=alloc-fail@3")).ValueOrDie();
  EXPECT_FALSE(injector->Hit("s").alloc_fail);
  EXPECT_FALSE(injector->Hit("other").alloc_fail);  // other sites unaffected
  EXPECT_FALSE(injector->Hit("s").alloc_fail);
  EXPECT_TRUE(injector->Hit("s").alloc_fail);  // third hit of "s"
  EXPECT_TRUE(injector->Hit("s").alloc_fail);  // ...and every one after
}

TEST(ResourceGovernorTest, InjectedAllocFailRefusesOptionalCharge) {
  auto injector =
      std::move(FaultInjector::Parse("walk-cache-build=alloc-fail")).ValueOrDie();
  ResourceGovernor gov(0, nullptr, std::move(injector));
  EXPECT_FALSE(gov.TryCharge(100, "walk-cache-build"));
  EXPECT_EQ(gov.tracked_bytes(), 0u);
  // An injected *optional* failure degrades nothing: the caller just skips
  // the materialization.
  EXPECT_EQ(gov.degradation_level(), 0);
  // Other sites keep working.
  EXPECT_TRUE(gov.TryCharge(100, "block-buffer"));
}

TEST(ResourceGovernorTest, InjectedAllocFailOnRequiredChargeExhausts) {
  auto injector =
      std::move(FaultInjector::Parse("index-build=alloc-fail")).ValueOrDie();
  ResourceGovernor gov(0, nullptr, std::move(injector));
  gov.Charge(100, "index-build");
  EXPECT_TRUE(gov.memory_exhausted());
  EXPECT_EQ(gov.tracked_bytes(), 0u);  // the failed allocation is not tracked
}

TEST(ResourceGovernorTest, InjectedCancelFiresTheToken) {
  auto token = std::make_shared<CancellationToken>();
  auto injector =
      std::move(FaultInjector::Parse("cgm-discovery=cancel@2")).ValueOrDie();
  ResourceGovernor gov(0, token, std::move(injector));
  gov.FaultPoint("cgm-discovery");
  EXPECT_FALSE(gov.cancelled());
  gov.FaultPoint("cgm-discovery");
  EXPECT_TRUE(gov.cancelled());
  EXPECT_TRUE(token->cancelled());
}

// ---- RunControl -------------------------------------------------------------

TEST(RunControlTest, NoStopSourcesMeansNoStop) {
  RunControl run(0.0, nullptr, nullptr);
  EXPECT_FALSE(run.ShouldStop());
  EXPECT_EQ(run.cause(), StopCause::kNone);
  EXPECT_STREQ(run.reason(), "");
}

TEST(RunControlTest, ExpiredDeadlineRecordsTheLoadBearingString) {
  RunControl run(1e-12, nullptr, nullptr);
  EXPECT_TRUE(run.ShouldStop());
  EXPECT_EQ(run.cause(), StopCause::kDeadline);
  EXPECT_STREQ(run.reason(), "time budget exceeded");
}

TEST(RunControlTest, CancellationWinsOverLaterDeadline) {
  CancellationToken token;
  token.Cancel();
  RunControl run(1e-12, &token, nullptr);
  EXPECT_TRUE(run.ShouldStop());
  // The token is polled before the deadline, and the first recorded cause
  // is sticky.
  EXPECT_EQ(run.cause(), StopCause::kCancelled);
  EXPECT_STREQ(run.reason(), "cancelled");
  EXPECT_TRUE(run.ShouldStop());
  EXPECT_EQ(run.cause(), StopCause::kCancelled);
}

TEST(RunControlTest, MemoryExhaustionStops) {
  ResourceGovernor gov(16);
  RunControl run(0.0, nullptr, &gov);
  EXPECT_FALSE(run.ShouldStop());
  gov.Charge(1024, "index-build");
  EXPECT_TRUE(run.ShouldStop());
  EXPECT_EQ(run.cause(), StopCause::kMemory);
  EXPECT_STREQ(run.reason(), "memory budget exceeded");
}

TEST(RunControlTest, ConcurrentPollersAgreeOnOneCause) {
  CancellationToken token;
  ResourceGovernor gov(16);
  RunControl run(1e-12, &token, &gov);
  token.Cancel();
  gov.Charge(1024, "index-build");
  std::vector<std::thread> threads;
  std::atomic<int> stops{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (run.ShouldStop()) ++stops;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stops.load(), 8);
  // All sources had fired; whichever poll won, exactly one cause stuck.
  EXPECT_NE(run.cause(), StopCause::kNone);
  EXPECT_STRNE(run.reason(), "");
}

}  // namespace
}  // namespace fastqre
