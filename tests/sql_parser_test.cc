// Unit tests for the PJ-fragment SQL parser, including ToSql round trips.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "engine/sql_parser.h"

namespace fastqre {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  }
  Database db_;
};

TEST_F(SqlParserTest, SimpleSelect) {
  PJQuery q =
      ParsePJQuery(db_, "SELECT n.n_name FROM nation n").ValueOrDie();
  EXPECT_EQ(q.num_instances(), 1u);
  EXPECT_EQ(q.projections().size(), 1u);
  EXPECT_TRUE(q.joins().empty());
  Table out = ExecuteToTable(db_, q, "out").ValueOrDie();
  EXPECT_EQ(out.num_rows(), 25u);
}

TEST_F(SqlParserTest, JoinAndDefaultAlias) {
  // Without an explicit alias, the table name is the alias.
  PJQuery q = ParsePJQuery(db_,
                           "SELECT supplier.s_name, nation.n_name "
                           "FROM supplier, nation "
                           "WHERE supplier.s_nationkey = nation.n_nationkey")
                  .ValueOrDie();
  EXPECT_EQ(q.num_instances(), 2u);
  EXPECT_EQ(q.joins().size(), 1u);
  Table out = ExecuteToTable(db_, q, "out").ValueOrDie();
  EXPECT_GT(out.num_rows(), 0u);
}

TEST_F(SqlParserTest, KeywordsAreCaseInsensitive) {
  PJQuery q = ParsePJQuery(db_,
                           "select n.n_name from nation n where "
                           "n.n_regionkey = 0")
                  .ValueOrDie();
  EXPECT_EQ(q.selections().size(), 1u);
  Table out = ExecuteToTable(db_, q, "out").ValueOrDie();
  EXPECT_EQ(out.num_rows(), 5u);  // five nations per region
}

TEST_F(SqlParserTest, SelfJoinWithAliases) {
  PJQuery q = ParsePJQuery(
                  db_,
                  "SELECT s1.s_name, s2.s_name FROM supplier s1, supplier s2 "
                  "WHERE s1.s_nationkey = s2.s_nationkey")
                  .ValueOrDie();
  EXPECT_EQ(q.num_instances(), 2u);
  EXPECT_EQ(q.instance_table(0), q.instance_table(1));
}

TEST_F(SqlParserTest, StringLiteralSelection) {
  PJQuery q = ParsePJQuery(db_,
                           "SELECT n.n_nationkey FROM nation n WHERE "
                           "n.n_name = 'FRANCE'")
                  .ValueOrDie();
  Table out = ExecuteToTable(db_, q, "out").ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.RowValues(0)[0], Value(int64_t{6}));
}

TEST_F(SqlParserTest, QuotedLiteralEscapes) {
  // '' inside a string literal is a single quote.
  Database db;
  TableId t = db.AddTable("t").ValueOrDie();
  ASSERT_TRUE(db.table(t).AddColumn("s", ValueType::kString).ok());
  ASSERT_TRUE(db.table(t).AppendRow({Value("it's")}).ok());
  PJQuery q =
      ParsePJQuery(db, "SELECT t.s FROM t WHERE t.s = 'it''s'").ValueOrDie();
  Table out = ExecuteToTable(db, q, "out").ValueOrDie();
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST_F(SqlParserTest, NumericLiteralMatchesColumnType) {
  // "= 2" against a double column must intern 2.0, not int64 2.
  PJQuery q = ParsePJQuery(db_,
                           "SELECT s.s_name FROM supplier s WHERE "
                           "s.s_acctbal = 2")
                  .ValueOrDie();
  ASSERT_EQ(q.selections().size(), 1u);
  const Value& v = db_.dictionary()->Get(q.selections()[0].value);
  EXPECT_EQ(v.type(), ValueType::kDouble);
}

TEST_F(SqlParserTest, RoundTripsLadderQueries) {
  auto workload = StandardTpchWorkload(db_).ValueOrDie();
  for (const auto& wq : workload) {
    SCOPED_TRACE(wq.name);
    std::string sql = wq.query.ToSql(db_);
    PJQuery reparsed = ParsePJQuery(db_, sql).ValueOrDie();
    EXPECT_EQ(reparsed.ToSql(db_), sql);  // textual fixpoint
    Table out = ExecuteToTable(db_, reparsed, "out").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(out), TableToTupleSet(wq.rout));
  }
}

TEST_F(SqlParserTest, RoundTripsRandomCpjQueries) {
  // Property: for random CPJ queries over random schemas, parse(render(q))
  // renders identically (textual fixpoint) and executes to the same result
  // set. Covers shapes the hand-written ladder misses: self-joins on random
  // edges, varying projection multiplicity, wide instance counts.
  for (uint64_t seed : {1u, 5u, 9u, 14u, 27u, 33u}) {
    Database db = BuildRandomDb({.seed = seed, .num_tables = 4}).ValueOrDie();
    Rng rng(seed ^ 0xfa57);
    for (int i = 0; i < 4; ++i) {
      RandomQueryOptions qopts;
      qopts.num_instances = 2 + (i % 3);
      qopts.num_projections = 1 + i;
      auto wq = RandomCpjQuery(db, &rng, qopts);
      if (!wq.ok()) continue;  // this shape produced no usable query
      SCOPED_TRACE("seed=" + std::to_string(seed) + " i=" + std::to_string(i));

      const std::string sql = wq->query.ToSql(db);
      PJQuery reparsed = ParsePJQuery(db, sql).ValueOrDie();
      EXPECT_EQ(reparsed.ToSql(db), sql);
      // And once more: one parse-render cycle must reach a fixpoint.
      PJQuery twice = ParsePJQuery(db, reparsed.ToSql(db)).ValueOrDie();
      EXPECT_EQ(twice.ToSql(db), sql);

      EXPECT_EQ(reparsed.num_instances(), wq->query.num_instances());
      EXPECT_EQ(reparsed.joins().size(), wq->query.joins().size());
      Table out = ExecuteToTable(db, reparsed, "out").ValueOrDie();
      EXPECT_EQ(TableToTupleSet(out), TableToTupleSet(wq->rout));
    }
  }
}

TEST_F(SqlParserTest, RoundTripsRandomTpchQueries) {
  Rng rng(4242);
  for (int i = 0; i < 8; ++i) {
    auto wq = RandomCpjQuery(db_, &rng, RandomQueryOptions{});
    if (!wq.ok()) continue;
    SCOPED_TRACE(i);
    const std::string sql = wq->query.ToSql(db_);
    PJQuery reparsed = ParsePJQuery(db_, sql).ValueOrDie();
    EXPECT_EQ(reparsed.ToSql(db_), sql);
    Table out = ExecuteToTable(db_, reparsed, "out").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(out), TableToTupleSet(wq->rout));
  }
}

TEST_F(SqlParserTest, SyntaxErrors) {
  EXPECT_TRUE(ParsePJQuery(db_, "").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParsePJQuery(db_, "SELECT x FROM nation").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.n_name nation n")
                  .status()
                  .IsInvalidArgument());  // missing FROM
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.n_name FROM nation n WHERE")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.n_name FROM nation n trailing x")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.n_name FROM nation n WHERE "
                                "n.n_name = 'unterminated")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SqlParserTest, ResolutionErrors) {
  EXPECT_TRUE(
      ParsePJQuery(db_, "SELECT g.x FROM ghost g").status().IsNotFound());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.ghost_col FROM nation n")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT z.n_name FROM nation n")
                  .status()
                  .IsNotFound());  // unknown alias
  EXPECT_TRUE(ParsePJQuery(db_, "SELECT n.n_name FROM nation n, region n")
                  .status()
                  .IsInvalidArgument());  // duplicate alias
}

TEST_F(SqlParserTest, SameInstanceEqualityIsAFilter) {
  PJQuery q = ParsePJQuery(db_,
                           "SELECT n.n_name FROM nation n WHERE "
                           "n.n_nationkey = n.n_regionkey")
                  .ValueOrDie();
  ASSERT_EQ(q.joins().size(), 1u);
  EXPECT_EQ(q.joins()[0].a, q.joins()[0].b);
  Table out = ExecuteToTable(db_, q, "out").ValueOrDie();
  // Nations 0..4 have nationkey==regionkey only when the official mapping
  // says so; just assert execution works and is a subset of all nations.
  EXPECT_LE(out.num_rows(), 25u);
}

}  // namespace
}  // namespace fastqre
