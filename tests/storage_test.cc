// Unit tests for src/storage: Value, Dictionary, Column, Table, Database,
// SchemaGraph, HashIndex.
#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/index.h"
#include "storage/schema_graph.h"
#include "storage/table.h"
#include "storage/value.h"

namespace fastqre {
namespace {

// ---------- Value -----------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(Value, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // int64 1 != double 1.0
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(Value, OrderingIsTotalWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type: ordered by type index (null < int64 < double < string).
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_LT(Value(int64_t{100}), Value(0.1));
  EXPECT_LT(Value(9e9), Value(""));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(Value, SqlLiteralQuotesStrings) {
  EXPECT_EQ(Value(int64_t{3}).ToSqlLiteral(), "3");
  EXPECT_EQ(Value("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value("plain").ToSqlLiteral(), "'plain'");
}

// ---------- Dictionary ------------------------------------------------------

TEST(Dictionary, NullIsIdZero) {
  Dictionary d;
  EXPECT_EQ(d.Intern(Value::Null()), kNullValueId);
  EXPECT_EQ(d.Find(Value::Null()), kNullValueId);
  EXPECT_TRUE(d.Get(kNullValueId).is_null());
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  ValueId a = d.Intern(Value(int64_t{5}));
  ValueId b = d.Intern(Value(int64_t{5}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 2u);  // NULL + one value
}

TEST(Dictionary, DistinctValuesGetDistinctIds) {
  Dictionary d;
  ValueId a = d.Intern(Value(int64_t{1}));
  ValueId b = d.Intern(Value(1.0));
  ValueId c = d.Intern(Value("1"));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(d.Get(a), Value(int64_t{1}));
  EXPECT_EQ(d.Get(c), Value("1"));
}

TEST(Dictionary, FindDoesNotIntern) {
  Dictionary d;
  EXPECT_EQ(d.Find(Value("absent")), Dictionary::kNotInterned);
  EXPECT_EQ(d.size(), 1u);
}

// ---------- Table / Column --------------------------------------------------

TEST(Table, AddColumnRules) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  EXPECT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("a", ValueType::kInt64).IsAlreadyExists());
  EXPECT_TRUE(t.AddColumn("n", ValueType::kNull).IsInvalidArgument());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_TRUE(t.AddColumn("late", ValueType::kInt64).IsInvalidArgument());
}

TEST(Table, AppendRowChecksArityAndTypes) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("b", ValueType::kString).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1})}).IsInvalidArgument());
  EXPECT_TRUE(
      t.AppendRow({Value("wrong"), Value("ok")}).IsInvalidArgument());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());  // nulls ok
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowRoundTrip) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("b", ValueType::kString).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{42}), Value("hello")}).ok());
  auto vals = t.RowValues(0);
  EXPECT_EQ(vals[0], Value(int64_t{42}));
  EXPECT_EQ(vals[1], Value("hello"));
  auto ids = t.RowIds(0);
  EXPECT_EQ(dict->Get(ids[1]), Value("hello"));
}

TEST(Table, FindColumn) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  EXPECT_EQ(*t.FindColumn("a"), 0u);
  EXPECT_TRUE(t.FindColumn("zz").status().IsNotFound());
}

TEST(Column, DistinctSetAndUniqueness) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  for (int64_t v : {1, 2, 2, 3, 3, 3}) {
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  }
  EXPECT_EQ(t.column(0).NumDistinct(), 3u);
  EXPECT_FALSE(t.column(0).IsUnique());
  EXPECT_FALSE(t.column(0).HasNulls());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  EXPECT_TRUE(t.column(0).HasNulls());  // cache invalidated by append
  EXPECT_EQ(t.column(0).NumDistinct(), 4u);
}

TEST(Column, UniqueColumn) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("k", ValueType::kInt64).ok());
  for (int64_t v = 0; v < 10; ++v) ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  EXPECT_TRUE(t.column(0).IsUnique());
}

// ---------- SchemaGraph -----------------------------------------------------

TEST(SchemaGraph, EdgesAndAdjacency) {
  SchemaGraph g;
  EdgeId e0 = g.AddEdge(0, 1, 1, 0);
  EdgeId e1 = g.AddEdge(1, 2, 2, 0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.EdgesOf(0), (std::vector<EdgeId>{e0}));
  EXPECT_EQ(g.EdgesOf(1), (std::vector<EdgeId>{e0, e1}));
  EXPECT_EQ(g.EdgesOf(2), (std::vector<EdgeId>{e1}));
  EXPECT_TRUE(g.EdgesOf(99).empty());
}

TEST(SchemaGraph, ParallelEdgesAndSelfLoops) {
  SchemaGraph g;
  g.AddEdge(0, 0, 1, 0);
  g.AddEdge(0, 1, 1, 1);  // parallel edge, different columns
  EdgeId loop = g.AddEdge(2, 0, 2, 1);
  EXPECT_EQ(g.EdgesOf(0).size(), 2u);
  EXPECT_TRUE(g.edge(loop).IsSelfLoop());
  // Self-loops appear once in the adjacency list.
  EXPECT_EQ(g.EdgesOf(2).size(), 1u);
}

TEST(SchemaGraph, SideOf) {
  SchemaGraph g;
  EdgeId e = g.AddEdge(3, 7, 5, 2);
  EXPECT_EQ(g.edge(e).SideOf(3), 0);
  EXPECT_EQ(g.edge(e).SideOf(5), 1);
}

// ---------- Database --------------------------------------------------------

Database TwoTableDb() {
  Database db;
  TableId parent = db.AddTable("parent").ValueOrDie();
  EXPECT_TRUE(db.table(parent).AddColumn("pk", ValueType::kInt64).ok());
  EXPECT_TRUE(db.table(parent).AddColumn("name", ValueType::kString).ok());
  TableId child = db.AddTable("child").ValueOrDie();
  EXPECT_TRUE(db.table(child).AddColumn("fk", ValueType::kInt64).ok());
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(db.table(parent)
                    .AppendRow({Value(k), Value("p" + std::to_string(k))})
                    .ok());
  }
  for (int64_t k : {0, 0, 1, 2, 2, 2}) {
    EXPECT_TRUE(db.table(child).AppendRow({Value(k)}).ok());
  }
  EXPECT_TRUE(db.AddForeignKey("child", "fk", "parent", "pk").ok());
  return db;
}

TEST(Database, TableManagement) {
  Database db = TwoTableDb();
  EXPECT_EQ(db.num_tables(), 2u);
  EXPECT_EQ(*db.FindTable("parent"), 0u);
  EXPECT_TRUE(db.FindTable("nope").status().IsNotFound());
  EXPECT_TRUE(db.AddTable("parent").status().IsAlreadyExists());
  EXPECT_EQ(db.TotalRows(), 9u);
}

TEST(Database, ForeignKeyBuildsSchemaEdge) {
  Database db = TwoTableDb();
  ASSERT_EQ(db.foreign_keys().size(), 1u);
  const ForeignKey& fk = db.foreign_keys()[0];
  EXPECT_EQ(db.table(fk.child_table).name(), "child");
  EXPECT_EQ(db.table(fk.parent_table).name(), "parent");
  ASSERT_EQ(db.schema_graph().num_edges(), 1u);
  const SchemaEdge& e = db.schema_graph().edge(0);
  EXPECT_EQ(e.table[0], fk.child_table);
  EXPECT_EQ(e.table[1], fk.parent_table);
}

TEST(Database, ForeignKeyNameResolutionErrors) {
  Database db = TwoTableDb();
  EXPECT_TRUE(db.AddForeignKey("nope", "fk", "parent", "pk").IsNotFound());
  EXPECT_TRUE(db.AddForeignKey("child", "zz", "parent", "pk").IsNotFound());
}

TEST(Database, IndexCacheReuses) {
  Database db = TwoTableDb();
  const HashIndex& i1 = db.GetOrBuildIndex(0, {0});
  const HashIndex& i2 = db.GetOrBuildIndex(0, {0});
  EXPECT_EQ(&i1, &i2);
  EXPECT_EQ(db.index_stats().indexes_built, 1u);
  EXPECT_EQ(db.index_stats().cache_hits, 1u);
  db.GetOrBuildIndex(0, {0, 1});
  EXPECT_EQ(db.index_stats().indexes_built, 2u);
}

// ---------- HashIndex -------------------------------------------------------

TEST(HashIndex, SingleColumnLookup) {
  Database db = TwoTableDb();
  const Table& child = db.table(1);
  HashIndex index(child, {0});
  ValueId two = db.dictionary()->Find(Value(int64_t{2}));
  ASSERT_NE(two, Dictionary::kNotInterned);
  EXPECT_EQ(index.Lookup1(two).size(), 3u);
  EXPECT_EQ(index.Lookup({two}).size(), 3u);
  ValueId missing = db.dictionary()->Intern(Value(int64_t{999}));
  EXPECT_TRUE(index.Lookup1(missing).empty());
  EXPECT_EQ(index.num_keys(), 3u);
}

TEST(HashIndex, MultiColumnLookup) {
  Database db = TwoTableDb();
  const Table& parent = db.table(0);
  HashIndex index(parent, {0, 1});
  ValueId k1 = db.dictionary()->Find(Value(int64_t{1}));
  ValueId p1 = db.dictionary()->Find(Value("p1"));
  ValueId p2 = db.dictionary()->Find(Value("p2"));
  EXPECT_EQ(index.Lookup({k1, p1}).size(), 1u);
  EXPECT_TRUE(index.Lookup({k1, p2}).empty());  // mismatched pair
  EXPECT_EQ(index.num_keys(), 3u);
}

TEST(HashIndex, RowIdsPointBack) {
  Database db = TwoTableDb();
  const Table& child = db.table(1);
  HashIndex index(child, {0});
  ValueId zero = db.dictionary()->Find(Value(int64_t{0}));
  for (RowId r : index.Lookup1(zero)) {
    EXPECT_EQ(child.column(0).at(r), zero);
  }
}

}  // namespace
}  // namespace fastqre
