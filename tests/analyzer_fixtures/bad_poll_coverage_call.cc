// Must-flag: poll-coverage. The loop body only calls Weigh, and the
// whole-program reaches-a-poll fixpoint proves Weigh never polls either —
// delegating the body does not discharge the obligation.
#include "fixture_stubs.h"

static unsigned long Weigh(const std::vector<ValueId>& tuple) {
  return tuple.size() * 2;
}

// det: order-insensitive - total is a commutative sum over tuple weights
unsigned long WeighAll(const TupleSet& tuples) {
  unsigned long total = 0;
  for (const auto& t : tuples) {
    total += Weigh(t);
  }
  return total;
}
