// Must-pass: governed-alloc. Every materialization-sized buffer carries a
// `// gov:` classification, and references/parameters are exempt (they
// alias storage charged at its owner).
#include "fixture_stubs.h"

TupleSet MakeResult();

unsigned long AccumulateCharged() {
  // gov: charged - fixture stand-in for a governor-charged result set
  TupleSet seen;
  // gov: charged - deduced TupleSet, charged at the producer
  auto merged = MakeResult();
  // gov: bounded - at most one entry per schema column, not per data row
  std::vector<std::vector<RowId>> postings;
  // gov: charged - walk endpoints, charged by the walk cache
  ReachMap forward;
  // gov: charged - memo table bytes are charged by its owning cache
  std::unordered_map<std::vector<ValueId>, int, IdTupleHash> memo;
  postings.reserve(4);
  return seen.size() + merged.size() + postings.size() + forward.size() +
         memo.size();
}

unsigned long CountThrough(const TupleSet& tuples) {
  const TupleSet& alias = tuples;  // reference: exempt, owner pays
  return alias.size() + tuples.size();
}

struct CacheShard {
  // gov: charged - shard contents are charged on insert by the cache
  TupleSet tuples_;
  int generation_ = 0;
};
