// Must-pass: governed-alloc for the server-side aliases. Every JobTable /
// AnswerBuffer declaration carries a `// gov:` classification, and
// references are exempt (they alias storage classified at its owner).
#include "fixture_stubs.h"

struct JobRegistry {
  // gov: bounded - one entry per admitted job; admission caps in-flight
  JobTable jobs_;
  int next_id_ = 1;
};

unsigned long BufferAnswers(const AnswerBuffer& streamed) {
  // gov: bounded - at most `limit` entries, validated at submit time
  AnswerBuffer answers;
  // gov: bounded - max_in_flight_jobs caps the table size
  JobTable jobs;
  return answers.size() + jobs.size() + streamed.size();
}
