// Must-flag: poll-coverage, twice. SumAll iterates a TupleSet and ScanRows
// walks RowId-indexed rows; neither nest ever reaches an interrupt poll,
// RunControl check, or morsel boundary.
#include "fixture_stubs.h"

unsigned long SumAll(const TupleSet& tuples) {
  unsigned long total = 0;
  for (const auto& t : tuples) {
    total += t.size();
  }
  return total;
}

unsigned long ScanRows(unsigned long num_rows) {
  unsigned long total = 0;
  for (RowId r = 0; r < num_rows; ++r) {
    total += r;
  }
  return total;
}
