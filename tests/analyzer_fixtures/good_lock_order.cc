// Must-pass: lock-order. Every path agrees on accounts_mu_ before
// audit_mu_ (scoped and manual acquisition), and hand-over-hand locking of
// two objects of one class is a self-edge on the per-field graph, which is
// deliberately not reported.
#include "fixture_stubs.h"

class Ledger {
 public:
  void Credit() {
    MutexLock accounts(&accounts_mu_);
    MutexLock audit(&audit_mu_);
    balance_ += 1;
  }

  void Audit() {
    MutexLock accounts(&accounts_mu_);
    MutexLock audit(&audit_mu_);
    balance_ -= 1;
  }

  void ManualSweep() {
    accounts_mu_.Lock();
    audit_mu_.Lock();
    balance_ = 0;
    audit_mu_.Unlock();
    accounts_mu_.Unlock();
  }

 private:
  Mutex accounts_mu_;
  Mutex audit_mu_;
  int balance_ = 0;
};

struct Node {
  Mutex mu;
  Node* next = nullptr;
  int value = 0;
};

int HandOverHand(Node* head) {
  head->mu.Lock();
  Node* second = head->next;
  second->mu.Lock();  // Node::mu -> Node::mu self-edge: not a cycle report
  int v = second->value;
  second->mu.Unlock();
  head->mu.Unlock();
  return v;
}
