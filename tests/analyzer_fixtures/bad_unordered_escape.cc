// Must-flag: unordered-escape, twice. CollectUnsorted appends TupleSet
// hash order into a vector that is never sorted; CollectMisclassified does
// the same under a `// det: order-insensitive` comment the analyzer can
// prove wrong.
#include "fixture_stubs.h"

std::vector<ValueId> CollectUnsorted(const TupleSet& tuples) {
  std::vector<ValueId> out;
  for (const auto& t : tuples) {
    out.push_back(t[0]);
  }
  return out;
}

std::vector<ValueId> CollectMisclassified(const TupleSet& tuples) {
  std::vector<ValueId> out;
  // det: order-insensitive - WRONG on purpose: the append leaks hash order
  for (const auto& t : tuples) {
    out.push_back(t[0]);
  }
  return out;
}
