// Must-flag: suppression, three ways — a justification that is too short,
// an unknown pass name, and an attempt to suppress lock-order (which is a
// whole-program property and cannot be waved through at one edge).
#include "fixture_stubs.h"

unsigned long Tally(const TupleSet& tuples) {
  unsigned long total = 0;
  // NOLINT-ANALYZER(poll-coverage): short
  for (const auto& t : tuples) {
    total += t.size();
  }
  // NOLINT-ANALYZER(made-up-pass): this pass identifier does not exist
  total += 1;
  // NOLINT-ANALYZER(lock-order): trying to hide an acquisition-order cycle
  total += 2;
  return total;
}
