// Must-flag: lock-order, through a call. Neither function nests two scoped
// lockers syntactically: Flush holds stats_mu_ while calling a helper that
// takes entries_mu_, Refill does the reverse. Only the interprocedural
// expansion (held -> acquires*(callee)) sees the cycle.
#include "fixture_stubs.h"

class Cache {
 public:
  void Flush() {
    MutexLock stats(&stats_mu_);
    DropEntries();
  }

  void Refill() {
    MutexLock entries(&entries_mu_);
    BumpStats();
  }

  void DropEntries() {
    MutexLock entries(&entries_mu_);
    entries_ = 0;
  }

  void BumpStats() {
    MutexLock stats(&stats_mu_);
    hits_ += 1;
  }

 private:
  Mutex stats_mu_;
  Mutex entries_mu_;
  int entries_ = 0;
  int hits_ = 0;
};
