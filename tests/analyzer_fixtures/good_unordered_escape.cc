// Must-pass: unordered-escape. Each site is either provably
// order-insensitive (commutative accumulation, inserts into unordered
// containers) and needs no comment at all, or its ordered sink is sorted
// before escaping — including the `// det: sorted` ranked-output idiom.
#include "fixture_stubs.h"

unsigned long CountAll(const TupleSet& tuples) {
  unsigned long total = 0;
  for (const auto& t : tuples) {
    total += t.size();
  }
  return total;
}

TupleSet Dedup(const TupleSet& tuples) {
  // gov: bounded - fixture-only copy, at most one entry per input tuple
  TupleSet out;
  for (const auto& t : tuples) {
    out.insert(t);
  }
  return out;
}

std::vector<ValueId> CollectSorted(const TupleSet& tuples) {
  std::vector<ValueId> out;
  for (const auto& t : tuples) {
    out.push_back(t[0]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PrintRanked(std::ostream& os, const TupleSet& tuples) {
  std::vector<ValueId> ranked;
  // det: sorted - ranked is sorted below before any output is produced
  for (const auto& t : tuples) {
    ranked.push_back(t[0]);
  }
  std::sort(ranked.begin(), ranked.end());
  for (ValueId v : ranked) {
    os << static_cast<int>(v);
  }
}
