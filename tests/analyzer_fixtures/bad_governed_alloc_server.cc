// Must-flag: governed-alloc, the server-side aliases. A JobTable and an
// AnswerBuffer both grow with client traffic (jobs admitted, answers
// streamed), so declarations without a `// gov:` classification are
// findings exactly like an unmarked TupleSet.
#include "fixture_stubs.h"

struct JobRegistry {
  JobTable jobs_;
  int next_id_ = 1;
};

unsigned long BufferAnswers() {
  AnswerBuffer answers;
  JobTable jobs;
  return answers.size() + jobs.size();
}
