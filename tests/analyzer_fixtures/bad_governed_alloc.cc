// Must-flag: governed-alloc, six ways the regex linter structurally
// misses: the TupleSet/ReachMap aliases, an `auto` deduced to TupleSet
// (caught through the IdTupleHash hasher evidence), an unordered_map keyed
// by tuples, a nested row-id matrix, and an unclassified field.
#include "fixture_stubs.h"

TupleSet MakeResult();

unsigned long Accumulate() {
  TupleSet seen;
  auto merged = MakeResult();
  std::vector<std::vector<RowId>> postings;
  ReachMap forward;
  std::unordered_map<std::vector<ValueId>, int, IdTupleHash> memo;
  postings.reserve(4);
  return seen.size() + merged.size() + postings.size() + forward.size() +
         memo.size();
}

struct CacheShard {
  TupleSet tuples_;
  int generation_ = 0;
};
