// Hermetic mock of the std:: and FastQRE surfaces qre-analyzer matches on,
// so the self-test corpus parses with no system headers (the CI runner's
// libstdc++ version must not change what the fixtures exercise). Only the
// shapes the four passes inspect are modeled: container names and template
// arguments, begin/end for range-for, the annotated mutex wrappers, the
// poll predicates, and RunMorsels. Bodies are intentionally absent — the
// analyzer never links or runs fixture code.
#pragma once

using RowId = unsigned int;
using ValueId = unsigned int;

inline constexpr unsigned long kInterruptPollMask = 0xfff;

namespace std {

template <class T>
struct hash {
  unsigned long operator()(const T&) const;
};
template <class T>
struct equal_to {
  bool operator()(const T&, const T&) const;
};
template <class T>
struct allocator {};

template <class T, class A = allocator<T>>
class vector {
 public:
  void push_back(const T&);
  void emplace_back(const T&);
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  unsigned long size() const;
  bool empty() const;
  void reserve(unsigned long);
  T& operator[](unsigned long);
  const T& operator[](unsigned long) const;
};

template <class K, class H = hash<K>, class E = equal_to<K>,
          class A = allocator<K>>
class unordered_set {
 public:
  struct iterator {
    const K& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
  void insert(const K&);
  unsigned long count(const K&) const;
  unsigned long size() const;
};

template <class K, class V, class H = hash<K>, class E = equal_to<K>,
          class A = allocator<K>>
class unordered_map {
 public:
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    const value_type& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
  V& operator[](const K&);
  unsigned long count(const K&) const;
  unsigned long size() const;
};

template <class K>
struct less {
  bool operator()(const K&, const K&) const;
};

template <class K, class V, class Cmp = less<K>, class A = allocator<K>>
class map {
 public:
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    const value_type& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
  V& operator[](const K&);
  unsigned long count(const K&) const;
  unsigned long size() const;
};

template <class C>
class basic_string {
 public:
  basic_string();
  basic_string(const C*);
  basic_string& operator+=(const C*);
  unsigned long size() const;
};
using string = basic_string<char>;

template <class C>
class basic_ostream {
 public:
  basic_ostream& operator<<(int);
  basic_ostream& operator<<(const C*);
};
using ostream = basic_ostream<char>;

template <class It>
void sort(It, It);
template <class It, class Cmp>
void sort(It, It, Cmp);

}  // namespace std

// FastQRE-shaped types (see src/engine/compare.h, src/common/).
struct IdTupleHash {
  unsigned long operator()(const std::vector<ValueId>&) const;
};
using TupleSet = std::unordered_set<std::vector<ValueId>, IdTupleHash>;
using ReachMap = std::unordered_map<ValueId, std::vector<ValueId>>;

// Server-shaped aliases (see src/server/job_manager.h). The alias name is
// the classification evidence — the analyzer flags any JobTable /
// AnswerBuffer declaration missing a `// gov:` marker.
struct WireAnswer {
  int index;
  bool found;
};
struct ServerJob {};
using AnswerBuffer = std::vector<WireAnswer>;
using JobTable = std::map<unsigned long, ServerJob*>;

class Mutex {
 public:
  void Lock();
  void Unlock();
};
class SharedMutex {
 public:
  void Lock();
  void Unlock();
  void LockShared();
  void UnlockShared();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
class ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu);
  ~ReaderMutexLock();
};
class WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu);
  ~WriterMutexLock();
};

struct RunControl {
  bool ShouldStop() const;
};

template <class Fn>
inline void RunMorsels(void* pool, int extra_workers,
                       unsigned long num_morsels, Fn fn) {
  (void)pool;
  (void)extra_workers;
  fn(0ul, num_morsels);
}
