// Must-flag: lock-order. The injected A->B / B->A inversion: Credit takes
// accounts_mu_ then audit_mu_, Audit takes them in the opposite order, so
// the merged acquisition graph has the 2-cycle
//   Ledger::accounts_mu_ -> Ledger::audit_mu_ -> Ledger::accounts_mu_.
#include "fixture_stubs.h"

class Ledger {
 public:
  void Credit() {
    MutexLock accounts(&accounts_mu_);
    MutexLock audit(&audit_mu_);
    balance_ += 1;
  }

  void Audit() {
    MutexLock audit(&audit_mu_);
    MutexLock accounts(&accounts_mu_);
    balance_ -= 1;
  }

 private:
  Mutex accounts_mu_;
  Mutex audit_mu_;
  int balance_ = 0;
};
