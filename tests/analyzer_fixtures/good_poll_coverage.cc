// Must-pass: poll-coverage. One data-scaled loop per legitimate coverage
// story: the masked-counter idiom, a callback stop predicate, a helper that
// polls (found by the call-graph fixpoint), a morsel-bounded body, an
// input-bounded extent classified with `// poll: bounded`, and an explicit
// suppression.
#include "fixture_stubs.h"

unsigned long SumMasked(const TupleSet& tuples, const RunControl& rc) {
  unsigned long total = 0;
  unsigned long seen = 0;
  for (const auto& t : tuples) {
    if ((++seen & kInterruptPollMask) == 0 && rc.ShouldStop()) break;
    total += t.size();
  }
  return total;
}

unsigned long SumInterruptible(const TupleSet& tuples) {
  auto interrupt = [] { return false; };
  unsigned long total = 0;
  for (const auto& t : tuples) {
    if (interrupt()) break;
    total += t.size();
  }
  return total;
}

inline bool PollOnce(unsigned long seen, const RunControl& rc) {
  return (seen & kInterruptPollMask) == 0 && rc.ShouldStop();
}

unsigned long SumViaHelper(const TupleSet& tuples, const RunControl& rc) {
  unsigned long total = 0;
  unsigned long seen = 0;
  // det: order-insensitive - total is a commutative sum; PollOnce only reads
  for (const auto& t : tuples) {
    if (PollOnce(++seen, rc)) break;
    total += t.size();
  }
  return total;
}

unsigned long SumMorsels(unsigned long num_morsels) {
  unsigned long grand = 0;
  RunMorsels(nullptr, 3, num_morsels,
             [&](unsigned long begin, unsigned long end) {
               for (unsigned long m = begin; m < end; ++m) {
                 for (RowId r = 0; r < 64; ++r) {
                   grand += r;
                 }
               }
             });
  return grand;
}

unsigned long SumColumns(const TupleSet& schema_columns) {
  unsigned long total = 0;
  // poll: bounded - iterates the schema-sized column set, not data rows
  for (const auto& t : schema_columns) {
    total += t.size();
  }
  return total;
}

unsigned long SumSuppressed(const TupleSet& tuples) {
  unsigned long total = 0;
  // NOLINT-ANALYZER(poll-coverage): fixture-only helper with caller-bounded input
  for (const auto& t : tuples) {
    total += t.size();
  }
  return total;
}
