// Determinism tests for the parallel validation pool: Reverse() must return
// byte-identical answers for any validation_threads setting (the rank
// barrier of DESIGN.md §8), and the statistics must stay internally
// consistent when candidates are cancelled mid-flight. Also unit-tests the
// common threading primitives the pool is built from.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

// Stats invariants that must hold for every run, serial or parallel.
void ExpectConsistentStats(const QreStats& s, const std::string& context) {
  EXPECT_LE(s.candidates_validated + s.candidates_cancelled,
            s.candidates_generated)
      << context;
  EXPECT_LE(s.candidates_dismissed_probe, s.candidates_validated) << context;
  EXPECT_LE(s.candidates_dismissed_walk, s.candidates_validated) << context;
  EXPECT_LE(s.probe_rows + s.coherence_rows + s.alltuple_rows + s.fullscan_rows,
            s.validation_rows)
      << context;
}

class ParallelQreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
  }

  // Runs Reverse() with each thread count and asserts the answers match the
  // serial one field-for-field.
  void ExpectThreadCountInvariant(const Table& rout, QreOptions base,
                                  const std::string& name) {
    base.validation_threads = 1;
    FastQre serial(&db_, base);
    QreAnswer reference = serial.Reverse(rout).ValueOrDie();
    ExpectConsistentStats(reference.stats, name + " serial");

    for (int threads : {2, 8}) {
      QreOptions opts = base;
      opts.validation_threads = threads;
      FastQre parallel(&db_, opts);
      QreAnswer got = parallel.Reverse(rout).ValueOrDie();
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      EXPECT_EQ(got.found, reference.found);
      EXPECT_EQ(got.sql, reference.sql);
      EXPECT_EQ(got.failure_reason, reference.failure_reason);
      EXPECT_EQ(got.num_instances, reference.num_instances);
      EXPECT_EQ(got.num_joins, reference.num_joins);
      ExpectConsistentStats(got.stats, name);
    }
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(ParallelQreTest, LadderAnswersIdenticalAcrossThreadCounts) {
  // The full complexity ladder, exact variant — including the paper's
  // cyclic self-join Queries 2 and 1 (L09/L10).
  for (const auto& wq : workload_) {
    ExpectThreadCountInvariant(wq.rout, QreOptions(), wq.name);
  }
}

TEST_F(ParallelQreTest, SupersetVariantIdenticalAcrossThreadCounts) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  for (int i : {0, 2, 4, 8}) {
    ExpectThreadCountInvariant(workload_[i].rout, opts, workload_[i].name);
  }
}

TEST_F(ParallelQreTest, AblationConfigsStayDeterministic) {
  // Determinism must not depend on the pruning machinery being on: with
  // feedback off the composer emits strictly more candidates, with probing
  // off the per-candidate work changes shape — the rank barrier alone must
  // keep answers identical.
  for (auto tweak : {0, 1, 2}) {
    QreOptions opts;
    if (tweak == 0) opts.use_feedback_pruning = false;
    if (tweak == 1) opts.use_probing = false;
    if (tweak == 2) opts.use_indirect_coherence = false;
    ExpectThreadCountInvariant(workload_[5].rout, opts,
                               "tweak" + std::to_string(tweak));
  }
}

TEST_F(ParallelQreTest, RandomCpjWorkloadsIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {7u, 11u, 23u}) {
    Database db = BuildRandomDb({.seed = seed, .num_tables = 4}).ValueOrDie();
    Rng rng(seed * 1000 + 1);
    auto wq = RandomCpjQuery(db, &rng, RandomQueryOptions{});
    if (!wq.ok()) continue;  // this seed produced no usable query

    QreOptions base;
    FastQre serial(&db, base);
    QreAnswer reference = serial.Reverse(wq->rout).ValueOrDie();
    for (int threads : {2, 8}) {
      QreOptions opts;
      opts.validation_threads = threads;
      FastQre parallel(&db, opts);
      QreAnswer got = parallel.Reverse(wq->rout).ValueOrDie();
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(got.found, reference.found);
      EXPECT_EQ(got.sql, reference.sql);
      EXPECT_EQ(got.failure_reason, reference.failure_reason);
      ExpectConsistentStats(got.stats, "random seed");
    }
  }
}

TEST_F(ParallelQreTest, ReverseAllEnumeratesIdenticalAnswerLists) {
  // The rank barrier must also hold for multi-answer enumeration: the k-th
  // answer is the k-th generating candidate in rank order.
  FastQre serial(&db_, QreOptions());
  auto reference = serial.ReverseAll(workload_[3].rout, 3).ValueOrDie();
  for (int threads : {2, 8}) {
    QreOptions opts;
    opts.validation_threads = threads;
    FastQre parallel(&db_, opts);
    auto got = parallel.ReverseAll(workload_[3].rout, 3).ValueOrDie();
    ASSERT_EQ(got.size(), reference.size()) << "threads=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].found, reference[i].found) << i;
      EXPECT_EQ(got[i].sql, reference[i].sql) << i;
    }
  }
}

TEST_F(ParallelQreTest, ParallelAnswerStillRegenerates) {
  QreOptions opts;
  opts.validation_threads = 4;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[9].rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table regen = ExecuteToTable(db_, a.query, "regen").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload_[9].rout))
      << a.sql;
}

TEST_F(ParallelQreTest, TraceIsRankOrderedAndMarksCancellations) {
  QreOptions opts;
  opts.validation_threads = 8;
  opts.collect_trace = true;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[7].rout).ValueOrDie();
  ASSERT_TRUE(a.found);
  // Within each mapping the candidates appear in rank order (dc is
  // non-decreasing per mapping is not guaranteed across pool policy, but
  // mapping indexes must be non-decreasing and the generating entry must
  // exist exactly once before any "cancelled" entries of its mapping).
  int last_mapping = -1;
  for (const auto& c : a.trace.candidates) {
    EXPECT_GE(c.mapping_index, last_mapping);
    last_mapping = std::max(last_mapping, c.mapping_index);
  }
  size_t generating = 0;
  for (const auto& c : a.trace.candidates) {
    if (c.outcome == "generating") ++generating;
  }
  EXPECT_GE(generating, 1u);
}

TEST_F(ParallelQreTest, WalkCacheDeterminismMatrix) {
  // DESIGN.md §9: walk substitution must not change accepted answers. Every
  // (cache budget, thread count) combination must reproduce the serial
  // cache-off answer byte-for-byte — including a pathologically tiny budget
  // that keeps evicting and re-admitting relations mid-search.
  for (int i : {8, 9}) {  // L09/L10: the cyclic, walk-heavy ladder entries
    QreOptions off;
    off.walk_cache_budget_bytes = 0;
    FastQre reference_engine(&db_, off);
    QreAnswer reference = reference_engine.Reverse(workload_[i].rout).ValueOrDie();

    for (uint64_t budget : {uint64_t{4} << 10, uint64_t{64} << 20}) {
      for (int threads : {1, 8}) {
        QreOptions opts;
        opts.walk_cache_budget_bytes = budget;
        opts.walk_cache_admission = 0;  // maximal cache involvement
        opts.validation_threads = threads;
        FastQre engine(&db_, opts);
        QreAnswer got = engine.Reverse(workload_[i].rout).ValueOrDie();
        SCOPED_TRACE(workload_[i].name + " budget=" + std::to_string(budget) +
                     " threads=" + std::to_string(threads));
        EXPECT_EQ(got.found, reference.found);
        EXPECT_EQ(got.sql, reference.sql);
        EXPECT_EQ(got.failure_reason, reference.failure_reason);
        ExpectConsistentStats(got.stats, "walk-cache matrix");
      }
    }
  }
}

TEST_F(ParallelQreTest, SubplanCacheDeterminismMatrix) {
  // DESIGN.md §13: subplan memoization and SIP filtering must not change
  // accepted answers. Every (cache budget, thread count) combination —
  // including a pathologically tiny budget that keeps evicting mid-convoy —
  // must reproduce the both-off serial answer byte-for-byte.
  for (int i : {8, 9}) {  // L09/L10: the convoy-heavy cyclic ladder entries
    QreOptions off;
    off.use_sip = false;
    off.subplan_cache_budget_bytes = 0;
    FastQre reference_engine(&db_, off);
    QreAnswer reference =
        reference_engine.Reverse(workload_[i].rout).ValueOrDie();

    for (uint64_t budget : {uint64_t{4} << 10, uint64_t{64} << 20}) {
      for (int threads : {1, 8}) {
        QreOptions opts;
        opts.use_sip = true;
        opts.subplan_cache_budget_bytes = budget;
        opts.subplan_cache_admission = 0;  // maximal cache involvement
        opts.validation_threads = threads;
        FastQre engine(&db_, opts);
        QreAnswer got = engine.Reverse(workload_[i].rout).ValueOrDie();
        SCOPED_TRACE(workload_[i].name + " budget=" + std::to_string(budget) +
                     " threads=" + std::to_string(threads));
        EXPECT_EQ(got.found, reference.found);
        EXPECT_EQ(got.sql, reference.sql);
        EXPECT_EQ(got.failure_reason, reference.failure_reason);
        ExpectConsistentStats(got.stats, "subplan-cache matrix");
      }
    }
  }
}

TEST_F(ParallelQreTest, IntraCandidateDeterminismMatrix) {
  // DESIGN.md §12: morsel-driven intra-candidate execution must not change
  // answers. Every (intra threads, validation threads, walk-cache budget,
  // kernel) combination must reproduce the all-defaults serial answer
  // byte-for-byte — a tiny morsel size and threshold force the morsel path
  // onto every candidate.
  for (int i : {8, 9}) {  // L09/L10: the walk-heavy cyclic ladder entries
    FastQre reference_engine(&db_, QreOptions());
    QreAnswer reference =
        reference_engine.Reverse(workload_[i].rout).ValueOrDie();

    for (int intra : {1, 4}) {
      for (int threads : {1, 8}) {
        for (uint64_t budget : {uint64_t{4} << 10, uint64_t{64} << 20}) {
          for (bool batch : {true, false}) {
            QreOptions opts;
            opts.intra_candidate_threads = intra;
            opts.morsel_size = 7;
            opts.intra_row_threshold = 1;
            opts.use_batched_probes = batch;
            opts.validation_threads = threads;
            opts.walk_cache_budget_bytes = budget;
            opts.walk_cache_admission = 0;
            FastQre engine(&db_, opts);
            QreAnswer got = engine.Reverse(workload_[i].rout).ValueOrDie();
            SCOPED_TRACE(workload_[i].name + " intra=" + std::to_string(intra) +
                         " threads=" + std::to_string(threads) + " budget=" +
                         std::to_string(budget) + " batch=" +
                         std::to_string(batch));
            EXPECT_EQ(got.found, reference.found);
            EXPECT_EQ(got.sql, reference.sql);
            EXPECT_EQ(got.failure_reason, reference.failure_reason);
            ExpectConsistentStats(got.stats, "intra matrix");
          }
        }
      }
    }
  }
}

TEST_F(ParallelQreTest, MorselWorkerCancelKeepsProvedAnswers) {
  // An injected cancel firing inside a morsel worker must behave exactly
  // like an external Cancel(): the merge never deadlocks, answers already
  // proved are returned, and the truncated tail says "cancelled".
  QreOptions opts;
  opts.fault_spec = "morsel-worker=cancel@4";
  opts.intra_candidate_threads = 4;
  opts.morsel_size = 4;
  opts.intra_row_threshold = 1;
  FastQre engine(&db_, opts);
  auto answers = engine.ReverseAll(workload_[3].rout, 3).ValueOrDie();
  ASSERT_FALSE(answers.empty());
  for (size_t k = 0; k < answers.size(); ++k) {
    if (answers[k].found) {
      Table regen = ExecuteToTable(db_, answers[k].query, "regen").ValueOrDie();
      EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload_[3].rout))
          << answers[k].sql;
    } else {
      EXPECT_EQ(k, answers.size() - 1) << "unfound entry not last";
      EXPECT_EQ(answers[k].failure_reason, "cancelled");
      EXPECT_TRUE(answers[k].stats.cancelled);
    }
  }
}

TEST_F(ParallelQreTest, MorselWorkerAllocFailDismissesCandidatesOnly) {
  // An injected alloc-fail at the morsel-worker site is candidate-local: the
  // affected candidate is dismissed (kError), the search carries on and ends
  // cleanly — never as a whole-search memory abort, never deadlocked.
  QreOptions opts;
  opts.fault_spec = "morsel-worker=alloc-fail@2";
  opts.intra_candidate_threads = 4;
  opts.morsel_size = 4;
  opts.intra_row_threshold = 1;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[3].rout).ValueOrDie();
  EXPECT_NE(a.failure_reason, "memory budget exceeded");
  ExpectConsistentStats(a.stats, "morsel alloc-fail");
  if (a.found) {
    Table regen = ExecuteToTable(db_, a.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload_[3].rout));
  }
}

TEST_F(ParallelQreTest, MorselWorkerDelayChangesNothing) {
  // A delay widening the morsel race windows must leave the answer
  // byte-identical (the sanitizer jobs run this with TSan).
  FastQre reference_engine(&db_, QreOptions());
  QreAnswer reference =
      reference_engine.Reverse(workload_[8].rout).ValueOrDie();
  QreOptions opts;
  opts.fault_spec = "morsel-worker=delay@1";
  opts.intra_candidate_threads = 4;
  opts.morsel_size = 4;
  opts.intra_row_threshold = 1;
  FastQre engine(&db_, opts);
  QreAnswer got = engine.Reverse(workload_[8].rout).ValueOrDie();
  EXPECT_EQ(got.found, reference.found);
  EXPECT_EQ(got.sql, reference.sql);
  EXPECT_EQ(got.failure_reason, reference.failure_reason);
}

TEST_F(ParallelQreTest, ZeroAndNegativeThreadsBehaveAsSerial) {
  for (int threads : {0, -3}) {
    QreOptions opts;
    opts.validation_threads = threads;
    FastQre engine(&db_, opts);
    QreAnswer a = engine.Reverse(workload_[1].rout).ValueOrDie();
    EXPECT_TRUE(a.found);
  }
}

TEST_F(ParallelQreTest, ExpiredBudgetFailsHonestlyInParallel) {
  QreOptions opts;
  opts.validation_threads = 4;
  opts.time_budget_seconds = 1e-9;  // expires immediately
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[9].rout).ValueOrDie();
  EXPECT_FALSE(a.found);
  EXPECT_EQ(a.failure_reason, "time budget exceeded");
}

// ---- Threading primitive unit tests ----------------------------------------

TEST(BoundedQueueTest, FifoThroughManyProducersAndConsumers) {
  BoundedQueue<int> q(4);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        sum += v;
        ++count;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, CloseUnblocksProducersAndDrainsConsumers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(42));
  std::thread blocked([&] { EXPECT_FALSE(q.Push(43)); });  // queue is full
  q.Close();
  blocked.join();
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // buffered item still drains after Close
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(q.Pop(&v));
}

TEST(RunMorselsTest, RunsEveryMorselExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  RunMorsels(&pool, 3, counts.size(), [&](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(RunMorselsTest, NullPoolAndZeroMorselsRunInline) {
  std::vector<int> counts(50, 0);
  RunMorsels(nullptr, 4, counts.size(), [&](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 1) << i;  // serial fallback: in order, once each
  }
  bool called = false;
  RunMorsels(nullptr, 4, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(RunMorselsTest, ConcurrentBatchesOnSharedPoolBothComplete) {
  // Two candidates sharing one single-threaded pool: each batch completes
  // because the dispatching thread drains its own counter — pool capacity
  // can delay helpers but never deadlock a batch (DESIGN.md §12).
  ThreadPool pool(1);
  std::atomic<int> total{0};
  std::thread t1([&] { RunMorsels(&pool, 1, 64, [&](size_t) { ++total; }); });
  std::thread t2([&] { RunMorsels(&pool, 1, 64, [&](size_t) { ++total; }); });
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 128);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
  // The pool stays usable after Wait().
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 101);
}

}  // namespace
}  // namespace fastqre
