// End-to-end smoke tests: the toy database of Example 2.2 and the TPC-H
// running example (Queries 1 and 2) round-trip through FastQRE.
#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

// The toy database D_toy of Example 2.2 / Figure 4.
Database BuildToyDb() {
  Database db;
  TableId r1 = db.AddTable("R1").ValueOrDie();
  Table& t1 = db.table(r1);
  EXPECT_TRUE(t1.AddColumn("A", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("B", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("C", ValueType::kInt64).ok());
  // A is the pk; (C, B) is the coherent pair w.r.t. (X, Y) of R_out.
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{10}), Value(int64_t{2}), Value(int64_t{1})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{11}), Value(int64_t{4}), Value(int64_t{3})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{12}), Value(int64_t{6}), Value(int64_t{5})}).ok());

  TableId r2 = db.AddTable("R2").ValueOrDie();
  Table& t2 = db.table(r2);
  EXPECT_TRUE(t2.AddColumn("D", ValueType::kInt64).ok());
  EXPECT_TRUE(t2.AddColumn("E", ValueType::kString).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{10}), Value("a7")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{11}), Value("a2")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{12}), Value("a1")}).ok());

  TableId r3 = db.AddTable("R3").ValueOrDie();
  Table& t3 = db.table(r3);
  EXPECT_TRUE(t3.AddColumn("F", ValueType::kInt64).ok());
  EXPECT_TRUE(t3.AddColumn("G", ValueType::kString).ok());
  EXPECT_TRUE(t3.AppendRow({Value(int64_t{10}), Value("b3")}).ok());
  EXPECT_TRUE(t3.AppendRow({Value(int64_t{11}), Value("b5")}).ok());

  EXPECT_TRUE(db.AddForeignKey("R2", "D", "R1", "A").ok());
  EXPECT_TRUE(db.AddForeignKey("R3", "F", "R1", "A").ok());
  return db;
}

TEST(Smoke, ToyExampleRoundTrip) {
  Database db = BuildToyDb();
  // Q_gen: SELECT R1.C, R1.B, R2.E, R3.G FROM R1, R2, R3
  //        WHERE R2.D = R1.A AND R3.F = R1.A
  PJQuery q;
  InstanceId i1 = q.AddInstance(0);
  InstanceId i2 = q.AddInstance(1);
  InstanceId i3 = q.AddInstance(2);
  q.AddJoin(i2, 0, i1, 0);
  q.AddJoin(i3, 0, i1, 0);
  q.AddProjection(i1, 2);  // C as X
  q.AddProjection(i1, 1);  // B as Y
  q.AddProjection(i2, 1);  // E as Z
  q.AddProjection(i3, 1);  // G as W
  Table rout = ExecuteToTable(db, q, "rout", {"X", "Y", "Z", "W"}).ValueOrDie();
  ASSERT_GT(rout.num_rows(), 0u);

  FastQre engine(&db);
  QreAnswer answer = engine.Reverse(rout).ValueOrDie();
  ASSERT_TRUE(answer.found) << answer.failure_reason;
  // The found query must regenerate R_out exactly.
  Table regen = ExecuteToTable(db, answer.query, "regen").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(rout)) << answer.sql;
}

TEST(Smoke, TpchLadderRoundTrip) {
  Database db = BuildTpch({.scale_factor = 0.0005, .seed = 1}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  ASSERT_EQ(workload.size(), 10u);
  for (const auto& wq : workload) {
    SCOPED_TRACE(wq.name + ": " + wq.description);
    FastQre engine(&db);
    QreAnswer answer = engine.Reverse(wq.rout).ValueOrDie();
    ASSERT_TRUE(answer.found) << answer.failure_reason << "\n"
                              << answer.stats.ToString();
    Table regen = ExecuteToTable(db, answer.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(wq.rout)) << answer.sql;
  }
}

}  // namespace
}  // namespace fastqre
