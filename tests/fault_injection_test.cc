// End-to-end robustness tests for the governed search path (DESIGN.md §11):
// every named fault-injection site, under every applicable fault kind, must
// exit cleanly — answers already found are kept, the truncated tail carries
// an honest failure_reason, no thread leaks or deadlocks (the suite runs
// under ASan/TSan in CI), and retried or merely-delayed runs stay
// byte-identical to the fault-free baseline.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/resource_governor.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/fastqre.h"
#include "qre/mapping.h"

namespace fastqre {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  // A fresh database per engine run: the lazy index/pattern caches build
  // exactly once per Database, so reusing one would let the index-build and
  // pattern-build fault sites go silent on the second engine.
  static Database FreshDb() {
    return BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  }

  // Reverses workload entry `index` on a fresh database with `opts`.
  static QreAnswer Run(size_t index, QreOptions opts) {
    Database db = FreshDb();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    FastQre engine(&db, opts);
    return engine.Reverse(workload[index].rout).ValueOrDie();
  }

  // Like Run() but enumerates: with a high limit, a cancel injected at any
  // point must surface as an unfound tail entry — even when it lands while
  // the winning candidate is validating (the answer is still accepted; only
  // the enumeration of *further* answers is truncated).
  static std::vector<QreAnswer> RunAll(size_t index, QreOptions opts) {
    Database db = FreshDb();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    FastQre engine(&db, opts);
    return engine.ReverseAll(workload[index].rout, 100).ValueOrDie();
  }
};

// ---- Malformed specs --------------------------------------------------------

TEST_F(FaultInjectionTest, MalformedSpecIsReportedNotIgnored) {
  Database db = FreshDb();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  for (const char* spec : {"bogus", "site=explode", "site=cancel@0"}) {
    QreOptions opts;
    opts.fault_spec = spec;
    FastQre engine(&db, opts);
    auto result = engine.Reverse(workload[0].rout);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << spec;
  }
}

// ---- Injected cancellation at every site ------------------------------------

TEST_F(FaultInjectionTest, CancelAtEachSiteExitsCleanlyAsCancelled) {
  struct Case {
    const char* site;
    size_t workload_index;
    bool disable_progressive;  // route validation through the block executor
    int admission;             // walk-cache admission threshold
  };
  const std::vector<Case> cases = {
      {"index-build", 0, false, 2},
      {"pattern-build", 0, false, 2},
      {"mapping-frontier", 0, false, 2},
      // Multi-instance workload: the block executor only charges when a
      // join step materializes intermediates, so a single-table R_out
      // would never reach the site.
      {"block-buffer", 8, true, 2},
      {"walk-cache-build", 8, false, 0},  // L09: multi-instance, walk-heavy
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    QreOptions opts;
    opts.fault_spec = std::string(c.site) + "=cancel";
    opts.use_progressive_validation = !c.disable_progressive;
    // Probing bypasses the block executor entirely; turn it off whenever
    // the case routes through ExecuteBlock.
    opts.use_probing = !c.disable_progressive;
    opts.walk_cache_admission = c.admission;
    std::vector<QreAnswer> got = RunAll(c.workload_index, opts);
    ASSERT_GE(got.size(), 1u);
    const QreAnswer& tail = got.back();
    EXPECT_FALSE(tail.found);
    EXPECT_EQ(tail.failure_reason, "cancelled");
    EXPECT_TRUE(tail.stats.cancelled);
    EXPECT_GT(tail.stats.total_seconds, 0.0);
  }
}

TEST_F(FaultInjectionTest, CancelDuringCgmDiscoveryExitsCleanly) {
  // Pick a workload whose discovery actually reaches the apriori join (the
  // "cgm-discovery" site sits in front of each multi-column coherence
  // check); single-column reports never get there.
  Database db = FreshDb();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  int chosen = -1;
  for (size_t i = 0; i < workload.size(); ++i) {
    FastQre engine(&db, QreOptions());
    QreAnswer a = engine.Reverse(workload[i].rout).ValueOrDie();
    if (a.stats.cgm_candidates_checked > 0) {
      chosen = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(chosen, 0) << "no workload entry exercises the apriori join";

  QreOptions opts;
  opts.fault_spec = "cgm-discovery=cancel";
  QreAnswer a = Run(static_cast<size_t>(chosen), opts);
  EXPECT_FALSE(a.found);
  EXPECT_EQ(a.failure_reason, "cancelled");
  EXPECT_TRUE(a.stats.cancelled);
  // Discovery aborted before the mapping phase could start.
  EXPECT_EQ(a.stats.mappings_tried, 0u);
}

TEST_F(FaultInjectionTest, CancelInParallelWorkerJoinsCleanly) {
  // The cancel fires inside a validation worker; the pool must drain and
  // join without deadlocking on the rank barrier (TSan covers the races).
  for (uint64_t nth : {1u, 3u}) {
    QreOptions opts;
    opts.validation_threads = 8;
    opts.fault_spec = "parallel-worker=cancel@" + std::to_string(nth);
    std::vector<QreAnswer> got = RunAll(8, opts);
    SCOPED_TRACE("nth=" + std::to_string(nth));
    ASSERT_GE(got.size(), 1u);
    EXPECT_FALSE(got.back().found);
    EXPECT_EQ(got.back().failure_reason, "cancelled");
    EXPECT_TRUE(got.back().stats.cancelled);
  }
}

// ---- External cancellation --------------------------------------------------

TEST_F(FaultInjectionTest, ExternalCancelFromAnotherThreadIsClean) {
  Database db = FreshDb();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  QreOptions opts;
  opts.validation_threads = 4;
  // Slow the workers down so the cancel usually lands mid-search; whichever
  // side wins the race, the run must end cleanly.
  opts.fault_spec = "parallel-worker=delay";
  FastQre engine(&db, opts);
  std::thread canceller([&engine] { engine.Cancel(); });
  QreAnswer a = engine.Reverse(workload[8].rout).ValueOrDie();
  canceller.join();
  if (!a.found) {
    EXPECT_EQ(a.failure_reason, "cancelled");
    EXPECT_TRUE(a.stats.cancelled);
  }
  // Cancellation is sticky: the next call on the same engine stops at its
  // first poll.
  QreAnswer again = engine.Reverse(workload[0].rout).ValueOrDie();
  EXPECT_FALSE(again.found);
  EXPECT_EQ(again.failure_reason, "cancelled");
}

// ---- Injected allocation failure -------------------------------------------

TEST_F(FaultInjectionTest, AllocFailAtRequiredSitesSurfacesMemoryExhaustion) {
  for (const char* site : {"index-build", "pattern-build", "mapping-frontier"}) {
    SCOPED_TRACE(site);
    QreOptions opts;
    opts.fault_spec = std::string(site) + "=alloc-fail";
    QreAnswer a = Run(0, opts);
    EXPECT_FALSE(a.found);
    EXPECT_EQ(a.failure_reason, "memory budget exceeded");
    EXPECT_FALSE(a.stats.cancelled);
    EXPECT_GE(a.stats.degradation_events, 1u);
  }
}

TEST_F(FaultInjectionTest, AllocFailAtWalkCacheKeepsAnswersIdentical) {
  // Refusing a cache materialization only changes *where* join work happens
  // (DESIGN.md §9/§11): the answer must stay byte-identical to baseline.
  QreOptions base;
  base.walk_cache_admission = 0;
  QreAnswer reference = Run(8, base);
  ASSERT_TRUE(reference.found) << reference.failure_reason;

  for (int threads : {1, 8}) {
    QreOptions opts = base;
    opts.validation_threads = threads;
    opts.fault_spec = "walk-cache-build=alloc-fail";
    QreAnswer got = Run(8, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.sql, reference.sql);
    EXPECT_EQ(got.failure_reason, reference.failure_reason);
  }
}

TEST_F(FaultInjectionTest, AllocFailAtBlockBufferExitsCleanly) {
  // A refused block-buffer charge dismisses only the affected candidate
  // (kError); the search must either still conclude or fail honestly —
  // never crash or hang.
  QreOptions opts;
  opts.use_progressive_validation = false;
  opts.fault_spec = "block-buffer=alloc-fail";
  QreAnswer a = Run(0, opts);
  if (!a.found) {
    EXPECT_FALSE(a.failure_reason.empty());
  }
}

TEST_F(FaultInjectionTest, AllocFailAtSubplanCacheKeepsAnswersIdentical) {
  // Refusing a subplan-cache store only makes convoy candidates recompute
  // their join prefixes (DESIGN.md §13): the answer must stay byte-identical
  // to the fault-free baseline.
  QreOptions base;
  base.subplan_cache_admission = 0;  // store on first offer: maximal traffic
  QreAnswer reference = Run(9, base);
  ASSERT_TRUE(reference.found) << reference.failure_reason;

  for (int threads : {1, 8}) {
    QreOptions opts = base;
    opts.validation_threads = threads;
    opts.fault_spec = "subplan-build=alloc-fail";
    QreAnswer got = Run(9, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.sql, reference.sql);
    EXPECT_EQ(got.failure_reason, reference.failure_reason);
    // Every store was refused, so no hit can have been served.
    EXPECT_EQ(got.stats.subplan_cache_hits, 0u);
  }
}

TEST_F(FaultInjectionTest, CancelAtSubplanCacheSiteExitsCleanly) {
  QreOptions opts;
  opts.subplan_cache_admission = 0;
  opts.fault_spec = "subplan-build=cancel";
  std::vector<QreAnswer> got = RunAll(9, opts);
  ASSERT_GE(got.size(), 1u);
  EXPECT_FALSE(got.back().found);
  EXPECT_EQ(got.back().failure_reason, "cancelled");
  EXPECT_TRUE(got.back().stats.cancelled);
}

// ---- Delay injection: determinism under perturbed timing --------------------

TEST_F(FaultInjectionTest, DelaysNeverChangeTheAnswer) {
  QreAnswer reference = Run(8, QreOptions());
  ASSERT_TRUE(reference.found) << reference.failure_reason;
  for (int threads : {1, 8}) {
    QreOptions opts;
    opts.validation_threads = threads;
    opts.walk_cache_admission = 0;
    opts.fault_spec =
        "parallel-worker=delay@2,walk-cache-build=delay,index-build=delay";
    QreAnswer got = Run(8, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.sql, reference.sql);
  }
}

// ---- Retry determinism ------------------------------------------------------

TEST_F(FaultInjectionTest, RetryWithSameSpecIsByteIdentical) {
  QreOptions opts;
  opts.fault_spec = "mapping-frontier=cancel@40";
  QreAnswer first = Run(3, opts);
  QreAnswer second = Run(3, opts);
  EXPECT_EQ(first.found, second.found);
  EXPECT_EQ(first.sql, second.sql);
  EXPECT_EQ(first.failure_reason, second.failure_reason);
  EXPECT_EQ(first.stats.cancelled, second.stats.cancelled);
}

// ---- ReverseAll truncation semantics ----------------------------------------

TEST_F(FaultInjectionTest, ReverseAllKeepsFoundAnswersOnCancel) {
  Database db = FreshDb();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  auto baseline =
      FastQre(&db, QreOptions()).ReverseAll(workload[3].rout, 3).ValueOrDie();
  ASSERT_GE(baseline.size(), 1u);
  ASSERT_TRUE(baseline[0].found);

  // Cancel right after the first accepted answer: the answer survives and
  // the truncated tail says why enumeration stopped.
  QreOptions opts;
  opts.fault_spec = "answer-found=cancel@1";
  Database db2 = FreshDb();
  auto workload2 = StandardTpchWorkload(db2).ValueOrDie();
  FastQre engine(&db2, opts);
  auto got = engine.ReverseAll(workload2[3].rout, 3).ValueOrDie();
  ASSERT_GE(got.size(), 2u);
  EXPECT_TRUE(got[0].found);
  EXPECT_EQ(got[0].sql, baseline[0].sql);
  EXPECT_FALSE(got.back().found);
  EXPECT_EQ(got.back().failure_reason, "cancelled");
  EXPECT_TRUE(got.back().stats.cancelled);
}

// ---- Memory budgets ---------------------------------------------------------

TEST_F(FaultInjectionTest, GenerousBudgetIsByteIdenticalToUngoverned) {
  for (size_t index : {size_t{3}, size_t{8}}) {
    QreAnswer reference = Run(index, QreOptions());
    for (int threads : {1, 8}) {
      QreOptions opts;
      opts.memory_budget_bytes = 1ull << 30;  // configured but never reached
      opts.validation_threads = threads;
      QreAnswer got = Run(index, opts);
      SCOPED_TRACE("index=" + std::to_string(index) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(got.found, reference.found);
      EXPECT_EQ(got.sql, reference.sql);
      EXPECT_EQ(got.failure_reason, reference.failure_reason);
      EXPECT_GT(got.stats.peak_tracked_bytes, 0u);
      EXPECT_EQ(got.stats.degradation_events, 0u);
      EXPECT_FALSE(got.stats.cancelled);
      EXPECT_NE(got.stats.ToString().find("resource governor:"),
                std::string::npos);
    }
  }
}

TEST_F(FaultInjectionTest, TinyBudgetDegradesThenFailsHonestly) {
  QreOptions opts;
  opts.memory_budget_bytes = 4096;  // the first index build overflows this
  QreAnswer a = Run(0, opts);
  EXPECT_FALSE(a.found);
  EXPECT_EQ(a.failure_reason, "memory budget exceeded");
  EXPECT_GE(a.stats.degradation_events, 1u);
  EXPECT_GT(a.stats.peak_tracked_bytes, 4096u);
}

// ---- Deadline coverage per phase (regression) -------------------------------

TEST_F(FaultInjectionTest, DeadlineInterruptsCgmDiscovery) {
  // An already-expired deadline must abort discovery at its first poll —
  // before this audit, discovery always ran to completion and only the
  // mapping loop noticed the budget.
  QreOptions opts;
  opts.time_budget_seconds = 1e-9;
  QreAnswer a = Run(0, opts);
  EXPECT_FALSE(a.found);
  EXPECT_EQ(a.failure_reason, "time budget exceeded");
  EXPECT_EQ(a.stats.num_cgms, 0u);        // discovery itself was cut short
  EXPECT_EQ(a.stats.mappings_tried, 0u);  // and later phases never started
}

TEST_F(FaultInjectionTest, DeadlineInterruptsMappingEnumeration) {
  Database db = FreshDb();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  QreOptions options;
  QreStats stats;
  ColumnCover cover =
      ComputeColumnCover(db, workload[0].rout, options, &stats);
  ASSERT_FALSE(cover.HasEmptyCover());
  CgmSet cgms = DiscoverCgms(db, workload[0].rout, cover, options, &stats);

  RunControl run(1e-9, nullptr, nullptr);
  MappingEnumerator mappings(&db, &workload[0].rout, &cover, &cgms, &options,
                             [&run] { return run.ShouldStop(); });
  ColumnMapping m;
  // The frontier holds the root state, but the expired deadline stops the
  // best-first search at its very first poll.
  EXPECT_FALSE(mappings.Next(&m));
  EXPECT_EQ(run.cause(), StopCause::kDeadline);
}

}  // namespace
}  // namespace fastqre
