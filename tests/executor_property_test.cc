// Differential property test: the pipelined index-nested-loop executor must
// agree with a brute-force cross-product reference evaluator on random small
// queries over random small databases (joins, self-joins, same-instance
// filters, selections).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/randomdb.h"
#include "datagen/workload.h"
#include "engine/block_executor.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "engine/subplan_cache.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

// Reference semantics: enumerate every combination of one row per instance,
// keep combinations satisfying all joins and selections, project, dedupe.
TupleSet BruteForce(const Database& db, const PJQuery& q) {
  const size_t n = q.num_instances();
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = db.table(q.instance_table(i)).num_rows();
  }
  TupleSet out;
  std::vector<RowId> binding(n, 0);
  while (true) {
    bool ok = true;
    for (const auto& j : q.joins()) {
      ValueId va = db.table(q.instance_table(j.a)).column(j.col_a).at(binding[j.a]);
      ValueId vb = db.table(q.instance_table(j.b)).column(j.col_b).at(binding[j.b]);
      if (va != vb) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& s : q.selections()) {
        if (db.table(q.instance_table(s.instance)).column(s.column).at(
                binding[s.instance]) != s.value) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      std::vector<ValueId> tuple;
      tuple.reserve(q.projections().size());
      for (const auto& p : q.projections()) {
        tuple.push_back(
            db.table(q.instance_table(p.instance)).column(p.column).at(
                binding[p.instance]));
      }
      out.insert(std::move(tuple));
    }
    // Odometer increment.
    size_t d = 0;
    while (d < n && ++binding[d] == rows[d]) {
      binding[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return out;
}

class ExecutorDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorDifferential, AgreesWithBruteForce) {
  const uint64_t seed = GetParam();
  RandomDbOptions db_opts;
  db_opts.seed = seed;
  db_opts.num_tables = 3;
  db_opts.min_rows = 8;
  db_opts.max_rows = 25;
  db_opts.extra_fk_edges = static_cast<int>(seed % 2);
  Database db = BuildRandomDb(db_opts).ValueOrDie();

  Rng rng(seed * 1337 + 11);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2 + static_cast<int>(seed % 2);
  q_opts.num_projections = 2;
  q_opts.min_rout_rows = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto wq = RandomCpjQuery(db, &rng, q_opts);
    if (!wq.ok()) continue;
    TupleSet expected = BruteForce(db, wq->query);
    TupleSet actual = TableToTupleSet(
        ExecuteToTable(db, wq->query, "actual").ValueOrDie());
    ASSERT_EQ(actual, expected)
        << "seed " << seed << " trial " << trial << "\n"
        << wq->query.ToSql(db);
    // The block executor is a third independent implementation.
    TupleSet block = TableToTupleSet(
        ExecuteBlock(db, wq->query, "block").ValueOrDie());
    ASSERT_EQ(block, expected)
        << "seed " << seed << " trial " << trial << "\n"
        << wq->query.ToSql(db);
  }
}

TEST_P(ExecutorDifferential, AgreesWithBruteForceUnderSelections) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 2, .min_rows = 8,
                               .max_rows = 20})
                    .ValueOrDie();
  Rng rng(seed + 5);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  q_opts.min_rout_rows = 0;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok()) GTEST_SKIP();

  // Add a random selection binding one projection column to a value present
  // somewhere in the projected table.
  PJQuery q = wq->query;
  const auto& proj = q.projections()[0];
  const Column& col =
      db.table(q.instance_table(proj.instance)).column(proj.column);
  q.AddSelection(proj.instance, proj.column,
                 col.at(static_cast<RowId>(rng.Uniform(col.size()))));

  TupleSet expected = BruteForce(db, q);
  auto cursor = QueryCursor::Create(db, q).ValueOrDie();
  TupleSet actual;
  std::vector<ValueId> row;
  while (cursor->Next(&row)) actual.insert(row);
  // Note: `actual` may legitimately be empty — the selected value exists in
  // its column, but the join can eliminate every row carrying it.
  ASSERT_EQ(actual, expected) << "seed " << seed << "\n" << q.ToSql(db);
}

TEST_P(ExecutorDifferential, SameInstanceFilterAgrees) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 2, .min_rows = 10,
                               .max_rows = 20, .data_domain = 6})
                    .ValueOrDie();
  // Query: single instance of t1 with a same-instance equality between two
  // of its data columns (if it has two), projected on the key.
  const Table& t1 = db.table(1);
  if (t1.num_columns() < 4) GTEST_SKIP();  // key, fk, need 2 data columns
  PJQuery q;
  InstanceId i = q.AddInstance(1);
  ColumnId a = static_cast<ColumnId>(t1.num_columns() - 2);
  ColumnId b = static_cast<ColumnId>(t1.num_columns() - 1);
  q.AddJoin(i, a, i, b);
  q.AddProjection(i, 0);
  TupleSet expected = BruteForce(db, q);
  TupleSet actual =
      TableToTupleSet(ExecuteToTable(db, q, "actual").ValueOrDie());
  ASSERT_EQ(actual, expected) << "seed " << seed;
}

TEST_P(ExecutorDifferential, SipAndSubplanCacheAreSemanticsPreserving) {
  // DESIGN.md §13: SIP filters and subplan memoization may only skip work,
  // never change results. Every {use_sip} × {subplan cache} × {kernel}
  // configuration must emit a byte-identical relation (CSV compare: row
  // order included) and match the brute-force reference. The cache is
  // shared across all trials of a seed, so later trials really consume
  // prefixes stored by earlier ones (admission 0 stores on first offer).
  const uint64_t seed = GetParam();
  RandomDbOptions db_opts;
  db_opts.seed = seed;
  db_opts.num_tables = 3;
  db_opts.min_rows = 8;
  db_opts.max_rows = 25;
  db_opts.extra_fk_edges = static_cast<int>(seed % 2);
  Database db = BuildRandomDb(db_opts).ValueOrDie();

  SubplanCache cache(/*budget_bytes=*/64 << 20, /*admission=*/0);
  SubplanCache tiny_cache(/*budget_bytes=*/512, /*admission=*/0);
  Rng rng(seed * 4099 + 3);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2 + static_cast<int>(seed % 2);
  q_opts.num_projections = 2;
  q_opts.min_rout_rows = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto wq = RandomCpjQuery(db, &rng, q_opts);
    if (!wq.ok()) continue;
    const TupleSet expected = BruteForce(db, wq->query);
    ExecPolicy off;
    off.use_sip = false;
    const std::string baseline =
        TableToCsv(ExecuteBlock(db, wq->query, "block", {}, off).ValueOrDie());
    ASSERT_EQ(TableToTupleSet(
                  ExecuteBlock(db, wq->query, "block", {}, off).ValueOrDie()),
              expected)
        << "seed " << seed << " trial " << trial << "\n"
        << wq->query.ToSql(db);
    for (bool sip : {false, true}) {
      for (SubplanCache* memo : {static_cast<SubplanCache*>(nullptr), &cache,
                                 &tiny_cache}) {
        for (bool batch : {false, true}) {
          ExecPolicy p;
          p.use_sip = sip;
          p.subplan_cache = memo;
          p.batch_probes = batch;
          auto got = ExecuteBlock(db, wq->query, "block", {}, p);
          ASSERT_TRUE(got.ok()) << "seed " << seed << " trial " << trial;
          EXPECT_EQ(TableToCsv(*got), baseline)
              << "seed " << seed << " trial " << trial << " sip=" << sip
              << " memo=" << (memo == &cache ? "64M" : memo ? "512B" : "off")
              << " batch=" << batch << "\n"
              << wq->query.ToSql(db);
        }
      }
    }
    // The pipelined cursor honours the same policy bit: SIP on and off must
    // stream identical ordered rows.
    std::vector<std::vector<ValueId>> streams[2];
    for (int sip = 0; sip < 2; ++sip) {
      ExecPolicy p;
      p.use_sip = (sip == 1);
      auto cursor =
          QueryCursor::Create(db, wq->query, {}, {}, p).ValueOrDie();
      std::vector<ValueId> row;
      while (cursor->Next(&row)) streams[sip].push_back(row);
    }
    EXPECT_EQ(streams[0], streams[1])
        << "seed " << seed << " trial " << trial << "\n"
        << wq->query.ToSql(db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferential,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace fastqre
