// End-to-end invariants of the FastQRE pipeline beyond simple round trips:
// pruning must not lose answers, every enumerated answer must be generating,
// structural edge cases of R_out must work, and the L knob trades
// completeness for search-space size in the documented way.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

bool Regenerates(const Database& db, const QreAnswer& a, const Table& rout) {
  if (!a.found) return false;
  Table regen = ExecuteToTable(db, a.query, "regen").ValueOrDie();
  return TableToTupleSet(regen) == TableToTupleSet(rout);
}

class QreInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QreInvariants, FeedbackPruningNeverLosesAnswers) {
  // The dead-set argument (results shrink monotonically along the lattice)
  // implies pruning is lossless: with and without feedback, Reverse must
  // agree on solvability and both answers must regenerate R_out.
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 4}).ValueOrDie();
  Rng rng(seed * 3 + 1);
  auto wq = RandomCpjQuery(db, &rng, RandomQueryOptions{});
  if (!wq.ok()) GTEST_SKIP();

  QreOptions with, without;
  without.use_feedback_pruning = false;
  with.time_budget_seconds = without.time_budget_seconds = 60.0;
  QreAnswer a_with = FastQre(&db, with).Reverse(wq->rout).ValueOrDie();
  QreAnswer a_without = FastQre(&db, without).Reverse(wq->rout).ValueOrDie();
  ASSERT_EQ(a_with.found, a_without.found) << "seed " << seed;
  if (a_with.found) {
    EXPECT_TRUE(Regenerates(db, a_with, wq->rout)) << "seed " << seed;
    EXPECT_TRUE(Regenerates(db, a_without, wq->rout)) << "seed " << seed;
  }
}

TEST_P(QreInvariants, AllEnumeratedAnswersAreGenerating) {
  const uint64_t seed = GetParam();
  Database db = BuildTpch({.scale_factor = 0.001, .seed = seed}).ValueOrDie();
  Rng rng(seed + 17);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok()) GTEST_SKIP();

  QreOptions opts;
  opts.time_budget_seconds = 60.0;
  auto answers = FastQre(&db, opts).ReverseAll(wq->rout, 4).ValueOrDie();
  ASSERT_FALSE(answers.empty());
  std::set<std::string> sqls;
  for (const auto& a : answers) {
    ASSERT_TRUE(a.found) << "seed " << seed << ": " << a.failure_reason;
    EXPECT_TRUE(Regenerates(db, a, wq->rout)) << "seed " << seed << "\n"
                                              << a.sql;
    EXPECT_TRUE(sqls.insert(a.sql).second) << "duplicate: " << a.sql;
  }
}

TEST_P(QreInvariants, ExactAnswerIsAlsoSupersetValid) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 3}).ValueOrDie();
  Rng rng(seed * 7 + 5);
  auto wq = RandomCpjQuery(db, &rng, RandomQueryOptions{});
  if (!wq.ok()) GTEST_SKIP();
  QreOptions opts;
  opts.time_budget_seconds = 60.0;
  QreAnswer exact = FastQre(&db, opts).Reverse(wq->rout).ValueOrDie();
  if (!exact.found) GTEST_SKIP();
  Table result = ExecuteToTable(db, exact.query, "r").ValueOrDie();
  EXPECT_TRUE(IsSubsetOf(TableToTupleSet(wq->rout), TableToTupleSet(result)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QreInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------- structural edge cases -------------------------------------------

class QreEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  }
  Database db_;
};

TEST_F(QreEdgeCases, DuplicateProjectionColumns) {
  // R_out projects the same database column twice: the mapping machinery
  // must place the two identical output columns without merging them into
  // one 1-to-1 CGM slot.
  QueryBuilder b(&db_);
  InstanceId n = b.Instance("nation");
  b.Project(n, "n_name");
  b.Project(n, "n_name");
  Table rout =
      ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
  ASSERT_EQ(rout.num_columns(), 2u);
  QreAnswer a = FastQre(&db_).Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  EXPECT_TRUE(Regenerates(db_, a, rout)) << a.sql;
}

TEST_F(QreEdgeCases, SingleRowRout) {
  // One tuple of (supplier name, nation name): exact QRE on a 1-row table.
  // With so little evidence many queries generate supersets, but exact
  // equality still constrains heavily; whatever is found must regenerate.
  QueryBuilder b(&db_);
  InstanceId s = b.Instance("supplier");
  InstanceId n = b.Instance("nation");
  b.Join(s, "s_nationkey", n, "n_nationkey");
  b.Project(s, "s_name");
  b.Project(n, "n_name");
  b.Select(s, "s_suppkey", Value(int64_t{1}));
  Table rout =
      ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
  ASSERT_EQ(rout.num_rows(), 1u);
  // The selection is outside the PJ class, so exact QRE may legitimately
  // fail; superset QRE must succeed.
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  QreAnswer a = FastQre(&db_, opts).Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table result = ExecuteToTable(db_, a.query, "r").ValueOrDie();
  EXPECT_TRUE(IsSubsetOf(TableToTupleSet(rout), TableToTupleSet(result)));
}

TEST_F(QreEdgeCases, DoubleTypedColumns) {
  QueryBuilder b(&db_);
  InstanceId s = b.Instance("supplier");
  b.Project(s, "s_name");
  b.Project(s, "s_acctbal");
  Table rout =
      ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
  QreAnswer a = FastQre(&db_).Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  EXPECT_TRUE(Regenerates(db_, a, rout)) << a.sql;
}

TEST_F(QreEdgeCases, PermutedColumnOrder) {
  // The same data with columns in a different order is a different R_out;
  // both orders must resolve, with mappings matching their own order.
  for (bool swap : {false, true}) {
    QueryBuilder b(&db_);
    InstanceId s = b.Instance("supplier");
    InstanceId n = b.Instance("nation");
    b.Join(s, "s_nationkey", n, "n_nationkey");
    if (swap) {
      b.Project(n, "n_name");
      b.Project(s, "s_name");
    } else {
      b.Project(s, "s_name");
      b.Project(n, "n_name");
    }
    Table rout =
        ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
    QreAnswer a = FastQre(&db_).Reverse(rout).ValueOrDie();
    ASSERT_TRUE(a.found) << "swap=" << swap;
    EXPECT_TRUE(Regenerates(db_, a, rout)) << "swap=" << swap << "\n" << a.sql;
  }
}

TEST_F(QreEdgeCases, WholeTableIdentity) {
  // R_out = an entire table: the identity projection must be recovered as a
  // single-instance query.
  const Table& region = db_.table(*db_.FindTable("region"));
  Table rout("rout", db_.dictionary());
  for (size_t c = 0; c < region.num_columns(); ++c) {
    ASSERT_TRUE(
        rout.AddColumn(region.column(c).name(), region.column(c).type()).ok());
  }
  for (RowId r = 0; r < region.num_rows(); ++r) {
    rout.AppendRowIds(region.RowIds(r));
  }
  QreAnswer a = FastQre(&db_).Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  EXPECT_EQ(a.num_instances, 1u);
  EXPECT_TRUE(Regenerates(db_, a, rout)) << a.sql;
}

TEST_F(QreEdgeCases, WalkLengthKnobGovernsCompleteness) {
  // L05 (supplier-part pairs) has no direct supplier-part edge: connecting
  // the two projection instances needs the length-2 walk S-PS-P. With
  // max_walk_length = 1 the instances cannot be connected and the search
  // must fail honestly; with 2 it succeeds.
  auto workload = StandardTpchWorkload(db_).ValueOrDie();
  const auto& wq = workload[4];  // L05
  for (int L : {1, 2}) {
    QreOptions opts;
    opts.max_walk_length = L;
    opts.time_budget_seconds = 30.0;
    QreAnswer a = FastQre(&db_, opts).Reverse(wq.rout).ValueOrDie();
    if (L == 1) {
      EXPECT_FALSE(a.found) << a.sql;
    } else {
      EXPECT_TRUE(a.found) << a.failure_reason;
    }
  }
}

TEST_F(QreEdgeCases, RoutLargerThanAnyGeneratableSetFails) {
  // A tuple mixing values from unrelated rows: covers and CGMs exist, but
  // no PJ query can produce it together with real rows. The search must
  // exhaust and report not-found (not hang, not mis-answer).
  QueryBuilder b(&db_);
  InstanceId n = b.Instance("nation");
  b.Project(n, "n_nationkey");
  b.Project(n, "n_name");
  Table rout =
      ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
  // Append a scrambled pair (key of nation 0 with name of nation 1).
  rout.AppendRowIds({rout.column(0).at(0), rout.column(1).at(1)});
  QreOptions opts;
  opts.time_budget_seconds = 30.0;
  QreAnswer a = FastQre(&db_, opts).Reverse(rout).ValueOrDie();
  EXPECT_FALSE(a.found) << a.sql;
}

}  // namespace
}  // namespace fastqre
