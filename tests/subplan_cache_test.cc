// Unit tests for the cross-candidate subplan memoization cache
// (DESIGN.md §13) — admission, LRU eviction, budget enforcement, pinned
// readers, and governor accounting — plus the interrupt regression for the
// hash-index builds that block execution triggers: an interrupt must land
// inside a large build (every kInterruptPollMask + 1 rows), leave nothing
// published, and keep the cache slot rebuildable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/interrupt.h"
#include "common/resource_governor.h"
#include "common/rng.h"
#include "datagen/randomdb.h"
#include "datagen/workload.h"
#include "engine/block_executor.h"
#include "engine/subplan_cache.h"
#include "storage/database.h"

namespace fastqre {
namespace {

// A handle over `n` binding rows of width 2, `bytes` resident bytes.
SubplanCache::Handle MakeTable(size_t n, size_t bytes) {
  auto t = std::make_shared<SubplanTable>();
  t->width = 2;
  t->rows.assign(n * t->width, RowId{0});
  t->enumerated = n;
  t->bytes = bytes;
  return t;
}

TEST(SubplanCache, InsertLookupRoundTrip) {
  SubplanCache cache(/*budget_bytes=*/1 << 20, /*admission=*/0);
  SubplanCache::Signature sig = {1, 2, 3};
  EXPECT_EQ(cache.Lookup(sig), nullptr);
  EXPECT_TRUE(cache.Insert(sig, MakeTable(4, 64)));
  SubplanCache::Handle got = cache.Lookup(sig);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->rows.size(), 8u);
  EXPECT_EQ(got->enumerated, 4u);
  EXPECT_EQ(cache.bytes(), 64u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SubplanCache, AdmissionThresholdDelaysStore) {
  // admission=2: a prefix must be looked up twice before an insert sticks —
  // one-shot prefixes never pay the snapshot copy.
  SubplanCache cache(/*budget_bytes=*/1 << 20, /*admission=*/2);
  SubplanCache::Signature sig = {7};
  EXPECT_EQ(cache.Lookup(sig), nullptr);  // use 1
  EXPECT_FALSE(cache.WantsInsert(sig));
  EXPECT_FALSE(cache.Insert(sig, MakeTable(1, 16)));
  EXPECT_EQ(cache.Lookup(sig), nullptr);  // use 2
  EXPECT_TRUE(cache.WantsInsert(sig));
  EXPECT_TRUE(cache.Insert(sig, MakeTable(1, 16)));
  EXPECT_NE(cache.Lookup(sig), nullptr);
}

TEST(SubplanCache, LruEvictionRespectsBudget) {
  SubplanCache cache(/*budget_bytes=*/100, /*admission=*/0);
  EXPECT_TRUE(cache.Insert({1}, MakeTable(1, 60)));
  EXPECT_TRUE(cache.Insert({2}, MakeTable(1, 60)));  // evicts {1}
  EXPECT_LE(cache.bytes(), 100u);
  EXPECT_EQ(cache.Lookup({1}), nullptr);
  EXPECT_NE(cache.Lookup({2}), nullptr);
  EXPECT_GE(cache.evictions(), 1u);

  // A table larger than the whole budget is refused outright.
  EXPECT_FALSE(cache.Insert({3}, MakeTable(1, 101)));
  EXPECT_EQ(cache.Lookup({3}), nullptr);
}

TEST(SubplanCache, EvictionNeverInvalidatesPinnedReaders) {
  SubplanCache cache(/*budget_bytes=*/1 << 20, /*admission=*/0);
  ASSERT_TRUE(cache.Insert({5}, MakeTable(3, 48)));
  SubplanCache::Handle pinned = cache.Lookup({5});
  ASSERT_NE(pinned, nullptr);
  cache.ShrinkTo(0);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Lookup({5}), nullptr);
  // The pinned handle still reads the full table.
  EXPECT_EQ(pinned->rows.size(), 6u);
  EXPECT_EQ(pinned->enumerated, 3u);
}

TEST(SubplanCache, GovernorChargedOnInsertReleasedOnEviction) {
  auto governor = std::make_shared<ResourceGovernor>(/*budget_bytes=*/0);
  SubplanCache cache(/*budget_bytes=*/1 << 20, /*admission=*/0, governor);
  ASSERT_TRUE(cache.Insert({9}, MakeTable(2, 256)));
  EXPECT_EQ(governor->tracked_bytes(), 256u);
  cache.ShrinkTo(0);
  EXPECT_EQ(governor->tracked_bytes(), 0u);
}

TEST(SubplanCache, RefusedChargeRefusesStore) {
  // Once the degradation ladder reaches pipelined-only, TryCharge refuses
  // and the cache must decline the store without escalating further.
  auto governor = std::make_shared<ResourceGovernor>(/*budget_bytes=*/1);
  governor->Charge(1 << 20, "index-build");  // blow the budget: level >= 2
  ASSERT_FALSE(governor->materialization_allowed());
  SubplanCache cache(/*budget_bytes=*/1 << 20, /*admission=*/0, governor);
  EXPECT_FALSE(cache.Insert({4}, MakeTable(2, 64)));
  EXPECT_EQ(cache.Lookup({4}), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
}

// ---- Interrupt regression: hash-join index builds ---------------------------

// A database whose first table is large enough that an index build crosses
// several interrupt-poll strides.
Database BigTableDb() {
  RandomDbOptions opts;
  opts.seed = 11;
  opts.num_tables = 2;
  opts.min_rows = 3 * (kInterruptPollMask + 1);
  opts.max_rows = 3 * (kInterruptPollMask + 1) + 10;
  return BuildRandomDb(opts).ValueOrDie();
}

TEST(IndexBuildInterrupt, PolledInsideTheBuildNotAfterIt) {
  Database db = BigTableDb();
  size_t polls = 0;
  const HashIndex* idx = db.TryGetOrBuildIndex(
      0, {0}, [&polls] {
        ++polls;
        return false;
      });
  ASSERT_NE(idx, nullptr);
  // One poll per kInterruptPollMask + 1 rows: a 3-stride table must poll at
  // least 3 times *during* the build, not once around it.
  EXPECT_GE(polls, 3u);
}

TEST(IndexBuildInterrupt, AbortPublishesNothingAndSlotStaysRebuildable) {
  Database db = BigTableDb();
  // Fire on the second poll: the build starts, then aborts mid-scan.
  size_t polls = 0;
  const HashIndex* aborted = db.TryGetOrBuildIndex(
      0, {0}, [&polls] { return ++polls >= 2; });
  EXPECT_EQ(aborted, nullptr);
  EXPECT_GE(polls, 2u);
  EXPECT_EQ(db.index_stats().indexes_built.value(), 0u);
  // The slot was handed back: a later caller rebuilds successfully.
  const HashIndex* rebuilt = db.TryGetOrBuildIndex(0, {0}, {});
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(db.index_stats().indexes_built.value(), 1u);
}

TEST(IndexBuildInterrupt, ExecuteBlockAbortsCleanlyAtEveryPollDepth) {
  // The regression this PR fixes: ExecuteBlock's hash-join build side used
  // to run to completion before the interrupt was consulted. Sweeping the
  // firing poll across the call's whole poll sequence lands aborts inside
  // the scan morsels AND inside the index build (a 3-stride table polls >= 3
  // times there); every abort must surface as ResourceExhausted, publish no
  // half-built index the rerun could not rebuild, and leave the database
  // fully usable.
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  q_opts.min_rout_rows = 0;
  for (size_t fire_at : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}}) {
    // Fresh database per depth: the lazy index cache must start unbuilt for
    // the build-side polls to exist at all.
    Database db = BigTableDb();
    Rng qrng(13);
    auto wq = RandomCpjQuery(db, &qrng, q_opts);
    ASSERT_TRUE(wq.ok());
    size_t polls = 0;
    auto r = ExecuteBlock(db, wq->query, "block",
                          [&polls, fire_at] { return ++polls >= fire_at; });
    SCOPED_TRACE("fire_at=" + std::to_string(fire_at));
    if (polls < fire_at) {
      // The whole call finished within fewer polls; nothing to abort.
      EXPECT_TRUE(r.ok());
      continue;
    }
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    // The same call without an interrupt succeeds on the same database.
    EXPECT_TRUE(ExecuteBlock(db, wq->query, "block").ok());
  }
}

}  // namespace
}  // namespace fastqre
