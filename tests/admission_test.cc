// Unit tests for the admission-control primitives (DESIGN.md §15.3): the
// deterministic TokenBucket, the BudgetPool slice carve-out, and the
// AdmissionController's three typed gates (rate / load / memory).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rate_limiter.h"
#include "common/resource_governor.h"
#include "server/admission.h"

namespace fastqre {
namespace {

// ---- TokenBucket -----------------------------------------------------------

TEST(TokenBucketTest, BurstThenEmpty) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));  // burst spent, no time passed
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(2.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  // 0.5s at 2/s refills one token.
  EXPECT_TRUE(bucket.TryAcquire(0.5));
  EXPECT_FALSE(bucket.TryAcquire(0.5));
  // Refill caps at burst, not beyond.
  EXPECT_NEAR(bucket.Available(100.0), 2.0, 1e-9);
}

TEST(TokenBucketTest, ZeroRateDisables) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(TokenBucketTest, ClockStepBackwardsIsClamped) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  // A step backwards must not mint tokens or go negative.
  EXPECT_FALSE(bucket.TryAcquire(5.0));
  EXPECT_TRUE(bucket.TryAcquire(11.0));
}

// ---- BudgetPool ------------------------------------------------------------

TEST(BudgetPoolTest, ReserveReleasePeak) {
  BudgetPool pool(1000);
  EXPECT_TRUE(pool.TryReserve(600));
  EXPECT_TRUE(pool.TryReserve(400));
  EXPECT_FALSE(pool.TryReserve(1));  // full
  EXPECT_EQ(pool.reserved_bytes(), 1000u);
  pool.Release(400);
  EXPECT_EQ(pool.reserved_bytes(), 600u);
  EXPECT_TRUE(pool.TryReserve(400));
  EXPECT_EQ(pool.peak_reserved_bytes(), 1000u);
}

TEST(BudgetPoolTest, ZeroTotalIsUnlimited) {
  BudgetPool pool(0);
  EXPECT_TRUE(pool.TryReserve(1ull << 60));
  EXPECT_TRUE(pool.TryReserve(1ull << 60));
  EXPECT_EQ(pool.reserved_bytes(), 2ull << 60);
}

TEST(BudgetPoolTest, ConcurrentReserveNeverOvershoots) {
  constexpr uint64_t kTotal = 64;
  constexpr uint64_t kSlice = 1;
  BudgetPool pool(kTotal);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> admitted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (pool.TryReserve(kSlice)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          pool.Release(kSlice);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.reserved_bytes(), 0u);
  EXPECT_LE(pool.peak_reserved_bytes(), kTotal);
  EXPECT_GT(admitted.load(std::memory_order_relaxed), 0u);
}

// ---- AdmissionController ---------------------------------------------------

AdmissionConfig SmallConfig() {
  AdmissionConfig config;
  config.global_budget_bytes = 100;
  config.default_slice_bytes = 10;
  config.max_slice_bytes = 50;
  config.tenant_rate_per_second = 0;  // rate gate off unless a test opts in
  config.max_in_flight_jobs = 4;
  return config;
}

TEST(AdmissionControllerTest, DefaultAndClampedSlices) {
  AdmissionController ctl(SmallConfig());
  auto a = ctl.Admit("t", 0, 0.0);
  EXPECT_EQ(a.error, WireError::kNone);
  EXPECT_EQ(a.slice_bytes, 10u);  // default
  auto b = ctl.Admit("t", 75, 0.0);
  EXPECT_EQ(b.error, WireError::kNone);
  EXPECT_EQ(b.slice_bytes, 50u);  // clamped to max_slice_bytes
  EXPECT_EQ(ctl.pool().reserved_bytes(), 60u);
  ctl.Release(a.slice_bytes);
  ctl.Release(b.slice_bytes);
  EXPECT_EQ(ctl.pool().reserved_bytes(), 0u);
  EXPECT_EQ(ctl.in_flight_jobs(), 0);
}

TEST(AdmissionControllerTest, BudgetGateIsTyped) {
  AdmissionController ctl(SmallConfig());
  auto a = ctl.Admit("t", 50, 0.0);
  auto b = ctl.Admit("t", 50, 0.0);
  EXPECT_EQ(a.error, WireError::kNone);
  EXPECT_EQ(b.error, WireError::kNone);
  auto c = ctl.Admit("t", 10, 0.0);
  EXPECT_EQ(c.error, WireError::kBudgetExhausted);
  EXPECT_EQ(ctl.in_flight_jobs(), 2);  // rejection holds no seat
  ctl.Release(a.slice_bytes);
  auto d = ctl.Admit("t", 10, 0.0);
  EXPECT_EQ(d.error, WireError::kNone);
  ctl.Release(b.slice_bytes);
  ctl.Release(d.slice_bytes);
}

TEST(AdmissionControllerTest, LoadGateIsTyped) {
  AdmissionConfig config = SmallConfig();
  config.max_in_flight_jobs = 2;
  config.default_slice_bytes = 1;  // budget gate stays out of the way
  AdmissionController ctl(config);
  auto a = ctl.Admit("t", 0, 0.0);
  auto b = ctl.Admit("t", 0, 0.0);
  EXPECT_EQ(a.error, WireError::kNone);
  EXPECT_EQ(b.error, WireError::kNone);
  auto c = ctl.Admit("t", 0, 0.0);
  EXPECT_EQ(c.error, WireError::kSaturated);
  ctl.Release(a.slice_bytes);
  EXPECT_EQ(ctl.Admit("t", 0, 0.0).error, WireError::kNone);
  ctl.Release(b.slice_bytes);
  ctl.Release(1);
}

TEST(AdmissionControllerTest, RateGateIsPerTenant) {
  AdmissionConfig config = SmallConfig();
  config.tenant_rate_per_second = 1.0;
  config.tenant_burst = 2.0;
  config.default_slice_bytes = 1;
  config.max_in_flight_jobs = 100;
  AdmissionController ctl(config);
  // Tenant a burns its burst; tenant b is unaffected.
  EXPECT_EQ(ctl.Admit("a", 0, 0.0).error, WireError::kNone);
  EXPECT_EQ(ctl.Admit("a", 0, 0.0).error, WireError::kNone);
  EXPECT_EQ(ctl.Admit("a", 0, 0.0).error, WireError::kRateLimited);
  EXPECT_EQ(ctl.Admit("b", 0, 0.0).error, WireError::kNone);
  // One second refills one token for tenant a.
  EXPECT_EQ(ctl.Admit("a", 0, 1.0).error, WireError::kNone);
  EXPECT_EQ(ctl.Admit("a", 0, 1.0).error, WireError::kRateLimited);
}

TEST(AdmissionControllerTest, ConcurrentAdmitNeverExceedsPool) {
  AdmissionConfig config;
  config.global_budget_bytes = 40;
  config.default_slice_bytes = 10;
  config.max_slice_bytes = 10;
  config.max_in_flight_jobs = 1000;
  AdmissionController ctl(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto a = ctl.Admit("t", 0, 0.0);
        if (a.error == WireError::kNone) ctl.Release(a.slice_bytes);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ctl.pool().reserved_bytes(), 0u);
  EXPECT_LE(ctl.pool().peak_reserved_bytes(), 40u);
  EXPECT_EQ(ctl.in_flight_jobs(), 0);
}

}  // namespace
}  // namespace fastqre
