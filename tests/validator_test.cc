// Unit tests for the Query Validation module (Section 4.5): probing,
// indirect coherence, progressive evaluation, outcome classification.
#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/composer.h"
#include "qre/fastqre.h"
#include "qre/mapping.h"
#include "qre/validator.h"

namespace fastqre {
namespace {

// Validation fixture around the L02 (supplier ⋈ nation) workload entry.
struct ValidatorFixture {
  Database db;
  Table rout;
  TupleSet rout_set;
  QreOptions opts;
  QreStats stats;
  ColumnCover cover;
  CgmSet cgms;
  ColumnMapping mapping;
  std::vector<Walk> walks;
  std::unique_ptr<Feedback> feedback;

  explicit ValidatorFixture(QreOptions o = QreOptions(), int ladder_index = 1)
      : db(BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie()),
        rout("tmp", db.dictionary()),
        opts(o) {
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    rout = std::move(workload[ladder_index].rout);
    rout_set = TableToTupleSet(rout);
    cover = ComputeColumnCover(db, rout, opts, &stats);
    cgms = DiscoverCgms(db, rout, cover, opts, &stats);
    MappingEnumerator e(&db, &rout, &cover, &cgms, &opts);
    EXPECT_TRUE(e.Next(&mapping));
    walks = DiscoverWalks(db, mapping, opts);
    feedback = std::make_unique<Feedback>(walks.size());
  }

  Validator MakeValidator(std::function<bool()> budget = {}) {
    return Validator(&db, &rout, &rout_set, &mapping, &walks, &opts,
                     feedback.get(), &stats, /*walk_cache=*/nullptr,
                     std::move(budget));
  }

  // The candidate whose walk set is the single direct supplier-nation edge
  // (the generating query for L02).
  CandidateQuery DirectCandidate() {
    RankedComposer composer(&db, &mapping, &walks, &opts, feedback.get());
    CandidateQuery c;
    while (composer.Next(&c)) {
      if (c.walk_ids.size() == 1 && walks[c.walk_ids[0]].length() == 1) {
        return c;
      }
    }
    ADD_FAILURE() << "no direct candidate found";
    return c;
  }

  // A candidate with an extra restricting walk (true subset of R_out in
  // general, equal under fk integrity... pick a long walk to vary).
  CandidateQuery CandidateWithWalks(std::vector<int> ids) {
    CandidateQuery c;
    c.walk_ids = ids;
    std::vector<const Walk*> group;
    for (int id : ids) group.push_back(&walks[id]);
    c.query = ComposeQueryFromWalks(db, mapping, group);
    c.dc = 0;
    for (int id : ids) c.dc += walks[id].length();
    return c;
  }
};

TEST(Validator, AcceptsGeneratingQuery) {
  ValidatorFixture f;
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kGenerating);
}

TEST(Validator, RejectsWrongProjectionWithExtraTuples) {
  // Mutate R_out: drop one row. The true query now produces an extra tuple.
  ValidatorFixture f;
  Table smaller("smaller", f.db.dictionary());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    ASSERT_TRUE(
        smaller.AddColumn(f.rout.column(c).name(), f.rout.column(c).type())
            .ok());
  }
  for (RowId r = 1; r < f.rout.num_rows(); ++r) {
    smaller.AppendRowIds(f.rout.RowIds(r));
  }
  CandidateQuery cand = f.DirectCandidate();
  f.rout = std::move(smaller);
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(cand), CandidateOutcome::kExtraTuples);
}

TEST(Validator, RejectsMissingTuples) {
  // Add a bogus row to R_out that no query can produce: every candidate
  // must fail with missing tuples (probe catches it first).
  ValidatorFixture f;
  std::vector<ValueId> bogus(f.rout.num_columns());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    bogus[c] = f.db.dictionary()->Intern(Value("no-such-value"));
  }
  f.rout.AppendRowIds(bogus);
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kMissingTuples);
  EXPECT_GT(f.stats.candidates_dismissed_probe, 0u);
}

TEST(Validator, MissingTuplesDetectedWithoutProbingToo) {
  // Disable both quick-dismissal layers so the *full streaming check* must
  // classify the failure (with indirect coherence on, the doctored tuple
  // would be caught earlier as an incoherent walk).
  QreOptions opts;
  opts.use_probing = false;
  opts.use_indirect_coherence = false;
  ValidatorFixture f(opts);
  std::vector<ValueId> bogus(f.rout.num_columns());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    bogus[c] = f.db.dictionary()->Intern(Value("no-such-value"));
  }
  f.rout.AppendRowIds(bogus);
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kMissingTuples);
  EXPECT_EQ(f.stats.candidates_dismissed_probe, 0u);
}

TEST(Validator, NonProgressiveBlockModeAgrees) {
  for (bool progressive : {true, false}) {
    QreOptions opts;
    opts.use_probing = false;
    opts.use_progressive_validation = progressive;
    ValidatorFixture f(opts);
    Validator v = f.MakeValidator();
    EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kGenerating)
        << "progressive=" << progressive;
  }
}

TEST(Validator, IncoherentWalkDetectedAndMemoized) {
  // L05 fixture: supplier-part pairs via PS. A walk supplier-nation-... can
  // never reach part, so use a mapping-compatible wrong walk instead: pick
  // any candidate whose walks include a non-generating path and check the
  // walk-incoherence machinery via a doctored R_out.
  ValidatorFixture f;
  // Doctor R_out: permute the n_name column so supplier-nation pairs no
  // longer hold; the direct walk becomes incoherent.
  Table doctored("doctored", f.db.dictionary());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    ASSERT_TRUE(
        doctored.AddColumn(f.rout.column(c).name(), f.rout.column(c).type())
            .ok());
  }
  const RowId n = f.rout.num_rows();
  for (RowId r = 0; r < n; ++r) {
    doctored.AppendRowIds(
        {f.rout.column(0).at(r), f.rout.column(1).at((r + 1) % n)});
  }
  f.rout = std::move(doctored);
  f.rout_set = TableToTupleSet(f.rout);
  QreOptions opts = f.opts;
  opts.use_probing = false;  // let the coherence check do the work
  f.opts = opts;
  Validator v = f.MakeValidator();
  CandidateQuery cand = f.DirectCandidate();
  CandidateOutcome outcome = v.Validate(cand);
  EXPECT_EQ(outcome, CandidateOutcome::kIncoherentWalk);
  // Memoized in feedback: the walk is now known-incoherent.
  ASSERT_TRUE(f.feedback->WalkCoherence(cand.walk_ids[0]).has_value());
  EXPECT_FALSE(*f.feedback->WalkCoherence(cand.walk_ids[0]));
  EXPECT_TRUE(f.feedback->IsDead(cand.walk_ids));
}

TEST(Validator, SupersetAcceptsRestrictingSubsetOutput) {
  // Superset variant: a query whose result strictly contains R_out is
  // accepted. Take L02's generating query but drop rows from R_out.
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  ValidatorFixture f(opts);
  Table smaller("smaller", f.db.dictionary());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    ASSERT_TRUE(
        smaller.AddColumn(f.rout.column(c).name(), f.rout.column(c).type())
            .ok());
  }
  for (RowId r = 0; r + 1 < f.rout.num_rows(); r += 2) {
    smaller.AppendRowIds(f.rout.RowIds(r));
  }
  CandidateQuery cand = f.DirectCandidate();
  f.rout = std::move(smaller);
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(cand), CandidateOutcome::kGenerating);
}

TEST(Validator, SupersetStillRejectsMissing) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  ValidatorFixture f(opts);
  std::vector<ValueId> bogus(f.rout.num_columns());
  for (size_t c = 0; c < f.rout.num_columns(); ++c) {
    bogus[c] = f.db.dictionary()->Intern(Value("nope"));
  }
  f.rout.AppendRowIds(bogus);
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kMissingTuples);
}

TEST(Validator, SupersetWithoutProbingStreams) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  opts.use_probing = false;
  ValidatorFixture f(opts);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kGenerating);
}

TEST(Validator, BudgetExhaustionShortCircuits) {
  ValidatorFixture f;
  Validator v = f.MakeValidator([] { return true; });  // budget already gone
  EXPECT_EQ(v.Validate(f.DirectCandidate()),
            CandidateOutcome::kBudgetExhausted);
}

TEST(Validator, StatsCountFullValidations) {
  ValidatorFixture f;
  Validator v = f.MakeValidator();
  uint64_t before = f.stats.full_validations;
  ASSERT_EQ(v.Validate(f.DirectCandidate()), CandidateOutcome::kGenerating);
  EXPECT_EQ(f.stats.full_validations, before + 1);
  EXPECT_GT(f.stats.validation_rows, 0u);
}

// ---- Edge cases: degenerate R_out shapes -----------------------------------

// Makes an empty table with the same schema as `like`.
Table EmptySchemaCopy(const Table& like, const std::shared_ptr<Dictionary>& d) {
  Table t("empty", d);
  for (size_t c = 0; c < like.num_columns(); ++c) {
    EXPECT_TRUE(t.AddColumn(like.column(c).name(), like.column(c).type()).ok());
  }
  return t;
}

TEST(Validator, EmptyRoutExactRejectsNonEmptyQuery) {
  // Exact variant with R_out = ∅: any query producing a row has extra tuples.
  ValidatorFixture f;
  CandidateQuery cand = f.DirectCandidate();
  f.rout = EmptySchemaCopy(f.rout, f.db.dictionary());
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(cand), CandidateOutcome::kExtraTuples);
}

TEST(Validator, EmptyRoutSupersetAcceptsAnyQuery) {
  // Superset variant with R_out = ∅: Q(D) ⊇ ∅ holds vacuously.
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  ValidatorFixture f(opts);
  CandidateQuery cand = f.DirectCandidate();
  f.rout = EmptySchemaCopy(f.rout, f.db.dictionary());
  f.rout_set = TableToTupleSet(f.rout);
  Validator v = f.MakeValidator();
  EXPECT_EQ(v.Validate(cand), CandidateOutcome::kGenerating);
}

TEST(Validator, SingleRowRoutClassifiedPerVariant) {
  // R_out shrunk to one genuine row: the generating query now over-produces
  // — extra tuples under exact, still generating under superset.
  for (auto variant : {QreVariant::kExact, QreVariant::kSuperset}) {
    QreOptions opts;
    opts.variant = variant;
    ValidatorFixture f(opts);
    CandidateQuery cand = f.DirectCandidate();
    Table single = EmptySchemaCopy(f.rout, f.db.dictionary());
    single.AppendRowIds(f.rout.RowIds(0));
    f.rout = std::move(single);
    f.rout_set = TableToTupleSet(f.rout);
    Validator v = f.MakeValidator();
    EXPECT_EQ(v.Validate(cand), variant == QreVariant::kExact
                                    ? CandidateOutcome::kExtraTuples
                                    : CandidateOutcome::kGenerating);
  }
}

TEST(Validator, ReverseRejectsEmptyRoutAsInvalidInput) {
  ValidatorFixture f;
  Table empty = EmptySchemaCopy(f.rout, f.db.dictionary());
  FastQre engine(&f.db);
  auto r = engine.Reverse(empty);
  EXPECT_FALSE(r.ok());
}

TEST(Validator, AbsentValueFalsifiedWithoutExecutingAnyQuery) {
  // An R_out value that exists in no database column falsifies containment
  // at the column-cover level: the search must conclude without generating
  // or executing a single candidate query, in both variants.
  for (auto variant : {QreVariant::kExact, QreVariant::kSuperset}) {
    ValidatorFixture f;
    std::vector<ValueId> bogus(f.rout.num_columns());
    for (size_t c = 0; c < f.rout.num_columns(); ++c) {
      bogus[c] = f.db.dictionary()->Intern(Value("value-in-no-column"));
    }
    f.rout.AppendRowIds(bogus);
    QreOptions opts;
    opts.variant = variant;
    FastQre engine(&f.db, opts);
    QreAnswer a = engine.Reverse(f.rout).ValueOrDie();
    EXPECT_FALSE(a.found);
    EXPECT_EQ(static_cast<uint64_t>(a.stats.candidates_generated), 0u);
    EXPECT_EQ(static_cast<uint64_t>(a.stats.validation_rows), 0u);
    EXPECT_EQ(static_cast<uint64_t>(a.stats.full_validations), 0u);
  }
}

TEST(Validator, OutcomeToStringCoversAll) {
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kGenerating),
               "generating");
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kMissingTuples),
               "missing-tuples");
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kExtraTuples),
               "extra-tuples");
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kIncoherentWalk),
               "incoherent-walk");
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(CandidateOutcomeToString(CandidateOutcome::kError), "error");
}

}  // namespace
}  // namespace fastqre
