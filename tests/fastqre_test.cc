// End-to-end tests of the FastQre driver: both QRE variants, answer
// enumeration, option ablations, input validation, budgets, CSV ingestion.
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

class FastQreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
  }

  void ExpectRegenerates(const QreAnswer& answer, const Table& rout) {
    ASSERT_TRUE(answer.found) << answer.failure_reason;
    Table regen = ExecuteToTable(db_, answer.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(rout)) << answer.sql;
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(FastQreTest, InputValidation) {
  FastQre engine(&db_);
  Table empty_cols("e", db_.dictionary());
  EXPECT_TRUE(engine.Reverse(empty_cols).status().IsInvalidArgument());
  Table no_rows("n", db_.dictionary());
  ASSERT_TRUE(no_rows.AddColumn("a", ValueType::kInt64).ok());
  EXPECT_TRUE(engine.Reverse(no_rows).status().IsInvalidArgument());
  EXPECT_TRUE(engine.ReverseAll(workload_[0].rout, 0).status()
                  .IsInvalidArgument());
}

TEST_F(FastQreTest, UncoverableColumnFailsFast) {
  FastQre engine(&db_);
  Table rout("r", db_.dictionary());
  ASSERT_TRUE(rout.AddColumn("a", ValueType::kString).ok());
  ASSERT_TRUE(rout.AppendRow({Value("value-not-in-tpch")}).ok());
  QreAnswer a = engine.Reverse(rout).ValueOrDie();
  EXPECT_FALSE(a.found);
  EXPECT_NE(a.failure_reason.find("no PJ query"), std::string::npos);
}

TEST_F(FastQreTest, RoutWithForeignDictionaryIsReencoded) {
  // Build R_out against a *different* dictionary (as a CSV load into a
  // fresh dictionary would) and check Reverse still works.
  const Table& src = workload_[1].rout;
  auto other_dict = std::make_shared<Dictionary>();
  Table foreign("foreign", other_dict);
  for (size_t c = 0; c < src.num_columns(); ++c) {
    ASSERT_TRUE(
        foreign.AddColumn(src.column(c).name(), src.column(c).type()).ok());
  }
  for (RowId r = 0; r < src.num_rows(); ++r) {
    ASSERT_TRUE(foreign.AppendRow(src.RowValues(r)).ok());
  }
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(foreign).ValueOrDie();
  ExpectRegenerates(a, src);
}

TEST_F(FastQreTest, DuplicateRoutRowsAreCollapsed) {
  const Table& src = workload_[0].rout;
  Table dup("dup", db_.dictionary());
  for (size_t c = 0; c < src.num_columns(); ++c) {
    ASSERT_TRUE(dup.AddColumn(src.column(c).name(), src.column(c).type()).ok());
  }
  for (int k = 0; k < 3; ++k) {
    for (RowId r = 0; r < src.num_rows(); ++r) dup.AppendRowIds(src.RowIds(r));
  }
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(dup).ValueOrDie();
  ExpectRegenerates(a, src);
}

TEST_F(FastQreTest, SingleTableProjection) {
  QueryBuilder b(&db_);
  InstanceId n = b.Instance("nation");
  b.Project(n, "n_name");
  b.Project(n, "n_regionkey");
  Table rout =
      ExecuteToTable(db_, b.Build().ValueOrDie(), "rout").ValueOrDie();
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(rout).ValueOrDie();
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.num_instances, 1u);
  EXPECT_EQ(a.num_joins, 0u);
  ExpectRegenerates(a, rout);
}

TEST_F(FastQreTest, AnswerMetadataConsistent) {
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(workload_[3].rout).ValueOrDie();
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.num_instances, a.query.num_instances());
  EXPECT_EQ(a.num_joins, a.query.joins().size());
  EXPECT_EQ(a.sql, a.query.ToSql(db_));
  EXPECT_GT(a.stats.total_seconds, 0.0);
  EXPECT_GT(a.stats.candidates_generated, 0u);
  EXPECT_EQ(a.stats.mappings_tried, 1u);  // top-ranked mapping suffices
}

TEST_F(FastQreTest, ReverseAllEnumeratesDistinctGeneratingQueries) {
  FastQre engine(&db_);
  auto answers = engine.ReverseAll(workload_[1].rout, 3).ValueOrDie();
  ASSERT_GE(answers.size(), 2u);
  std::set<std::string> sqls;
  for (const auto& a : answers) {
    ASSERT_TRUE(a.found);
    EXPECT_TRUE(sqls.insert(a.sql).second) << "duplicate answer " << a.sql;
    ExpectRegenerates(a, workload_[1].rout);
  }
}

TEST_F(FastQreTest, TimeBudgetReturnsGracefully) {
  QreOptions opts;
  opts.time_budget_seconds = 1e-9;  // expires immediately
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[8].rout).ValueOrDie();
  EXPECT_FALSE(a.found);
  EXPECT_NE(a.failure_reason.find("budget"), std::string::npos);
}

TEST_F(FastQreTest, SupersetVariantOnSampledRout) {
  // Sample half of L04's R_out: the superset engine must find a query whose
  // output contains the sample.
  const Table& src = workload_[3].rout;
  Table sample("sample", db_.dictionary());
  for (size_t c = 0; c < src.num_columns(); ++c) {
    ASSERT_TRUE(
        sample.AddColumn(src.column(c).name(), src.column(c).type()).ok());
  }
  for (RowId r = 0; r < src.num_rows(); r += 2) {
    sample.AppendRowIds(src.RowIds(r));
  }
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(sample).ValueOrDie();
  ASSERT_TRUE(a.found) << a.failure_reason;
  Table result = ExecuteToTable(db_, a.query, "result").ValueOrDie();
  TupleSet result_set = TableToTupleSet(result);
  TupleSet sample_set = TableToTupleSet(sample);
  EXPECT_TRUE(IsSubsetOf(sample_set, result_set)) << a.sql;
}

TEST_F(FastQreTest, ExactVariantAnswerAlsoSolvesSuperset) {
  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[2].rout).ValueOrDie();
  ASSERT_TRUE(a.found);
  Table result = ExecuteToTable(db_, a.query, "result").ValueOrDie();
  EXPECT_TRUE(
      IsSubsetOf(TableToTupleSet(workload_[2].rout), TableToTupleSet(result)));
}

// Every single-component ablation must still find generating queries (they
// trade speed, not correctness). Parameterized over the toggles.
struct AblationSpec {
  const char* name;
  void (*apply)(QreOptions*);
};

class AblationTest : public ::testing::TestWithParam<AblationSpec> {};

TEST_P(AblationTest, StillFindsGeneratingQuery) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  QreOptions opts;
  GetParam().apply(&opts);
  opts.time_budget_seconds = 60.0;
  FastQre engine(&db, opts);
  // L01..L05 + L08 cover the non-self-join shapes cheaply.
  for (int i : {0, 1, 2, 3, 4, 7}) {
    QreAnswer a = engine.Reverse(workload[i].rout).ValueOrDie();
    ASSERT_TRUE(a.found) << GetParam().name << " on " << workload[i].name
                         << ": " << a.failure_reason;
    Table regen = ExecuteToTable(db, a.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload[i].rout))
        << GetParam().name << " on " << workload[i].name << ": " << a.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, AblationTest,
    ::testing::Values(
        AblationSpec{"no_cgm", [](QreOptions* o) { o->use_cgm_ranking = false; }},
        AblationSpec{"no_indirect",
                     [](QreOptions* o) { o->use_indirect_coherence = false; }},
        AblationSpec{"no_two_queue",
                     [](QreOptions* o) { o->use_two_queue_composer = false; }},
        AblationSpec{"no_progressive",
                     [](QreOptions* o) { o->use_progressive_validation = false; }},
        AblationSpec{"no_probing", [](QreOptions* o) { o->use_probing = false; }},
        AblationSpec{"no_feedback",
                     [](QreOptions* o) { o->use_feedback_pruning = false; }},
        AblationSpec{"no_patterns",
                     [](QreOptions* o) { o->use_pattern_pruning = false; }},
        AblationSpec{"alpha_zero", [](QreOptions* o) { o->alpha = 0.0; }},
        AblationSpec{"alpha_one", [](QreOptions* o) { o->alpha = 1.0; }}),
    [](const ::testing::TestParamInfo<AblationSpec>& info) {
      return info.param.name;
    });

TEST_F(FastQreTest, CsvRoundTripLikeAnalystWorkflow) {
  // Export L03's R_out as CSV, reload, reverse engineer.
  std::string csv = TableToCsv(workload_[2].rout);
  Table rout = LoadCsvString(csv, "report", db_.dictionary()).ValueOrDie();
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(rout).ValueOrDie();
  ExpectRegenerates(a, workload_[2].rout);
}

TEST_F(FastQreTest, NaiveBaselineAgreesOnSimpleQueries) {
  NaiveQre naive(&db_, /*time_budget_seconds=*/60.0);
  for (int i : {0, 1, 2, 3}) {
    QreAnswer a = naive.Reverse(workload_[i].rout).ValueOrDie();
    ASSERT_TRUE(a.found) << workload_[i].name << ": " << a.failure_reason;
    Table regen = ExecuteToTable(db_, a.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(workload_[i].rout));
  }
}

TEST_F(FastQreTest, NaiveBaselineOptionsDisableEverything) {
  QreOptions o = NaiveQre::BaselineOptions(5.0);
  EXPECT_FALSE(o.use_cgm_ranking);
  EXPECT_FALSE(o.use_indirect_coherence);
  EXPECT_FALSE(o.use_two_queue_composer);
  EXPECT_FALSE(o.use_progressive_validation);
  EXPECT_FALSE(o.use_probing);
  EXPECT_FALSE(o.use_feedback_pruning);
  EXPECT_FALSE(o.use_pattern_pruning);
  EXPECT_DOUBLE_EQ(o.time_budget_seconds, 5.0);
}

TEST_F(FastQreTest, TraceRecordsSearchWhenRequested) {
  QreOptions opts;
  opts.collect_trace = true;
  FastQre engine(&db_, opts);
  QreAnswer a = engine.Reverse(workload_[8].rout).ValueOrDie();  // L09
  ASSERT_TRUE(a.found);
  ASSERT_FALSE(a.trace.mappings.empty());
  ASSERT_FALSE(a.trace.candidates.empty());
  // The last traced candidate is the generating one.
  EXPECT_EQ(a.trace.candidates.back().outcome, "generating");
  EXPECT_EQ(a.trace.candidates.back().sql, a.sql);
  // Every traced candidate refers to a traced mapping.
  for (const auto& c : a.trace.candidates) {
    EXPECT_GE(c.mapping_index, 0);
    EXPECT_LT(static_cast<size_t>(c.mapping_index), a.trace.mappings.size());
  }
  std::string rendered = a.trace.ToString();
  EXPECT_NE(rendered.find("mapping #0"), std::string::npos);
  EXPECT_NE(rendered.find("generating"), std::string::npos);
}

TEST_F(FastQreTest, TraceEmptyByDefault) {
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(workload_[0].rout).ValueOrDie();
  EXPECT_TRUE(a.trace.mappings.empty());
  EXPECT_TRUE(a.trace.candidates.empty());
}

TEST_F(FastQreTest, StatsToStringMentionsKeySections) {
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(workload_[1].rout).ValueOrDie();
  std::string s = a.stats.ToString();
  EXPECT_NE(s.find("column cover"), std::string::npos);
  EXPECT_NE(s.find("CGM discovery"), std::string::npos);
  EXPECT_NE(s.find("candidates generated"), std::string::npos);
}

TEST_F(FastQreTest, StatsAccumulate) {
  FastQre engine(&db_);
  QreAnswer a = engine.Reverse(workload_[0].rout).ValueOrDie();
  QreAnswer b = engine.Reverse(workload_[1].rout).ValueOrDie();
  QreStats sum = a.stats;
  sum.Accumulate(b.stats);
  EXPECT_EQ(sum.candidates_generated,
            a.stats.candidates_generated + b.stats.candidates_generated);
  EXPECT_NEAR(sum.total_seconds, a.stats.total_seconds + b.stats.total_seconds,
              1e-12);
}

}  // namespace
}  // namespace fastqre
