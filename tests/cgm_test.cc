// Unit tests for direct column coherence / CGM discovery (Section 4.2,
// Examples 2.2 and Figure 8).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

struct CgmFixture {
  Database db;
  Table rout;
  ColumnCover cover;
  CgmSet cgms;
  QreStats stats;
};

CgmFixture Discover(Database db, Table rout, QreOptions opts = QreOptions()) {
  CgmFixture f{std::move(db), std::move(rout), {}, {}, {}};
  f.cover = ComputeColumnCover(f.db, f.rout, opts, &f.stats);
  f.cgms = DiscoverCgms(f.db, f.rout, f.cover, opts, &f.stats);
  return f;
}

// Example 2.2 toy database (Figure 4), including table R3.
Database ToyDb() {
  Database db;
  TableId r1 = db.AddTable("R1").ValueOrDie();
  Table& t1 = db.table(r1);
  EXPECT_TRUE(t1.AddColumn("A", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("B", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AddColumn("C", ValueType::kInt64).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{2}), Value(int64_t{4}), Value(int64_t{3})}).ok());
  EXPECT_TRUE(t1.AppendRow({Value(int64_t{3}), Value(int64_t{6}), Value(int64_t{5})}).ok());
  TableId r2 = db.AddTable("R2").ValueOrDie();
  Table& t2 = db.table(r2);
  EXPECT_TRUE(t2.AddColumn("D", ValueType::kInt64).ok());
  EXPECT_TRUE(t2.AddColumn("E", ValueType::kString).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{1}), Value("a7")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{2}), Value("a2")}).ok());
  EXPECT_TRUE(t2.AppendRow({Value(int64_t{3}), Value("a1")}).ok());
  TableId r3 = db.AddTable("R3").ValueOrDie();
  Table& t3 = db.table(r3);
  EXPECT_TRUE(t3.AddColumn("F", ValueType::kInt64).ok());
  EXPECT_TRUE(t3.AddColumn("G", ValueType::kString).ok());
  EXPECT_TRUE(t3.AppendRow({Value(int64_t{1}), Value("b5")}).ok());
  EXPECT_TRUE(t3.AppendRow({Value(int64_t{2}), Value("b3")}).ok());
  EXPECT_TRUE(db.AddForeignKey("R2", "D", "R1", "A").ok());
  EXPECT_TRUE(db.AddForeignKey("R3", "F", "R1", "A").ok());
  return db;
}

// True if some CGM of `table` maps exactly the given (out name, db name)
// pairs (as a subset is NOT enough: exact match).
bool HasCgm(const CgmFixture& f, const std::string& table,
            std::vector<std::pair<std::string, std::string>> pairs) {
  for (const Cgm& g : f.cgms.cgms) {
    if (f.db.table(g.table).name() != table) continue;
    if (g.mapping.size() != pairs.size()) continue;
    bool all = true;
    for (const auto& [out_name, db_name] : pairs) {
      bool found = false;
      for (const auto& [oc, dc] : g.mapping) {
        if (f.rout.column(oc).name() == out_name &&
            f.db.table(g.table).column(dc).name() == db_name) {
          found = true;
        }
      }
      if (!found) all = false;
    }
    if (all) return true;
  }
  return false;
}

TEST(Cgm, Example22CoherentPair) {
  // R_out(X, Y) from R1(C, B): the pair (C, B) is the only coherent pair of
  // R1 w.r.t. (X, Y) — per the paper, "(C and B) is the only coherent pair".
  Database db = ToyDb();
  Table rout =
      LoadCsvString("X,Y\n1,2\n3,4\n", "rout", db.dictionary()).ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  EXPECT_TRUE(HasCgm(f, "R1", {{"X", "C"}, {"Y", "B"}}));
  // (A, B) is not coherent: tuple (3, 4) is absent from R1(A, B).
  EXPECT_FALSE(HasCgm(f, "R1", {{"X", "A"}, {"Y", "B"}}));
  EXPECT_FALSE(HasCgm(f, "R1", {{"X", "D"}, {"Y", "B"}}));  // cross-table
}

TEST(Cgm, MaximalityAbsorbsSubsets) {
  // In any discovered set, no CGM may be a subset of another (Definition
  // 4.3).
  Database db = ToyDb();
  Table rout = LoadCsvString("X,Y,Z,W\n1,2,a7,b5\n3,4,a2,b3\n", "rout",
                             db.dictionary())
                   .ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  for (size_t i = 0; i < f.cgms.cgms.size(); ++i) {
    for (size_t j = 0; j < f.cgms.cgms.size(); ++j) {
      if (i == j) continue;
      const Cgm& a = f.cgms.cgms[i];
      const Cgm& b = f.cgms.cgms[j];
      if (a.table != b.table) continue;
      bool a_subset_b =
          std::includes(b.mapping.begin(), b.mapping.end(), a.mapping.begin(),
                        a.mapping.end());
      EXPECT_FALSE(a_subset_b) << a.ToString(f.db, f.rout) << " subset of "
                               << b.ToString(f.db, f.rout);
    }
  }
}

TEST(Cgm, OfOutColumnIndexConsistent) {
  Database db = ToyDb();
  Table rout = LoadCsvString("X,Y,Z,W\n1,2,a7,b5\n3,4,a2,b3\n", "rout",
                             db.dictionary())
                   .ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  ASSERT_EQ(f.cgms.of_out_column.size(), 4u);
  for (ColumnId c = 0; c < 4; ++c) {
    for (int idx : f.cgms.of_out_column[c]) {
      EXPECT_GE(f.cgms.cgms[idx].DbColumnFor(c), 0);
    }
  }
  // Every CGM is indexed under each of its out columns.
  for (size_t i = 0; i < f.cgms.cgms.size(); ++i) {
    for (const auto& [oc, dc] : f.cgms.cgms[i].mapping) {
      const auto& lst = f.cgms.of_out_column[oc];
      EXPECT_NE(std::find(lst.begin(), lst.end(), static_cast<int>(i)),
                lst.end());
    }
  }
}

TEST(Cgm, Figure8TwoSupplierCgms) {
  // R_out of paper Query 1 has columns A..E; (A, B) and (D, E) must each map
  // to supplier(s_suppkey, s_name) as two distinct maximal CGMs (Figure 8).
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout = ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"})
                   .ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  EXPECT_TRUE(HasCgm(f, "supplier", {{"A", "s_suppkey"}, {"B", "s_name"}}));
  EXPECT_TRUE(HasCgm(f, "supplier", {{"D", "s_suppkey"}, {"E", "s_name"}}));
  // B and E are 1-match name columns whose db column is a key: the paper's
  // Section 4.3.1 argument makes both CGMs certain.
  bool ab_certain = false, de_certain = false;
  for (const Cgm& g : f.cgms.cgms) {
    if (f.db.table(g.table).name() != "supplier") continue;
    if (g.mapping.size() == 2 && g.certain) {
      if (f.rout.column(g.mapping[0].first).name() == "A") ab_certain = true;
      if (f.rout.column(g.mapping[0].first).name() == "D") de_certain = true;
    }
  }
  EXPECT_TRUE(ab_certain);
  EXPECT_TRUE(de_certain);
}

TEST(Cgm, OneToOneWithinACgm) {
  Database db = ToyDb();
  Table rout = LoadCsvString("X,Y,Z,W\n1,2,a7,b5\n3,4,a2,b3\n", "rout",
                             db.dictionary())
                   .ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  for (const Cgm& g : f.cgms.cgms) {
    std::set<ColumnId> outs, dbs;
    for (const auto& [oc, dc] : g.mapping) {
      EXPECT_TRUE(outs.insert(oc).second) << "duplicate out column";
      EXPECT_TRUE(dbs.insert(dc).second) << "duplicate db column";
    }
  }
}

TEST(Cgm, CgmGroupsAreActuallyCoherent) {
  // Soundness: for every discovered CGM, pi_Cout(R_out) ⊆ pi_C(R).
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 9}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  const auto& wq = workload[3];  // L04
  CgmFixture f = Discover(std::move(db), wq.rout);
  for (const Cgm& g : f.cgms.cgms) {
    TupleSet group = ProjectToTupleSet(f.db.table(g.table), g.DbColumns());
    TupleSet out = ProjectToTupleSet(f.rout, g.OutColumns());
    EXPECT_TRUE(IsSubsetOf(out, group)) << g.ToString(f.db, f.rout);
  }
}

TEST(Cgm, SizeCapRespected) {
  Database db = ToyDb();
  Table rout = LoadCsvString("X,Y\n1,2\n3,4\n", "rout", db.dictionary())
                   .ValueOrDie();
  QreOptions opts;
  opts.max_cgm_columns = 1;
  CgmFixture f = Discover(std::move(db), std::move(rout), opts);
  for (const Cgm& g : f.cgms.cgms) {
    EXPECT_EQ(g.mapping.size(), 1u);
  }
}

TEST(Cgm, ToStringMentionsTableAndColumns) {
  Database db = ToyDb();
  Table rout =
      LoadCsvString("X,Y\n1,2\n3,4\n", "rout", db.dictionary()).ValueOrDie();
  CgmFixture f = Discover(std::move(db), std::move(rout));
  ASSERT_FALSE(f.cgms.cgms.empty());
  std::string s = f.cgms.cgms[0].ToString(f.db, f.rout);
  EXPECT_NE(s.find("{"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace
}  // namespace fastqre
