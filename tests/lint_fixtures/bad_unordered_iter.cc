// Fixture: iterating an unordered container without a det: classification.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> Keys(const std::unordered_map<std::string, int>& freq) {
  std::vector<std::string> out;
  for (const auto& [key, count] : freq) {
    out.push_back(key);
  }
  return out;
}
