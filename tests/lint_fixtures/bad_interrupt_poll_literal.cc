// Fixture: hard-coded interrupt-poll stride instead of kInterruptPollMask.
#include <cstdint>
#include <functional>

bool Drive(const std::function<bool()>& interrupt) {
  uint64_t work = 0;
  for (int i = 0; i < 1000000; ++i) {
    if ((++work & 0xfff) == 0 && interrupt()) return false;
  }
  return true;
}
