// Fixture: unordered-container iterations with proper det: classifications.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<std::string> SortedKeys(
    const std::unordered_map<std::string, int>& freq) {
  std::vector<std::string> out;
  // det: sorted — keys are collected then sorted before returning.
  for (const auto& [key, count] : freq) {
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int Total(const std::unordered_set<int>& vals) {
  int sum = 0;
  // det: order-insensitive — commutative integer sum.
  for (int v : vals) sum += v;
  return sum;
}
