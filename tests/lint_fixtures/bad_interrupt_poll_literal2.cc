// Fixture: ad-hoc poll stride — a masked-counter zero test against a mask
// that is not kInterruptPollMask changes cancellation latency for this one
// loop (the shape that slipped into mapping state expansion as `& 0x3ff`).
#include <cstdint>
#include <functional>

bool Expand(const std::function<bool()>& budget_exceeded) {
  uint64_t states = 0;
  for (int i = 0; i < 1000000; ++i) {
    if ((++states & 0x3ff) == 0 && budget_exceeded()) return false;
  }
  return true;
}
