// Fixture: raw randomness source outside src/common/rng.h.
#include <cstdlib>

int Roll() { return std::rand() % 6; }
