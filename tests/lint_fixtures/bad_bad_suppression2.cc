// Fixture: suppression naming a rule the linter does not define.
#include <cstdlib>

int Roll() {
  // NOLINT-INVARIANT(not-a-real-rule): justification text that is long enough
  return std::rand() % 6;
}
