// Fixture: naked new/delete instead of std::make_unique / containers.
struct Widget {
  int x = 0;
};

int Use() {
  Widget* w = new Widget();
  int x = w->x;
  delete w;
  return x;
}
