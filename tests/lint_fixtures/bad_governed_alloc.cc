// Fixture: materialization-sized buffers declared with no resource
// accounting classification — [governed-alloc] must flag both.
#include "engine/compare.h"

namespace fastqre {

void CollectEverything() {
  TupleSet everything;
  std::vector<std::vector<RowId>> rows;
  (void)everything;
  (void)rows;
}

}  // namespace fastqre
