// Fixture: data-scaled filter and memo-table buffers declared with no
// resource accounting classification — [governed-alloc] must flag all
// three (presence bitmaps, composite-key filters, and subplan tables scale
// with dictionary / table / intermediate size).
#include "engine/subplan_cache.h"
#include "storage/bitmap_filter.h"

namespace fastqre {

void MaterializeFilters() {
  BitmapFilter presence(1u << 20);
  CompositeKeyFilter keys = MakeKeyFilter();
  SubplanTable snapshot;
  (void)presence;
  (void)keys;
  (void)snapshot;
}

}  // namespace fastqre
