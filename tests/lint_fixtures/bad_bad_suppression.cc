// Fixture: malformed suppression — the justification is too short to be
// meaningful (< 10 characters).
#include <cstdlib>

int Roll() {
  return std::rand() % 6;  // NOLINT-INVARIANT(raw-random): ok
}
