// Fixture: linted as bench/good_naked_new.cc — the naked-new rule is
// scoped to src/, so harness allocations under bench/ are allowed (this
// file must lint clean).
struct Sample {
  int value = 0;
};

int Measure() {
  Sample* s = new Sample();
  int v = s->value;
  delete s;
  return v;
}
