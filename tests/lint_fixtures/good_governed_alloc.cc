// Fixture: classified buffer declarations — [governed-alloc] stays quiet,
// and references/pointers/function declarations are exempt without markers.
#include "engine/compare.h"
#include "storage/bitmap_filter.h"

namespace fastqre {

TupleSet MakeSmallSet();

void Accumulate(const TupleSet& input, TupleSet* output) {
  // gov: bounded — one projection of R_out, freed at scope exit.
  TupleSet projected;
  // gov: charged — bytes accounted to the governor as "block-buffer".
  std::vector<std::vector<RowId>> rows;
  // gov: charged — cached via Database::GetOrBuildPresenceFilter
  // ("filter-build").
  BitmapFilter presence(64);
  (void)input;
  (void)output;
  (void)projected;
  (void)rows;
  (void)presence;
}

}  // namespace fastqre
