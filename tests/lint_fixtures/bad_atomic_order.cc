// Fixture: atomic operations without an explicit memory order (defaults to
// seq_cst), violating the documented memory-order policy.
#include <atomic>
#include <cstdint>

uint64_t Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1);
  return counter.load();
}
