// Fixture: a well-formed suppression — names a real rule and carries a
// substantive justification. (Fixtures lint as if under src/, outside the
// suppression-free directories src/qre/ and src/engine/.)
#include <atomic>
#include <cstdint>

void LegacyBump(std::atomic<uint64_t>& counter) {
  // NOLINT-INVARIANT(atomic-order): third-party ABI requires the default
  counter.fetch_add(1);
}
