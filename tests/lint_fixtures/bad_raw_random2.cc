// Fixture: seeding an engine from std::random_device outside rng.h.
#include <random>

unsigned Seed() {
  std::random_device rd;
  return rd();
}
