// Fixture: explicit seq_cst is banned by the memory-order policy; pick
// relaxed (monotonic counters) or acquire/release (flag handoff).
#include <atomic>

void Publish(std::atomic<bool>& flag) {
  flag.store(true, std::memory_order_seq_cst);
}
