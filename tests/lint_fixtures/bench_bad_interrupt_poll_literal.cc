// Fixture: linted as bench/bad_interrupt_poll_literal.cc — hard-coded poll
// strides are banned in the bench harness as well, so benchmark cancel
// behavior matches production.
#include <cstdint>
#include <functional>

bool BenchDrive(const std::function<bool()>& interrupt) {
  uint64_t work = 0;
  for (int i = 0; i < 1000000; ++i) {
    if ((++work & 4095) == 0 && interrupt()) return false;
  }
  return true;
}
