// Fixture: idiomatic code that trips no invariant rules.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

struct Node {
  int value = 0;
};

std::unique_ptr<Node> MakeNode(int v) {
  auto n = std::make_unique<Node>();
  n->value = v;
  return n;
}

uint64_t Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_relaxed);
}

std::vector<std::string> Keys(const std::map<std::string, int>& m) {
  std::vector<std::string> out;
  for (const auto& [key, count] : m) out.push_back(key);
  return out;
}
