// Fixture: linted as bench/bad_atomic_order.cc — the atomic-order rule
// applies to benchmark harness code too (a seq_cst default in the
// measurement loop skews what is being measured).
#include <atomic>
#include <cstdint>

uint64_t BenchBump(std::atomic<uint64_t>& ops) {
  ops.fetch_add(1);
  return ops.load();
}
