#!/usr/bin/env python3
"""CLI-level partial-result contract test for `fastqre reverse`.

Drives the real binary end to end:

  1. gen-tpch a tiny deterministic database into a scratch directory,
  2. demo-rout L01 to get an R_out with a known generating query,
  3. reverse with FASTQRE_FAULTS=answer-found=cancel@1 and --stats-json:
     the run proves one answer, then the injected cancel truncates the
     enumeration.  The contract under test (tools/fastqre_cli.cc): exit
     code 3, the proved SQL still printed, and every --stats-json line —
     including the truncation tail with "failure_reason":"cancelled" —
     valid JSON,
  4. the same reverse without faults: exit 0 and a found:true JSON line,
  5. reverse with no arguments: usage error, exit 2.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(cond, message):
    if not cond:
        FAILURES.append(message)
        print("FAIL: " + message)
    return cond


def run(binary, args, extra_env=None):
    env = dict(os.environ)
    env.pop("FASTQRE_FAULTS", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [binary] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        timeout=300,
    )
    return proc


def stats_json_lines(stdout):
    """Parses every --stats-json line (the ones that are JSON objects)."""
    out = []
    for line in stdout.splitlines():
        if line.startswith("{"):
            out.append(json.loads(line))  # raises on invalid JSON = test bug
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--binary", required=True, help="path to the fastqre CLI")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="fastqre_cli_test_") as scratch:
        db = os.path.join(scratch, "db")
        rout = os.path.join(scratch, "rout.csv")

        proc = run(opts.binary, ["gen-tpch", "--out", db, "--scale", "0.001",
                                 "--seed", "3"])
        check(proc.returncode == 0, "gen-tpch failed: " + proc.stderr)

        proc = run(opts.binary, ["demo-rout", "--db", db, "--query", "L01",
                                 "--out", rout])
        check(proc.returncode == 0, "demo-rout failed: " + proc.stderr)

        # --- Stopped run: proved prefix + cancelled tail, exit 3. ---------
        proc = run(
            opts.binary,
            ["reverse", "--db", db, "--rout", rout, "--all", "5",
             "--stats-json"],
            extra_env={"FASTQRE_FAULTS": "answer-found=cancel@1"},
        )
        check(proc.returncode == 3,
              "stopped run: want exit 3, got %d (stderr: %s)"
              % (proc.returncode, proc.stderr))
        check("no generating query: cancelled" in proc.stdout,
              "stopped run: missing cancelled tail line in stdout:\n"
              + proc.stdout)
        check("SELECT" in proc.stdout,
              "stopped run: the answer proved before the stop must still be "
              "printed:\n" + proc.stdout)
        stats = stats_json_lines(proc.stdout)
        check(len(stats) >= 2,
              "stopped run: want >=2 stats-json lines (proved + tail), got %d"
              % len(stats))
        if stats:
            check(stats[0].get("found") is True,
                  "stopped run: first stats line must be the proved answer: "
                  + json.dumps(stats[0]))
            tail = stats[-1]
            check(tail.get("found") is False,
                  "stopped run: last stats line must be the truncation tail: "
                  + json.dumps(tail))
            check(tail.get("failure_reason") == "cancelled",
                  "stopped run: tail failure_reason must be 'cancelled': "
                  + json.dumps(tail))
            check(tail.get("cancelled") is True,
                  "stopped run: tail must report cancelled:true: "
                  + json.dumps(tail))

        # --- Clean run: exit 0, found:true JSON. --------------------------
        proc = run(opts.binary,
                   ["reverse", "--db", db, "--rout", rout, "--stats-json"])
        check(proc.returncode == 0,
              "clean run: want exit 0, got %d (stderr: %s)"
              % (proc.returncode, proc.stderr))
        stats = stats_json_lines(proc.stdout)
        check(len(stats) == 1 and stats[0].get("found") is True,
              "clean run: want one found:true stats line, got: "
              + proc.stdout)

        # --- Usage error: exit 2. -----------------------------------------
        proc = run(opts.binary, ["reverse"])
        check(proc.returncode == 2,
              "usage error: want exit 2, got %d" % proc.returncode)

    if FAILURES:
        print("%d check(s) failed" % len(FAILURES))
        return 1
    print("cli_partial_results: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
