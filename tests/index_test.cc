// Unit tests for HashIndex lookup behavior: the Lookup1 single-column fast
// path, multi-column lookups over duplicate keys, and empty tables.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/index.h"
#include "storage/table.h"

namespace fastqre {
namespace {

Table MakeTable(const std::vector<std::pair<int64_t, int64_t>>& rows) {
  Table t("t", std::make_shared<Dictionary>());
  EXPECT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("b", ValueType::kInt64).ok());
  for (const auto& [a, b] : rows) {
    EXPECT_TRUE(t.AppendRow({Value(a), Value(b)}).ok());
  }
  return t;
}

TEST(HashIndexLookup, Lookup1MatchesLookupOnSingleColumn) {
  Table t = MakeTable({{1, 10}, {2, 20}, {1, 30}, {3, 10}, {1, 10}});
  HashIndex index(t, {0});
  for (RowId r = 0; r < t.num_rows(); ++r) {
    ValueId key = t.column(0).at(r);
    EXPECT_EQ(index.Lookup1(key), index.Lookup({key}));
  }
  // Duplicate key 1 maps to all three of its rows, in row order.
  ValueId one = t.column(0).at(0);
  EXPECT_EQ(index.Lookup1(one), (std::vector<RowId>{0, 2, 4}));
}

TEST(HashIndexLookup, Lookup1MissReturnsEmpty) {
  Table t = MakeTable({{1, 10}});
  HashIndex index(t, {0});
  // An id interned by nobody can't be in the index; kNullValueId is absent
  // too since no row is NULL.
  EXPECT_TRUE(index.Lookup1(kNullValueId).empty());
  EXPECT_TRUE(index.Lookup({kNullValueId}).empty());
}

TEST(HashIndexLookup, MultiColumnDuplicateKeys) {
  // (1,10) appears at rows 0, 3; (1,20) at row 1; (2,10) at row 2.
  Table t = MakeTable({{1, 10}, {1, 20}, {2, 10}, {1, 10}});
  HashIndex index(t, {0, 1});
  EXPECT_EQ(index.num_keys(), 3u);
  auto key = [&](RowId r) {
    return std::vector<ValueId>{t.column(0).at(r), t.column(1).at(r)};
  };
  EXPECT_EQ(index.Lookup(key(0)), (std::vector<RowId>{0, 3}));
  EXPECT_EQ(index.Lookup(key(1)), (std::vector<RowId>{1}));
  EXPECT_EQ(index.Lookup(key(2)), (std::vector<RowId>{2}));
  // Mixed key (2, 20) matches no row even though each part occurs somewhere.
  EXPECT_TRUE(index.Lookup({t.column(0).at(2), t.column(1).at(1)}).empty());
}

TEST(HashIndexLookup, EmptyTable) {
  Table t = MakeTable({});
  HashIndex single(t, {0});
  HashIndex multi(t, {0, 1});
  EXPECT_EQ(single.num_keys(), 0u);
  EXPECT_EQ(multi.num_keys(), 0u);
  EXPECT_TRUE(single.Lookup1(kNullValueId).empty());
  EXPECT_TRUE(multi.Lookup({kNullValueId, kNullValueId}).empty());
}

TEST(HashIndexLookup, NullIdsAreIndexedLikeValues) {
  Table t("t", std::make_shared<Dictionary>());
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  HashIndex index(t, {0});
  EXPECT_EQ(index.Lookup1(kNullValueId), (std::vector<RowId>{0, 2}));
}

}  // namespace
}  // namespace fastqre
