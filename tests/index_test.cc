// Unit tests for HashIndex lookup behavior: the Lookup1 single-column fast
// path, multi-column lookups over duplicate keys, and empty tables.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/index.h"
#include "storage/table.h"

namespace fastqre {
namespace {

Table MakeTable(const std::vector<std::pair<int64_t, int64_t>>& rows) {
  Table t("t", std::make_shared<Dictionary>());
  EXPECT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("b", ValueType::kInt64).ok());
  for (const auto& [a, b] : rows) {
    EXPECT_TRUE(t.AppendRow({Value(a), Value(b)}).ok());
  }
  return t;
}

TEST(HashIndexLookup, Lookup1MatchesLookupOnSingleColumn) {
  Table t = MakeTable({{1, 10}, {2, 20}, {1, 30}, {3, 10}, {1, 10}});
  HashIndex index(t, {0});
  for (RowId r = 0; r < t.num_rows(); ++r) {
    ValueId key = t.column(0).at(r);
    EXPECT_EQ(index.Lookup1(key), index.Lookup({key}));
  }
  // Duplicate key 1 maps to all three of its rows, in row order.
  ValueId one = t.column(0).at(0);
  EXPECT_EQ(index.Lookup1(one), (std::vector<RowId>{0, 2, 4}));
}

TEST(HashIndexLookup, Lookup1MissReturnsEmpty) {
  Table t = MakeTable({{1, 10}});
  HashIndex index(t, {0});
  // An id interned by nobody can't be in the index; kNullValueId is absent
  // too since no row is NULL.
  EXPECT_TRUE(index.Lookup1(kNullValueId).empty());
  EXPECT_TRUE(index.Lookup({kNullValueId}).empty());
}

TEST(HashIndexLookup, MultiColumnDuplicateKeys) {
  // (1,10) appears at rows 0, 3; (1,20) at row 1; (2,10) at row 2.
  Table t = MakeTable({{1, 10}, {1, 20}, {2, 10}, {1, 10}});
  HashIndex index(t, {0, 1});
  EXPECT_EQ(index.num_keys(), 3u);
  auto key = [&](RowId r) {
    return std::vector<ValueId>{t.column(0).at(r), t.column(1).at(r)};
  };
  EXPECT_EQ(index.Lookup(key(0)), (std::vector<RowId>{0, 3}));
  EXPECT_EQ(index.Lookup(key(1)), (std::vector<RowId>{1}));
  EXPECT_EQ(index.Lookup(key(2)), (std::vector<RowId>{2}));
  // Mixed key (2, 20) matches no row even though each part occurs somewhere.
  EXPECT_TRUE(index.Lookup({t.column(0).at(2), t.column(1).at(1)}).empty());
}

TEST(HashIndexLookup, EmptyTable) {
  Table t = MakeTable({});
  HashIndex single(t, {0});
  HashIndex multi(t, {0, 1});
  EXPECT_EQ(single.num_keys(), 0u);
  EXPECT_EQ(multi.num_keys(), 0u);
  EXPECT_TRUE(single.Lookup1(kNullValueId).empty());
  EXPECT_TRUE(multi.Lookup({kNullValueId, kNullValueId}).empty());
}

// --- LookupBatch (vectorized probes, DESIGN.md §12) ------------------------

// Flattens a BatchMatches back into per-key vectors for comparison.
std::vector<std::vector<RowId>> Extents(const BatchMatches& m) {
  std::vector<std::vector<RowId>> out(m.num_keys());
  for (size_t i = 0; i < m.num_keys(); ++i) {
    out[i].assign(m.begin_of(i), m.end_of(i));
  }
  return out;
}

TEST(HashIndexLookupBatch, MatchesLookup1OnSingleColumn) {
  Table t = MakeTable({{1, 10}, {2, 20}, {1, 30}, {3, 10}, {1, 10}});
  HashIndex index(t, {0});
  // Batch of every row's key, including duplicates adjacent (rows 2 and 4
  // repeat key 1 — the memoized-duplicate fast path) and one guaranteed
  // miss at the end.
  std::vector<ValueId> keys;
  for (RowId r = 0; r < t.num_rows(); ++r) keys.push_back(t.column(0).at(r));
  keys.push_back(kNullValueId);
  BatchMatches out;
  EXPECT_EQ(index.LookupBatch(keys.data(), keys.size(), &out), keys.size());
  ASSERT_EQ(out.num_keys(), keys.size());
  auto extents = Extents(out);
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    EXPECT_EQ(extents[i], index.Lookup1(keys[i])) << "key " << i;
  }
  EXPECT_TRUE(extents.back().empty());  // the miss
}

TEST(HashIndexLookupBatch, MatchesLookupOnMultiColumn) {
  Table t = MakeTable({{1, 10}, {1, 20}, {2, 10}, {1, 10}});
  HashIndex index(t, {0, 1});
  // Key-major layout, width 2: every row's key plus a mixed miss (2, 20).
  std::vector<ValueId> keys;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    keys.push_back(t.column(0).at(r));
    keys.push_back(t.column(1).at(r));
  }
  keys.push_back(t.column(0).at(2));
  keys.push_back(t.column(1).at(1));
  const size_t n = keys.size() / 2;
  BatchMatches out;
  EXPECT_EQ(index.LookupBatch(keys.data(), n, &out), n);
  ASSERT_EQ(out.num_keys(), n);
  auto extents = Extents(out);
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(extents[i],
              index.Lookup({keys[2 * i], keys[2 * i + 1]}))
        << "key " << i;
  }
  EXPECT_TRUE(extents.back().empty());
}

TEST(HashIndexLookupBatch, EmptyBatchAndAllMisses) {
  Table t = MakeTable({{1, 10}, {2, 20}});
  HashIndex index(t, {0});
  BatchMatches out;
  EXPECT_EQ(index.LookupBatch(nullptr, 0, &out), 0u);
  EXPECT_EQ(out.num_keys(), 0u);
  EXPECT_TRUE(out.rows.empty());
  // All-miss batch: every key absent, every extent empty, offsets intact.
  std::vector<ValueId> misses(5, kNullValueId);
  EXPECT_EQ(index.LookupBatch(misses.data(), misses.size(), &out),
            misses.size());
  ASSERT_EQ(out.num_keys(), misses.size());
  EXPECT_TRUE(out.rows.empty());
  for (size_t i = 0; i < out.num_keys(); ++i) {
    EXPECT_EQ(out.begin_of(i), out.end_of(i));
  }
}

TEST(HashIndexLookupBatch, MaxRowsStopsBetweenKeysNeverSplitsOne) {
  // Key 1 has three matching rows; key 2 has one; key 3 has one.
  Table t = MakeTable({{1, 10}, {1, 20}, {1, 30}, {2, 40}, {3, 50}});
  HashIndex index(t, {0});
  std::vector<ValueId> keys = {t.column(0).at(0), t.column(0).at(3),
                               t.column(0).at(4)};
  // A cap smaller than key 1's extent still consumes key 1 whole (progress
  // guarantee: >= 1 key per call), but stops before key 2.
  BatchMatches out;
  EXPECT_EQ(index.LookupBatch(keys.data(), keys.size(), &out, 2), 1u);
  ASSERT_EQ(out.num_keys(), 1u);
  EXPECT_EQ(Extents(out)[0], index.Lookup1(keys[0]));
  // Resuming from the consumed prefix drains the rest.
  EXPECT_EQ(index.LookupBatch(keys.data() + 1, keys.size() - 1, &out, 2), 2u);
  EXPECT_EQ(out.num_keys(), 2u);
  // A cap of zero means unlimited.
  EXPECT_EQ(index.LookupBatch(keys.data(), keys.size(), &out, 0), 3u);
  EXPECT_EQ(out.num_keys(), 3u);
  EXPECT_EQ(out.rows.size(), 5u);
}

TEST(HashIndexLookupBatch, DuplicateKeysInOneMorsel) {
  Table t = MakeTable({{1, 10}, {2, 20}, {1, 30}});
  HashIndex index(t, {0});
  ValueId one = t.column(0).at(0);
  ValueId two = t.column(0).at(1);
  // Adjacent and non-adjacent duplicates both reproduce the full extent.
  std::vector<ValueId> keys = {one, one, two, one};
  BatchMatches out;
  EXPECT_EQ(index.LookupBatch(keys.data(), keys.size(), &out), keys.size());
  auto extents = Extents(out);
  EXPECT_EQ(extents[0], (std::vector<RowId>{0, 2}));
  EXPECT_EQ(extents[1], (std::vector<RowId>{0, 2}));
  EXPECT_EQ(extents[2], (std::vector<RowId>{1}));
  EXPECT_EQ(extents[3], (std::vector<RowId>{0, 2}));
}

TEST(HashIndexLookup, NullIdsAreIndexedLikeValues) {
  Table t("t", std::make_shared<Dictionary>());
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  HashIndex index(t, {0});
  EXPECT_EQ(index.Lookup1(kNullValueId), (std::vector<RowId>{0, 2}));
}

}  // namespace
}  // namespace fastqre
