// Unit tests for ranked column-mapping enumeration (Section 4.3).
#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/mapping.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

struct MappingFixture {
  Database db;
  Table rout;
  QreOptions opts;
  QreStats stats;
  ColumnCover cover;
  CgmSet cgms;

  MappingFixture(Database d, Table r, QreOptions o = QreOptions())
      : db(std::move(d)), rout(std::move(r)), opts(o) {
    cover = ComputeColumnCover(db, rout, opts, &stats);
    cgms = DiscoverCgms(db, rout, cover, opts, &stats);
  }

  std::vector<ColumnMapping> Enumerate(int limit) {
    MappingEnumerator e(&db, &rout, &cover,
                        opts.use_cgm_ranking ? &cgms : nullptr, &opts);
    std::vector<ColumnMapping> out;
    ColumnMapping m;
    while (static_cast<int>(out.size()) < limit && e.Next(&m)) {
      out.push_back(m);
    }
    return out;
  }
};

// A two-table fixture where the correct mapping is unambiguous.
MappingFixture SupplierNationFixture() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 13}).ValueOrDie();
  QueryBuilder b(&db);
  InstanceId s = b.Instance("supplier");
  InstanceId n = b.Instance("nation");
  b.Join(s, "s_nationkey", n, "n_nationkey");
  b.Project(s, "s_name");
  b.Project(n, "n_name");
  PJQuery q = b.Build().ValueOrDie();
  Table rout = ExecuteToTable(db, q, "rout", {"c0", "c1"}).ValueOrDie();
  return MappingFixture(std::move(db), std::move(rout));
}

TEST(Mapping, FirstMappingIsCorrectForUnambiguousCase) {
  MappingFixture f = SupplierNationFixture();
  auto mappings = f.Enumerate(1);
  ASSERT_EQ(mappings.size(), 1u);
  const ColumnMapping& m = mappings[0];
  ASSERT_EQ(m.NumInstances(), 2u);
  // c0 -> supplier.s_name, c1 -> nation.n_name.
  const auto& [i0, col0] = m.slots[0];
  const auto& [i1, col1] = m.slots[1];
  EXPECT_EQ(f.db.table(m.instances[i0].table).name(), "supplier");
  EXPECT_EQ(f.db.table(m.instances[i0].table).column(col0).name(), "s_name");
  EXPECT_EQ(f.db.table(m.instances[i1].table).name(), "nation");
  EXPECT_EQ(f.db.table(m.instances[i1].table).column(col1).name(), "n_name");
}

// An ambiguous fixture: small-integer key columns are contained in many
// database columns, so many mappings exist.
MappingFixture KeysFixture() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 13}).ValueOrDie();
  QueryBuilder b(&db);
  InstanceId n = b.Instance("nation");
  b.Project(n, "n_nationkey");
  b.Project(n, "n_regionkey");
  PJQuery q = b.Build().ValueOrDie();
  Table rout = ExecuteToTable(db, q, "rout", {"c0", "c1"}).ValueOrDie();
  return MappingFixture(std::move(db), std::move(rout));
}

TEST(Mapping, SingleMatchColumnsYieldOneMapping) {
  // s_name / n_name are 1-match columns: exactly one mapping exists.
  MappingFixture f = SupplierNationFixture();
  EXPECT_EQ(f.Enumerate(20).size(), 1u);
}

TEST(Mapping, RankedByInstanceCountThenScore) {
  MappingFixture f = KeysFixture();
  auto mappings = f.Enumerate(20);
  ASSERT_GT(mappings.size(), 1u);
  for (size_t i = 1; i < mappings.size(); ++i) {
    EXPECT_LE(mappings[i - 1].NumInstances(), mappings[i].NumInstances());
    if (mappings[i - 1].NumInstances() == mappings[i].NumInstances()) {
      EXPECT_GE(mappings[i - 1].score + 1e-9, mappings[i].score);
    }
  }
}

TEST(Mapping, EmittedMappingsAreDistinct) {
  MappingFixture f = SupplierNationFixture();
  auto mappings = f.Enumerate(30);
  std::set<std::vector<std::pair<int, ColumnId>>> sigs;
  for (const auto& m : mappings) {
    EXPECT_TRUE(sigs.insert(m.slots).second) << "duplicate mapping emitted";
  }
}

TEST(Mapping, SlotsCoverEveryColumnConsistently) {
  MappingFixture f = SupplierNationFixture();
  for (const auto& m : f.Enumerate(10)) {
    ASSERT_EQ(m.slots.size(), f.rout.num_columns());
    for (ColumnId c = 0; c < m.slots.size(); ++c) {
      const auto& [inst, db_col] = m.slots[c];
      ASSERT_GE(inst, 0);
      ASSERT_LT(static_cast<size_t>(inst), m.instances.size());
      // The instance's own column list must agree with the slot.
      bool found = false;
      for (const auto& [oc, dc] : m.instances[inst].columns) {
        if (oc == c && dc == db_col) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Mapping, PaperQuery1NeedsThreeInstancesFirst) {
  // For paper Query 1's R_out, the top-ranked mapping must use three
  // projection table instances (S, S2, PS) with the two certain supplier
  // CGMs — the paper's Section 4.3 walkthrough.
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();
  MappingFixture f(std::move(db), std::move(rout));
  auto mappings = f.Enumerate(1);
  ASSERT_EQ(mappings.size(), 1u);
  const ColumnMapping& m = mappings[0];
  EXPECT_EQ(m.NumInstances(), 3u);
  int suppliers = 0, partsupps = 0;
  for (const auto& inst : m.instances) {
    std::string name = f.db.table(inst.table).name();
    if (name == "supplier") ++suppliers;
    if (name == "partsupp") ++partsupps;
  }
  EXPECT_EQ(suppliers, 2);
  EXPECT_EQ(partsupps, 1);
  // Column C (availqty) maps to partsupp.ps_availqty — the paper notes the
  // Jaccard criterion picks it over custkey/partkey options.
  const auto& [ci, cc] = m.slots[2];
  EXPECT_EQ(f.db.table(m.instances[ci].table).name(), "partsupp");
  EXPECT_EQ(f.db.table(m.instances[ci].table).column(cc).name(),
            "ps_availqty");
}

TEST(Mapping, GroupingRequiresACgm) {
  // Two R_out columns generated from two *different* instances of the same
  // table must not be grouped into one instance when no CGM supports it.
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 21}).ValueOrDie();
  PJQuery q2 = BuildPaperQuery2(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q2, "rout", {"A", "B", "D", "E"}).ValueOrDie();
  MappingFixture f(std::move(db), std::move(rout));
  auto mappings = f.Enumerate(1);
  ASSERT_EQ(mappings.size(), 1u);
  // (A,B) and (D,E) are suppkey/name pairs of two distinct suppliers; a
  // single instance cannot generate all four columns.
  EXPECT_EQ(mappings[0].NumInstances(), 2u);
  EXPECT_NE(mappings[0].slots[0].first, mappings[0].slots[2].first);
}

TEST(Mapping, NaiveModeEnumeratesWithoutCgms) {
  MappingFixture f = SupplierNationFixture();
  f.opts.use_cgm_ranking = false;
  auto mappings = f.Enumerate(5);
  ASSERT_GT(mappings.size(), 0u);
  for (const auto& m : f.Enumerate(5)) {
    for (const auto& inst : m.instances) {
      EXPECT_EQ(inst.cgm_index, -1);
    }
  }
}

TEST(Mapping, StateBudgetStopsEnumeration) {
  MappingFixture f = SupplierNationFixture();
  f.opts.max_mapping_states = 1;
  MappingEnumerator e(&f.db, &f.rout, &f.cover, &f.cgms, &f.opts);
  ColumnMapping m;
  int produced = 0;
  while (e.Next(&m)) ++produced;
  EXPECT_EQ(produced, 0);
  EXPECT_EQ(e.states_expanded(), 1u);
}

TEST(Mapping, ToStringIsInformative) {
  MappingFixture f = SupplierNationFixture();
  auto mappings = f.Enumerate(1);
  std::string s = mappings[0].ToString(f.db, f.rout);
  EXPECT_NE(s.find("supplier"), std::string::npos);
  EXPECT_NE(s.find("score="), std::string::npos);
}

}  // namespace
}  // namespace fastqre
