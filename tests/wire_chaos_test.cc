// Wire-layer fault-tolerance tests (DESIGN.md §15.5): connection deadlines,
// load shedding, adversarial byte streams, resumable sequence-numbered
// streams via attach, idempotent submits, and the deterministic socket
// chaos sites (wire-accept / wire-read / wire-write). Each scenario asserts
// the server answers with typed errors or drops the connection — never
// hangs, crashes, or leaks a connection thread (the registry must return
// to baseline; a wedged thread would hang Stop() and trip the ctest
// timeout).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "server/server.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

/// Minimal blocking test client. Unlike server_test's helper, EOF and
/// framing errors are plain return values, not test failures — chaos tests
/// expect both.
class ChaosClient {
 public:
  explicit ChaosClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~ChaosClient() { Close(); }

  bool connected() const { return connected_; }
  bool framing_error() const { return framing_error_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t rc = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(rc);
    }
    return true;
  }

  bool Send(const Request& req) {
    return SendRaw(EncodeFrame(SerializeRequest(req)));
  }

  /// Next frame payload; false on EOF, reset, or a framing error (the
  /// latter also sets framing_error()).
  bool ReceiveFrame(std::string* payload) {
    char buf[4096];
    for (;;) {
      Result<bool> next = reader_.Next(payload);
      if (!next.ok()) {
        framing_error_ = true;
        return false;
      }
      if (*next) return true;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      reader_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// Parsed next response; fails the test on EOF (use where the connection
  /// is supposed to be healthy).
  Response Receive() {
    std::string payload;
    EXPECT_TRUE(ReceiveFrame(&payload)) << "connection closed";
    return ParseResponse(payload).ValueOrDie();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool framing_error_ = false;
  FrameReader reader_;
};

/// One streamed job as observed on the wire: raw answer payloads by
/// sequence number, plus the terminal frame.
struct ObservedStream {
  uint64_t job_id = 0;
  std::vector<std::string> answer_payloads;  // index == seq
  std::vector<uint64_t> seqs;
  bool done = false;
  uint64_t done_answers = 0;
  JobState done_state = JobState::kQueued;
};

/// Reads a stream until done / EOF, asserting sequence numbers are exactly
/// `first_seq, first_seq + 1, ...` with no gaps.
ObservedStream DrainStream(ChaosClient* client, uint64_t first_seq) {
  ObservedStream out;
  std::string payload;
  uint64_t expect_seq = first_seq;
  while (client->ReceiveFrame(&payload)) {
    const Response resp = ParseResponse(payload).ValueOrDie();
    if (resp.kind == Response::Kind::kAccepted) {
      out.job_id = resp.job_id;
      continue;
    }
    if (resp.kind == Response::Kind::kAnswer) {
      EXPECT_EQ(resp.seq, expect_seq) << "gap in answer stream";
      ++expect_seq;
      out.seqs.push_back(resp.seq);
      out.answer_payloads.push_back(payload);
      continue;
    }
    if (resp.kind == Response::Kind::kDone) {
      out.done = true;
      out.done_answers = resp.answers;
      out.done_state = resp.state;
    }
    break;
  }
  return out;
}

class WireChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
    JobManagerConfig config;
    config.worker_threads = 2;
    config.admission.max_in_flight_jobs = 16;
    manager_ = std::make_unique<JobManager>(config);
    ASSERT_TRUE(manager_->AttachDatabase("tpch", &db_).ok());
  }

  void TearDown() override {
    for (auto& server : servers_) server->Stop();
    manager_->Shutdown();
  }

  /// Starts a server over the shared manager (several may coexist — a
  /// chaos-injecting front end and a clean one both serving the same jobs).
  Server* StartServer(ServerConfig config) {
    servers_.push_back(std::make_unique<Server>(manager_.get(), config));
    Server* server = servers_.back().get();
    EXPECT_TRUE(server->Start().ok());
    EXPECT_NE(server->port(), 0);
    return server;
  }

  Request Submit(const std::string& workload_name, int limit = 1) const {
    const WorkloadQuery* wq = nullptr;
    for (const auto& q : workload_) {
      if (q.name == workload_name) wq = &q;
    }
    EXPECT_NE(wq, nullptr);
    Request req;
    req.verb = Verb::kSubmit;
    req.db = "tpch";
    req.rout_csv = TableToCsv(wq->rout);
    req.options.limit = limit;
    return req;
  }

  static Request Attach(uint64_t job_id, uint64_t cursor) {
    Request req;
    req.verb = Verb::kAttach;
    req.job_id = job_id;
    req.cursor = cursor;
    return req;
  }

  /// Polls until the server's connection registry drains — the
  /// thread-reclamation baseline every chaos scenario must return to.
  static void ExpectConnectionsDrain(const Server& server) {
    for (int i = 0; i < 200; ++i) {
      if (server.active_connections() == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    FAIL() << "connections never drained: " << server.active_connections()
           << " still registered";
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
  std::unique_ptr<JobManager> manager_;
  std::vector<std::unique_ptr<Server>> servers_;
};

// ---- Spec plumbing ---------------------------------------------------------

TEST_F(WireChaosTest, WireFaultKindsParse) {
  EXPECT_TRUE(FaultInjector::Parse("wire-write=short-write").ok());
  EXPECT_TRUE(FaultInjector::Parse("wire-read=reset@3").ok());
  EXPECT_TRUE(FaultInjector::Parse("wire-accept=stall,wire-write=garbage@2")
                  .ok());
  EXPECT_FALSE(FaultInjector::Parse("wire-write=explode").ok());
  EXPECT_FALSE(FaultInjector::Parse("wire-write=reset@5..2").ok());
  EXPECT_FALSE(FaultInjector::Parse("wire-write=reset@2..x").ok());

  // Windowed rules fire on hits [n, m] only — what makes a destructive
  // kind like reset recoverable within one server's lifetime.
  auto windowed = FaultInjector::Parse("w=reset@2..3").ValueOrDie();
  EXPECT_FALSE(windowed->Hit("w").reset);  // hit 1
  EXPECT_TRUE(windowed->Hit("w").reset);   // hit 2
  EXPECT_TRUE(windowed->Hit("w").reset);   // hit 3
  EXPECT_FALSE(windowed->Hit("w").reset);  // hit 4

  // A malformed spec fails Start(), not silently serves without chaos.
  ServerConfig config;
  config.fault_spec = "wire-write=explode";
  Server server(manager_.get(), config);
  EXPECT_FALSE(server.Start().ok());
}

// ---- ping ------------------------------------------------------------------

TEST_F(WireChaosTest, PingReportsServerLoad) {
  Server* server = StartServer(ServerConfig{});
  ChaosClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Submit("L01")));
  const ObservedStream stream = DrainStream(&client, 0);
  ASSERT_TRUE(stream.done);

  Request ping;
  ping.verb = Verb::kPing;
  ASSERT_TRUE(client.Send(ping));
  const Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kPong);
  EXPECT_GE(resp.pong.uptime_seconds, 0.0);
  EXPECT_GE(resp.pong.active_connections, 1u);  // at least this connection
  EXPECT_EQ(resp.pong.shed_connections, 0u);
  EXPECT_GE(resp.pong.jobs_done, 1u);
  EXPECT_EQ(resp.pong.jobs_failed, 0u);
}

// ---- Load shedding ---------------------------------------------------------

TEST_F(WireChaosTest, ConnectionsOverCapGetTypedOverloaded) {
  ServerConfig config;
  config.max_connections = 2;
  Server* server = StartServer(config);

  ChaosClient c1(server->port()), c2(server->port());
  ASSERT_TRUE(c1.connected());
  ASSERT_TRUE(c2.connected());
  // Registration happens on the acceptor thread; wait for both.
  for (int i = 0; i < 100 && server->active_connections() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server->active_connections(), 2u);

  ChaosClient c3(server->port());
  ASSERT_TRUE(c3.connected());
  std::string payload;
  ASSERT_TRUE(c3.ReceiveFrame(&payload));
  const Response resp = ParseResponse(payload).ValueOrDie();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kOverloaded);
  EXPECT_TRUE(IsRetryableWireError(resp.error));
  EXPECT_FALSE(c3.ReceiveFrame(&payload));  // then EOF
  EXPECT_EQ(server->shed_connections(), 1u);

  // Capacity frees as connections end: close one, the next client serves.
  c1.Close();
  for (int i = 0; i < 100 && server->active_connections() >= 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ChaosClient c4(server->port());
  ASSERT_TRUE(c4.connected());
  Request ping;
  ping.verb = Verb::kPing;
  ASSERT_TRUE(c4.Send(ping));
  EXPECT_EQ(c4.Receive().kind, Response::Kind::kPong);
}

// ---- Deadlines -------------------------------------------------------------

TEST_F(WireChaosTest, IdleConnectionGetsTypedTimeoutThenClose) {
  ServerConfig config;
  config.idle_timeout_ms = 200;
  Server* server = StartServer(config);

  ChaosClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string payload;
  ASSERT_TRUE(client.ReceiveFrame(&payload));  // blocks ~200ms, then frame
  const Response resp = ParseResponse(payload).ValueOrDie();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kTimeout);
  EXPECT_FALSE(client.ReceiveFrame(&payload));  // then EOF
  ExpectConnectionsDrain(*server);
}

TEST_F(WireChaosTest, SingleByteTrickleStillServedWhileNotIdle) {
  ServerConfig config;
  config.idle_timeout_ms = 500;
  Server* server = StartServer(config);

  ChaosClient client(server->port());
  ASSERT_TRUE(client.connected());
  Request req;
  req.verb = Verb::kListDbs;
  const std::string frame = EncodeFrame(SerializeRequest(req));
  // Trickle one byte at a time: each byte resets the idle clock, so a slow
  // but live client is served, not timed out.
  for (char byte : frame) {
    ASSERT_TRUE(client.SendRaw(std::string(1, byte)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kDbList);
  ASSERT_EQ(resp.dbs.size(), 1u);
}

// ---- Adversarial bytes -----------------------------------------------------

TEST_F(WireChaosTest, AdversarialBytesGetTypedErrorsOrDropsNeverWedge) {
  ServerConfig config;
  config.idle_timeout_ms = 300;  // bounds the truncated-frame case
  Server* server = StartServer(config);
  Rng rng(17);

  {
    // Oversize length prefix: typed error, then drop.
    ChaosClient client(server->port());
    ASSERT_TRUE(client.connected());
    const char evil[4] = {'\x7f', '\xff', '\xff', '\xff'};
    ASSERT_TRUE(client.SendRaw(std::string(evil, 4)));
    std::string payload;
    ASSERT_TRUE(client.ReceiveFrame(&payload));
    const Response resp = ParseResponse(payload).ValueOrDie();
    ASSERT_EQ(resp.kind, Response::Kind::kError);
    EXPECT_EQ(resp.error, WireError::kInvalidArgument);
    EXPECT_FALSE(client.ReceiveFrame(&payload));
  }
  {
    // Truncated frame (header promises more than ever arrives): the server
    // must not wait forever — the idle deadline reaps the connection.
    ChaosClient client(server->port());
    ASSERT_TRUE(client.connected());
    const char header[4] = {'\x00', '\x00', '\x01', '\x00'};  // 256 bytes
    ASSERT_TRUE(client.SendRaw(std::string(header, 4) + "only a few"));
    std::string payload;
    ASSERT_TRUE(client.ReceiveFrame(&payload));
    const Response resp = ParseResponse(payload).ValueOrDie();
    ASSERT_EQ(resp.kind, Response::Kind::kError);
    EXPECT_EQ(resp.error, WireError::kTimeout);
    EXPECT_FALSE(client.ReceiveFrame(&payload));
  }
  {
    // A valid request interleaved with a garbage frame: the valid one is
    // answered, the garbage one gets a typed error (valid length prefix,
    // unparseable JSON payload keeps the connection recoverable).
    ChaosClient client(server->port());
    ASSERT_TRUE(client.connected());
    std::string junk(32, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(256));
    Request req;
    req.verb = Verb::kListDbs;
    ASSERT_TRUE(client.SendRaw(EncodeFrame(junk)));
    ASSERT_TRUE(client.Send(req));
    Response resp = client.Receive();
    ASSERT_EQ(resp.kind, Response::Kind::kError);
    EXPECT_EQ(resp.error, WireError::kInvalidArgument);
    resp = client.Receive();
    ASSERT_EQ(resp.kind, Response::Kind::kDbList);
  }
  {
    // Seeded random byte soup, several rounds: any mix of typed errors and
    // drops is acceptable; a hang or crash is not.
    for (int round = 0; round < 4; ++round) {
      ChaosClient client(server->port());
      ASSERT_TRUE(client.connected());
      std::string soup(64 + rng.Uniform(192), '\0');
      for (char& c : soup) c = static_cast<char>(rng.Uniform(256));
      client.SendRaw(soup);
      std::string payload;
      while (client.ReceiveFrame(&payload)) {
        EXPECT_EQ(ParseResponse(payload).ValueOrDie().kind,
                  Response::Kind::kError);
      }
    }
  }

  // Thread-reclamation baseline: every adversarial connection above ends
  // reaped, and the server still serves.
  ExpectConnectionsDrain(*server);
  ChaosClient healthy(server->port());
  ASSERT_TRUE(healthy.connected());
  Request ping;
  ping.verb = Verb::kPing;
  ASSERT_TRUE(healthy.Send(ping));
  EXPECT_EQ(healthy.Receive().kind, Response::Kind::kPong);
}

// ---- attach / resumable streams --------------------------------------------

TEST_F(WireChaosTest, AttachReplaysFinishedJobByteIdentical) {
  Server* server = StartServer(ServerConfig{});
  ChaosClient submitter(server->port());
  ASSERT_TRUE(submitter.connected());
  ASSERT_TRUE(submitter.Send(Submit("L01", /*limit=*/2)));
  const ObservedStream original = DrainStream(&submitter, 0);
  ASSERT_TRUE(original.done);
  ASSERT_FALSE(original.answer_payloads.empty());
  EXPECT_EQ(original.done_answers, original.answer_payloads.size());

  // Full replay from 0: byte-identical answer frames, same terminal.
  ChaosClient replayer(server->port());
  ASSERT_TRUE(replayer.connected());
  ASSERT_TRUE(replayer.Send(Attach(original.job_id, 0)));
  const ObservedStream replay = DrainStream(&replayer, 0);
  ASSERT_TRUE(replay.done);
  EXPECT_EQ(replay.job_id, original.job_id);
  EXPECT_EQ(replay.answer_payloads, original.answer_payloads);
  EXPECT_EQ(replay.done_answers, original.done_answers);
  EXPECT_EQ(replay.done_state, original.done_state);

  // Partial resume from cursor 1: exactly the tail, sequence picks up at 1.
  ChaosClient resumer(server->port());
  ASSERT_TRUE(resumer.connected());
  ASSERT_TRUE(resumer.Send(Attach(original.job_id, 1)));
  const ObservedStream tail = DrainStream(&resumer, 1);
  ASSERT_TRUE(tail.done);
  EXPECT_EQ(tail.answer_payloads.size(), original.answer_payloads.size() - 1);
  for (size_t i = 0; i < tail.answer_payloads.size(); ++i) {
    EXPECT_EQ(tail.answer_payloads[i], original.answer_payloads[i + 1]);
  }
  EXPECT_EQ(tail.done_answers, original.done_answers);

  // attach to a job that never existed: one clean typed NotFound.
  ChaosClient lost(server->port());
  ASSERT_TRUE(lost.connected());
  ASSERT_TRUE(lost.Send(Attach(424242, 0)));
  const Response resp = lost.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kNotFound);
}

TEST_F(WireChaosTest, ResetMidStreamThenAttachResumesGapFree) {
  // The chaos front end resets the connection at its 3rd frame write
  // (accepted, one answer, then RST); a clean front end over the same
  // manager serves the resume — jobs outlive servers, not just sockets.
  ServerConfig chaos_config;
  chaos_config.fault_spec = "wire-write=reset@3";
  Server* chaos = StartServer(chaos_config);
  Server* clean = StartServer(ServerConfig{});

  ChaosClient client(chaos->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Submit("L01", /*limit=*/2)));
  const ObservedStream broken = DrainStream(&client, 0);
  EXPECT_FALSE(broken.done);  // the stream was cut
  ASSERT_GT(broken.job_id, 0u);

  ChaosClient resumer(clean->port());
  ASSERT_TRUE(resumer.connected());
  const uint64_t cursor = broken.answer_payloads.size();
  ASSERT_TRUE(resumer.Send(Attach(broken.job_id, cursor)));
  const ObservedStream rest = DrainStream(&resumer, cursor);
  ASSERT_TRUE(rest.done);
  // Gap-free across the reconnect: the two fragments tile [0, total).
  EXPECT_EQ(broken.answer_payloads.size() + rest.answer_payloads.size(),
            rest.done_answers);
  ExpectConnectionsDrain(*chaos);
}

TEST_F(WireChaosTest, ShortWritesReassembleByteIdentical) {
  ServerConfig chaos_config;
  chaos_config.fault_spec = "wire-write=short-write";
  Server* chaos = StartServer(chaos_config);
  Server* clean = StartServer(ServerConfig{});

  ChaosClient trickled(chaos->port());
  ASSERT_TRUE(trickled.connected());
  ASSERT_TRUE(trickled.Send(Submit("L01", /*limit=*/2)));
  const ObservedStream chaos_stream = DrainStream(&trickled, 0);
  ASSERT_TRUE(chaos_stream.done);
  ASSERT_FALSE(chaos_stream.answer_payloads.empty());

  // The same stream through a clean server is byte-identical: 1-byte
  // writes change packetization, never content.
  ChaosClient replayer(clean->port());
  ASSERT_TRUE(replayer.connected());
  ASSERT_TRUE(replayer.Send(Attach(chaos_stream.job_id, 0)));
  const ObservedStream replay = DrainStream(&replayer, 0);
  ASSERT_TRUE(replay.done);
  EXPECT_EQ(replay.answer_payloads, chaos_stream.answer_payloads);
}

TEST_F(WireChaosTest, GarbageOnReadSurfacesTypedFramingError) {
  ServerConfig config;
  config.fault_spec = "wire-read=garbage@1";
  Server* server = StartServer(config);

  ChaosClient client(server->port());
  ASSERT_TRUE(client.connected());
  Request req;
  req.verb = Verb::kListDbs;
  ASSERT_TRUE(client.Send(req));
  // The injected garbage corrupts the inbound stream ahead of the valid
  // frame: a typed framing error, then drop — never a wedged parse.
  std::string payload;
  ASSERT_TRUE(client.ReceiveFrame(&payload));
  const Response resp = ParseResponse(payload).ValueOrDie();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kInvalidArgument);
  EXPECT_FALSE(client.ReceiveFrame(&payload));
  ExpectConnectionsDrain(*server);
}

TEST_F(WireChaosTest, StallFaultDelaysButStillServes) {
  ServerConfig config;
  config.fault_spec = "wire-read=stall,wire-accept=stall";
  Server* server = StartServer(config);

  ChaosClient client(server->port());
  ASSERT_TRUE(client.connected());
  Request req;
  req.verb = Verb::kListDbs;
  ASSERT_TRUE(client.Send(req));
  const Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kDbList);
}

// ---- Dropped clients -------------------------------------------------------

TEST_F(WireChaosTest, DropperMidStreamFreesThreadJobSurvives) {
  Server* server = StartServer(ServerConfig{});
  uint64_t job_id = 0;
  {
    ChaosClient dropper(server->port());
    ASSERT_TRUE(dropper.connected());
    ASSERT_TRUE(dropper.Send(Submit("L10", /*limit=*/50)));
    std::string payload;
    ASSERT_TRUE(dropper.ReceiveFrame(&payload));
    const Response accepted = ParseResponse(payload).ValueOrDie();
    ASSERT_EQ(accepted.kind, Response::Kind::kAccepted);
    job_id = accepted.job_id;
    // Vanish mid-stream (destructor closes the socket).
  }
  // The streaming thread must notice the EOF and self-reap long before the
  // job finishes — a dropper costs a connection slot, not a worker-lifetime
  // thread.
  ExpectConnectionsDrain(*server);
  const Result<WireJobStatus> status = manager_->GetStatus(job_id);
  ASSERT_TRUE(status.ok());  // the job itself survived the dropper
  ASSERT_TRUE(manager_->Cancel(job_id).ok());
}

// ---- Idempotent submits ----------------------------------------------------

TEST_F(WireChaosTest, IdempotentSubmitNeverDoubleAdmits) {
  Server* server = StartServer(ServerConfig{});

  Request keyed = Submit("L01", /*limit=*/2);
  keyed.idempotency_key = "retry-abc";
  ChaosClient first(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send(keyed));
  const ObservedStream original = DrainStream(&first, 0);
  ASSERT_TRUE(original.done);

  // Retrying the same (tenant, key) returns the same job and replays its
  // stream byte-identically — no second admission, no second job.
  ChaosClient retry(server->port());
  ASSERT_TRUE(retry.connected());
  ASSERT_TRUE(retry.Send(keyed));
  const ObservedStream replay = DrainStream(&retry, 0);
  ASSERT_TRUE(replay.done);
  EXPECT_EQ(replay.job_id, original.job_id);
  EXPECT_EQ(replay.answer_payloads, original.answer_payloads);

  // A different key is a different job.
  Request other = keyed;
  other.idempotency_key = "retry-def";
  ChaosClient fresh(server->port());
  ASSERT_TRUE(fresh.connected());
  ASSERT_TRUE(fresh.Send(other));
  const ObservedStream second = DrainStream(&fresh, 0);
  ASSERT_TRUE(second.done);
  EXPECT_NE(second.job_id, original.job_id);

  // Exactly two jobs exist in the manager, both done.
  const JobManager::JobStateCounts counts = manager_->CountJobsByState();
  EXPECT_EQ(counts.queued + counts.running + counts.done + counts.cancelled +
                counts.failed,
            2u);
}

TEST_F(WireChaosTest, ConcurrentSameKeySubmitsAdmitExactlyOneJob) {
  Server* server = StartServer(ServerConfig{});
  constexpr int kRacers = 4;
  std::atomic<uint64_t> job_ids[kRacers];
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kRacers; ++i) {
    job_ids[i].store(0, std::memory_order_relaxed);
    threads.emplace_back([this, server, &job_ids, &rejected, i] {
      Request keyed = Submit("L01");
      keyed.idempotency_key = "race-key";
      ChaosClient client(server->port());
      ASSERT_TRUE(client.connected());
      ASSERT_TRUE(client.Send(keyed));
      std::string payload;
      ASSERT_TRUE(client.ReceiveFrame(&payload));
      const Response resp = ParseResponse(payload).ValueOrDie();
      if (resp.kind == Response::Kind::kError) {
        // Lost the reservation race mid-flight: typed, retryable.
        EXPECT_EQ(resp.error, WireError::kSaturated);
        EXPECT_TRUE(IsRetryableWireError(resp.error));
        rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ASSERT_EQ(resp.kind, Response::Kind::kAccepted);
      job_ids[i].store(resp.job_id, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  // However the race resolved, every accepted racer saw the same job and
  // the manager admitted exactly one.
  uint64_t the_job = 0;
  for (int i = 0; i < kRacers; ++i) {
    const uint64_t id = job_ids[i].load(std::memory_order_relaxed);
    if (id == 0) continue;
    if (the_job == 0) the_job = id;
    EXPECT_EQ(id, the_job);
  }
  EXPECT_GE(the_job, 1u);  // at least one racer got through
  const JobManager::JobStateCounts counts = manager_->CountJobsByState();
  EXPECT_EQ(counts.queued + counts.running + counts.done + counts.cancelled +
                counts.failed,
            1u);
}

}  // namespace
}  // namespace fastqre
