// Property-based tests: invariants that must hold across many random
// database shapes and random CPJ queries (parameterized over seeds).
//
//  * Round-trip completeness: for R_out produced by a CPJ query with no
//    intermediate instances, FastQRE finds a query regenerating R_out
//    exactly.
//  * Soundness: whenever Reverse reports found, the answer regenerates
//    R_out exactly (checked by independent re-execution).
//  * Superset soundness: in superset mode the answer's output contains
//    R_out.
//  * Engine self-consistency: mapping/CGM invariants on random data.
#include <gtest/gtest.h>

#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripProperty, RandomDbRandomQueryExact) {
  const uint64_t seed = GetParam();
  RandomDbOptions db_opts;
  db_opts.seed = seed;
  db_opts.num_tables = 4;
  db_opts.extra_fk_edges = static_cast<int>(seed % 3);
  Database db = BuildRandomDb(db_opts).ValueOrDie();

  Rng rng(seed * 31 + 7);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2 + static_cast<int>(seed % 3);
  q_opts.num_projections = 3;
  q_opts.max_rout_rows = 20000;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok()) GTEST_SKIP() << "no non-empty random query for this seed";

  QreOptions opts;
  opts.time_budget_seconds = 60.0;
  FastQre engine(&db, opts);
  QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
  ASSERT_TRUE(a.found) << "seed " << seed << ": " << a.failure_reason
                       << "\nquery: " << wq->query.ToSql(db);
  Table regen = ExecuteToTable(db, a.query, "regen").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(wq->rout))
      << "seed " << seed << "\nwanted: " << wq->query.ToSql(db)
      << "\nfound:  " << a.sql;
}

TEST_P(RoundTripProperty, RandomDbRandomQuerySuperset) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 3}).ValueOrDie();
  Rng rng(seed * 17 + 3);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok()) GTEST_SKIP();

  // Sample roughly half the rows.
  Table sample("sample", db.dictionary());
  for (size_t c = 0; c < wq->rout.num_columns(); ++c) {
    ASSERT_TRUE(sample
                    .AddColumn(wq->rout.column(c).name(),
                               wq->rout.column(c).type())
                    .ok());
  }
  for (RowId r = 0; r < wq->rout.num_rows(); r += 2) {
    sample.AppendRowIds(wq->rout.RowIds(r));
  }
  if (sample.num_rows() == 0) GTEST_SKIP();

  QreOptions opts;
  opts.variant = QreVariant::kSuperset;
  opts.time_budget_seconds = 60.0;
  FastQre engine(&db, opts);
  QreAnswer a = engine.Reverse(sample).ValueOrDie();
  ASSERT_TRUE(a.found) << "seed " << seed << ": " << a.failure_reason;
  Table result = ExecuteToTable(db, a.query, "result").ValueOrDie();
  EXPECT_TRUE(IsSubsetOf(TableToTupleSet(sample), TableToTupleSet(result)))
      << "seed " << seed << ": " << a.sql;
}

TEST_P(RoundTripProperty, TpchRandomQueryExact) {
  const uint64_t seed = GetParam();
  Database db = BuildTpch({.scale_factor = 0.001, .seed = seed}).ValueOrDie();
  Rng rng(seed ^ 0xabcdef);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 3;
  q_opts.num_projections = 3;
  q_opts.max_rout_rows = 20000;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok()) GTEST_SKIP();

  QreOptions opts;
  opts.time_budget_seconds = 60.0;
  FastQre engine(&db, opts);
  QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
  ASSERT_TRUE(a.found) << "seed " << seed << ": " << a.failure_reason
                       << "\nquery: " << wq->query.ToSql(db);
  Table regen = ExecuteToTable(db, a.query, "regen").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(wq->rout))
      << "seed " << seed << "\nwanted: " << wq->query.ToSql(db)
      << "\nfound:  " << a.sql;
}

TEST_P(RoundTripProperty, CgmInvariantsOnRandomData) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 3}).ValueOrDie();
  Rng rng(seed + 99);
  auto wq = RandomCpjQuery(db, &rng, RandomQueryOptions{});
  if (!wq.ok()) GTEST_SKIP();

  QreOptions opts;
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, wq->rout, opts, &stats);
  CgmSet cgms = DiscoverCgms(db, wq->rout, cover, opts, &stats);
  for (const Cgm& g : cgms.cgms) {
    // Soundness: every CGM's group really is coherent.
    TupleSet group = ProjectToTupleSet(db.table(g.table), g.DbColumns());
    TupleSet out = ProjectToTupleSet(wq->rout, g.OutColumns());
    EXPECT_TRUE(IsSubsetOf(out, group)) << "seed " << seed;
    // Every (out, db) pair must appear in the cover.
    for (const auto& [oc, dc] : g.mapping) {
      bool in_cover = false;
      for (const auto& e : cover.covers[oc]) {
        if (e.table == g.table && e.column == dc) in_cover = true;
      }
      EXPECT_TRUE(in_cover) << "seed " << seed;
    }
  }
}

TEST_P(RoundTripProperty, CoverPruningEquivalenceOnRandomData) {
  const uint64_t seed = GetParam();
  Database db = BuildRandomDb({.seed = seed, .num_tables = 4}).ValueOrDie();
  Rng rng(seed + 5);
  auto wq = RandomCpjQuery(db, &rng, RandomQueryOptions{});
  if (!wq.ok()) GTEST_SKIP();
  QreOptions with, without;
  without.use_pattern_pruning = false;
  QreStats s1, s2;
  ColumnCover c1 = ComputeColumnCover(db, wq->rout, with, &s1);
  ColumnCover c2 = ComputeColumnCover(db, wq->rout, without, &s2);
  ASSERT_EQ(c1.covers.size(), c2.covers.size());
  for (size_t i = 0; i < c1.covers.size(); ++i) {
    ASSERT_EQ(c1.covers[i].size(), c2.covers[i].size()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace fastqre
