// Multi-engine governor sharing (DESIGN.md §11 + §15): N FastQre engines —
// the service's per-job configuration — over ONE Database, concurrently.
// Asserts charge/release balance on a shared governor, monotone ladder
// escalation under contention, and the Attach/DetachGovernor last-attach-
// wins protocol under racing engines. Built to run under TSan (the tsan CI
// job lists this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/resource_governor.h"
#include "common/rng.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

TEST(GovernorSharingTest, ConcurrentChargeReleaseBalances) {
  ResourceGovernor governor(/*budget_bytes=*/0);  // unlimited: pure ledger
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&governor, t] {
      const uint64_t quantum = 64 + static_cast<uint64_t>(t) * 8;
      for (int i = 0; i < kOps; ++i) {
        governor.Charge(quantum, "index-build");
        if (governor.TryCharge(quantum, "walk-cache-build")) {
          governor.Release(quantum);
        }
        governor.Release(quantum);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(governor.tracked_bytes(), 0u);
  EXPECT_GT(governor.peak_tracked_bytes(), 0u);
  EXPECT_EQ(governor.degradation_level(), 0);  // unlimited never escalates
}

TEST(GovernorSharingTest, LadderEscalatesMonotonicallyUnderContention) {
  ResourceGovernor governor(/*budget_bytes=*/1 << 16);
  constexpr int kThreads = 8;
  std::atomic<bool> regression{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int last_seen = 0;
      for (int i = 0; i < 2000; ++i) {
        governor.Charge(256, "mapping-frontier");  // required: escalates
        const int level = governor.degradation_level();
        // Each thread must observe a non-decreasing ladder (levels never
        // step down), the fairness half of the escalation contract.
        if (level < last_seen) regression.store(true, std::memory_order_relaxed);
        last_seen = level;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(regression.load(std::memory_order_relaxed));
  // 8 threads * 2000 * 256B = 4MB charged against 64KB: must exhaust.
  EXPECT_TRUE(governor.memory_exhausted());
  EXPECT_GT(governor.degradation_events(), 0u);
}

TEST(GovernorSharingTest, AttachDetachRacesAreSafe) {
  const Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db] {
      for (int i = 0; i < 500; ++i) {
        auto governor = std::make_shared<ResourceGovernor>(0);
        db.AttachGovernor(governor);
        // Last-attach-wins: a racing attach may have displaced ours;
        // compare-and-clear detach must only clear our own attachment.
        db.DetachGovernor(governor.get());
      }
    });
  }
  for (auto& t : threads) t.join();
  // A fresh attach still works after the storm (no stuck attachment).
  auto governor = std::make_shared<ResourceGovernor>(0);
  db.AttachGovernor(governor);
  db.DetachGovernor(governor.get());
}

TEST(GovernorSharingTest, NEnginesOneDatabaseStayDeterministic) {
  // The service's exact sharing shape: each job builds its own engine (own
  // governor, own slice) over the shared pre-attached Database. Engines
  // racing through the lazy caches and the attach/detach protocol must not
  // perturb each other's answers.
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  const std::vector<WorkloadQuery> workload =
      StandardTpchWorkload(db).ValueOrDie();

  // Serial references first.
  std::vector<std::string> reference;
  for (const auto& wq : workload) {
    QreOptions opts;
    opts.memory_budget_bytes = 64ull << 20;
    FastQre engine(&db, opts);
    reference.push_back(engine.Reverse(wq.rout).ValueOrDie().sql);
  }

  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (size_t q = 0; q < workload.size(); ++q) {
    threads.emplace_back([&db, &workload, &reference, &mismatch, q] {
      for (int r = 0; r < kRounds; ++r) {
        QreOptions opts;
        opts.memory_budget_bytes = 64ull << 20;
        opts.validation_threads = 1 + static_cast<int>(q % 3);
        FastQre engine(&db, opts);
        const QreAnswer answer =
            engine.Reverse(workload[q].rout).ValueOrDie();
        if (answer.sql != reference[q]) {
          mismatch.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load(std::memory_order_relaxed));
}

TEST(GovernorSharingTest, EnginesWithSlicedBudgetsExhaustIndependently) {
  // Two engines on one Database: a starved slice must exhaust its own
  // governor without affecting a comfortable sibling running concurrently —
  // the isolation property the admission controller's carve-out relies on.
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  const std::vector<WorkloadQuery> workload =
      StandardTpchWorkload(db).ValueOrDie();
  const Table& rout = workload.back().rout;  // hardest ladder query

  QreOptions starved;
  starved.memory_budget_bytes = 1;  // unfundable
  QreOptions comfortable;
  comfortable.memory_budget_bytes = 256ull << 20;

  QreAnswer starved_answer, comfortable_answer;
  std::thread a([&] {
    FastQre engine(&db, starved);
    starved_answer = engine.Reverse(rout).ValueOrDie();
  });
  std::thread b([&] {
    FastQre engine(&db, comfortable);
    comfortable_answer = engine.Reverse(rout).ValueOrDie();
  });
  a.join();
  b.join();

  EXPECT_FALSE(starved_answer.found);
  EXPECT_EQ(starved_answer.failure_reason, "memory budget exceeded");
  EXPECT_TRUE(comfortable_answer.found) << comfortable_answer.failure_reason;
}

TEST(GovernorSharingTest, StarvedSiblingNeverDismissesAnotherEnginesCandidates) {
  // Regression: candidate-local block-execution charges must go to the
  // engine's OWN governor (ExecPolicy::governor), not the Database's
  // last-attach-wins attachment. Before the fix, a concurrently
  // constructed starved engine displaced the attachment, its exhausted
  // ladder refused the normal engine's intermediate charges, and the
  // normal engine silently dismissed valid candidates — deeper ranks of
  // its answer stream changed. Byte-compare ReverseAll against a solo run
  // while starved engines churn.
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  const std::vector<WorkloadQuery> workload =
      StandardTpchWorkload(db).ValueOrDie();
  const Table& rout = workload[3].rout;  // deep enough to have rank-2+ answers

  QreOptions opts;
  opts.memory_budget_bytes = 64ull << 20;
  std::vector<std::string> reference;
  {
    FastQre engine(&db, opts);
    for (const auto& a : engine.ReverseAll(rout, 3).ValueOrDie()) {
      reference.push_back(a.found ? a.sql : ("!" + a.failure_reason));
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&db, &workload, &stop, t] {
      Rng rng(static_cast<uint64_t>(t) + 7);
      while (!stop.load(std::memory_order_acquire)) {
        QreOptions starved;
        starved.memory_budget_bytes = 1;  // ladder exhausted from charge one
        FastQre engine(&db, starved);
        (void)engine.ReverseAll(workload[rng.Uniform(4)].rout, 2);
      }
    });
  }

  bool identical = true;
  for (int i = 0; i < 8 && identical; ++i) {
    FastQre engine(&db, opts);
    std::vector<std::string> got;
    for (const auto& a : engine.ReverseAll(rout, 3).ValueOrDie()) {
      got.push_back(a.found ? a.sql : ("!" + a.failure_reason));
    }
    identical = got == reference;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : churners) t.join();
  EXPECT_TRUE(identical);
}

}  // namespace
}  // namespace fastqre
