// Stress tests for the thread-safe lazy caches: many threads hammering
// Database::GetOrBuildIndex / GetColumnPattern on overlapping keys must
// build each entry exactly once (per-key std::call_once) and always hand
// back the same object. Also stresses Dictionary::Intern and the per-column
// lazy statistics. Run under TSan in CI (FASTQRE_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch.h"
#include "storage/database.h"
#include "storage/pattern.h"

namespace fastqre {
namespace {

constexpr int kThreads = 16;
constexpr int kRoundsPerThread = 40;

class CacheStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  }
  Database db_;
};

TEST_F(CacheStressTest, IndexCacheBuildsEachKeyExactlyOnce) {
  // Every single-column index of every table, requested concurrently from
  // 16 threads in different orders — heavy overlap on a small key set.
  std::vector<std::pair<TableId, ColumnId>> keys;
  for (TableId t = 0; t < db_.num_tables(); ++t) {
    for (ColumnId c = 0; c < db_.table(t).num_columns(); ++c) {
      keys.emplace_back(t, c);
    }
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (size_t i = 0; i < keys.size(); ++i) {
          // Stagger the walk per thread so threads collide on different
          // keys at different times.
          const auto& key = keys[(i * (id + 1) + round) % keys.size()];
          const HashIndex& idx = db_.GetOrBuildIndex(key.first, {key.second});
          const HashIndex& again = db_.GetOrBuildIndex(key.first, {key.second});
          if (&idx != &again) mismatch = true;  // must be the cached object
          if (idx.columns() != std::vector<ColumnId>{key.second}) {
            mismatch = true;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(mismatch.load());
  // Exactly one build per distinct key, no matter how many threads raced.
  EXPECT_EQ(static_cast<uint64_t>(db_.index_stats().indexes_built),
            keys.size());
  // Every request after the first per key is a hit.
  const uint64_t requests =
      static_cast<uint64_t>(kThreads) * kRoundsPerThread * keys.size() * 2;
  EXPECT_EQ(static_cast<uint64_t>(db_.index_stats().cache_hits),
            requests - keys.size());
}

TEST_F(CacheStressTest, ConcurrentIndexesMatchSerialBuilds) {
  // A second database built identically, with indexes built serially, must
  // agree key-for-key with the concurrently-built cache.
  Database serial = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();

  ThreadPool pool(kThreads);
  for (TableId t = 0; t < db_.num_tables(); ++t) {
    for (ColumnId c = 0; c < db_.table(t).num_columns(); ++c) {
      for (int dup = 0; dup < 4; ++dup) {  // duplicate requests on purpose
        pool.Submit([&, t, c] { db_.GetOrBuildIndex(t, {c}); });
      }
    }
  }
  pool.Wait();

  for (TableId t = 0; t < db_.num_tables(); ++t) {
    for (ColumnId c = 0; c < db_.table(t).num_columns(); ++c) {
      const HashIndex& concurrent = db_.GetOrBuildIndex(t, {c});
      const HashIndex& reference = serial.GetOrBuildIndex(t, {c});
      EXPECT_EQ(concurrent.num_keys(), reference.num_keys())
          << db_.table(t).name() << "." << db_.table(t).column(c).name();
    }
  }
}

TEST_F(CacheStressTest, PatternCacheReturnsOneObjectPerColumn) {
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (TableId t = 0; t < db_.num_tables(); ++t) {
          for (ColumnId c = 0; c < db_.table(t).num_columns(); ++c) {
            const ColumnPattern& p = db_.GetColumnPattern(t, c);
            const ColumnPattern& q = db_.GetColumnPattern(t, c);
            if (&p != &q) mismatch = true;
            // A sealed TPC-H column is never empty, so its pattern must
            // describe at least one distinct value.
            if (p.num_distinct == 0) mismatch = true;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST_F(CacheStressTest, ColumnLazyStatsAreConsistentUnderRaces) {
  // DistinctSet() / HasNulls() memoize on first call; concurrent first
  // calls must agree with a serial recomputation.
  const Table& table = db_.table(0);
  std::vector<size_t> distinct_counts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      size_t total = 0;
      for (ColumnId c = 0; c < table.num_columns(); ++c) {
        total += table.column(c).NumDistinct();
        (void)table.column(c).HasNulls();
      }
      distinct_counts[id] = total;
    });
  }
  for (auto& t : threads) t.join();
  for (int id = 1; id < kThreads; ++id) {
    EXPECT_EQ(distinct_counts[id], distinct_counts[0]);
  }
}

TEST(DictionaryStressTest, ConcurrentInternAssignsOneIdPerValue) {
  Dictionary dict;
  // Prime, so every thread's stride (id + 3) is coprime with it and each
  // thread visits all values, just in a different order.
  constexpr int kValues = 401;
  // Every thread interns the same value set in a different order; all must
  // observe identical ids.
  std::vector<std::vector<ValueId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      ids[id].resize(kValues);
      for (int i = 0; i < kValues; ++i) {
        int v = (i * (id + 3)) % kValues;
        ids[id][v] = dict.Intern(Value(static_cast<int64_t>(v)));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int id = 1; id < kThreads; ++id) {
    EXPECT_EQ(ids[id], ids[0]);
  }
  // kValues distinct ints + the reserved NULL, nothing double-interned.
  EXPECT_EQ(dict.size(), static_cast<size_t>(kValues) + 1);
  std::set<ValueId> unique(ids[0].begin(), ids[0].end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kValues));
  for (int i = 0; i < kValues; ++i) {
    EXPECT_EQ(dict.Get(ids[0][i]), Value(static_cast<int64_t>(i)));
    EXPECT_EQ(dict.Find(Value(static_cast<int64_t>(i))), ids[0][i]);
  }
}

}  // namespace
}  // namespace fastqre
