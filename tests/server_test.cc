// Socket-level tests for the TCP front end (DESIGN.md §15.4): frame
// round trips over a real connection, verb dispatch, typed protocol errors,
// concurrent connections, and clean Stop() with streams in flight.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "server/server.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

/// Minimal blocking test client over one connection.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t rc = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                MSG_NOSIGNAL);
      ASSERT_GT(rc, 0);
      sent += static_cast<size_t>(rc);
    }
  }

  void Send(const Request& req) {
    SendRaw(EncodeFrame(SerializeRequest(req)));
  }

  /// Blocks for the next response frame; fails the test on EOF.
  Response Receive() {
    std::string payload;
    EXPECT_TRUE(ReceiveFrame(&payload)) << "connection closed";
    return ParseResponse(payload).ValueOrDie();
  }

  bool ReceiveFrame(std::string* payload) {
    char buf[4096];
    for (;;) {
      Result<bool> next = reader_.Next(payload);
      EXPECT_TRUE(next.ok());
      if (!next.ok() || *next) return next.ok();
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      reader_.Feed(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameReader reader_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
    JobManagerConfig config;
    config.worker_threads = 2;
    config.admission.max_in_flight_jobs = 16;
    manager_ = std::make_unique<JobManager>(config);
    ASSERT_TRUE(manager_->AttachDatabase("tpch", &db_).ok());
    server_ = std::make_unique<Server>(manager_.get(), ServerConfig{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    server_->Stop();
    manager_->Shutdown();
  }

  Request Submit(const std::string& workload_name, int limit = 1) const {
    const WorkloadQuery* wq = nullptr;
    for (const auto& q : workload_) {
      if (q.name == workload_name) wq = &q;
    }
    EXPECT_NE(wq, nullptr);
    Request req;
    req.verb = Verb::kSubmit;
    req.db = "tpch";
    req.rout_csv = TableToCsv(wq->rout);
    req.options.limit = limit;
    return req;
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
  std::unique_ptr<JobManager> manager_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ListDbs) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  Request req;
  req.verb = Verb::kListDbs;
  client.Send(req);
  const Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kDbList);
  ASSERT_EQ(resp.dbs.size(), 1u);
  EXPECT_EQ(resp.dbs[0].name, "tpch");
  EXPECT_EQ(resp.dbs[0].tables, db_.num_tables());
}

TEST_F(ServerTest, SubmitStreamsAnswersThenDone) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send(Submit("L01", /*limit=*/2));

  Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kAccepted);
  const uint64_t job_id = resp.job_id;
  ASSERT_GT(job_id, 0u);

  std::vector<WireAnswer> answers;
  for (;;) {
    resp = client.Receive();
    if (resp.kind == Response::Kind::kDone) break;
    ASSERT_EQ(resp.kind, Response::Kind::kAnswer);
    EXPECT_EQ(resp.job_id, job_id);
    answers.push_back(resp.answer);
  }
  EXPECT_EQ(resp.state, JobState::kDone);
  EXPECT_EQ(resp.answers, answers.size());
  ASSERT_FALSE(answers.empty());
  EXPECT_TRUE(answers[0].found);
  EXPECT_FALSE(answers[0].sql.empty());
  // Stream indices are the rank order, gapless from 0.
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].index, static_cast<int>(i));
  }
}

TEST_F(ServerTest, StatusAndCancelVerbs) {
  TestClient submitter(server_->port());
  ASSERT_TRUE(submitter.connected());
  submitter.Send(Submit("L10", /*limit=*/50));
  const Response accepted = submitter.Receive();
  ASSERT_EQ(accepted.kind, Response::Kind::kAccepted);

  // Cancel from a second connection while the first streams.
  TestClient controller(server_->port());
  ASSERT_TRUE(controller.connected());
  Request cancel;
  cancel.verb = Verb::kCancel;
  cancel.job_id = accepted.job_id;
  controller.Send(cancel);
  const Response cancel_resp = controller.Receive();
  ASSERT_EQ(cancel_resp.kind, Response::Kind::kStatus);
  EXPECT_EQ(cancel_resp.status.job_id, accepted.job_id);

  // The submitter's stream must still terminate with done.
  Response resp;
  do {
    resp = submitter.Receive();
  } while (resp.kind == Response::Kind::kAnswer);
  ASSERT_EQ(resp.kind, Response::Kind::kDone);
  EXPECT_TRUE(resp.state == JobState::kCancelled ||
              resp.state == JobState::kDone);

  Request status;
  status.verb = Verb::kStatus;
  status.job_id = accepted.job_id;
  controller.Send(status);
  const Response status_resp = controller.Receive();
  ASSERT_EQ(status_resp.kind, Response::Kind::kStatus);
  EXPECT_TRUE(status_resp.status.state == JobState::kCancelled ||
              status_resp.status.state == JobState::kDone);
}

TEST_F(ServerTest, TypedProtocolErrors) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Wrong version.
  client.SendRaw(EncodeFrame("{\"v\":9,\"verb\":\"list-dbs\"}"));
  Response resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kVersionMismatch);

  // Malformed JSON — connection survives a recoverable request error.
  client.SendRaw(EncodeFrame("{nope"));
  resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kInvalidArgument);

  // Unknown job.
  Request status;
  status.verb = Verb::kStatus;
  status.job_id = 424242;
  client.Send(status);
  resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kNotFound);

  // Unknown database on submit.
  Request bad = Submit("L01");
  bad.db = "absent";
  client.Send(bad);
  resp = client.Receive();
  ASSERT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_EQ(resp.error, WireError::kNotFound);
}

TEST_F(ServerTest, OversizedFrameClosesConnection) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const char evil[4] = {'\x7f', '\xff', '\xff', '\xff'};  // 2GB length
  client.SendRaw(std::string(evil, 4));
  std::string payload;
  // One error frame, then EOF.
  ASSERT_TRUE(client.ReceiveFrame(&payload));
  const Response resp = ParseResponse(payload).ValueOrDie();
  EXPECT_EQ(resp.kind, Response::Kind::kError);
  EXPECT_FALSE(client.ReceiveFrame(&payload));
}

TEST_F(ServerTest, ConcurrentConnectionsRunConcurrentJobs) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> found{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &found] {
      TestClient client(server_->port());
      ASSERT_TRUE(client.connected());
      client.Send(Submit("L02"));
      Response resp = client.Receive();
      ASSERT_EQ(resp.kind, Response::Kind::kAccepted);
      bool any = false;
      do {
        resp = client.Receive();
        if (resp.kind == Response::Kind::kAnswer && resp.answer.found) {
          any = true;
        }
      } while (resp.kind == Response::Kind::kAnswer);
      EXPECT_EQ(resp.kind, Response::Kind::kDone);
      if (any) found.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(found.load(std::memory_order_relaxed), kClients);
}

TEST_F(ServerTest, StopWithStreamInFlight) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send(Submit("L10", /*limit=*/50));
  const Response accepted = client.Receive();
  ASSERT_EQ(accepted.kind, Response::Kind::kAccepted);
  // Stop with the stream open: Stop() must return (no hang), and the job
  // keeps running in the manager — TearDown's Shutdown() drains it.
  server_->Stop();
}

}  // namespace
}  // namespace fastqre
