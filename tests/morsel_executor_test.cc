// Differential harness for morsel-driven intra-candidate execution
// (DESIGN.md §12): over every random-db scenario of the executor property
// test, the block executor and the pipelined cursor must produce
// byte-identical results across {scalar, batched} probe kernels × {1, 8}
// intra-candidate threads × morsel sizes {1, 7, 2048}, with every governor
// charge released; Reverse() must return byte-identical ranked SQL across
// the same matrix; and an interrupt must land within one morsel of work.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/resource_governor.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/block_executor.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

// The full execution-policy matrix of the differential harness. intra
// threshold 1 forces even tiny driving relations onto the pool, so the
// parallel merge path is really exercised on small test databases.
std::vector<ExecPolicy> PolicyMatrix(ThreadPool* pool) {
  std::vector<ExecPolicy> out;
  for (bool batch : {false, true}) {
    for (int threads : {1, 8}) {
      for (size_t morsel : {size_t{1}, size_t{7}, size_t{2048}}) {
        ExecPolicy p;
        p.batch_probes = batch;
        p.intra_threads = threads;
        p.morsel_size = morsel;
        p.intra_threshold = 1;
        p.pool = threads > 1 ? pool : nullptr;
        out.push_back(p);
      }
    }
  }
  return out;
}

std::string PolicyName(const ExecPolicy& p) {
  return std::string(p.batch_probes ? "batched" : "scalar") + "/t" +
         std::to_string(p.intra_threads) + "/m" +
         std::to_string(p.morsel_size);
}

Database SeededRandomDb(uint64_t seed) {
  RandomDbOptions db_opts;
  db_opts.seed = seed;
  db_opts.num_tables = 3;
  db_opts.min_rows = 8;
  db_opts.max_rows = 25;
  db_opts.extra_fk_edges = static_cast<int>(seed % 2);
  return BuildRandomDb(db_opts).ValueOrDie();
}

class MorselDifferential : public ::testing::TestWithParam<uint64_t> {};

// Block executor: every (kernel, threads, morsel-size) configuration must
// emit the same relation byte-for-byte (row order included — the morsel
// merge is in morsel-index order, so the stream is config-independent).
TEST_P(MorselDifferential, BlockExecutorMatrixIsByteIdentical) {
  const uint64_t seed = GetParam();
  Database db = SeededRandomDb(seed);
  Rng rng(seed * 1337 + 11);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2 + static_cast<int>(seed % 2);
  q_opts.num_projections = 2;
  q_opts.min_rout_rows = 0;
  ThreadPool pool(7);
  const std::vector<ExecPolicy> matrix = PolicyMatrix(&pool);
  for (int trial = 0; trial < 5; ++trial) {
    auto wq = RandomCpjQuery(db, &rng, q_opts);
    if (!wq.ok()) continue;
    const std::string baseline =
        TableToCsv(ExecuteBlock(db, wq->query, "block").ValueOrDie());
    for (const ExecPolicy& p : matrix) {
      auto got = ExecuteBlock(db, wq->query, "block", {}, p);
      ASSERT_TRUE(got.ok()) << PolicyName(p) << " seed " << seed;
      EXPECT_EQ(TableToCsv(*got), baseline)
          << PolicyName(p) << " seed " << seed << " trial " << trial << "\n"
          << wq->query.ToSql(db);
    }
  }
}

// Pipelined cursor: the batched reach/probe kernels must yield the same
// *ordered* row stream as the scalar ones (stronger than set equality).
TEST_P(MorselDifferential, CursorStreamsAgreeAcrossKernels) {
  const uint64_t seed = GetParam();
  Database db = SeededRandomDb(seed);
  Rng rng(seed + 77);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  q_opts.min_rout_rows = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto wq = RandomCpjQuery(db, &rng, q_opts);
    if (!wq.ok()) continue;
    std::vector<std::vector<ValueId>> streams[2];
    for (int batch = 0; batch < 2; ++batch) {
      ExecPolicy p;
      p.batch_probes = (batch == 1);
      auto cursor = QueryCursor::Create(db, wq->query, {}, {}, p).ValueOrDie();
      std::vector<ValueId> row;
      while (cursor->Next(&row)) streams[batch].push_back(row);
    }
    EXPECT_EQ(streams[0], streams[1])
        << "seed " << seed << " trial " << trial << "\n"
        << wq->query.ToSql(db);
  }
}

// Rebind on a planned cursor must be indistinguishable from a fresh
// Create with the new constants — the whole point of batching probes.
TEST_P(MorselDifferential, RebindMatchesFreshCreate) {
  const uint64_t seed = GetParam();
  Database db = SeededRandomDb(seed);
  Rng rng(seed + 3);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  q_opts.min_rout_rows = 1;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  if (!wq.ok() || wq->rout.num_rows() < 2) GTEST_SKIP();

  // One selection per projection column, bound to R_out tuple 0 at Create.
  PJQuery probe = wq->query;
  const auto projections = probe.projections();
  for (size_t j = 0; j < projections.size(); ++j) {
    probe.AddSelection(projections[j].instance, projections[j].column,
                       wq->rout.column(static_cast<ColumnId>(j)).at(0));
  }
  ExecPolicy p;  // batched default
  auto shared = QueryCursor::Create(db, probe, {}, {}, p).ValueOrDie();
  ASSERT_EQ(shared->num_rebindable(), projections.size());

  for (RowId r = 0; r < wq->rout.num_rows(); ++r) {
    std::vector<ValueId> vals(projections.size());
    for (size_t j = 0; j < vals.size(); ++j) {
      vals[j] = wq->rout.column(static_cast<ColumnId>(j)).at(r);
    }
    shared->Rebind(vals.data(), vals.size());
    std::vector<std::vector<ValueId>> rebound;
    std::vector<ValueId> row;
    while (shared->Next(&row)) rebound.push_back(row);

    PJQuery fresh_q = wq->query;
    for (size_t j = 0; j < vals.size(); ++j) {
      fresh_q.AddSelection(projections[j].instance, projections[j].column,
                           vals[j]);
    }
    auto fresh = QueryCursor::Create(db, fresh_q).ValueOrDie();
    std::vector<std::vector<ValueId>> expected;
    while (fresh->Next(&row)) expected.push_back(row);
    ASSERT_EQ(rebound, expected) << "seed " << seed << " tuple " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorselDifferential,
                         ::testing::Range<uint64_t>(1, 26));

// Governor balance: after the block executor has run (any configuration),
// every charged block-buffer byte must have been released — only the
// persistent index builds may remain tracked.
TEST(MorselExecutor, GovernorBalancedAcrossMatrix) {
  Database db = SeededRandomDb(4);
  Rng rng(999);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 2;
  q_opts.min_rout_rows = 0;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  ASSERT_TRUE(wq.ok());
  auto governor = std::make_shared<ResourceGovernor>(0);
  db.AttachGovernor(governor);
  // Warm-up builds (and permanently charges) the plan's hash indexes.
  (void)ExecuteBlock(db, wq->query, "block").ValueOrDie();
  const uint64_t resting = governor->tracked_bytes();
  ThreadPool pool(7);
  for (const ExecPolicy& p : PolicyMatrix(&pool)) {
    (void)ExecuteBlock(db, wq->query, "block", {}, p).ValueOrDie();
    EXPECT_EQ(governor->tracked_bytes(), resting) << PolicyName(p);
  }
  db.DetachGovernor(governor.get());
}

// End-to-end determinism: Reverse() must return byte-identical SQL across
// kernels, intra-thread counts and morsel sizes (the §12 contract).
TEST(MorselExecutor, RankedSqlIdenticalAcrossPolicies) {
  TpchOptions tpch;
  tpch.scale_factor = 0.001;
  tpch.seed = 3;
  Database db = BuildTpch(tpch).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  for (size_t wi : {size_t{0}, size_t{8}}) {
    const auto& wq = workload[wi];
    std::string baseline_sql;
    bool first = true;
    for (bool batch : {true, false}) {
      for (int intra : {1, 8}) {
        QreOptions opts;
        opts.use_batched_probes = batch;
        opts.intra_candidate_threads = intra;
        opts.morsel_size = 64;
        opts.intra_row_threshold = 1;
        FastQre engine(&db, opts);
        auto answer = engine.Reverse(wq.rout).ValueOrDie();
        ASSERT_TRUE(answer.found)
            << wq.name << " batch=" << batch << " intra=" << intra;
        if (first) {
          baseline_sql = answer.sql;
          first = false;
        } else {
          EXPECT_EQ(answer.sql, baseline_sql)
              << wq.name << " batch=" << batch << " intra=" << intra;
        }
      }
    }
  }
}

// Satellite 4 regression: the block executor polls the interrupt once per
// morsel (not once per kInterruptPollMask tuples), so a deadline or Cancel()
// lands within one morsel of extra work.
TEST(MorselExecutor, InterruptHonoredWithinOneMorsel) {
  Database db = SeededRandomDb(7);
  Rng rng(7);
  RandomQueryOptions q_opts;
  q_opts.num_instances = 3;
  q_opts.min_rout_rows = 0;
  auto wq = RandomCpjQuery(db, &rng, q_opts);
  ASSERT_TRUE(wq.ok());

  // An immediately-true interrupt must abort the evaluation regardless of
  // morsel size — even a single-morsel run reaches a poll point.
  for (size_t morsel : {size_t{1}, size_t{7}, size_t{2048}}) {
    ExecPolicy p;
    p.morsel_size = morsel;
    auto r = ExecuteBlock(db, wq->query, "block", [] { return true; }, p);
    ASSERT_FALSE(r.ok()) << "morsel " << morsel;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }

  // Poll frequency scales with morsel count: a morsel size of 1 must poll
  // strictly more often than one covering the whole input — the structural
  // guarantee that interrupt latency is bounded by one morsel, not by a
  // fixed row mask.
  auto count_polls = [&](size_t morsel) {
    size_t polls = 0;
    ExecPolicy p;
    p.morsel_size = morsel;
    auto r = ExecuteBlock(db, wq->query, "block",
                          [&polls] {
                            ++polls;
                            return false;
                          },
                          p);
    EXPECT_TRUE(r.ok());
    return polls;
  };
  const size_t fine = count_polls(1);
  const size_t coarse = count_polls(1u << 20);
  EXPECT_GT(fine, coarse);
  EXPECT_GE(coarse, 1u);
}

}  // namespace
}  // namespace fastqre
