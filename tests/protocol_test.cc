// Unit tests for the service wire protocol (DESIGN.md §15): the JSON value
// model, length-prefixed framing under arbitrary fragmentation, and the
// versioned request/response schema — all socket-free, exercising exactly
// the pure serialization layer of server/protocol.{h,cc}.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/json.h"
#include "server/protocol.h"

namespace fastqre {
namespace {

// ---- JSON value model ------------------------------------------------------

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(JsonValue::Null().Serialize(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Serialize(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Serialize(), "false");
  EXPECT_EQ(JsonValue::Int(-42).Serialize(), "-42");
  EXPECT_EQ(JsonValue::Int(9007199254740993).Serialize(),
            "9007199254740993");  // > 2^53: must not round through double
  EXPECT_EQ(JsonValue::Str("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c\n\t").Serialize(),
            "\"a\\\"b\\\\c\\n\\t\"");
  // Control characters below 0x20 escape as \u00XX.
  EXPECT_EQ(JsonValue::Str(std::string(1, '\x01')).Serialize(), "\"\\u0001\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(JsonValue::Str("caf\xc3\xa9").Serialize(), "\"caf\xc3\xa9\"");
}

TEST(JsonTest, ParseUnicodeEscapes) {
  JsonValue v = JsonValue::Parse("\"\\u00e9\"").ValueOrDie();
  EXPECT_EQ(v.AsString(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  v = JsonValue::Parse("\"\\ud83d\\ude00\"").ValueOrDie();
  EXPECT_EQ(v.AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue v = JsonValue::Object();
  v.Set("z", JsonValue::Int(1));
  v.Set("a", JsonValue::Int(2));
  v.Set("m", JsonValue::Int(3));
  EXPECT_EQ(v.Serialize(), "{\"z\":1,\"a\":2,\"m\":3}");
  // Set on an existing key overwrites in place (order unchanged).
  v.Set("a", JsonValue::Int(9));
  EXPECT_EQ(v.Serialize(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(JsonTest, NestedRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,null,true,\"x\"],\"b\":{\"c\":-7,\"d\":[]}}";
  JsonValue v = JsonValue::Parse(text).ValueOrDie();
  EXPECT_EQ(v.Serialize(), text);
  EXPECT_TRUE(v.Get("a")->at(0).is_int());
  EXPECT_FALSE(v.Get("a")->at(1).is_int());
  EXPECT_DOUBLE_EQ(v.Get("a")->at(1).AsDouble(), 2.5);
  EXPECT_EQ(v.Get("b")->GetInt("c", 0), -7);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  // Raw control character inside a string is rejected.
  EXPECT_FALSE(JsonValue::Parse("\"a\nb\"").ok());
}

TEST(JsonTest, DepthCapRejectsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 32 levels is comfortably inside the cap.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += "[";
  for (int i = 0; i < 32; ++i) ok += "]";
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonTest, TypedGettersFallBack) {
  JsonValue v = JsonValue::Parse("{\"s\":\"x\",\"n\":3}").ValueOrDie();
  EXPECT_EQ(v.GetString("s"), "x");
  EXPECT_EQ(v.GetString("n", "fb"), "fb");   // wrong type -> fallback
  EXPECT_EQ(v.GetInt("missing", 17), 17);    // absent -> fallback
  EXPECT_EQ(v.GetInt("n", 0), 3);
}

// ---- Framing ---------------------------------------------------------------

TEST(FramingTest, RoundTrip) {
  const std::string payload = "{\"v\":1}";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), 4 + payload.size());
  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  std::string out;
  ASSERT_TRUE(reader.Next(&out).ValueOrDie());
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(reader.Next(&out).ValueOrDie());  // nothing left
}

TEST(FramingTest, ByteAtATimeFragmentation) {
  const std::string payload(300, 'x');
  const std::string frame = EncodeFrame(payload);
  FrameReader reader;
  std::string out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.Next(&out).ValueOrDie()) << "premature frame at " << i;
  }
  reader.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(reader.Next(&out).ValueOrDie());
  EXPECT_EQ(out, payload);
}

TEST(FramingTest, CoalescedFrames) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    stream += EncodeFrame("payload-" + std::to_string(i));
  }
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  std::string out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reader.Next(&out).ValueOrDie());
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(reader.Next(&out).ValueOrDie());
}

TEST(FramingTest, EmptyPayloadFrame) {
  FrameReader reader;
  const std::string frame = EncodeFrame("");
  reader.Feed(frame.data(), frame.size());
  std::string out = "sentinel";
  ASSERT_TRUE(reader.Next(&out).ValueOrDie());
  EXPECT_EQ(out, "");
}

TEST(FramingTest, OversizeLengthRejected) {
  // A hostile 4GB length must fail before any allocation.
  const char evil[4] = {'\xff', '\xff', '\xff', '\xff'};
  FrameReader reader;
  reader.Feed(evil, 4);
  std::string out;
  EXPECT_FALSE(reader.Next(&out).ok());
}

TEST(FramingTest, BufferCompaction) {
  // Many small frames through one reader: the buffer must not grow without
  // bound (lazy compaction).
  FrameReader reader;
  const std::string frame = EncodeFrame(std::string(100, 'y'));
  std::string out;
  for (int i = 0; i < 1000; ++i) {
    reader.Feed(frame.data(), frame.size());
    ASSERT_TRUE(reader.Next(&out).ValueOrDie());
  }
  // Lazy compaction keeps the buffer near its 4KB threshold, not the
  // 100KB the 1000 frames would otherwise accumulate to.
  EXPECT_LT(reader.buffered_bytes(), 8192u);
}

// ---- Request schema --------------------------------------------------------

TEST(RequestTest, SubmitRoundTrip) {
  Request req;
  req.verb = Verb::kSubmit;
  req.tenant = "acme";
  req.db = "tpch";
  req.rout_csv = "a,b\n1,2\n";
  req.options.superset = true;
  req.options.limit = 3;
  req.options.time_budget_seconds = 1.5;
  req.options.validation_threads = 4;
  req.options.alpha = 0.25;
  req.options.memory_budget_bytes = 64ull << 20;

  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kSubmit);
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.db, "tpch");
  EXPECT_EQ(back.rout_csv, "a,b\n1,2\n");
  EXPECT_TRUE(back.options.superset);
  EXPECT_EQ(back.options.limit, 3);
  EXPECT_DOUBLE_EQ(back.options.time_budget_seconds, 1.5);
  EXPECT_EQ(back.options.validation_threads, 4);
  EXPECT_DOUBLE_EQ(back.options.alpha, 0.25);
  EXPECT_EQ(back.options.memory_budget_bytes, 64ull << 20);
}

TEST(RequestTest, StatusCancelListRoundTrip) {
  Request req;
  req.verb = Verb::kStatus;
  req.job_id = 77;
  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kStatus);
  EXPECT_EQ(back.job_id, 77u);

  req.verb = Verb::kCancel;
  back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kCancel);
  EXPECT_EQ(back.job_id, 77u);

  req.verb = Verb::kListDbs;
  back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kListDbs);
}

TEST(RequestTest, SubmitIdempotencyKeyRoundTrip) {
  Request req;
  req.verb = Verb::kSubmit;
  req.db = "tpch";
  req.rout_csv = "a\n1\n";
  req.idempotency_key = "retry-7f";
  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.idempotency_key, "retry-7f");

  // Absent key parses as empty (unkeyed submit), not an error.
  req.idempotency_key.clear();
  back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_TRUE(back.idempotency_key.empty());
}

TEST(RequestTest, AttachRoundTrip) {
  Request req;
  req.verb = Verb::kAttach;
  req.job_id = 31;
  req.cursor = 4;
  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kAttach);
  EXPECT_EQ(back.job_id, 31u);
  EXPECT_EQ(back.cursor, 4u);

  // Cursor defaults to 0 (stream from the beginning).
  EXPECT_EQ(ParseRequest("{\"v\":1,\"verb\":\"attach\",\"job\":31}")
                .ValueOrDie()
                .cursor,
            0u);
  // attach needs a job id, and a negative cursor is a typed rejection.
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"verb\":\"attach\"}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"v\":1,\"verb\":\"attach\",\"job\":31,\"cursor\":-1}")
          .ok());
}

TEST(RequestTest, PingRoundTrip) {
  Request req;
  req.verb = Verb::kPing;
  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.verb, Verb::kPing);
}

TEST(RequestTest, EmptyTenantDefaults) {
  Request req;
  req.verb = Verb::kSubmit;
  req.db = "d";
  req.rout_csv = "a\n1\n";
  Request back = ParseRequest(SerializeRequest(req)).ValueOrDie();
  EXPECT_EQ(back.tenant, "default");
}

TEST(RequestTest, VersionMismatchIsTyped) {
  Result<Request> r = ParseRequest("{\"v\":2,\"verb\":\"list-dbs\"}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message().rfind("version-mismatch", 0), 0u)
      << r.status().message();
  // Missing version counts as mismatched, not defaulted.
  EXPECT_FALSE(ParseRequest("{\"verb\":\"list-dbs\"}").ok());
}

TEST(RequestTest, ValidationErrors) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[]").ok());
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"verb\":\"nope\"}").ok());
  // submit without db / rout_csv.
  EXPECT_FALSE(
      ParseRequest("{\"v\":1,\"verb\":\"submit\",\"rout_csv\":\"a\\n1\\n\"}")
          .ok());
  EXPECT_FALSE(
      ParseRequest("{\"v\":1,\"verb\":\"submit\",\"db\":\"d\"}").ok());
  // status without job id.
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"verb\":\"status\"}").ok());
  // Out-of-range options are typed rejections, not clamps.
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"verb\":\"submit\",\"db\":\"d\","
                            "\"rout_csv\":\"a\\n1\\n\","
                            "\"options\":{\"limit\":0}}")
                   .ok());
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"verb\":\"submit\",\"db\":\"d\","
                            "\"rout_csv\":\"a\\n1\\n\","
                            "\"options\":{\"alpha\":1.5}}")
                   .ok());
}

// ---- Response schema -------------------------------------------------------

TEST(ResponseTest, AcceptedRoundTrip) {
  Response back =
      ParseResponse(SerializeResponse(MakeAcceptedResponse(12))).ValueOrDie();
  EXPECT_EQ(back.kind, Response::Kind::kAccepted);
  EXPECT_EQ(back.job_id, 12u);
}

TEST(ResponseTest, AnswerRoundTrip) {
  Response resp;
  resp.kind = Response::Kind::kAnswer;
  resp.job_id = 5;
  resp.answer.index = 2;
  resp.answer.found = true;
  resp.answer.sql = "SELECT a.x FROM t a";
  resp.answer.total_seconds = 0.125;
  resp.answer.candidates_validated = 9;
  resp.answer.peak_tracked_bytes = 4096;

  resp.seq = 2;

  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  EXPECT_EQ(back.kind, Response::Kind::kAnswer);
  EXPECT_EQ(back.job_id, 5u);
  EXPECT_EQ(back.seq, 2u);
  EXPECT_EQ(back.answer.index, 2);
  EXPECT_TRUE(back.answer.found);
  EXPECT_EQ(back.answer.sql, "SELECT a.x FROM t a");
  EXPECT_DOUBLE_EQ(back.answer.total_seconds, 0.125);
  EXPECT_EQ(back.answer.candidates_validated, 9u);
  EXPECT_EQ(back.answer.peak_tracked_bytes, 4096u);
}

TEST(ResponseTest, UnfoundAnswerCarriesFailureReason) {
  Response resp;
  resp.kind = Response::Kind::kAnswer;
  resp.answer.found = false;
  resp.answer.failure_reason = "cancelled";
  resp.answer.cancelled = true;
  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  EXPECT_FALSE(back.answer.found);
  EXPECT_EQ(back.answer.failure_reason, "cancelled");
  EXPECT_TRUE(back.answer.cancelled);
  EXPECT_TRUE(back.answer.sql.empty());
}

TEST(ResponseTest, DoneRoundTrip) {
  Response resp;
  resp.kind = Response::Kind::kDone;
  resp.job_id = 8;
  resp.state = JobState::kCancelled;
  resp.failure_reason = "cancelled";
  resp.answers = 3;
  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  EXPECT_EQ(back.kind, Response::Kind::kDone);
  EXPECT_EQ(back.state, JobState::kCancelled);
  EXPECT_EQ(back.failure_reason, "cancelled");
  EXPECT_EQ(back.answers, 3u);
}

TEST(ResponseTest, StatusRoundTrip) {
  Response resp;
  resp.kind = Response::Kind::kStatus;
  resp.status.job_id = 4;
  resp.status.state = JobState::kRunning;
  resp.status.tenant = "t";
  resp.status.db = "d";
  resp.status.answers_streamed = 2;
  resp.status.found_any = true;
  resp.status.slice_bytes = 1024;
  resp.status.peak_tracked_bytes = 512;
  resp.status.run_seconds = 0.5;
  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  EXPECT_EQ(back.status.job_id, 4u);
  EXPECT_EQ(back.status.state, JobState::kRunning);
  EXPECT_EQ(back.status.tenant, "t");
  EXPECT_EQ(back.status.answers_streamed, 2u);
  EXPECT_TRUE(back.status.found_any);
  EXPECT_EQ(back.status.slice_bytes, 1024u);
  EXPECT_DOUBLE_EQ(back.status.run_seconds, 0.5);
}

TEST(ResponseTest, DbListRoundTrip) {
  Response resp;
  resp.kind = Response::Kind::kDbList;
  resp.dbs.push_back({"alpha", 3, 100});
  resp.dbs.push_back({"beta", 8, 86498});
  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  ASSERT_EQ(back.dbs.size(), 2u);
  EXPECT_EQ(back.dbs[0].name, "alpha");
  EXPECT_EQ(back.dbs[1].rows, 86498u);
}

TEST(ResponseTest, ErrorRoundTripAllCodes) {
  for (WireError code :
       {WireError::kInvalidArgument, WireError::kVersionMismatch,
        WireError::kNotFound, WireError::kRateLimited, WireError::kSaturated,
        WireError::kBudgetExhausted, WireError::kOverloaded,
        WireError::kTimeout, WireError::kShuttingDown, WireError::kInternal}) {
    Response back =
        ParseResponse(SerializeResponse(MakeErrorResponse(code, "m")))
            .ValueOrDie();
    EXPECT_EQ(back.kind, Response::Kind::kError);
    EXPECT_EQ(back.error, code) << WireErrorToString(code);
    EXPECT_EQ(back.message, "m");
  }
}

TEST(ResponseTest, RetryMatrix) {
  // Transient load / pacing conditions are retryable; everything the client
  // caused (or that a retry cannot fix) is not. Mirrors DESIGN.md §15.5.
  EXPECT_TRUE(IsRetryableWireError(WireError::kRateLimited));
  EXPECT_TRUE(IsRetryableWireError(WireError::kSaturated));
  EXPECT_TRUE(IsRetryableWireError(WireError::kBudgetExhausted));
  EXPECT_TRUE(IsRetryableWireError(WireError::kOverloaded));
  EXPECT_TRUE(IsRetryableWireError(WireError::kTimeout));
  EXPECT_FALSE(IsRetryableWireError(WireError::kInvalidArgument));
  EXPECT_FALSE(IsRetryableWireError(WireError::kVersionMismatch));
  EXPECT_FALSE(IsRetryableWireError(WireError::kNotFound));
  EXPECT_FALSE(IsRetryableWireError(WireError::kShuttingDown));
  EXPECT_FALSE(IsRetryableWireError(WireError::kInternal));
  EXPECT_FALSE(IsRetryableWireError(WireError::kNone));
}

TEST(ResponseTest, PongRoundTrip) {
  Response resp;
  resp.kind = Response::Kind::kPong;
  resp.pong.uptime_seconds = 12.5;
  resp.pong.active_connections = 3;
  resp.pong.shed_connections = 7;
  resp.pong.jobs_queued = 1;
  resp.pong.jobs_running = 2;
  resp.pong.jobs_done = 40;
  resp.pong.jobs_cancelled = 4;
  resp.pong.jobs_failed = 5;
  Response back = ParseResponse(SerializeResponse(resp)).ValueOrDie();
  EXPECT_EQ(back.kind, Response::Kind::kPong);
  EXPECT_DOUBLE_EQ(back.pong.uptime_seconds, 12.5);
  EXPECT_EQ(back.pong.active_connections, 3u);
  EXPECT_EQ(back.pong.shed_connections, 7u);
  EXPECT_EQ(back.pong.jobs_queued, 1u);
  EXPECT_EQ(back.pong.jobs_running, 2u);
  EXPECT_EQ(back.pong.jobs_done, 40u);
  EXPECT_EQ(back.pong.jobs_cancelled, 4u);
  EXPECT_EQ(back.pong.jobs_failed, 5u);
}

TEST(ResponseTest, JobStateStringsRoundTrip) {
  for (JobState s : {JobState::kQueued, JobState::kRunning, JobState::kDone,
                     JobState::kCancelled, JobState::kFailed}) {
    EXPECT_EQ(JobStateFromString(JobStateToString(s)), s);
  }
}

TEST(ResponseTest, UnknownKindRejected) {
  EXPECT_FALSE(ParseResponse("{\"v\":1,\"kind\":\"mystery\"}").ok());
  EXPECT_FALSE(ParseResponse("{\"v\":9,\"kind\":\"accepted\"}").ok());
}

}  // namespace
}  // namespace fastqre
