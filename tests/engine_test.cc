// Unit tests for src/engine: PJQuery, QueryBuilder, SQL rendering, the
// progressive executor, result comparison and the cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "engine/block_executor.h"
#include "engine/builder.h"
#include "engine/compare.h"
#include "engine/cost.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {
namespace {

// Fixture database:
//   person(id, name, manager_id)   -- manager_id is a self-referencing fk
//   city(id, cname)
//   lives(person_id, city_id)      -- m:n bridge
Database BuildFixture() {
  Database db;
  TableId person = db.AddTable("person").ValueOrDie();
  Table& p = db.table(person);
  EXPECT_TRUE(p.AddColumn("id", ValueType::kInt64).ok());
  EXPECT_TRUE(p.AddColumn("name", ValueType::kString).ok());
  EXPECT_TRUE(p.AddColumn("manager_id", ValueType::kInt64).ok());
  // 1 alice  (manager 3)
  // 2 bob    (manager 3)
  // 3 carol  (manager 3; her own manager)
  EXPECT_TRUE(p.AppendRow({Value(int64_t{1}), Value("alice"), Value(int64_t{3})}).ok());
  EXPECT_TRUE(p.AppendRow({Value(int64_t{2}), Value("bob"), Value(int64_t{3})}).ok());
  EXPECT_TRUE(p.AppendRow({Value(int64_t{3}), Value("carol"), Value(int64_t{3})}).ok());

  TableId city = db.AddTable("city").ValueOrDie();
  Table& c = db.table(city);
  EXPECT_TRUE(c.AddColumn("id", ValueType::kInt64).ok());
  EXPECT_TRUE(c.AddColumn("cname", ValueType::kString).ok());
  EXPECT_TRUE(c.AppendRow({Value(int64_t{10}), Value("oslo")}).ok());
  EXPECT_TRUE(c.AppendRow({Value(int64_t{11}), Value("lima")}).ok());

  TableId lives = db.AddTable("lives").ValueOrDie();
  Table& l = db.table(lives);
  EXPECT_TRUE(l.AddColumn("person_id", ValueType::kInt64).ok());
  EXPECT_TRUE(l.AddColumn("city_id", ValueType::kInt64).ok());
  EXPECT_TRUE(l.AppendRow({Value(int64_t{1}), Value(int64_t{10})}).ok());
  EXPECT_TRUE(l.AppendRow({Value(int64_t{2}), Value(int64_t{10})}).ok());
  EXPECT_TRUE(l.AppendRow({Value(int64_t{2}), Value(int64_t{11})}).ok());
  EXPECT_TRUE(l.AppendRow({Value(int64_t{3}), Value(int64_t{11})}).ok());

  EXPECT_TRUE(db.AddForeignKey("lives", "person_id", "person", "id").ok());
  EXPECT_TRUE(db.AddForeignKey("lives", "city_id", "city", "id").ok());
  EXPECT_TRUE(db.AddForeignKey("person", "manager_id", "person", "id").ok());
  return db;
}

TupleSet RunToSet(const Database& db, const PJQuery& q) {
  return TableToTupleSet(ExecuteToTable(db, q, "out").ValueOrDie());
}

std::vector<ValueId> Ids(const Database& db, std::vector<Value> vals) {
  std::vector<ValueId> out;
  for (const auto& v : vals) out.push_back(db.dictionary()->Find(v));
  return out;
}

// ---------- PJQuery ---------------------------------------------------------

TEST(PJQuery, IsConnected) {
  PJQuery q;
  InstanceId a = q.AddInstance(0);
  InstanceId b = q.AddInstance(1);
  EXPECT_FALSE(q.IsConnected());
  q.AddJoin(a, 0, b, 0);
  EXPECT_TRUE(q.IsConnected());
  q.AddInstance(2);
  EXPECT_FALSE(q.IsConnected());
}

TEST(PJQuery, SingleInstanceIsConnected) {
  PJQuery q;
  q.AddInstance(0);
  EXPECT_TRUE(q.IsConnected());
}

TEST(PJQuery, DescriptionComplexity) {
  PJQuery q;
  InstanceId a = q.AddInstance(0);
  InstanceId b = q.AddInstance(1);
  q.AddJoin(a, 0, b, 0);
  EXPECT_DOUBLE_EQ(q.DescriptionComplexity(), 3.0);  // 2 nodes + 1 edge
}

TEST(PJQuery, ToSqlRendersAliasesJoinsAndSelections) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId p1 = b.Instance("person");
  InstanceId p2 = b.Instance("person");
  b.Join(p1, "manager_id", p2, "id");
  b.Project(p1, "name");
  b.Project(p2, "name");
  b.Select(p2, "name", Value("carol"));
  PJQuery q = b.Build().ValueOrDie();
  std::string sql = q.ToSql(db);
  EXPECT_EQ(sql,
            "SELECT person1.name, person2.name "
            "FROM person person1, person person2 "
            "WHERE person1.manager_id=person2.id AND person2.name='carol'");
}

TEST(QueryBuilder, ReportsFirstNameError) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId x = b.Instance("no_such_table");
  b.Project(x, "also_missing");
  EXPECT_TRUE(b.Build().status().IsNotFound());
}

// ---------- Executor --------------------------------------------------------

TEST(Executor, SingleTableScanProjectsAndDedupes) {
  Database db = BuildFixture();
  PJQuery q;
  InstanceId p = q.AddInstance(0);
  q.AddProjection(p, 2);  // manager_id: all rows are 3
  Table out = ExecuteToTable(db, q, "out").ValueOrDie();
  EXPECT_EQ(out.num_rows(), 1u);  // set semantics
  EXPECT_EQ(out.RowValues(0)[0], Value(int64_t{3}));
}

TEST(Executor, TwoWayJoin) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "city_id", c, "id");
  b.Project(l, "person_id");
  b.Project(c, "cname");
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(out.count(Ids(db, {Value(int64_t{2}), Value("lima")})));
  EXPECT_FALSE(out.count(Ids(db, {Value(int64_t{1}), Value("lima")})));
}

TEST(Executor, ThreeWayJoinThroughBridge) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId p = b.Instance("person");
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "person_id", p, "id");
  b.Join(l, "city_id", c, "id");
  b.Project(p, "name");
  b.Project(c, "cname");
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(out.count(Ids(db, {Value("alice"), Value("oslo")})));
  EXPECT_TRUE(out.count(Ids(db, {Value("carol"), Value("lima")})));
  EXPECT_FALSE(out.count(Ids(db, {Value("alice"), Value("lima")})));
}

TEST(Executor, SelfJoinWithTwoInstances) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId emp = b.Instance("person");
  InstanceId mgr = b.Instance("person");
  b.Join(emp, "manager_id", mgr, "id");
  b.Project(emp, "name");
  b.Project(mgr, "name");
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.count(Ids(db, {Value("alice"), Value("carol")})));
  EXPECT_TRUE(out.count(Ids(db, {Value("carol"), Value("carol")})));
}

TEST(Executor, SameInstanceJoinIsAFilter) {
  Database db = BuildFixture();
  PJQuery q;
  InstanceId p = q.AddInstance(0);
  q.AddJoin(p, 0, p, 2);  // id = manager_id: only carol
  q.AddProjection(p, 1);
  TupleSet out = RunToSet(db, q);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.count(Ids(db, {Value("carol")})));
}

TEST(Executor, SelectionsRestrictResults) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "city_id", c, "id");
  b.Project(l, "person_id");
  b.Select(c, "cname", Value("oslo"));
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_EQ(out.size(), 2u);  // persons 1 and 2
}

TEST(Executor, SelectionOnNonStartInstance) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId p = b.Instance("person");
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "person_id", p, "id");
  b.Join(l, "city_id", c, "id");
  b.Project(c, "cname");
  b.Select(p, "name", Value("bob"));
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_EQ(out.size(), 2u);  // bob lives in both cities
}

TEST(Executor, DisconnectedQueryIsRejected) {
  Database db = BuildFixture();
  PJQuery q;
  q.AddInstance(0);
  q.AddInstance(1);
  q.AddProjection(0, 0);
  auto cursor = QueryCursor::Create(db, q);
  EXPECT_TRUE(cursor.status().IsInvalidArgument());
}

TEST(Executor, EmptyQueryIsRejected) {
  Database db = BuildFixture();
  PJQuery q;
  auto cursor = QueryCursor::Create(db, q);
  EXPECT_TRUE(cursor.status().IsInvalidArgument());
}

TEST(Executor, NoProjectionIsRejectedByExecuteToTable) {
  Database db = BuildFixture();
  PJQuery q;
  q.AddInstance(0);
  EXPECT_TRUE(ExecuteToTable(db, q, "out").status().IsInvalidArgument());
}

TEST(Executor, ProgressiveNextYieldsOneRowAtATime) {
  Database db = BuildFixture();
  PJQuery q;
  InstanceId p = q.AddInstance(0);
  q.AddProjection(p, 0);
  auto cursor = QueryCursor::Create(db, q).ValueOrDie();
  std::vector<ValueId> row;
  int count = 0;
  while (cursor->Next(&row)) {
    ++count;
    EXPECT_EQ(row.size(), 1u);
  }
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(cursor->Next(&row));  // stays exhausted
  EXPECT_GE(cursor->rows_examined(), 3u);
}

TEST(Executor, EmptyJoinResult) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "city_id", c, "id");
  b.Project(c, "cname");
  b.Select(c, "cname", Value("atlantis"));
  TupleSet out = RunToSet(db, b.Build().ValueOrDie());
  EXPECT_TRUE(out.empty());
}

TEST(Executor, NullsJoinAsValues) {
  // Our set-semantics engine treats NULL as an ordinary value (documented in
  // value.h); two NULL cells are equal.
  Database db;
  TableId t1 = db.AddTable("a").ValueOrDie();
  ASSERT_TRUE(db.table(t1).AddColumn("x", ValueType::kInt64).ok());
  ASSERT_TRUE(db.table(t1).AppendRow({Value::Null()}).ok());
  TableId t2 = db.AddTable("b").ValueOrDie();
  ASSERT_TRUE(db.table(t2).AddColumn("y", ValueType::kInt64).ok());
  ASSERT_TRUE(db.table(t2).AppendRow({Value::Null()}).ok());
  PJQuery q;
  InstanceId a = q.AddInstance(t1);
  InstanceId b = q.AddInstance(t2);
  q.AddJoin(a, 0, b, 0);
  q.AddProjection(a, 0);
  EXPECT_EQ(RunToSet(db, q).size(), 1u);
}

TEST(Executor, DuplicateColumnNamesAreDisambiguated) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId p1 = b.Instance("person");
  InstanceId p2 = b.Instance("person");
  b.Join(p1, "manager_id", p2, "id");
  b.Project(p1, "name");
  b.Project(p2, "name");
  Table out = ExecuteToTable(db, b.Build().ValueOrDie(), "out").ValueOrDie();
  EXPECT_EQ(out.column(0).name(), "name");
  EXPECT_EQ(out.column(1).name(), "name_");
}

TEST(Executor, ExplicitColumnNames) {
  Database db = BuildFixture();
  PJQuery q;
  InstanceId p = q.AddInstance(0);
  q.AddProjection(p, 1);
  Table out = ExecuteToTable(db, q, "out", {"who"}).ValueOrDie();
  EXPECT_EQ(out.column(0).name(), "who");
}

// ---------- block executor ---------------------------------------------------

TEST(BlockExecutor, MatchesPipelinedExecutor) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId p = b.Instance("person");
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "person_id", p, "id");
  b.Join(l, "city_id", c, "id");
  b.Project(p, "name");
  b.Project(c, "cname");
  PJQuery q = b.Build().ValueOrDie();
  Table block = ExecuteBlock(db, q, "block").ValueOrDie();
  Table piped = ExecuteToTable(db, q, "piped").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(block), TableToTupleSet(piped));
  EXPECT_EQ(block.num_rows(), 4u);
}

TEST(BlockExecutor, HandlesSelfJoinAndFilters) {
  Database db = BuildFixture();
  PJQuery q;
  InstanceId p = q.AddInstance(0);
  q.AddJoin(p, 0, p, 2);  // id = manager_id
  q.AddProjection(p, 1);
  Table out = ExecuteBlock(db, q, "out").ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.RowValues(0)[0], Value("carol"));
}

TEST(BlockExecutor, RejectsBadQueries) {
  Database db = BuildFixture();
  PJQuery empty;
  EXPECT_TRUE(ExecuteBlock(db, empty, "x").status().IsInvalidArgument());
  PJQuery cross;
  cross.AddInstance(0);
  cross.AddInstance(1);
  cross.AddProjection(0, 0);
  EXPECT_TRUE(ExecuteBlock(db, cross, "x").status().IsInvalidArgument());
  PJQuery no_proj;
  no_proj.AddInstance(0);
  EXPECT_TRUE(ExecuteBlock(db, no_proj, "x").status().IsInvalidArgument());
}

TEST(BlockExecutor, SelectionsApply) {
  Database db = BuildFixture();
  QueryBuilder b(&db);
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "city_id", c, "id");
  b.Project(l, "person_id");
  b.Select(c, "cname", Value("oslo"));
  Table out = ExecuteBlock(db, b.Build().ValueOrDie(), "out").ValueOrDie();
  EXPECT_EQ(out.num_rows(), 2u);
}

// ---------- compare ---------------------------------------------------------

TEST(Compare, ProjectToTupleSet) {
  Database db = BuildFixture();
  TupleSet s = ProjectToTupleSet(db.table(0), {2});  // manager_id
  EXPECT_EQ(s.size(), 1u);
  TupleSet s2 = ProjectToTupleSet(db.table(0), {0, 2});
  EXPECT_EQ(s2.size(), 3u);
}

TEST(Compare, SubsetChecks) {
  Database db = BuildFixture();
  TupleSet small = ProjectToTupleSet(db.table(0), {2});
  TupleSet big = ProjectToTupleSet(db.table(0), {0});
  EXPECT_TRUE(IsSubsetOf(small, big));  // {3} subset of {1,2,3}
  EXPECT_FALSE(IsSubsetOf(big, small));
  EXPECT_TRUE(ProjectionSubsetOf(db.table(0), {2}, big));
  EXPECT_FALSE(ProjectionSubsetOf(db.table(0), {0}, small));
}

TEST(Compare, TableToTupleSetCollapsesDuplicates) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("a", ValueType::kInt64).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_EQ(TableToTupleSet(t).size(), 1u);
}

// ---------- cost ------------------------------------------------------------

TEST(Cost, SingleTableCostIsRowCount) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  PJQuery q;
  q.AddInstance(0);
  EXPECT_DOUBLE_EQ(est.EstimateCost(q), 3.0);
}

TEST(Cost, JoinCostExceedsScanCost) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  PJQuery scan;
  scan.AddInstance(2);
  PJQuery join;
  InstanceId l = join.AddInstance(2);
  InstanceId c = join.AddInstance(1);
  join.AddJoin(l, 1, c, 0);
  EXPECT_GT(est.EstimateCost(join), est.EstimateCost(scan));
}

TEST(Cost, MoreJoinsCostMore) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  QueryBuilder b2(&db);
  InstanceId l = b2.Instance("lives");
  InstanceId c = b2.Instance("city");
  b2.Join(l, "city_id", c, "id");
  PJQuery two = b2.Build().ValueOrDie();

  QueryBuilder b3(&db);
  InstanceId p3 = b3.Instance("person");
  InstanceId l3 = b3.Instance("lives");
  InstanceId c3 = b3.Instance("city");
  b3.Join(l3, "person_id", p3, "id");
  b3.Join(l3, "city_id", c3, "id");
  PJQuery three = b3.Build().ValueOrDie();
  EXPECT_GT(est.EstimateCost(three), est.EstimateCost(two));
}

TEST(Cost, DisconnectedModeledAsCrossProduct) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  PJQuery q;
  q.AddInstance(0);
  q.AddInstance(1);
  EXPECT_DOUBLE_EQ(est.EstimateCost(q), 6.0);  // 3 * 2
}

TEST(Cost, NormalizedCostIsLogScale) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  PJQuery q;
  q.AddInstance(0);
  EXPECT_NEAR(est.NormalizedCost(q), std::log10(4.0), 1e-9);
}

TEST(Cost, EstimateMatchesExecutionOrderOfMagnitude) {
  Database db = BuildFixture();
  CostEstimator est(&db);
  QueryBuilder b(&db);
  InstanceId l = b.Instance("lives");
  InstanceId c = b.Instance("city");
  b.Join(l, "city_id", c, "id");
  b.Project(l, "person_id");
  b.Project(c, "cname");
  PJQuery q = b.Build().ValueOrDie();
  auto cursor = QueryCursor::Create(db, q).ValueOrDie();
  std::vector<ValueId> row;
  uint64_t rows = 0;
  while (cursor->Next(&row)) ++rows;
  double cost = est.EstimateCost(q);
  EXPECT_GE(cost, static_cast<double>(rows));
  EXPECT_LE(cost, 100.0 * rows);
}

}  // namespace
}  // namespace fastqre
