// Unit tests for the semi-automated alpha calibration (Section 4.4.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/tpch.h"
#include "qre/tuning.h"

namespace fastqre {
namespace {

TEST(TuneAlpha, ReturnsACandidateWithTimings) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  TuneAlphaOptions topts;
  topts.candidates = {0.25, 0.75};
  topts.num_test_queries = 2;
  topts.per_run_budget_seconds = 10.0;
  TuneAlphaResult result = TuneAlpha(db, QreOptions(), topts).ValueOrDie();
  EXPECT_TRUE(result.best_alpha == 0.25 || result.best_alpha == 0.75);
  ASSERT_EQ(result.total_seconds.size(), 2u);
  ASSERT_EQ(result.alphas.size(), 2u);
  for (double t : result.total_seconds) EXPECT_GE(t, 0.0);
  // best_alpha is the argmin of total_seconds.
  size_t best_idx = static_cast<size_t>(
      std::min_element(result.total_seconds.begin(), result.total_seconds.end()) -
      result.total_seconds.begin());
  EXPECT_DOUBLE_EQ(result.best_alpha, result.alphas[best_idx]);
}

TEST(TuneAlpha, EmptyCandidatesRejected) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  TuneAlphaOptions topts;
  topts.candidates = {};
  EXPECT_TRUE(TuneAlpha(db, QreOptions(), topts).status().IsInvalidArgument());
}

TEST(TuneAlpha, DeterministicForFixedSeed) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  TuneAlphaOptions topts;
  topts.candidates = {0.5};
  topts.num_test_queries = 2;
  topts.seed = 11;
  auto a = TuneAlpha(db, QreOptions(), topts).ValueOrDie();
  auto b = TuneAlpha(db, QreOptions(), topts).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.best_alpha, b.best_alpha);
}

TEST(TuneAlpha, SingleTableDatabase) {
  Database db;
  TableId t = db.AddTable("solo").ValueOrDie();
  ASSERT_TRUE(db.table(t).AddColumn("k", ValueType::kInt64).ok());
  ASSERT_TRUE(db.table(t).AddColumn("v", ValueType::kString).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db.table(t).AppendRow({Value(i), Value("v" + std::to_string(i))}).ok());
  }
  TuneAlphaOptions topts;
  topts.test_query_instances = 1;
  topts.num_test_queries = 1;
  auto result = TuneAlpha(db, QreOptions(), topts);
  // Either calibrates on single-instance queries or reports NotFound; both
  // are acceptable (no join paths exist to rank).
  if (result.ok()) {
    EXPECT_GE(result->best_alpha, 0.0);
    EXPECT_LE(result->best_alpha, 1.0);
  } else {
    EXPECT_TRUE(result.status().IsNotFound());
  }
}

}  // namespace
}  // namespace fastqre
