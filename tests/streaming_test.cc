// Regression tests for the ReverseAll answer-callback hook: the streamed
// sequence must be exactly the returned batch — same entries, same order,
// byte-identical SQL — at every validation thread count, because answers
// are published under the rank barrier (DESIGN.md §8). This is the
// contract the service's live streaming is built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

namespace fastqre {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
  }

  /// Runs ReverseAll twice — batch, then streamed — and asserts the stream
  /// observed the batch exactly.
  void ExpectStreamEqualsBatch(const Table& rout, QreOptions opts, int limit,
                               const std::string& context) {
    FastQre batch_engine(&db_, opts);
    const std::vector<QreAnswer> batch =
        batch_engine.ReverseAll(rout, limit).ValueOrDie();

    std::vector<QreAnswer> streamed;
    FastQre stream_engine(&db_, opts);
    const std::vector<QreAnswer> returned =
        stream_engine
            .ReverseAll(rout, limit,
                        [&streamed](const QreAnswer& a) {
                          streamed.push_back(a);
                        })
            .ValueOrDie();

    SCOPED_TRACE(context);
    // The callback saw every entry of the returned vector, in order.
    ASSERT_EQ(streamed.size(), returned.size());
    for (size_t i = 0; i < returned.size(); ++i) {
      EXPECT_EQ(streamed[i].found, returned[i].found);
      EXPECT_EQ(streamed[i].sql, returned[i].sql);
      EXPECT_EQ(streamed[i].failure_reason, returned[i].failure_reason);
    }
    // And the streamed run is byte-identical to the independent batch run.
    ASSERT_EQ(streamed.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streamed[i].found, batch[i].found);
      EXPECT_EQ(streamed[i].sql, batch[i].sql);
      EXPECT_EQ(streamed[i].failure_reason, batch[i].failure_reason);
    }
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(StreamingTest, StreamedEqualsBatchAcrossThreadCounts) {
  for (const auto& wq : workload_) {
    for (int threads : {1, 8}) {
      QreOptions opts;
      opts.validation_threads = threads;
      ExpectStreamEqualsBatch(wq.rout, opts, /*limit=*/3,
                              wq.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST_F(StreamingTest, EmptyCallbackIsEquivalentToNone) {
  // The 2-arg overload and a default-constructed callback take the same
  // path; no crash, same answers.
  const Table& rout = workload_.front().rout;
  FastQre engine(&db_);
  const auto with_null =
      engine.ReverseAll(rout, 1, FastQre::AnswerCallback()).ValueOrDie();
  const auto without = engine.ReverseAll(rout, 1).ValueOrDie();
  ASSERT_EQ(with_null.size(), without.size());
  EXPECT_EQ(with_null[0].sql, without[0].sql);
}

TEST_F(StreamingTest, CallbackSeesTruncationTailOnCancel) {
  // Cancel after the first accepted answer (deterministic fault): the
  // stream must deliver the proved answer and then the unfound tail whose
  // failure_reason records the cancellation — exactly what a service
  // client observes for a cancelled job.
  QreOptions opts;
  opts.fault_spec = "answer-found=cancel@1";
  FastQre engine(&db_, opts);
  std::vector<QreAnswer> streamed;
  const std::vector<QreAnswer> returned =
      engine
          .ReverseAll(workload_.front().rout, 10,
                      [&streamed](const QreAnswer& a) {
                        streamed.push_back(a);
                      })
          .ValueOrDie();
  ASSERT_EQ(streamed.size(), returned.size());
  ASSERT_GE(streamed.size(), 2u);
  EXPECT_TRUE(streamed.front().found);
  EXPECT_FALSE(streamed.back().found);
  EXPECT_EQ(streamed.back().failure_reason, "cancelled");
}

TEST_F(StreamingTest, StreamedStatsSnapshotsAreMonotone) {
  // Each published answer carries the job-scoped stats at publish time:
  // validated counts must be non-decreasing along the stream.
  QreOptions opts;
  opts.validation_threads = 8;
  FastQre engine(&db_, opts);
  std::vector<uint64_t> validated;
  (void)engine
      .ReverseAll(workload_.back().rout, 3,
                  [&validated](const QreAnswer& a) {
                    validated.push_back(a.stats.candidates_validated.value());
                  })
      .ValueOrDie();
  for (size_t i = 1; i < validated.size(); ++i) {
    EXPECT_GE(validated[i], validated[i - 1]);
  }
}

}  // namespace
}  // namespace fastqre
