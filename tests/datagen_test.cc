// Unit tests for src/datagen: TPC-H generator, random databases, workloads.
#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/randomdb.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"

namespace fastqre {
namespace {

// Referential integrity: every fk value must exist among parent pk values.
void ExpectFkIntegrity(const Database& db) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    const auto& parent_set =
        db.table(fk.parent_table).column(fk.parent_column).DistinctSet();
    for (ValueId v :
         db.table(fk.child_table).column(fk.child_column).DistinctSet()) {
      EXPECT_TRUE(parent_set.count(v) > 0)
          << db.table(fk.child_table).name() << " -> "
          << db.table(fk.parent_table).name();
    }
  }
}

TEST(Tpch, SchemaShape) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  EXPECT_EQ(db.num_tables(), 8u);
  for (const char* name : {"region", "nation", "supplier", "part", "partsupp",
                           "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(db.FindTable(name).ok()) << name;
  }
  // 9 fks + 2 extra L-PS parallel join edges (Figure 1).
  EXPECT_EQ(db.foreign_keys().size(), 9u);
  EXPECT_EQ(db.schema_graph().num_edges(), 11u);
}

TEST(Tpch, RowCountsScale) {
  Database small = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  Database large = BuildTpch({.scale_factor = 0.004, .seed = 1}).ValueOrDie();
  TableId s = *small.FindTable("supplier");
  EXPECT_EQ(small.table(s).num_rows(), 10u);
  EXPECT_EQ(large.table(s).num_rows(), 40u);
  EXPECT_EQ(small.table(*small.FindTable("region")).num_rows(), 5u);
  EXPECT_EQ(small.table(*small.FindTable("nation")).num_rows(), 25u);
  TableId ps = *small.FindTable("partsupp");
  TableId p = *small.FindTable("part");
  EXPECT_EQ(small.table(ps).num_rows(), 4 * small.table(p).num_rows());
}

TEST(Tpch, ForeignKeyIntegrity) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  ExpectFkIntegrity(db);
}

TEST(Tpch, KeysAreUniqueAndNamesDetermineKeys) {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 5}).ValueOrDie();
  for (const char* spec : {"supplier:s_suppkey", "part:p_partkey",
                           "customer:c_custkey", "orders:o_orderkey",
                           "nation:n_nationkey", "region:r_regionkey"}) {
    std::string s(spec);
    auto colon = s.find(':');
    const Table& t = db.table(*db.FindTable(s.substr(0, colon)));
    const Column& key = t.column(*t.FindColumn(s.substr(colon + 1)));
    EXPECT_TRUE(key.IsUnique()) << spec;
  }
  // name <-> key 1:1 (the property the paper's certainty rule exploits).
  const Table& sup = db.table(*db.FindTable("supplier"));
  EXPECT_TRUE(sup.column(*sup.FindColumn("s_name")).IsUnique());
}

TEST(Tpch, DeterministicForEqualSeeds) {
  Database a = BuildTpch({.scale_factor = 0.001, .seed = 7}).ValueOrDie();
  Database b = BuildTpch({.scale_factor = 0.001, .seed = 7}).ValueOrDie();
  for (TableId t = 0; t < a.num_tables(); ++t) {
    ASSERT_EQ(a.table(t).num_rows(), b.table(t).num_rows());
    for (RowId r = 0; r < a.table(t).num_rows(); ++r) {
      ASSERT_EQ(a.table(t).RowValues(r), b.table(t).RowValues(r)) << t;
    }
  }
}

TEST(Tpch, PartsuppPairsUnique) {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 2}).ValueOrDie();
  const Table& ps = db.table(*db.FindTable("partsupp"));
  EXPECT_EQ(ProjectToTupleSet(ps, {0, 1}).size(), ps.num_rows());
}

TEST(RandomDb, ConnectedAndIntegrity) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomDbOptions opts;
    opts.seed = seed;
    opts.num_tables = 5;
    Database db = BuildRandomDb(opts).ValueOrDie();
    EXPECT_EQ(db.num_tables(), 5u);
    ExpectFkIntegrity(db);
    // Spanning-tree construction => at least num_tables-1 edges.
    EXPECT_GE(db.schema_graph().num_edges(), 4u);
    // Schema graph connectivity via union-find over edges.
    std::vector<int> parent(db.num_tables());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      return parent[x] == x ? x : parent[x] = find(parent[x]);
    };
    for (const auto& e : db.schema_graph().edges()) {
      parent[find(e.table[0])] = find(e.table[1]);
    }
    for (size_t i = 1; i < parent.size(); ++i) EXPECT_EQ(find(i), find(0));
  }
}

TEST(RandomDb, KeyColumnsUnique) {
  Database db = BuildRandomDb({.seed = 9, .num_tables = 3}).ValueOrDie();
  for (TableId t = 0; t < db.num_tables(); ++t) {
    EXPECT_TRUE(db.table(t).column(0).IsUnique());
  }
}

TEST(RandomDb, SingleTable) {
  RandomDbOptions opts;
  opts.num_tables = 1;
  Database db = BuildRandomDb(opts).ValueOrDie();
  EXPECT_EQ(db.num_tables(), 1u);
  EXPECT_EQ(db.schema_graph().num_edges(), 0u);
}

TEST(RandomDb, InvalidOptions) {
  RandomDbOptions opts;
  opts.num_tables = 0;
  EXPECT_TRUE(BuildRandomDb(opts).status().IsInvalidArgument());
}

TEST(Workload, PaperQueriesMatchFigure2) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  EXPECT_EQ(q1.num_instances(), 6u);
  EXPECT_EQ(q1.joins().size(), 6u);
  EXPECT_EQ(q1.projections().size(), 5u);
  EXPECT_TRUE(q1.IsConnected());
  PJQuery q2 = BuildPaperQuery2(db).ValueOrDie();
  EXPECT_EQ(q2.projections().size(), 4u);
  // Query 2's result is the projection of Query 1's without availqty.
  Table r1 = ExecuteToTable(db, q1, "r1").ValueOrDie();
  Table r2 = ExecuteToTable(db, q2, "r2").ValueOrDie();
  TupleSet r1_proj = ProjectToTupleSet(r1, {0, 1, 3, 4});
  EXPECT_EQ(r1_proj, TableToTupleSet(r2));
}

TEST(Workload, LadderHasIncreasingComplexityAndNonEmptyOutputs) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  ASSERT_EQ(workload.size(), 10u);
  for (const auto& wq : workload) {
    EXPECT_GT(wq.rout.num_rows(), 0u) << wq.name;
    EXPECT_TRUE(wq.query.IsConnected()) << wq.name;
    // R_out really is the query's output.
    Table regen = ExecuteToTable(db, wq.query, "regen").ValueOrDie();
    EXPECT_EQ(TableToTupleSet(regen), TableToTupleSet(wq.rout)) << wq.name;
  }
  EXPECT_LE(workload.front().query.num_instances(),
            workload.back().query.num_instances());
}

TEST(Workload, RandomCpjQueryProducesValidEntries) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  Rng rng(77);
  RandomQueryOptions opts;
  opts.num_instances = 3;
  for (int i = 0; i < 10; ++i) {
    WorkloadQuery wq = RandomCpjQuery(db, &rng, opts).ValueOrDie();
    EXPECT_TRUE(wq.query.IsConnected());
    EXPECT_EQ(wq.query.num_instances(), 3u);
    EXPECT_GE(wq.rout.num_rows(), opts.min_rout_rows);
    EXPECT_LE(wq.rout.num_rows(), opts.max_rout_rows);
    // project_every_instance: each instance appears in some projection.
    std::unordered_set<InstanceId> projected;
    for (const auto& p : wq.query.projections()) projected.insert(p.instance);
    EXPECT_EQ(projected.size(), wq.query.num_instances());
  }
}

TEST(Workload, RandomQueryRespectsRowBounds) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 1}).ValueOrDie();
  Rng rng(5);
  RandomQueryOptions opts;
  opts.num_instances = 2;
  opts.max_rout_rows = 30;
  for (int i = 0; i < 5; ++i) {
    auto wq = RandomCpjQuery(db, &rng, opts);
    if (wq.ok()) {
      EXPECT_LE(wq->rout.num_rows(), 30u);
    }
  }
}

}  // namespace
}  // namespace fastqre
