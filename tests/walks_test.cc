// Unit tests for walk discovery and query composition (Section 4.4).
#include <gtest/gtest.h>

#include <set>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/mapping.h"
#include "qre/walks.h"

namespace fastqre {
namespace {

// Builds the top-ranked column mapping for a workload query's R_out.
struct WalkFixture {
  Database db;
  Table rout;
  QreOptions opts;
  QreStats stats;
  ColumnCover cover;
  CgmSet cgms;
  ColumnMapping mapping;

  WalkFixture(Database d, Table r, QreOptions o = QreOptions())
      : db(std::move(d)), rout(std::move(r)), opts(o) {
    cover = ComputeColumnCover(db, rout, opts, &stats);
    cgms = DiscoverCgms(db, rout, cover, opts, &stats);
    MappingEnumerator e(&db, &rout, &cover, &cgms, &opts);
    EXPECT_TRUE(e.Next(&mapping));
  }
};

WalkFixture PaperQuery1Fixture() {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 42}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();
  return WalkFixture(std::move(db), std::move(rout));
}

std::string WalkTables(const WalkFixture& f, const Walk& w) {
  std::string out;
  for (TableId t : w.tables) {
    if (!out.empty()) out += "-";
    out += f.db.table(t).name();
  }
  return out;
}

TEST(Walks, EndpointsAndLengthBounds) {
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  ASSERT_FALSE(walks.empty());
  for (const Walk& w : walks) {
    EXPECT_LT(w.from_instance, w.to_instance);
    EXPECT_GE(w.length(), 1);
    EXPECT_LE(w.length(), f.opts.max_walk_length);
    EXPECT_EQ(w.tables.size(), w.steps.size() + 1);
    EXPECT_EQ(w.tables.front(),
              f.mapping.instances[w.from_instance].table);
    EXPECT_EQ(w.tables.back(), f.mapping.instances[w.to_instance].table);
  }
}

TEST(Walks, ContainsThePaperWalks) {
  // Query 1's three walks: w1 = S-PS, w2 = PS-P-PS2-S2, w3 = S-N-S2.
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  std::set<std::string> shapes;
  for (const Walk& w : walks) shapes.insert(WalkTables(f, w));
  EXPECT_TRUE(shapes.count("supplier-partsupp") ||
              shapes.count("partsupp-supplier"));
  EXPECT_TRUE(shapes.count("partsupp-part-partsupp-supplier") ||
              shapes.count("supplier-partsupp-part-partsupp"));
  EXPECT_TRUE(shapes.count("supplier-nation-supplier"));
}

TEST(Walks, NonSimpleWalksReuseEdges) {
  // w3 = S-N-S2 uses the S-N schema edge twice (once per step).
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  bool found = false;
  for (const Walk& w : walks) {
    if (WalkTables(f, w) == "supplier-nation-supplier" &&
        w.steps.size() == 2 && w.steps[0].edge == w.steps[1].edge) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Walks, NoDuplicateWalks) {
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  std::set<std::string> seen;
  for (const Walk& w : walks) {
    std::string sig = std::to_string(w.from_instance) + ":" +
                      std::to_string(w.to_instance);
    for (const WalkStep& s : w.steps) {
      sig += "," + std::to_string(s.edge) + (s.forward ? "f" : "r");
    }
    EXPECT_TRUE(seen.insert(sig).second) << sig;
  }
}

TEST(Walks, PerPairCapRespected) {
  WalkFixture f = PaperQuery1Fixture();
  f.opts.max_walks_per_pair = 3;
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  std::map<std::pair<int, int>, int> per_pair;
  for (const Walk& w : walks) {
    ++per_pair[{w.from_instance, w.to_instance}];
  }
  for (const auto& [pair, count] : per_pair) {
    EXPECT_LE(count, 3);
  }
}

TEST(Walks, LengthOrderWithinPair) {
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  std::map<std::pair<int, int>, int> last_len;
  for (const Walk& w : walks) {
    auto key = std::make_pair(w.from_instance, w.to_instance);
    auto it = last_len.find(key);
    if (it != last_len.end()) {
      EXPECT_GE(w.length(), it->second);
    }
    last_len[key] = w.length();
  }
}

TEST(Walks, MaxLengthOneRestrictsToDirectEdges) {
  WalkFixture f = PaperQuery1Fixture();
  f.opts.max_walk_length = 1;
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  for (const Walk& w : walks) EXPECT_EQ(w.length(), 1);
}

TEST(Walks, ComposeQueryReconstructsPaperQuery1) {
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  // Pick exactly the paper's three walks, identified by their *endpoint
  // instances*: S1 owns R_out columns A/B, S2 owns D/E, PS owns C. (Matching
  // table shapes alone is not enough — a supplier-partsupp walk also exists
  // between S2 and PS, and composing with it yields a different query.)
  const int s1 = f.mapping.slots[0].first;
  const int ps = f.mapping.slots[2].first;
  const int s2 = f.mapping.slots[3].first;
  auto connects = [](const Walk& w, int a, int b) {
    return (w.from_instance == a && w.to_instance == b) ||
           (w.from_instance == b && w.to_instance == a);
  };
  const Walk* w1 = nullptr;
  const Walk* w2 = nullptr;
  const Walk* w3 = nullptr;
  for (const Walk& w : walks) {
    std::string shape = WalkTables(f, w);
    if ((shape == "supplier-partsupp" || shape == "partsupp-supplier") &&
        connects(w, s1, ps) && w1 == nullptr) {
      w1 = &w;
    }
    if ((shape == "partsupp-part-partsupp-supplier" ||
         shape == "supplier-partsupp-part-partsupp") &&
        connects(w, ps, s2) && w2 == nullptr) {
      w2 = &w;
    }
    if (shape == "supplier-nation-supplier" && connects(w, s1, s2) &&
        w3 == nullptr) {
      w3 = &w;
    }
  }
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  ASSERT_NE(w3, nullptr);
  PJQuery q = ComposeQueryFromWalks(f.db, f.mapping, {w1, w2, w3});
  EXPECT_TRUE(q.IsConnected());
  EXPECT_EQ(q.num_instances(), 6u);  // 3 mapping + N, P, PS2 intermediates
  EXPECT_EQ(q.joins().size(), 6u);
  Table result = ExecuteToTable(f.db, q, "result").ValueOrDie();
  EXPECT_EQ(TableToTupleSet(result), TableToTupleSet(f.rout));
}

TEST(Walks, ComposeWalkSubqueryProjectsEndpointColumns) {
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  const Walk& w = walks.front();
  std::vector<ColumnId> out_cols;
  PJQuery sub = ComposeWalkSubquery(f.db, f.mapping, w, &out_cols);
  EXPECT_TRUE(sub.IsConnected());
  ASSERT_EQ(sub.projections().size(), out_cols.size());
  // out_cols are exactly the R_out columns mapped to the two endpoints.
  size_t expected = 0;
  for (const auto& [inst, col] : f.mapping.slots) {
    if (inst == w.from_instance || inst == w.to_instance) ++expected;
  }
  EXPECT_EQ(out_cols.size(), expected);
}

TEST(Walks, SubqueryOfTrueWalkIsCoherent) {
  // For a walk actually used by Q_gen, pi(R_out) on the endpoint columns is
  // contained in the subquery result (the Section 4.5 guarantee).
  WalkFixture f = PaperQuery1Fixture();
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  for (const Walk& w : walks) {
    if (WalkTables(f, w) != "supplier-nation-supplier") continue;
    std::vector<ColumnId> out_cols;
    PJQuery sub = ComposeWalkSubquery(f.db, f.mapping, w, &out_cols);
    Table result = ExecuteToTable(f.db, sub, "walkres").ValueOrDie();
    TupleSet res_set = TableToTupleSet(result);
    EXPECT_TRUE(ProjectionSubsetOf(f.rout, out_cols, res_set));
    return;
  }
  FAIL() << "expected walk not found";
}

TEST(Walks, TwoInstanceMappingHasWalks) {
  Database db = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  WalkFixture f(std::move(db), workload[1].rout);  // L02 supplier-nation
  ASSERT_EQ(f.mapping.instances.size(), 2u);
  auto walks = DiscoverWalks(f.db, f.mapping, f.opts);
  EXPECT_FALSE(walks.empty());
  bool direct = false;
  for (const Walk& w : walks) {
    if (w.length() == 1) direct = true;
  }
  EXPECT_TRUE(direct);
}

}  // namespace
}  // namespace fastqre
