// Tests for the JobManager (DESIGN.md §15.2): submit / stream / status /
// cancel semantics, the typed admission rejections, slice accounting
// against the global pool, the job-admit fault site and shutdown draining —
// all in-process (the TCP layer has its own test).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "server/job_manager.h"
#include "storage/csv.h"

namespace fastqre {
namespace {

class JobManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildTpch({.scale_factor = 0.001, .seed = 3}).ValueOrDie();
    workload_ = StandardTpchWorkload(db_).ValueOrDie();
  }

  JobManagerConfig SmallConfig() const {
    JobManagerConfig config;
    config.worker_threads = 2;
    config.admission.global_budget_bytes = 1ull << 30;
    config.admission.default_slice_bytes = 64ull << 20;
    config.admission.max_in_flight_jobs = 16;
    return config;
  }

  Request SubmitRequest(const std::string& workload_name, int limit = 1) const {
    const WorkloadQuery* wq = nullptr;
    for (const auto& q : workload_) {
      if (q.name == workload_name) wq = &q;
    }
    EXPECT_NE(wq, nullptr) << workload_name;
    Request req;
    req.verb = Verb::kSubmit;
    req.tenant = "test";
    req.db = "tpch";
    req.rout_csv = TableToCsv(wq->rout);
    req.options.limit = limit;
    return req;
  }

  /// Pulls the whole answer stream (blocking) and returns the final state.
  JobState Drain(JobManager* manager, uint64_t job_id,
                 std::vector<WireAnswer>* answers) {
    size_t cursor = 0;
    for (;;) {
      auto pull = manager->WaitAnswers(job_id, cursor, 5.0).ValueOrDie();
      for (const WireAnswer& a : pull.answers) answers->push_back(a);
      cursor += pull.answers.size();
      if (pull.complete) return pull.state;
    }
  }

  Database db_;
  std::vector<WorkloadQuery> workload_;
};

TEST_F(JobManagerTest, SubmitRunsToDoneAndMatchesDirectEngine) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());

  const Request req = SubmitRequest("L02", /*limit=*/2);
  const auto outcome = manager.Submit(req);
  ASSERT_EQ(outcome.error, WireError::kNone) << outcome.message;
  ASSERT_GT(outcome.job_id, 0u);

  std::vector<WireAnswer> streamed;
  EXPECT_EQ(Drain(&manager, outcome.job_id, &streamed), JobState::kDone);

  // The service must return exactly what a direct engine run returns.
  QreOptions opts;
  opts.memory_budget_bytes = manager.admission().config().default_slice_bytes;
  FastQre direct(&db_, opts);
  Table rout = LoadCsvString(req.rout_csv, "rout", db_.dictionary())
                   .ValueOrDie();
  std::vector<QreAnswer> batch = direct.ReverseAll(rout, 2).ValueOrDie();
  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].index, static_cast<int>(i));
    EXPECT_EQ(streamed[i].found, batch[i].found);
    EXPECT_EQ(streamed[i].sql, batch[i].sql);
    EXPECT_EQ(streamed[i].failure_reason, batch[i].failure_reason);
  }

  const WireJobStatus status =
      manager.GetStatus(outcome.job_id).ValueOrDie();
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.tenant, "test");
  EXPECT_EQ(status.db, "tpch");
  EXPECT_EQ(status.answers_streamed, streamed.size());
  EXPECT_TRUE(status.found_any);
  EXPECT_GT(status.slice_bytes, 0u);
}

TEST_F(JobManagerTest, SliceReturnsToPoolAfterCompletion) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());
  for (int i = 0; i < 3; ++i) {
    const auto outcome = manager.Submit(SubmitRequest("L01"));
    ASSERT_EQ(outcome.error, WireError::kNone) << outcome.message;
    std::vector<WireAnswer> answers;
    Drain(&manager, outcome.job_id, &answers);
  }
  EXPECT_EQ(manager.admission().pool().reserved_bytes(), 0u);
  EXPECT_EQ(manager.admission().in_flight_jobs(), 0);
  // Peak proves slices were actually reserved while jobs ran.
  EXPECT_GE(manager.admission().pool().peak_reserved_bytes(),
            manager.admission().config().default_slice_bytes);
}

TEST_F(JobManagerTest, TypedRejections) {
  JobManagerConfig config = SmallConfig();
  config.admission.global_budget_bytes = 1;  // nothing can be funded
  JobManager manager(config);
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());

  Request req = SubmitRequest("L01");
  EXPECT_EQ(manager.Submit(req).error, WireError::kBudgetExhausted);

  req.db = "nope";
  EXPECT_EQ(manager.Submit(req).error, WireError::kNotFound);

  req = SubmitRequest("L01");
  req.rout_csv = "not,a,valid\ncsv";  // ragged row
  EXPECT_EQ(manager.Submit(req).error, WireError::kInvalidArgument);
}

TEST_F(JobManagerTest, RateLimitRejectsWithTypedError) {
  JobManagerConfig config = SmallConfig();
  config.admission.tenant_rate_per_second = 0.001;  // effectively no refill
  config.admission.tenant_burst = 1.0;
  JobManager manager(config);
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());

  const auto first = manager.Submit(SubmitRequest("L01"));
  ASSERT_EQ(first.error, WireError::kNone);
  const auto second = manager.Submit(SubmitRequest("L01"));
  EXPECT_EQ(second.error, WireError::kRateLimited);
  std::vector<WireAnswer> answers;
  Drain(&manager, first.job_id, &answers);
}

TEST_F(JobManagerTest, CancelledJobKeepsProvedPrefix) {
  // job-admit=cancel marks the job cancelled the moment it is admitted, so
  // the worker observes the flag deterministically — the streamed prefix is
  // empty and the terminal state is kCancelled with the honest reason.
  JobManagerConfig config = SmallConfig();
  config.fault_spec = "job-admit=cancel";
  JobManager manager(config);
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());

  const auto outcome = manager.Submit(SubmitRequest("L02"));
  ASSERT_EQ(outcome.error, WireError::kNone) << outcome.message;
  std::vector<WireAnswer> answers;
  EXPECT_EQ(Drain(&manager, outcome.job_id, &answers),
            JobState::kCancelled);
  const WireJobStatus status =
      manager.GetStatus(outcome.job_id).ValueOrDie();
  EXPECT_EQ(status.failure_reason, "cancelled");
  EXPECT_EQ(manager.admission().pool().reserved_bytes(), 0u);
}

TEST_F(JobManagerTest, ExplicitCancelOfRunningJob) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());
  // The hardest ladder query, enumerating far beyond its real answer count,
  // so the job is still searching when the cancel lands.
  const auto outcome = manager.Submit(SubmitRequest("L10", /*limit=*/50));
  ASSERT_EQ(outcome.error, WireError::kNone) << outcome.message;
  ASSERT_TRUE(manager.Cancel(outcome.job_id).ok());

  std::vector<WireAnswer> answers;
  const JobState state = Drain(&manager, outcome.job_id, &answers);
  // The cancel may land before the job even starts (empty stream), mid-
  // search (proved prefix + truncation tail), or after completion (kDone).
  if (state == JobState::kCancelled) {
    if (!answers.empty()) {
      EXPECT_FALSE(answers.back().found);
      EXPECT_EQ(answers.back().failure_reason, "cancelled");
    }
    EXPECT_EQ(manager.GetStatus(outcome.job_id).ValueOrDie().failure_reason,
              "cancelled");
  } else {
    EXPECT_EQ(state, JobState::kDone);  // search beat the cancel: also fine
  }
  // Cancel is idempotent and NotFound is typed.
  EXPECT_TRUE(manager.Cancel(outcome.job_id).ok());
  EXPECT_FALSE(manager.Cancel(999999).ok());
}

TEST_F(JobManagerTest, JobAdmitAllocFailInjectsSaturation) {
  JobManagerConfig config = SmallConfig();
  config.fault_spec = "job-admit=alloc-fail@2";  // second submit fails
  JobManager manager(config);
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());

  const auto first = manager.Submit(SubmitRequest("L01"));
  EXPECT_EQ(first.error, WireError::kNone);
  const auto second = manager.Submit(SubmitRequest("L01"));
  EXPECT_EQ(second.error, WireError::kSaturated);
  EXPECT_NE(second.message.find("job-admit"), std::string::npos);
  const auto third = manager.Submit(SubmitRequest("L01"));
  EXPECT_EQ(third.error, WireError::kSaturated);  // @2 fires onward
  std::vector<WireAnswer> answers;
  Drain(&manager, first.job_id, &answers);
  // Injected rejections held no admission state.
  EXPECT_EQ(manager.admission().pool().reserved_bytes(), 0u);
}

TEST_F(JobManagerTest, ListDbsIsDeterministic) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("zeta", &db_).ok());
  ASSERT_TRUE(manager.AttachDatabase("alpha", &db_).ok());
  EXPECT_FALSE(manager.AttachDatabase("alpha", &db_).ok());  // duplicate
  const std::vector<WireDbInfo> dbs = manager.ListDbs();
  ASSERT_EQ(dbs.size(), 2u);
  EXPECT_EQ(dbs[0].name, "alpha");  // sorted, not insertion order
  EXPECT_EQ(dbs[1].name, "zeta");
  EXPECT_EQ(dbs[0].tables, db_.num_tables());
  EXPECT_GT(dbs[0].rows, 0u);
}

TEST_F(JobManagerTest, WaitAnswersTimeoutAndNotFound) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());
  EXPECT_FALSE(manager.WaitAnswers(42, 0, 0.01).ok());

  const auto outcome = manager.Submit(SubmitRequest("L02"));
  ASSERT_EQ(outcome.error, WireError::kNone);
  // A cursor past the stream on a live job times out without blocking
  // forever and reports complete == false until the job is terminal.
  auto pull = manager.WaitAnswers(outcome.job_id, 100, 0.01).ValueOrDie();
  EXPECT_TRUE(pull.answers.empty());
  std::vector<WireAnswer> answers;
  Drain(&manager, outcome.job_id, &answers);
}

TEST_F(JobManagerTest, ShutdownDrainsAndRejects) {
  JobManager manager(SmallConfig());
  ASSERT_TRUE(manager.AttachDatabase("tpch", &db_).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto outcome = manager.Submit(SubmitRequest("L10", /*limit=*/50));
    ASSERT_EQ(outcome.error, WireError::kNone);
    ids.push_back(outcome.job_id);
  }
  manager.Shutdown();
  for (uint64_t id : ids) {
    const WireJobStatus status = manager.GetStatus(id).ValueOrDie();
    EXPECT_TRUE(status.state == JobState::kDone ||
                status.state == JobState::kCancelled)
        << JobStateToString(status.state);
  }
  EXPECT_EQ(manager.Submit(SubmitRequest("L01")).error,
            WireError::kShuttingDown);
  EXPECT_EQ(manager.admission().pool().reserved_bytes(), 0u);
  EXPECT_EQ(manager.admission().in_flight_jobs(), 0);
}

}  // namespace
}  // namespace fastqre
