#!/bin/sh
# End-to-end exercise of fastqre_serverd + fastqre_client over a real
# socket: mixed submit / status / cancel traffic, typed rejections, and a
# clean SIGTERM shutdown. CI runs this under ASan+UBSan and TSan; it is
# also runnable locally:
#
#   tests/server_integration.sh build            # normal traffic
#   tests/server_integration.sh build --chaos    # deterministic wire chaos
#
# --chaos starts the daemon with fixed-seed socket fault sites (a reset
# mid-stream, read stalls, short writes — DESIGN.md §15.5) and drives a
# retrying idempotent client through them: the run passes only if the
# client reassembles a complete, gap-free, duplicate-free sequence-numbered
# answer stream across the forced reconnect, the repeated submit never
# creates a second job, and the daemon still shuts down cleanly (a wedged
# connection thread would hang the SIGTERM wait and trip the ctest
# timeout). CI runs this mode under ASan+UBSan and TSan.
#
# Everything asserts on the documented exit-code contract (0 found,
# 1 exhausted, 3 stopped early, 4 typed rejection / transport error) and
# on --json payload fields, never on human-rendered text.
set -u

BUILD=${1:?usage: server_integration.sh BUILD_DIR [--chaos]}
MODE=${2:-}
CLI=$BUILD/tools/fastqre
SERVERD=$BUILD/tools/fastqre_serverd
CLIENT=$BUILD/tools/fastqre_client
for bin in "$CLI" "$SERVERD" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "missing binary: $bin" >&2
    exit 2
  fi
done

WORK=$(mktemp -d)
SERVER_PID=
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# ---- fixture data --------------------------------------------------------
"$CLI" gen-tpch --out "$WORK/db" --scale 0.001 --seed 3 >/dev/null || exit 2
"$CLI" demo-rout --db "$WORK/db" --query L01 --out "$WORK/easy.csv" \
  >/dev/null || exit 2
"$CLI" demo-rout --db "$WORK/db" --query L10 --out "$WORK/hard.csv" \
  >/dev/null || exit 2

# ---- server --------------------------------------------------------------
# Ephemeral port + port-file handshake; generous limits so only the cases
# below that WANT a rejection see one. Chaos mode adds the fixed-seed wire
# fault schedule (sequential traffic keeps the per-rule hit counters on the
# same frames every run: write 1 = pong, 2 = accepted, 3 = first answer —
# reset fires there — and everything from write 4 on goes out in 1-byte
# sends) plus tight-but-serveable deadlines.
if [ "$MODE" = "--chaos" ]; then
  FAULTS="wire-accept=stall@1..1,wire-read=stall@2..3"
  FAULTS="$FAULTS,wire-write=reset@3..3,wire-write=short-write@4..999"
  set -- --io-deadline-ms 5000 --idle-timeout-ms 5000 --fault-spec "$FAULTS"
else
  set --
fi
"$SERVERD" --db tpch="$WORK/db" --port 0 --port-file "$WORK/port" \
  --workers 4 --max-jobs 8 --pool-mb 512 \
  --default-slice-mb 64 --max-slice-mb 128 \
  --rate 200 --burst 100 "$@" >"$WORK/serverd.log" 2>&1 &
SERVER_PID=$!

i=0
while [ ! -s "$WORK/port" ] && [ "$i" -lt 300 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -s "$WORK/port" ]; then
  cat "$WORK/serverd.log" >&2
  echo "server never wrote its port file" >&2
  exit 2
fi
PORT=$(cat "$WORK/port")

# ---- chaos mode ----------------------------------------------------------
if [ "$MODE" = "--chaos" ]; then
  # C1. ping through the (stalling) accept path still answers.
  out=$("$CLIENT" --port "$PORT" ping --json)
  rc=$?
  [ "$rc" -eq 0 ] || fail "chaos ping exit $rc"
  case "$out" in
    *'"kind":"pong"'*) ;;
    *) fail "chaos ping payload malformed: $out" ;;
  esac

  # C2. A keyed submit rides out the injected mid-stream reset: the client
  # reconnects, resumes via attach, and must end with a complete, gap-free,
  # duplicate-free sequence-numbered stream (a gap or divergence is exit 4).
  "$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/easy.csv" \
    --tenant chaos --idempotency-key chaos-k1 --all 2 \
    --retries 8 --backoff-ms 50 --json \
    >"$WORK/chaos1.json" 2>"$WORK/chaos1.err"
  rc=$?
  [ "$rc" -eq 0 ] || fail "chaos submit exit $rc (want 0)"
  grep -q '"kind":"done"' "$WORK/chaos1.json" ||
    fail "chaos stream has no done frame"
  grep -q '"seq":0' "$WORK/chaos1.json" ||
    fail "chaos stream answers carry no sequence numbers"
  dups=$(sed -n 's/.*"seq":\([0-9]*\).*/\1/p' "$WORK/chaos1.json" |
    sort | uniq -d)
  [ -z "$dups" ] || fail "duplicate sequence numbers in chaos stream: $dups"
  grep -q 'retrying in' "$WORK/chaos1.err" ||
    fail "injected reset never forced a reconnect (chaos schedule drifted?)"
  JOB1=$(sed -n 's/.*"kind":"accepted".*"job":\([0-9]*\).*/\1/p' \
    "$WORK/chaos1.json" | head -n 1)
  [ -n "$JOB1" ] || fail "chaos submit has no accepted frame"

  # C3. Repeating the submit under the same idempotency key returns the
  # SAME job (byte-identical replayed stream), never a second admission.
  "$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/easy.csv" \
    --tenant chaos --idempotency-key chaos-k1 --all 2 \
    --retries 8 --backoff-ms 50 --json >"$WORK/chaos2.json" 2>&1
  rc=$?
  [ "$rc" -eq 0 ] || fail "chaos resubmit exit $rc (want 0)"
  JOB2=$(sed -n 's/.*"kind":"accepted".*"job":\([0-9]*\).*/\1/p' \
    "$WORK/chaos2.json" | head -n 1)
  [ "$JOB1" = "$JOB2" ] ||
    fail "idempotency key admitted a second job ($JOB1 vs $JOB2)"

  # C4. The pong load snapshot agrees: exactly one job exists, done, none
  # failed — and nothing is still running (no wedged stream threads).
  out=$("$CLIENT" --port "$PORT" ping --json)
  rc=$?
  [ "$rc" -eq 0 ] || fail "post-chaos ping exit $rc"
  case "$out" in
    *'"queued":0,"running":0,"done":1,"cancelled":0,"failed":0'*) ;;
    *) fail "post-chaos pong job counts wrong: $out" ;;
  esac

  # C5. Clean SIGTERM shutdown with the chaos schedule spent: Stop() joins
  # every connection thread or hangs here (ctest timeout catches it).
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  rc=$?
  SERVER_PID=
  [ "$rc" -eq 0 ] || fail "chaos serverd SIGTERM exit $rc (want 0)"
  grep -q 'shutting down' "$WORK/serverd.log" ||
    fail "chaos serverd log missing shutdown marker"

  if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES failure(s)" >&2
    exit 1
  fi
  echo "server integration (chaos): PASS"
  exit 0
fi

# ---- 1. list-dbs shows the attached database -----------------------------
out=$("$CLIENT" --port "$PORT" list-dbs --json)
rc=$?
[ "$rc" -eq 0 ] || fail "list-dbs exit $rc"
case "$out" in
  *'"tpch"'*) ;;
  *) fail "list-dbs payload missing tpch: $out" ;;
esac

# ---- 1b. ping answers with the load snapshot -----------------------------
out=$("$CLIENT" --port "$PORT" ping --json)
rc=$?
[ "$rc" -eq 0 ] || fail "ping exit $rc"
case "$out" in
  *'"kind":"pong"'*) ;;
  *) fail "ping payload malformed: $out" ;;
esac

# ---- 2. plain submit finds an answer (exit 0, SELECT streamed) -----------
out=$("$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/easy.csv" \
  --tenant ci --all 2)
rc=$?
[ "$rc" -eq 0 ] || fail "easy submit exit $rc (want 0)"
case "$out" in
  *'answer[0]: SELECT'*) ;;
  *) fail "easy submit streamed no ranked SELECT" ;;
esac

# ---- 3. deadline-stopped submit exits 3 with the engine's reason ---------
out=$("$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/hard.csv" \
  --tenant ci --budget 0.001 --json)
rc=$?
[ "$rc" -eq 3 ] || fail "deadline submit exit $rc (want 3)"
case "$out" in
  *'time budget exceeded'*) ;;
  *) fail "deadline submit missing failure_reason: $out" ;;
esac

# ---- 4. concurrent submits + status + cancel from a second connection ----
# One hard job in the background; poke it with status and cancel it while
# three easy jobs run beside it. Job id is parsed from the accepted frame.
"$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/hard.csv" \
  --tenant ci --json >"$WORK/bg.json" &
BG_PID=$!
for n in 1 2 3; do
  "$CLIENT" --port "$PORT" submit --db tpch --rout "$WORK/easy.csv" \
    --tenant "mix$n" >"$WORK/mix$n.out" &
  eval "MIX$n=$!"
done

JOB=
i=0
while [ -z "$JOB" ] && [ "$i" -lt 300 ]; do
  JOB=$(sed -n 's/.*"kind":"accepted".*"job":\([0-9]*\).*/\1/p' \
    "$WORK/bg.json" 2>/dev/null | head -n 1)
  [ -n "$JOB" ] || sleep 0.1
  i=$((i + 1))
done
if [ -z "$JOB" ]; then
  fail "background submit never acknowledged"
else
  out=$("$CLIENT" --port "$PORT" status --job "$JOB" --json)
  rc=$?
  [ "$rc" -eq 0 ] || fail "status exit $rc"
  case "$out" in
    *'"kind":"status"'*) ;;
    *) fail "status payload malformed: $out" ;;
  esac

  "$CLIENT" --port "$PORT" cancel --job "$JOB" >/dev/null ||
    fail "cancel rejected"
  wait "$BG_PID"
  rc=$?
  # The cancel may lose the race with completion; both outcomes are legal,
  # but the stream must have terminated with a done frame either way.
  if [ "$rc" -ne 3 ] && [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
    fail "cancelled submit exit $rc (want 0, 1, or 3)"
  fi
  grep -q '"kind":"done"' "$WORK/bg.json" ||
    fail "cancelled submit stream has no done frame"

  # The job outlives its connection: status still answers after done.
  "$CLIENT" --port "$PORT" status --job "$JOB" >/dev/null ||
    fail "post-done status rejected"
fi

for n in 1 2 3; do
  eval "wait \$MIX$n"
  rc=$?
  [ "$rc" -eq 0 ] || fail "mixed submit $n exit $rc (want 0)"
  grep -q 'answer\[0\]: SELECT' "$WORK/mix$n.out" ||
    fail "mixed submit $n streamed no answer"
done

# ---- 5. typed rejections exit 4 ------------------------------------------
"$CLIENT" --port "$PORT" status --job 999999 >/dev/null 2>&1
rc=$?
[ "$rc" -eq 4 ] || fail "unknown-job status exit $rc (want 4)"
"$CLIENT" --port "$PORT" submit --db nosuchdb --rout "$WORK/easy.csv" \
  >/dev/null 2>&1
rc=$?
[ "$rc" -eq 4 ] || fail "unknown-db submit exit $rc (want 4)"

# ---- 6. clean shutdown on SIGTERM ----------------------------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=
[ "$rc" -eq 0 ] || fail "serverd SIGTERM exit $rc (want 0)"
grep -q 'shutting down' "$WORK/serverd.log" ||
  fail "serverd log missing shutdown marker"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)" >&2
  exit 1
fi
echo "server integration: PASS"
exit 0
