// Negative-compilation TU for the thread-safety CI gate.
//
// This file MUST fail to compile under
//   clang++ -Wthread-safety -Werror=thread-safety
// because `value_` is GUARDED_BY(mu_) yet Bump() touches it without holding
// the mutex. tools/check_thread_safety.sh asserts the failure; if this TU
// ever compiles clean, the annotations (or the CI flags) have silently
// stopped enforcing anything.
//
// Not part of any build target — compiled only by check_thread_safety.sh.
#include "common/thread_annotations.h"

namespace fastqre {
namespace {

class Counter {
 public:
  void Bump() {
    ++value_;  // BUG (intentional): mu_ not held.
  }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace fastqre

int main() {
  fastqre::Counter c;
  c.Bump();
  return 0;
}
