// fastqre — command-line front end.
//
//   fastqre gen-tpch --out DIR [--scale S] [--seed N]
//       Generate a TPC-H database directory.
//   fastqre info --db DIR
//       Print schema, row counts and the pk-fk graph.
//   fastqre demo-rout --db DIR --query L01..L10 --out FILE.csv
//       Materialize a ladder query's output as a CSV "report" to reverse.
//   fastqre reverse --db DIR --rout FILE.csv [--superset] [--budget S]
//                   [--alpha A] [--all K] [--threads N] [--intra-threads N]
//                   [--morsel-size M] [--no-batch] [--no-sip]
//                   [--walk-cache-mb MB] [--subplan-cache-mb MB]
//                   [--memory-budget-mb MB] [--cancel-after S]
//                   [--stats] [--stats-json] [--verify] [--trace]
//       Reverse engineer a generating query for the report. --threads N
//       validates candidates on N worker threads; the answer is identical
//       to a single-threaded run (rank-deterministic), just faster.
//       --intra-threads N additionally runs morsels *inside* one candidate's
//       block evaluation and probe passes on N workers; --morsel-size sets
//       the tuples-per-morsel granularity and --no-batch falls back to the
//       scalar probe kernels (DESIGN.md §12) — all three leave the answer
//       byte-identical.
//       --no-sip disables sideways-information-passing bitmap filters and
//       --subplan-cache-mb sets the cross-candidate subplan memoization
//       budget (0 disables; DESIGN.md §13) — the E15 ablation axes, again
//       answer-preserving.
//       --memory-budget-mb caps the tracked search-path allocations
//       (DESIGN.md §11; 0 = unlimited); --cancel-after fires Cancel() from a
//       watchdog thread after S seconds — the external-cancellation test
//       hook, exercising the same path a Ctrl-C handler would.
//       --stats-json prints the statistics of each answer as one JSON
//       object per line (machine-readable counterpart of --stats).
//   fastqre run --db DIR --sql "SELECT a.x FROM t a WHERE ..." [--limit N]
//       Execute a PJ query and print its (distinct) result rows.
//   fastqre tune --db DIR
//       Calibrate alpha on self-generated test queries (Section 4.4.2).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "common/table_printer.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "engine/sql_parser.h"
#include "qre/fastqre.h"
#include "qre/tuning.h"
#include "storage/catalog_io.h"
#include "storage/csv.h"

using namespace fastqre;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fastqre gen-tpch --out DIR [--scale S] [--seed N]\n"
      "  fastqre info --db DIR\n"
      "  fastqre demo-rout --db DIR --query L01..L10 --out FILE.csv\n"
      "  fastqre reverse --db DIR --rout FILE.csv [--superset] [--budget S]\n"
      "                  [--alpha A] [--all K] [--threads N]\n"
      "                  [--intra-threads N] [--morsel-size M] [--no-batch]\n"
      "                  [--no-sip] [--walk-cache-mb MB]\n"
      "                  [--subplan-cache-mb MB] [--memory-budget-mb MB]\n"
      "                  [--cancel-after S] [--stats] [--stats-json]\n"
      "                  [--verify] [--trace]\n"
      "  fastqre run --db DIR --sql QUERY [--limit N]\n"
      "  fastqre tune --db DIR\n"
      "\n"
      "reverse exit codes:\n"
      "  0  a generating query was found (run completed)\n"
      "  1  search space exhausted without an answer\n"
      "  2  usage error\n"
      "  3  stopped early (deadline / cancel / memory budget); any answers\n"
      "     proved before the stop were still printed\n");
  return 2;
}

// Tiny flag parser: --name value and boolean --name.
struct Flags {
  std::map<std::string, std::string> values;
  bool Has(const std::string& name) const { return values.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& fallback = "") const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    double out = fallback;
    if (Has(name)) (void)ParseDouble(Get(name), &out);
    return out;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    int64_t out = fallback;
    if (Has(name)) (void)ParseInt64(Get(name), &out);
    return out;
  }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string name = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values[name] = argv[++i];
    } else {
      flags.values[name] = "true";
    }
  }
  return flags;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// One answer's QreStats as a single-line JSON object (--stats-json). Every
// counter of the human-readable report, under stable snake_case keys, so
// scripts can diff ablation runs without scraping the text format.
std::string StatsToJson(const QreStats& s, bool found,
                        const std::string& failure_reason) {
  std::string out = "{";
  auto num = [&out](const char* key, uint64_t v) {
    out += StringFormat("\"%s\":%llu,", key, static_cast<unsigned long long>(v));
  };
  auto flt = [&out](const char* key, double v) {
    out += StringFormat("\"%s\":%.6f,", key, v);
  };
  out += StringFormat("\"found\":%s,", found ? "true" : "false");
  if (!found) {
    std::string escaped;
    for (char c : failure_reason) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out += StringFormat("\"failure_reason\":\"%s\",", escaped.c_str());
  }
  flt("total_seconds", s.total_seconds);
  flt("cover_seconds", s.cover_seconds);
  flt("cgm_seconds", s.cgm_seconds);
  num("cover_pairs_total", s.cover_pairs_total);
  num("cover_pairs_pruned", s.cover_pairs_pruned);
  num("cover_pairs_checked", s.cover_pairs_checked);
  num("cgm_candidates_checked", s.cgm_candidates_checked);
  num("num_cgms", s.num_cgms);
  num("mappings_tried", s.mappings_tried);
  num("walks_discovered", s.walks_discovered);
  num("candidates_generated", s.candidates_generated);
  num("candidates_validated", s.candidates_validated);
  num("candidates_cancelled", s.candidates_cancelled);
  num("walk_sets_expanded", s.walk_sets_expanded);
  num("candidates_pruned_dead", s.candidates_pruned_dead);
  num("candidates_dismissed_probe", s.candidates_dismissed_probe);
  num("candidates_dismissed_walk", s.candidates_dismissed_walk);
  num("walk_coherence_checks", s.walk_coherence_checks);
  num("full_validations", s.full_validations);
  num("validation_rows", s.validation_rows);
  num("probe_rows", s.probe_rows);
  num("coherence_rows", s.coherence_rows);
  num("alltuple_rows", s.alltuple_rows);
  num("fullscan_rows", s.fullscan_rows);
  num("walk_cache_hits", s.walk_cache_hits);
  num("walk_cache_misses", s.walk_cache_misses);
  num("walk_cache_evictions", s.walk_cache_evictions);
  num("walk_cache_bytes", s.walk_cache_bytes);
  num("sip_rows_skipped", s.sip_rows_skipped);
  num("subplan_cache_hits", s.subplan_cache_hits);
  num("subplan_cache_misses", s.subplan_cache_misses);
  num("subplan_cache_evictions", s.subplan_cache_evictions);
  num("subplan_cache_bytes", s.subplan_cache_bytes);
  num("peak_tracked_bytes", s.peak_tracked_bytes);
  num("degradation_events", s.degradation_events);
  out += StringFormat("\"cancelled\":%s}", s.cancelled ? "true" : "false");
  return out;
}

int CmdGenTpch(const Flags& flags) {
  if (!flags.Has("out")) return Usage();
  TpchOptions opts;
  opts.scale_factor = flags.GetDouble("scale", 0.002);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto db = BuildTpch(opts);
  if (!db.ok()) return Fail(db.status());
  Status st = SaveDatabase(*db, flags.Get("out"));
  if (!st.ok()) return Fail(st);
  std::printf("wrote TPC-H (scale=%.4g, %zu rows) to %s\n", opts.scale_factor,
              db->TotalRows(), flags.Get("out").c_str());
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (!flags.Has("db")) return Usage();
  auto db = LoadDatabase(flags.Get("db"));
  if (!db.ok()) return Fail(db.status());
  TablePrinter tables("tables", {"table", "rows", "columns"});
  for (TableId t = 0; t < db->num_tables(); ++t) {
    std::vector<std::string> cols;
    for (ColumnId c = 0; c < db->table(t).num_columns(); ++c) {
      cols.push_back(db->table(t).column(c).name());
    }
    tables.AddRow({db->table(t).name(), FormatCount(db->table(t).num_rows()),
                   JoinStrings(cols, ", ")});
  }
  tables.Print();
  TablePrinter edges("schema graph", {"edge", "join condition"});
  for (const auto& e : db->schema_graph().edges()) {
    edges.AddRow({StringFormat("e%u", e.id),
                  db->table(e.table[0]).name() + "." +
                      db->table(e.table[0]).column(e.column[0]).name() + " = " +
                      db->table(e.table[1]).name() + "." +
                      db->table(e.table[1]).column(e.column[1]).name()});
  }
  edges.Print();
  return 0;
}

int CmdDemoRout(const Flags& flags) {
  if (!flags.Has("db") || !flags.Has("query") || !flags.Has("out")) {
    return Usage();
  }
  auto db = LoadDatabase(flags.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto workload = StandardTpchWorkload(*db);
  if (!workload.ok()) return Fail(workload.status());
  for (const auto& wq : *workload) {
    if (wq.name != flags.Get("query")) continue;
    std::FILE* f = std::fopen(flags.Get("out").c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write " + flags.Get("out")));
    }
    std::string csv = TableToCsv(wq.rout);
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote %zu rows of %s (%s) to %s\nsecret query was:\n  %s\n",
                wq.rout.num_rows(), wq.name.c_str(), wq.description.c_str(),
                flags.Get("out").c_str(), wq.query.ToSql(*db).c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown query '%s' (expect L01..L10)\n",
               flags.Get("query").c_str());
  return 1;
}

int CmdReverse(const Flags& flags) {
  if (!flags.Has("db") || !flags.Has("rout")) return Usage();
  auto db = LoadDatabase(flags.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto rout = LoadCsvFile(flags.Get("rout"), "rout", db->dictionary());
  if (!rout.ok()) return Fail(rout.status());

  QreOptions opts;
  if (flags.Has("superset")) opts.variant = QreVariant::kSuperset;
  opts.time_budget_seconds = flags.GetDouble("budget", 0.0);
  opts.alpha = flags.GetDouble("alpha", opts.alpha);
  opts.collect_trace = flags.Has("trace");
  opts.validation_threads = static_cast<int>(flags.GetInt("threads", 1));
  if (opts.validation_threads < 1) {
    std::fprintf(stderr, "error: --threads must be >= 1\n");
    return 2;
  }
  opts.intra_candidate_threads =
      static_cast<int>(flags.GetInt("intra-threads", 1));
  if (opts.intra_candidate_threads < 1) {
    std::fprintf(stderr, "error: --intra-threads must be >= 1\n");
    return 2;
  }
  opts.morsel_size =
      static_cast<int>(flags.GetInt("morsel-size", opts.morsel_size));
  if (opts.morsel_size < 1) {
    std::fprintf(stderr, "error: --morsel-size must be >= 1\n");
    return 2;
  }
  if (flags.Has("no-batch")) opts.use_batched_probes = false;
  if (flags.Has("no-sip")) opts.use_sip = false;
  long long cache_mb = flags.GetInt("walk-cache-mb", 64);
  if (cache_mb < 0) {
    std::fprintf(stderr, "error: --walk-cache-mb must be >= 0\n");
    return 2;
  }
  opts.walk_cache_budget_bytes = static_cast<uint64_t>(cache_mb) << 20;
  long long subplan_mb = flags.GetInt("subplan-cache-mb", 64);
  if (subplan_mb < 0) {
    std::fprintf(stderr, "error: --subplan-cache-mb must be >= 0\n");
    return 2;
  }
  opts.subplan_cache_budget_bytes = static_cast<uint64_t>(subplan_mb) << 20;
  long long mem_mb = flags.GetInt("memory-budget-mb", 0);
  if (mem_mb < 0) {
    std::fprintf(stderr, "error: --memory-budget-mb must be >= 0\n");
    return 2;
  }
  opts.memory_budget_bytes = static_cast<uint64_t>(mem_mb) << 20;
  int limit = static_cast<int>(flags.GetInt("all", 1));
  double cancel_after = flags.GetDouble("cancel-after", -1.0);

  FastQre engine(&*db, opts);
  // External cancellation: a watchdog thread calls Cancel() after the
  // deadline, unless the search wins the race and finishes first.
  std::thread watchdog;
  std::atomic<bool> reverse_done{false};
  if (cancel_after >= 0) {
    watchdog = std::thread([&engine, &reverse_done, cancel_after] {
      Timer timer;
      while (!reverse_done.load(std::memory_order_acquire)) {
        if (timer.ElapsedSeconds() >= cancel_after) {
          engine.Cancel();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  auto answers = engine.ReverseAll(*rout, limit);
  reverse_done.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();
  if (!answers.ok()) return Fail(answers.status());

  int rc = 1;
  for (const auto& a : *answers) {
    if (a.found) {
      std::printf("%s\n", a.sql.c_str());
      rc = 0;
      if (flags.Has("verify")) {
        auto regen = ExecuteToTable(*db, a.query, "regen");
        if (!regen.ok()) return Fail(regen.status());
        std::printf("verify: query yields %zu distinct rows; R_out has %zu\n",
                    regen->num_rows(), rout->num_rows());
      }
    } else {
      std::printf("no generating query: %s\n", a.failure_reason.c_str());
    }
    if (flags.Has("stats")) {
      std::printf("%s\n", a.stats.ToString().c_str());
    }
    if (flags.Has("stats-json")) {
      std::printf("%s\n",
                  StatsToJson(a.stats, a.found, a.failure_reason).c_str());
    }
    if (flags.Has("trace")) {
      std::printf("%s", a.trace.ToString().c_str());
    }
  }
  // Partial-result contract: a run that STOPPED (deadline / cancel /
  // memory) exits 3 whether or not answers were proved first, so scripts
  // can tell a truncated enumeration from a completed one (0 = found,
  // 1 = search space exhausted without an answer). The stopped run's
  // proved answers were still printed above, and with --stats-json every
  // entry — including the truncation tail with its failure_reason — was
  // emitted as valid JSON.
  if (!answers->empty() && !answers->back().found) {
    const std::string& reason = answers->back().failure_reason;
    if (reason == "time budget exceeded" || reason == "cancelled" ||
        reason == "memory budget exceeded") {
      rc = 3;
    }
  }
  return rc;
}

int CmdRun(const Flags& flags) {
  if (!flags.Has("db") || !flags.Has("sql")) return Usage();
  auto db = LoadDatabase(flags.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto query = ParsePJQuery(*db, flags.Get("sql"));
  if (!query.ok()) return Fail(query.status());
  auto result = ExecuteToTable(*db, *query, "result");
  if (!result.ok()) return Fail(result.status());
  int64_t limit = flags.GetInt("limit", 20);
  std::string csv = TableToCsv(*result);
  // Print header + up to `limit` rows.
  size_t printed = 0, pos = 0;
  while (pos < csv.size() && printed <= static_cast<size_t>(limit)) {
    size_t nl = csv.find('\n', pos);
    if (nl == std::string::npos) break;
    std::printf("%.*s\n", static_cast<int>(nl - pos), csv.data() + pos);
    pos = nl + 1;
    ++printed;
  }
  if (result->num_rows() > static_cast<size_t>(limit)) {
    std::printf("... (%zu rows total)\n", result->num_rows());
  }
  return 0;
}

int CmdTune(const Flags& flags) {
  if (!flags.Has("db")) return Usage();
  auto db = LoadDatabase(flags.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto result = TuneAlpha(*db, QreOptions());
  if (!result.ok()) return Fail(result.status());
  TablePrinter table("alpha calibration", {"alpha", "total time"});
  for (size_t i = 0; i < result->alphas.size(); ++i) {
    table.AddRow({StringFormat("%.2f", result->alphas[i]),
                  FormatDuration(result->total_seconds[i])});
  }
  table.Print();
  std::printf("best alpha: %.2f\n", result->best_alpha);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags = ParseFlags(argc, argv, 2);
  if (cmd == "gen-tpch") return CmdGenTpch(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "demo-rout") return CmdDemoRout(flags);
  if (cmd == "reverse") return CmdReverse(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "tune") return CmdTune(flags);
  return Usage();
}
