#!/usr/bin/env python3
"""Project-invariant linter for FastQRE (DESIGN.md §10).

Enforces determinism and concurrency invariants no off-the-shelf tool knows
about. Rules (ids in brackets):

  [unordered-iter]  Every range-for over an unordered container
      (std::unordered_map/set, TupleSet, ReachMap, Column::DistinctSet())
      must carry a determinism classification comment within the three
      preceding lines (or on the loop line itself):
          // det: sorted — <where the order is restored>
          // det: order-insensitive — <why iteration order cannot leak>
      Unordered iteration order varies across libstdc++ versions and hash
      seeds; an unclassified site is one refactor away from leaking
      nondeterminism into ranked answers, stats output, or artifacts.

  [raw-random]  rand()/srand()/std::random_device/std::mt19937 and
      wall-clock seeding (time(0)/time(NULL)/time(nullptr)) are banned
      outside src/common/rng.h. All randomness flows through the seeded,
      platform-stable Rng so every run is reproducible.

  [interrupt-poll-literal]  The interrupt poll stride must be written as
      kInterruptPollMask (src/common/interrupt.h), never as a hard-coded
      `& 0xfff` / `& 4095`: DESIGN.md §9 requires identical cancellation
      latency across the executor, block executor, and cache builds.

  [naked-new]  No naked `new` / `delete` expressions in src/ — ownership
      goes through std::make_unique/std::make_shared/containers.

  [atomic-order]  Atomic operations in src/ must pass an explicit
      std::memory_order argument, and memory_order_seq_cst is banned
      (policy, DESIGN.md §10: relaxed for monotonic counters, acquire /
      release for flag handoff; seq_cst is never needed here and hides
      the author's intent).

  [governed-alloc]  Every declaration of a materialization-sized buffer in
      src/ — a by-value TupleSet / ReachMap / BitmapFilter /
      CompositeKeyFilter / SubplanTable, or a nested row buffer
      std::vector<std::vector<RowId|ValueId>> — must carry a resource
      accounting classification comment within the three preceding lines
      (or on the declaration line itself):
          // gov: charged — <which governor site accounts the bytes>
          // gov: bounded — <why the size is small by construction>
      These are the types whose instances scale with data size; an
      unclassified one is how an allocation escapes the resource governor's
      memory budget (DESIGN.md §11).

  [bad-suppression]  Suppressions must be well-formed (see below).

Suppression: a finding on line N is suppressed by a comment on line N or
N-1 of the form
    // NOLINT-INVARIANT(<rule-id>): <justification, at least 10 chars>
Suppressions are themselves forbidden under src/qre/ and src/engine/
(the ordering-sensitive layers stay suppression-free by construction).

Exit status: 0 = clean, 1 = findings, 2 = usage error.

Self-test mode (`--self-test <fixture-dir>`): fixture files named
bad_<rule>*.cc must produce at least one finding of <rule> (underscores in
the filename map to hyphens in the rule id); good_*.cc must produce none.
Fixtures are linted as if they lived under src/.
"""

import argparse
import os
import re
import sys

ROOTS = ("src", "tools")
EXTENSIONS = (".h", ".cc")

# Rule ids.
UNORDERED_ITER = "unordered-iter"
RAW_RANDOM = "raw-random"
INTERRUPT_LITERAL = "interrupt-poll-literal"
NAKED_NEW = "naked-new"
ATOMIC_ORDER = "atomic-order"
GOVERNED_ALLOC = "governed-alloc"
BAD_SUPPRESSION = "bad-suppression"
ALL_RULES = {
    UNORDERED_ITER,
    RAW_RANDOM,
    INTERRUPT_LITERAL,
    NAKED_NEW,
    ATOMIC_ORDER,
    GOVERNED_ALLOC,
    BAD_SUPPRESSION,
}

# Directories (virtual-path prefixes) where suppressions are forbidden.
NO_SUPPRESSION_DIRS = ("src/qre/", "src/engine/")

# File allowed to use raw randomness.
RNG_HOME = "src/common/rng.h"
# File that defines kInterruptPollMask.
POLL_MASK_HOME = "src/common/interrupt.h"

# Type aliases that are unordered containers.
UNORDERED_ALIASES = ("TupleSet", "ReachMap")

SUPPRESSION_RE = re.compile(
    r"//\s*NOLINT-INVARIANT\(([a-z-]*)\)\s*:?\s*(.*)$")
DET_MARKER_RE = re.compile(
    r"//.*\bdet:\s*(sorted|order-insensitive)\b[\s:—–-]*(\S.*)?$")
GOV_MARKER_RE = re.compile(
    r"//.*\bgov:\s*(charged|bounded)\b[\s:—–-]*(\S.*)?$")
# By-value declarations of data-scaled buffer types. The \b after the
# captured name keeps backtracking from shortening a function name past its
# trailing '(' (which the lookahead exempts: functions *returning* these
# types allocate at their own declaration sites, not here).
GOVERNED_DECL_RES = (
    re.compile(
        r"\b(?:TupleSet|ReachMap|BitmapFilter|CompositeKeyFilter|"
        r"SubplanTable)\s+(?![*&])([A-Za-z_]\w*)\b(?!\s*\()"),
    re.compile(
        r"std::vector<\s*std::vector<\s*(?:RowId|ValueId)\s*>\s*>\s+"
        r"(?![*&])([A-Za-z_]\w*)\b(?!\s*\()"),
)
FOR_KEYWORD_RE = re.compile(r"\bfor\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

RAW_RANDOM_RES = (
    re.compile(r"\brand\s*\("),
    re.compile(r"\bsrand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bmt19937(?:_64)?\b"),
    re.compile(r"\btime\s*\(\s*(?:NULL|0|nullptr)?\s*\)"),
)

INTERRUPT_LITERAL_RE = re.compile(r"&\s*(?:0x[fF]{3}\b|4095\b)")
NAKED_NEW_RE = re.compile(r"\bnew\b\s*(?:\(|\[|[A-Za-z_:])")
NAKED_DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*]")
SEQ_CST_RE = re.compile(r"\bmemory_order_seq_cst\b|\bmemory_order::seq_cst\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Keeps rule matching away from prose and quoted SQL while line numbers
    stay aligned with the original file.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"' or c == "'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def unordered_decl_res():
    decl_res = [
        re.compile(
            r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>"
            r"[\s&*]*\b([A-Za-z_]\w*)",
            re.DOTALL),
    ]
    for alias in UNORDERED_ALIASES:
        decl_res.append(
            re.compile(r"\b%s\b(?:\s*[&*]+\s*|\s+)([A-Za-z_]\w*)" % alias))
    return decl_res


def names_in_text(text):
    """Names declared in `text` with an unordered container type.

    Covers members, locals, parameters, and functions *returning* an
    unordered type (iterating directly over such a call is just as
    order-sensitive as iterating a variable).
    """
    names = set()
    for rx in unordered_decl_res():
        for m in rx.finditer(text):
            name = m.group(1)
            if name in ("const", "return", "new", "if"):
                continue
            names.add(name)
    return names


def collect_unordered_names(stripped_texts):
    """Tree-wide unordered names (for cross-file field/function access).

    Only headers contribute (fields like WalkRelation::forward and
    functions returning unordered types are what other files can touch),
    and only names of 3+ characters — cross-file matching on loop-helper
    locals like `s` or `m` would flag unrelated loops. Names declared in
    a .cc stay file-local via names_in_text().
    """
    names = set()
    for path, text in stripped_texts.items():
        if not path.endswith(".h"):
            continue
        names |= {n for n in names_in_text(text) if len(n) >= 3}
    return names


def range_for_seq_exprs(text):
    """Yields (offset, seq_expr) for each range-based for in `text`.

    Parses the for-header with balanced parentheses and splits at the
    single top-level `:` (ignoring `::`); headers containing a top-level
    `;` are classic for-loops and are skipped.
    """
    for kw in FOR_KEYWORD_RE.finditer(text):
        open_idx = text.index("(", kw.start())
        depth = 0
        colon = -1
        close_idx = -1
        classic = False
        for j in range(open_idx, min(len(text), open_idx + 2000)):
            c = text[j]
            if c == "(" or c == "[" or c == "{":
                depth += 1
            elif c == ")" or c == "]" or c == "}":
                depth -= 1
                if depth == 0:
                    close_idx = j
                    break
            elif c == ";" and depth == 1:
                classic = True
                break
            elif c == ":" and depth == 1:
                if text[j + 1:j + 2] == ":" or text[j - 1:j] == ":":
                    continue
                colon = j
        if classic or colon < 0 or close_idx < 0:
            continue
        yield colon + 1, text[colon + 1:close_idx]


def find_suppressions(raw_lines, vpath, findings):
    """Maps line number -> set of suppressed rule ids; validates syntax."""
    suppressed = {}
    for idx, line in enumerate(raw_lines, start=1):
        if "NOLINT-INVARIANT" not in line:
            continue
        m = SUPPRESSION_RE.search(line)
        rule = m.group(1) if m else ""
        why = (m.group(2) or "").strip() if m else ""
        if not m or rule not in ALL_RULES or len(why) < 10:
            findings.append(Finding(
                vpath, idx, BAD_SUPPRESSION,
                "malformed suppression: expected "
                "// NOLINT-INVARIANT(<rule>): <justification >= 10 chars>"))
            continue
        if any(vpath.startswith(d) for d in NO_SUPPRESSION_DIRS):
            findings.append(Finding(
                vpath, idx, BAD_SUPPRESSION,
                f"suppressions are forbidden under "
                f"{' and '.join(NO_SUPPRESSION_DIRS)}; fix the site instead"))
            continue
        for covered in (idx, idx + 1):
            suppressed.setdefault(covered, set()).add(rule)
    return suppressed


def has_det_marker(raw_lines, line_no):
    """True if lines line_no-3 .. line_no carry a det: classification."""
    for idx in range(max(1, line_no - 3), line_no + 1):
        m = DET_MARKER_RE.search(raw_lines[idx - 1])
        if m and m.group(2):  # classification + non-empty reason
            return True
    return False


def has_gov_marker(raw_lines, line_no):
    """True if lines line_no-3 .. line_no carry a gov: classification."""
    for idx in range(max(1, line_no - 3), line_no + 1):
        m = GOV_MARKER_RE.search(raw_lines[idx - 1])
        if m and m.group(2):  # classification + non-empty reason
            return True
    return False


def balanced_call_args(text, open_paren_idx, limit=600):
    """Returns the argument text of a call starting at '('."""
    depth = 0
    for j in range(open_paren_idx, min(len(text), open_paren_idx + limit)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_idx + 1:j]
    return text[open_paren_idx + 1:open_paren_idx + limit]


def lint_file(vpath, raw_text, stripped_text, unordered_names):
    findings = []
    raw_lines = raw_text.splitlines()
    stripped_lines = stripped_text.splitlines()
    line_offsets = []
    pos = 0
    for line in stripped_lines:
        line_offsets.append(pos)
        pos += len(line) + 1

    def line_of(offset):
        lo, hi = 0, len(line_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    suppressed = find_suppressions(raw_lines, vpath, findings)

    def add(line_no, rule, message):
        if rule in suppressed.get(line_no, ()):
            return
        findings.append(Finding(vpath, line_no, rule, message))

    # --- unordered-iter ------------------------------------------------------
    file_names = names_in_text(stripped_text)
    for offset, seq_expr in range_for_seq_exprs(stripped_text):
        idents = set(IDENT_RE.findall(seq_expr))
        if not (idents & (unordered_names | file_names)) \
                and "DistinctSet" not in idents:
            continue
        line_no = line_of(offset)
        if not has_det_marker(raw_lines, line_no):
            add(line_no, UNORDERED_ITER,
                "iteration over an unordered container needs a determinism "
                "classification: '// det: sorted — <where>' or "
                "'// det: order-insensitive — <why>' within 3 lines above")

    # --- raw-random ----------------------------------------------------------
    if vpath != RNG_HOME:
        for rx in RAW_RANDOM_RES:
            for m in rx.finditer(stripped_text):
                add(line_of(m.start()), RAW_RANDOM,
                    f"raw randomness/wall-clock seed '{m.group(0).strip()}' — "
                    f"use the seeded Rng from {RNG_HOME}")

    # --- interrupt-poll-literal ---------------------------------------------
    if vpath != POLL_MASK_HOME and vpath.startswith("src/"):
        for m in INTERRUPT_LITERAL_RE.finditer(stripped_text):
            add(line_of(m.start()), INTERRUPT_LITERAL,
                "hard-coded interrupt poll stride — use kInterruptPollMask "
                f"({POLL_MASK_HOME})")

    # --- naked-new -----------------------------------------------------------
    if vpath.startswith("src/"):
        for m in NAKED_NEW_RE.finditer(stripped_text):
            add(line_of(m.start()), NAKED_NEW,
                "naked 'new' — use std::make_unique/std::make_shared or a "
                "container")
        for m in NAKED_DELETE_RE.finditer(stripped_text):
            # '= delete' (deleted member) is handled by the lookbehind; a
            # 'delete expr' statement lands here.
            add(line_of(m.start()), NAKED_NEW,
                "naked 'delete' — ownership must be RAII-managed")

    # --- atomic-order --------------------------------------------------------
    if vpath.startswith("src/"):
        for m in ATOMIC_OP_RE.finditer(stripped_text):
            args = balanced_call_args(stripped_text, m.end() - 1)
            op = m.group(1)
            needs_order = True
            if op in ("compare_exchange_weak", "compare_exchange_strong"):
                needs_order = "memory_order" not in args
            elif op in ("load",) and args.strip() == "":
                needs_order = True
            else:
                needs_order = "memory_order" not in args
            if needs_order and "memory_order" not in args:
                add(line_of(m.start()), ATOMIC_ORDER,
                    f".{op}() without an explicit std::memory_order argument "
                    "(policy: relaxed for monotonic counters, acquire/release "
                    "for flag handoff — DESIGN.md §10)")
        for m in SEQ_CST_RE.finditer(stripped_text):
            add(line_of(m.start()), ATOMIC_ORDER,
                "memory_order_seq_cst is banned by policy (DESIGN.md §10): "
                "state the ordering the algorithm actually needs")

    # --- governed-alloc ------------------------------------------------------
    if vpath.startswith("src/"):
        for rx in GOVERNED_DECL_RES:
            for m in rx.finditer(stripped_text):
                line_no = line_of(m.start())
                if not has_gov_marker(raw_lines, line_no):
                    add(line_no, GOVERNED_ALLOC,
                        "data-scaled buffer declaration needs a resource "
                        "accounting classification: '// gov: charged — "
                        "<governor site>' or '// gov: bounded — <why small>' "
                        "within 3 lines above (DESIGN.md §11)")

    return findings


def iter_source_files(root):
    for sub in ROOTS:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def lint_tree(root):
    paths = list(iter_source_files(root))
    raw = {}
    stripped = {}
    for p in paths:
        with open(p, encoding="utf-8") as f:
            raw[p] = f.read()
        stripped[p] = strip_comments_and_strings(raw[p])
    unordered_names = collect_unordered_names(stripped)
    findings = []
    for p in paths:
        vpath = os.path.relpath(p, root).replace(os.sep, "/")
        findings.extend(lint_file(vpath, raw[p], stripped[p], unordered_names))
    return findings


def self_test(fixture_dir):
    """Runs the linter over fixture files and checks expectations."""
    failures = []
    names = sorted(os.listdir(fixture_dir))
    fixture_paths = [os.path.join(fixture_dir, n) for n in names
                     if n.endswith(EXTENSIONS)]
    if not fixture_paths:
        print(f"self-test: no fixtures found in {fixture_dir}", file=sys.stderr)
        return 2

    # Unordered-name collection runs over the fixture set itself, mirroring
    # the tree-wide pass.
    raw = {}
    stripped = {}
    for p in fixture_paths:
        with open(p, encoding="utf-8") as f:
            raw[p] = f.read()
        stripped[p] = strip_comments_and_strings(raw[p])
    unordered_names = collect_unordered_names(stripped)

    checked = 0
    for p in fixture_paths:
        name = os.path.basename(p)
        vpath = "src/" + name  # fixtures are linted as if under src/
        findings = lint_file(vpath, raw[p], stripped[p], unordered_names)
        rules_hit = {f.rule for f in findings}
        if name.startswith("bad_"):
            stem = os.path.splitext(name)[0][len("bad_"):]
            expected = re.sub(r"\d+$", "", stem).rstrip("_").replace("_", "-")
            if expected not in ALL_RULES:
                failures.append(f"{name}: unknown expected rule '{expected}'")
            elif expected not in rules_hit:
                failures.append(
                    f"{name}: expected a [{expected}] finding, got "
                    f"{sorted(rules_hit) or 'none'}")
            checked += 1
        elif name.startswith("good_"):
            if findings:
                failures.append(
                    f"{name}: expected clean, got: "
                    + "; ".join(str(f) for f in findings))
            checked += 1
    print(f"self-test: {checked} fixtures checked, {len(failures)} failures")
    for f in failures:
        print(f"  FAIL {f}")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (scans <root>/src and <root>/tools)")
    ap.add_argument("--self-test", metavar="FIXTURE_DIR",
                    help="run the fixture self-test instead of linting")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.self_test))

    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint_invariants: clean")


if __name__ == "__main__":
    main()
