#!/usr/bin/env python3
"""Project-invariant linter for FastQRE (DESIGN.md §10).

Enforces the textual determinism and concurrency invariants no
off-the-shelf tool knows about. The AST-accurate checks (unordered
iteration escape, governed allocation classification, lock order,
interrupt-poll coverage) live in the Clang-based qre-analyzer
(tools/analyzer/, DESIGN.md §14); this linter keeps the rules that are
purely lexical and therefore cheap to run everywhere, including on files
that never reach a compile command. Rules (ids in brackets):

  [raw-random]  rand()/srand()/std::random_device/std::mt19937 and
      wall-clock seeding (time(0)/time(NULL)/time(nullptr)) are banned
      outside src/common/rng.h — in src/, tools/, and bench/ alike. All
      randomness flows through the seeded, platform-stable Rng so every
      run (and every benchmark) is reproducible.

  [interrupt-poll-literal]  The interrupt poll stride must be written as
      kInterruptPollMask (src/common/interrupt.h), never as a hard-coded
      `& 0xfff` / `& 4095`, and never as an ad-hoc stride like
      `(counter & 0x3ff) == 0`: DESIGN.md §9 requires identical
      cancellation latency across the executor, block executor, and cache
      builds. Applies to src/, tools/, and bench/.

  [naked-new]  No naked `new` / `delete` expressions in src/ — ownership
      goes through std::make_unique/std::make_shared/containers. (bench/
      and tools/ are exempt: harness code may allocate as it likes.)

  [atomic-order]  Atomic operations in src/, tools/, and bench/ must pass
      an explicit std::memory_order argument, and memory_order_seq_cst is
      banned (policy, DESIGN.md §10: relaxed for monotonic counters,
      acquire / release for flag handoff; seq_cst is never needed here
      and hides the author's intent).

  [bad-suppression]  Suppressions must be well-formed (see below).

The former [unordered-iter] and [governed-alloc] rules were superseded by
qre-analyzer's unordered-escape and governed-alloc passes, which see
through typedefs, `auto`, and templates and can prove sites safe instead
of demanding a comment. The `// det:` / `// gov:` marker grammar is
unchanged — the analyzer consumes the same comments.

Suppression: a finding on line N is suppressed by a comment on line N or
N-1 of the form
    // NOLINT-INVARIANT(<rule-id>): <justification, at least 10 chars>
Suppressions are themselves forbidden under src/qre/ and src/engine/
(the ordering-sensitive layers stay suppression-free by construction).

Exit status: 0 = clean, 1 = findings, 2 = usage error.

Self-test mode (`--self-test <fixture-dir>`): fixture files named
bad_<rule>*.cc must produce at least one finding of <rule> (underscores in
the filename map to hyphens in the rule id); good_*.cc must produce none.
Fixtures are linted as if they lived under src/; a bench_ filename prefix
lints the fixture as if it lived under bench/ instead (pinning the
per-root rule scoping).
"""

import argparse
import os
import re
import sys

ROOTS = ("src", "tools", "bench")
EXTENSIONS = (".h", ".cc")

# Rule ids.
RAW_RANDOM = "raw-random"
INTERRUPT_LITERAL = "interrupt-poll-literal"
NAKED_NEW = "naked-new"
ATOMIC_ORDER = "atomic-order"
BAD_SUPPRESSION = "bad-suppression"
ALL_RULES = {
    RAW_RANDOM,
    INTERRUPT_LITERAL,
    NAKED_NEW,
    ATOMIC_ORDER,
    BAD_SUPPRESSION,
}

# Directories (virtual-path prefixes) where suppressions are forbidden.
NO_SUPPRESSION_DIRS = ("src/qre/", "src/engine/")

# File allowed to use raw randomness.
RNG_HOME = "src/common/rng.h"
# File that defines kInterruptPollMask.
POLL_MASK_HOME = "src/common/interrupt.h"

SUPPRESSION_RE = re.compile(
    r"//\s*NOLINT-INVARIANT\(([a-z-]*)\)\s*:?\s*(.*)$")

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

RAW_RANDOM_RES = (
    re.compile(r"\brand\s*\("),
    re.compile(r"\bsrand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bmt19937(?:_64)?\b"),
    re.compile(r"\btime\s*\(\s*(?:NULL|0|nullptr)?\s*\)"),
)

INTERRUPT_LITERAL_RE = re.compile(r"&\s*(?:0x[fF]{3}\b|4095\b)")
# Ad-hoc poll strides: a masked-counter zero test against a mask that is
# not kInterruptPollMask (the `(counter & 0x3ff) == 0` shape). Plain
# `& 0x3ff` hash masking is NOT matched — only the poll idiom is.
ADHOC_POLL_STRIDE_RE = re.compile(
    r"&\s*(?:0x3[fF]{2}|1023|0x[fF]{2}|255|0x[fF]{4}|65535)\s*\)\s*==\s*0")
NAKED_NEW_RE = re.compile(r"\bnew\b\s*(?:\(|\[|[A-Za-z_:])")
NAKED_DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*]")
SEQ_CST_RE = re.compile(r"\bmemory_order_seq_cst\b|\bmemory_order::seq_cst\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Keeps rule matching away from prose and quoted SQL while line numbers
    stay aligned with the original file.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"' or c == "'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def find_suppressions(raw_lines, vpath, findings):
    """Maps line number -> set of suppressed rule ids; validates syntax."""
    suppressed = {}
    for idx, line in enumerate(raw_lines, start=1):
        if "NOLINT-INVARIANT" not in line:
            continue
        m = SUPPRESSION_RE.search(line)
        rule = m.group(1) if m else ""
        why = (m.group(2) or "").strip() if m else ""
        if not m or rule not in ALL_RULES or len(why) < 10:
            findings.append(Finding(
                vpath, idx, BAD_SUPPRESSION,
                "malformed suppression: expected "
                "// NOLINT-INVARIANT(<rule>): <justification >= 10 chars>"))
            continue
        if any(vpath.startswith(d) for d in NO_SUPPRESSION_DIRS):
            findings.append(Finding(
                vpath, idx, BAD_SUPPRESSION,
                f"suppressions are forbidden under "
                f"{' and '.join(NO_SUPPRESSION_DIRS)}; fix the site instead"))
            continue
        for covered in (idx, idx + 1):
            suppressed.setdefault(covered, set()).add(rule)
    return suppressed


def balanced_call_args(text, open_paren_idx, limit=600):
    """Returns the argument text of a call starting at '('."""
    depth = 0
    for j in range(open_paren_idx, min(len(text), open_paren_idx + limit)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_idx + 1:j]
    return text[open_paren_idx + 1:open_paren_idx + limit]


def lint_file(vpath, raw_text, stripped_text):
    findings = []
    raw_lines = raw_text.splitlines()
    stripped_lines = stripped_text.splitlines()
    line_offsets = []
    pos = 0
    for line in stripped_lines:
        line_offsets.append(pos)
        pos += len(line) + 1

    def line_of(offset):
        lo, hi = 0, len(line_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    suppressed = find_suppressions(raw_lines, vpath, findings)

    def add(line_no, rule, message):
        if rule in suppressed.get(line_no, ()):
            return
        findings.append(Finding(vpath, line_no, rule, message))

    # --- raw-random ----------------------------------------------------------
    if vpath != RNG_HOME:
        for rx in RAW_RANDOM_RES:
            for m in rx.finditer(stripped_text):
                add(line_of(m.start()), RAW_RANDOM,
                    f"raw randomness/wall-clock seed '{m.group(0).strip()}' — "
                    f"use the seeded Rng from {RNG_HOME}")

    # --- interrupt-poll-literal ---------------------------------------------
    if vpath != POLL_MASK_HOME:
        for m in INTERRUPT_LITERAL_RE.finditer(stripped_text):
            add(line_of(m.start()), INTERRUPT_LITERAL,
                "hard-coded interrupt poll stride — use kInterruptPollMask "
                f"({POLL_MASK_HOME})")
        for m in ADHOC_POLL_STRIDE_RE.finditer(stripped_text):
            add(line_of(m.start()), INTERRUPT_LITERAL,
                "ad-hoc poll stride — cancellation latency must be uniform; "
                f"use kInterruptPollMask ({POLL_MASK_HOME})")

    # --- naked-new -----------------------------------------------------------
    if vpath.startswith("src/"):
        for m in NAKED_NEW_RE.finditer(stripped_text):
            add(line_of(m.start()), NAKED_NEW,
                "naked 'new' — use std::make_unique/std::make_shared or a "
                "container")
        for m in NAKED_DELETE_RE.finditer(stripped_text):
            # '= delete' (deleted member) is handled by the lookbehind; a
            # 'delete expr' statement lands here.
            add(line_of(m.start()), NAKED_NEW,
                "naked 'delete' — ownership must be RAII-managed")

    # --- atomic-order (every root: src/, tools/, bench/) ---------------------
    for m in ATOMIC_OP_RE.finditer(stripped_text):
        args = balanced_call_args(stripped_text, m.end() - 1)
        op = m.group(1)
        if "memory_order" not in args:
            add(line_of(m.start()), ATOMIC_ORDER,
                f".{op}() without an explicit std::memory_order argument "
                "(policy: relaxed for monotonic counters, acquire/release "
                "for flag handoff — DESIGN.md §10)")
    for m in SEQ_CST_RE.finditer(stripped_text):
        add(line_of(m.start()), ATOMIC_ORDER,
            "memory_order_seq_cst is banned by policy (DESIGN.md §10): "
            "state the ordering the algorithm actually needs")

    return findings


def iter_source_files(root):
    for sub in ROOTS:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def lint_tree(root):
    paths = list(iter_source_files(root))
    findings = []
    for p in paths:
        with open(p, encoding="utf-8") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        vpath = os.path.relpath(p, root).replace(os.sep, "/")
        findings.extend(lint_file(vpath, raw, stripped))
    return findings


def self_test(fixture_dir):
    """Runs the linter over fixture files and checks expectations."""
    failures = []
    names = sorted(os.listdir(fixture_dir))
    fixture_paths = [os.path.join(fixture_dir, n) for n in names
                     if n.endswith(EXTENSIONS)]
    if not fixture_paths:
        print(f"self-test: no fixtures found in {fixture_dir}", file=sys.stderr)
        return 2

    checked = 0
    for p in fixture_paths:
        name = os.path.basename(p)
        # Fixtures are linted as if under src/; a bench_ prefix pins the
        # per-root scoping by linting the file as if it lived under bench/.
        effective = name
        vroot = "src/"
        if name.startswith("bench_"):
            effective = name[len("bench_"):]
            vroot = "bench/"
        vpath = vroot + effective
        with open(p, encoding="utf-8") as f:
            raw = f.read()
        findings = lint_file(vpath, raw, strip_comments_and_strings(raw))
        rules_hit = {f.rule for f in findings}
        if effective.startswith("bad_"):
            stem = os.path.splitext(effective)[0][len("bad_"):]
            expected = re.sub(r"\d+$", "", stem).rstrip("_").replace("_", "-")
            if expected not in ALL_RULES:
                failures.append(f"{name}: unknown expected rule '{expected}'")
            elif expected not in rules_hit:
                failures.append(
                    f"{name}: expected a [{expected}] finding, got "
                    f"{sorted(rules_hit) or 'none'}")
            checked += 1
        elif effective.startswith("good_"):
            if findings:
                failures.append(
                    f"{name}: expected clean, got: "
                    + "; ".join(str(f) for f in findings))
            checked += 1
    print(f"self-test: {checked} fixtures checked, {len(failures)} failures")
    for f in failures:
        print(f"  FAIL {f}")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (scans <root>/src, <root>/tools, "
                         "and <root>/bench)")
    ap.add_argument("--self-test", metavar="FIXTURE_DIR",
                    help="run the fixture self-test instead of linting")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.self_test))

    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint_invariants: clean")


if __name__ == "__main__":
    main()
