#!/usr/bin/env python3
"""qre-analyzer fixture-corpus self-test.

Runs the analyzer over every TU in tests/analyzer_fixtures/:

  * ``bad_<pass>*.cc``  must produce at least one finding of exactly that
    pass (filename with trailing digits stripped, underscores as hyphens,
    extra ``_<variant>`` suffixes allowed: ``bad_lock_order_interproc.cc``
    must trip ``lock-order``);
  * ``good_*.cc``       must produce no findings at all.

Also smoke-checks the SARIF writer on one must-flag fixture. Exits 77
(ctest SKIP) when the analyzer binary has not been built — local builds
without the Clang CMake package are expected to skip, CI builds it.

Usage: run_selftest.py --analyzer <path> --fixtures <dir>
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

PASSES = (
    "lock-order",
    "poll-coverage",
    "governed-alloc",
    "unordered-escape",
    "suppression",
)

# Fixture loops deliberately live at the corpus root; scope the pass-2
# directory filter so only the poll fixtures' loops need poll coverage.
POLL_PREFIXES = "bad_poll,good_poll"


def expected_pass(name: str) -> str:
    """bad_lock_order_interproc.cc -> lock-order."""
    stem = name[len("bad_"):].removesuffix(".cc").rstrip("0123456789")
    for pass_id in PASSES:
        prefix = pass_id.replace("-", "_")
        if stem == prefix or stem.startswith(prefix + "_"):
            return pass_id
    raise SystemExit(f"self-test: cannot map fixture {name!r} to a pass id")


def run_one(analyzer: str, fixtures: pathlib.Path, tu: pathlib.Path,
            sarif: pathlib.Path | None) -> subprocess.CompletedProcess:
    cmd = [
        analyzer,
        str(tu),
        f"--root={fixtures}",
        "--restrict=.",
        f"--poll-dirs={POLL_PREFIXES}",
    ]
    if sarif is not None:
        cmd.append(f"--sarif={sarif}")
    cmd += ["--", "-std=c++17", f"-I{fixtures}"]
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--analyzer", required=True)
    ap.add_argument("--fixtures", required=True)
    args = ap.parse_args()

    analyzer = pathlib.Path(args.analyzer)
    fixtures = pathlib.Path(args.fixtures).resolve()
    if not analyzer.is_file():
        print(f"SKIP: analyzer binary not built ({analyzer}); "
              "install libclang-dev + llvm-dev and reconfigure")
        return 77

    tus = sorted(fixtures.glob("*.cc"))
    if not tus:
        print(f"self-test: no fixtures under {fixtures}")
        return 1

    sarif_dir = pathlib.Path(tempfile.mkdtemp(prefix="qre-analyzer-sarif-"))
    failures = []
    sarif_checked = False
    for tu in tus:
        sarif = None
        if not sarif_checked and tu.name.startswith("bad_"):
            sarif = sarif_dir / f"{tu.stem}.sarif.json"
        proc = run_one(str(analyzer), fixtures, tu, sarif)
        output = proc.stdout + proc.stderr
        if proc.returncode == 2:
            failures.append(f"{tu.name}: analyzer failed to parse:\n{output}")
            continue
        if tu.name.startswith("bad_"):
            want = expected_pass(tu.name)
            if proc.returncode != 1 or f"[{want}]" not in output:
                failures.append(
                    f"{tu.name}: expected a [{want}] finding, got rc="
                    f"{proc.returncode}:\n{output}")
            elif sarif is not None:
                doc = json.loads(sarif.read_text())
                results = doc["runs"][0]["results"]
                if not any(r["ruleId"] == want for r in results):
                    failures.append(
                        f"{tu.name}: SARIF output lacks a {want} result")
                sarif.unlink()
                sarif_checked = True
        else:
            if proc.returncode != 0:
                failures.append(
                    f"{tu.name}: expected clean, rc={proc.returncode}:\n"
                    f"{output}")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"self-test: {len(tus) - len(failures)}/{len(tus)} fixtures ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
