// Whole-program finalization and output for qre-analyzer (DESIGN.md §14).
#pragma once

#include <string>

#include "analyzer_state.h"

namespace qre_analyzer {

/// Runs the whole-program reasoning over the merged per-TU facts: the
/// reaches-a-poll fixpoint, the interprocedural lock-edge expansion plus
/// cycle search, and the per-site verdicts for passes 2-4. Appends the
/// resulting findings to `state.findings`.
void Finalize(AnalyzerState& state);

/// Prints findings as "path:line: [pass] message" lines to stdout.
/// Returns the number of findings.
int PrintText(const AnalyzerState& state);

/// Writes findings as a minimal SARIF 2.1.0 log to `path`. Returns false
/// on I/O failure.
bool WriteSarif(const AnalyzerState& state, const std::string& path);

}  // namespace qre_analyzer
