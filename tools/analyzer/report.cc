// Whole-program finalization: call-graph fixpoints, lock-cycle search, and
// per-site verdicts for the four qre-analyzer passes (DESIGN.md §14).

#include "report.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace qre_analyzer {
namespace {

std::string SimpleName(const std::string& qualified) {
  size_t at = qualified.rfind("::");
  return at == std::string::npos ? qualified : qualified.substr(at + 2);
}

/// reaches_poll fixpoint: a function reaches a poll if it polls directly or
/// any callee does. Callee names that don't resolve to a known qualified
/// name fall back to simple-name matching (overload sets and out-of-TU
/// declarations all merge onto one node; lenient on purpose — a missed
/// match would flag a covered loop, not hide an uncovered one... at the
/// cost of trusting same-named helpers, which the fixture corpus pins).
void ComputeReachesPoll(AnalyzerState& state) {
  std::map<std::string, bool> by_simple;  // simple name -> any version polls
  for (auto& [name, facts] : state.functions) {
    facts.reaches_poll = facts.polls_directly;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, facts] : state.functions) {
      bool& bucket = by_simple[SimpleName(name)];
      if (facts.reaches_poll && !bucket) {
        bucket = true;
        changed = true;
      }
    }
    for (auto& [name, facts] : state.functions) {
      if (facts.reaches_poll) continue;
      for (const std::string& callee : facts.callees) {
        auto it = state.functions.find(callee);
        bool callee_polls =
            it != state.functions.end()
                ? it->second.reaches_poll
                : by_simple.count(SimpleName(callee)) > 0 &&
                      by_simple.at(SimpleName(callee));
        if (callee_polls) {
          facts.reaches_poll = true;
          changed = true;
          break;
        }
      }
    }
  }
}

/// Transitive closure of per-function lock acquisitions, then expansion of
/// every call-made-under-lock into held -> acquires*(callee) edges.
void ExpandInterproceduralEdges(AnalyzerState& state) {
  std::map<std::string, std::set<std::string>> closure;
  for (const auto& [name, facts] : state.functions)
    closure[name] = facts.acquires;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, acquired] : closure) {
      const FunctionFacts& facts = state.functions.at(name);
      for (const std::string& callee : facts.callees) {
        auto it = closure.find(callee);
        if (it == closure.end()) continue;
        for (const std::string& lock : it->second) {
          if (acquired.insert(lock).second) changed = true;
        }
      }
    }
  }
  for (const CallUnderLock& cul : state.calls_under_lock) {
    auto it = closure.find(cul.callee);
    if (it == closure.end()) continue;
    for (const std::string& held : cul.held) {
      for (const std::string& acquired : it->second) {
        if (acquired == held) continue;
        LockEdge edge;
        edge.from = held;
        edge.to = acquired;
        edge.acquire_pos = cul.pos;
        edge.function = cul.function + " -> " + cul.callee;
        state.lock_edges.insert(std::move(edge));
      }
    }
  }
}

/// DFS cycle search over the merged acquisition graph; every distinct cycle
/// (by node set) is reported once, with the witness edges printed.
void FindLockCycles(AnalyzerState& state) {
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : state.lock_edges) adj[e.from].push_back(&e);

  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<const LockEdge*> stack;
  std::set<std::string> reported;  // normalized cycle node sets

  // Recursive lambda via explicit stack of (node, next-edge-index).
  struct Frame {
    std::string node;
    size_t next = 0;
  };
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> frames{{start, 0}};
    color[start] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      auto it = adj.find(f.node);
      if (it == adj.end() || f.next >= it->second.size()) {
        color[f.node] = 2;
        frames.pop_back();
        if (!stack.empty()) stack.pop_back();
        continue;
      }
      const LockEdge* e = it->second[f.next++];
      if (color[e->to] == 1) {
        // Back edge: the cycle is the stack suffix from e->to, plus e.
        std::vector<const LockEdge*> cycle;
        bool in = false;
        for (const LockEdge* se : stack) {
          if (se->from == e->to) in = true;
          if (in) cycle.push_back(se);
        }
        cycle.push_back(e);
        std::set<std::string> nodes;
        for (const LockEdge* ce : cycle) nodes.insert(ce->from);
        std::string key;
        for (const std::string& n : nodes) key += n + "|";
        if (reported.insert(key).second) {
          std::string witness = "lock-order cycle: ";
          for (const LockEdge* ce : cycle) {
            witness += ce->from + " -> " + ce->to + " [" +
                       ce->acquire_pos.file + ":" +
                       std::to_string(ce->acquire_pos.line) + " in " +
                       ce->function + "] ";
          }
          const LockEdge* anchor = cycle.back();
          state.AddFinding(anchor->acquire_pos.file, anchor->acquire_pos.line,
                           kPassLockOrder, witness);
        }
        continue;
      }
      if (color[e->to] == 0) {
        color[e->to] = 1;
        stack.push_back(e);
        frames.push_back({e->to, 0});
      }
    }
  }
}

void ReportPollCoverage(AnalyzerState& state) {
  for (const auto& [key, nest] : state.loop_nests) {
    (void)key;
    if (!nest.data_scaled || nest.has_poll || nest.morsel_bounded) continue;
    bool callee_polls = false;
    for (const std::string& callee : nest.callees) {
      auto it = state.functions.find(callee);
      if (it != state.functions.end() && it->second.reaches_poll) {
        callee_polls = true;
        break;
      }
      // Simple-name fallback, mirroring ComputeReachesPoll.
      for (const auto& [name, facts] : state.functions) {
        if (facts.reaches_poll && SimpleName(name) == SimpleName(callee)) {
          callee_polls = true;
          break;
        }
      }
      if (callee_polls) break;
    }
    if (callee_polls) continue;
    if (state.IsSuppressed(nest.data_pos.file, nest.data_pos.line,
                           kPassPollCoverage)) {
      continue;
    }
    state.AddFinding(
        nest.data_pos.file, nest.data_pos.line, kPassPollCoverage,
        "data-scaled loop (" + nest.trigger + ") in " + nest.function +
            " never reaches an interrupt poll, RunControl check, or morsel "
            "boundary; poll every kInterruptPollMask iterations or mark "
            "'// poll: bounded - <reason>' if the extent is input-bounded");
  }
}

void ReportGovernedAlloc(AnalyzerState& state) {
  for (const auto& [key, site] : state.governed_sites) {
    (void)key;
    if (site.has_marker) continue;
    if (state.IsSuppressed(site.pos.file, site.pos.line, kPassGovernedAlloc))
      continue;
    state.AddFinding(
        site.pos.file, site.pos.line, kPassGovernedAlloc,
        "materialization-sized buffer (" + site.type_desc +
            ") without a governor classification; charge it against the "
            "ResourceGovernor and mark '// gov: charged - <reason>' or "
            "justify '// gov: bounded - <reason>'");
  }
}

void ReportUnorderedEscape(AnalyzerState& state) {
  for (const auto& [key, site] : state.unordered_sites) {
    (void)key;
    if (state.IsSuppressed(site.pos.file, site.pos.line, kPassUnorderedEscape))
      continue;
    const bool escapes = site.ordered_sink && !site.sink_sorted_after;
    switch (site.marker) {
      case UnorderedSite::Marker::kSorted:
        break;  // claimed sorted-after; trusted (spot-checked by pass logic)
      case UnorderedSite::Marker::kOrderInsensitive:
        // Only contradict the human classification when every sink resolved
        // to a function-local variable: appends into members or out-params
        // may legitimately be sorted by the caller (pass limitation,
        // DESIGN.md §14).
        if (escapes && site.sink_all_local) {
          state.AddFinding(
              site.pos.file, site.pos.line, kPassUnorderedEscape,
              "unordered iteration in " + site.function +
                  " is marked '// det: order-insensitive' but its body " +
                  site.sink_desc +
                  " without a later sort; reclassify as '// det: sorted' "
                  "and sort the sink, or make the body order-insensitive");
        }
        break;
      case UnorderedSite::Marker::kNone:
        if (escapes) {
          state.AddFinding(
              site.pos.file, site.pos.line, kPassUnorderedEscape,
              "unordered iteration order in " + site.function +
                  " escapes into an ordered sink (body " + site.sink_desc +
                  "); sort the sink afterwards and mark '// det: sorted', "
                  "or restructure");
        } else if (!site.only_safe_ops && !site.sink_sorted_after) {
          state.AddFinding(
              site.pos.file, site.pos.line, kPassUnorderedEscape,
              "unordered iteration in " + site.function +
                  " has body effects the analyzer cannot prove "
                  "order-insensitive; classify with '// det: sorted' or "
                  "'// det: order-insensitive - <reason>'");
        }
        // Provably-safe sites are demoted silently: no marker required.
        break;
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Finalize(AnalyzerState& state) {
  ComputeReachesPoll(state);
  ExpandInterproceduralEdges(state);
  FindLockCycles(state);
  ReportPollCoverage(state);
  ReportGovernedAlloc(state);
  ReportUnorderedEscape(state);
}

int PrintText(const AnalyzerState& state) {
  for (const Finding& f : state.findings) {
    std::printf("%s:%u: [%s] %s\n", f.file.c_str(), f.line, f.pass.c_str(),
                f.message.c_str());
  }
  return static_cast<int>(state.findings.size());
}

bool WriteSarif(const AnalyzerState& state, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [{\n"
         "    \"tool\": {\"driver\": {\"name\": \"qre-analyzer\", "
         "\"informationUri\": \"tools/analyzer\", \"rules\": [\n";
  const char* const passes[] = {kPassLockOrder, kPassPollCoverage,
                                kPassGovernedAlloc, kPassUnorderedEscape,
                                kPassSuppression};
  for (size_t i = 0; i < 5; ++i) {
    out << "      {\"id\": \"" << passes[i] << "\"}"
        << (i + 1 < 5 ? ",\n" : "\n");
  }
  out << "    ]}},\n"
         "    \"results\": [\n";
  size_t i = 0;
  for (const Finding& f : state.findings) {
    out << "      {\"ruleId\": \"" << JsonEscape(f.pass)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
        << "}}}]}";
    out << (++i < state.findings.size() ? ",\n" : "\n");
  }
  out << "    ]\n  }]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace qre_analyzer
