#!/usr/bin/env python3
"""Runs qre-analyzer over every TU in src/, using the build tree's exported
compile_commands.json. Exits 77 (ctest SKIP) when the analyzer binary is
not built (no Clang CMake package at configure time). Exit 1 means the tool
reported findings; fix them or classify the sites (// gov:, // det:,
// poll: bounded, or NOLINT-ANALYZER where policy allows).

Usage: run_src.py --analyzer <path> --build <dir> --root <repo> [--sarif f]
"""

import argparse
import pathlib
import subprocess
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--analyzer", required=True)
    ap.add_argument("--build", required=True)
    ap.add_argument("--root", required=True)
    ap.add_argument("--sarif", default="")
    args = ap.parse_args()

    analyzer = pathlib.Path(args.analyzer)
    if not analyzer.is_file():
        print(f"SKIP: analyzer binary not built ({analyzer}); "
              "install libclang-dev + llvm-dev and reconfigure")
        return 77
    build = pathlib.Path(args.build)
    if not (build / "compile_commands.json").is_file():
        print(f"SKIP: no compile_commands.json under {build}")
        return 77

    root = pathlib.Path(args.root).resolve()
    tus = sorted(str(p) for p in (root / "src").rglob("*.cc"))
    if not tus:
        print(f"run_src: no TUs under {root}/src")
        return 1

    cmd = [str(analyzer), "-p", str(build), f"--root={root}"]
    if args.sarif:
        cmd.append(f"--sarif={args.sarif}")
    cmd += tus
    proc = subprocess.run(cmd, cwd=root)
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
