// qre-analyzer entry point: LibTooling driver over compile_commands.json.
//
// Usage:
//   qre-analyzer -p build src/**/*.cc --root $PWD [--sarif out.sarif]
//   qre-analyzer fixture.cc --root <dir> --restrict . --poll-dirs . \
//       -- clang++ -std=c++17 -I<dir>
//
// Exit codes: 0 clean, 1 findings, 2 tool/parse failure.

#include <string>
#include <vector>

#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"

#include "collect.h"
#include "report.h"

namespace {

llvm::cl::OptionCategory g_category("qre-analyzer options");

llvm::cl::opt<std::string> g_root(
    "root",
    llvm::cl::desc("Repo root; reported paths are made relative to it "
                   "(default: current directory)"),
    llvm::cl::init(""), llvm::cl::cat(g_category));

llvm::cl::opt<std::string> g_restrict(
    "restrict",
    llvm::cl::desc("Comma-separated path prefixes that findings are "
                   "restricted to ('.' = everywhere; default 'src/')"),
    llvm::cl::init("src/"), llvm::cl::cat(g_category));

llvm::cl::opt<std::string> g_poll_dirs(
    "poll-dirs",
    llvm::cl::desc("Comma-separated prefixes whose loops the poll-coverage "
                   "pass checks (default 'src/engine/,src/qre/')"),
    llvm::cl::init("src/engine/,src/qre/"), llvm::cl::cat(g_category));

llvm::cl::opt<std::string> g_sarif(
    "sarif", llvm::cl::desc("Write findings as SARIF 2.1.0 to this path"),
    llvm::cl::init(""), llvm::cl::cat(g_category));

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, const char** argv) {
  auto expected =
      clang::tooling::CommonOptionsParser::create(argc, argv, g_category);
  if (!expected) {
    llvm::errs() << llvm::toString(expected.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser& options = *expected;

  qre_analyzer::AnalyzerState state;
  if (g_root.empty()) {
    llvm::SmallString<256> cwd;
    llvm::sys::fs::current_path(cwd);
    state.opts.root = std::string(cwd.str());
  } else {
    llvm::SmallString<256> real;
    if (!llvm::sys::fs::real_path(g_root, real))
      state.opts.root = std::string(real.str());
    else
      state.opts.root = g_root;
  }
  state.opts.restrict_dirs = SplitCommas(g_restrict);
  state.opts.poll_dirs = SplitCommas(g_poll_dirs);
  state.opts.sarif_path = g_sarif;

  clang::tooling::ClangTool tool(options.getCompilations(),
                                 options.getSourcePathList());
  int tool_status = tool.run(qre_analyzer::MakeCollectorFactory(state).get());
  if (tool_status != 0) {
    llvm::errs() << "qre-analyzer: compilation failed (" << tool_status
                 << ")\n";
    return 2;
  }

  qre_analyzer::Finalize(state);
  int findings = qre_analyzer::PrintText(state);

  if (!state.opts.sarif_path.empty() &&
      !qre_analyzer::WriteSarif(state, state.opts.sarif_path)) {
    llvm::errs() << "qre-analyzer: failed to write SARIF to "
                 << state.opts.sarif_path << "\n";
    return 2;
  }

  if (findings == 0) {
    llvm::outs() << "qre-analyzer: clean (" << state.loop_nests.size()
                 << " loop nests, " << state.lock_edges.size()
                 << " lock edges, " << state.governed_sites.size()
                 << " governed buffers, " << state.unordered_sites.size()
                 << " unordered iterations)\n";
  }
  return findings == 0 ? 0 : 1;
}
