// qre-analyzer per-TU collector: one RecursiveASTVisitor discovers function
// bodies and declarations; a hand-rolled statement walker then tracks, in
// source order, the scoped-locker stack (pass 1), top-level loop nests and
// poll statements (pass 2), and unordered-iteration body effects (pass 4).
// Declaration types are classified for pass 3 as they are visited. All
// whole-program reasoning happens later, in Finalize() (report.cc).

#include "collect.h"

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/StmtCXX.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"

namespace qre_analyzer {
namespace {

using namespace clang;

// Callback names whose invocation counts as an interrupt poll: the repo's
// stop predicates are std::function values / lambdas / methods with these
// names (executor interrupt_, validator budget_exceeded_, cgm's stopped
// lambda, RunControl::ShouldStop).
const char* const kPollNames[] = {"ShouldStop",       "should_stop",
                                  "interrupt",        "interrupt_",
                                  "interrupted",      "poll",
                                  "budget_exceeded",  "budget_exceeded_",
                                  "stopped"};

const char* const kScopedLockerNames[] = {"MutexLock",   "ReaderMutexLock",
                                          "WriterMutexLock", "lock_guard",
                                          "unique_lock", "shared_lock",
                                          "scoped_lock"};

bool InArray(llvm::StringRef name, const char* const (&arr)[8]) {
  for (const char* s : arr)
    if (name == s) return true;
  return false;
}

bool IsScopedLockerName(llvm::StringRef name) {
  for (const char* s : kScopedLockerNames)
    if (name == s) return true;
  return false;
}

bool IsUnorderedContainerName(llvm::StringRef name) {
  return name == "unordered_set" || name == "unordered_map" ||
         name == "unordered_multiset" || name == "unordered_multimap";
}

/// Skips separators (spaces, punctuation, UTF-8 dash bytes) after a marker
/// class and requires a substantive reason (>= 3 letters/digits).
bool HasReasonTail(llvm::StringRef rest) {
  int alnum = 0;
  for (char c : rest) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      if (++alnum >= 3) return true;
    }
  }
  return false;
}

/// One ordered-sink event inside an unordered-iteration body.
struct SinkEvent {
  const ValueDecl* decl = nullptr;  // sink variable or field, if resolvable
  bool local = false;               // a function-local VarDecl
  std::string desc;
};

class Collector;

/// Mutable per-function walking context (lock stack, loop nest, the stack
/// of unordered-iteration sites currently being analyzed).
struct WalkCtx {
  std::string fn_name;
  FunctionFacts* facts = nullptr;
  std::vector<std::pair<std::string, unsigned>> held;  // (lock id, line)
  LoopNest* nest = nullptr;
  bool in_morsel = false;
  // Unordered sites currently open (outermost first); body events apply to
  // every open site.
  std::vector<UnorderedSite*> usites;
  std::vector<std::vector<SinkEvent>*> usinks;
  std::vector<std::set<const VarDecl*>*> ulocals;
  // std::sort calls seen anywhere in the function: (sorted target, line).
  std::vector<std::pair<const ValueDecl*, unsigned>> sorts;
};

class Collector : public RecursiveASTVisitor<Collector> {
 public:
  Collector(AnalyzerState& state, ASTContext& ctx)
      : state_(state), ctx_(ctx), sm_(ctx.getSourceManager()) {}

  bool shouldVisitTemplateInstantiations() const { return true; }
  bool shouldVisitImplicitCode() const { return false; }

  bool VisitFunctionDecl(FunctionDecl* f) {
    if (!f->doesThisDeclarationHaveABody() || f->getBody() == nullptr)
      return true;
    if (f->isImplicit()) return true;
    if (const auto* m = llvm::dyn_cast<CXXMethodDecl>(f)) {
      // Lambda bodies are walked inline from their enclosing function.
      if (m->getParent()->isLambda()) return true;
    }
    WalkFunction(f);
    return true;
  }

  bool VisitVarDecl(VarDecl* v) {
    if (llvm::isa<ParmVarDecl>(v) || v->isImplicit()) return true;
    ClassifyGoverned(v->getType(), v->getLocation());
    return true;
  }

  bool VisitFieldDecl(FieldDecl* f) {
    ClassifyGoverned(f->getType(), f->getLocation());
    return true;
  }

 private:
  // ---- paths, comments, markers ----------------------------------------

  /// Root-relative (or absolute, if outside the root) path of `loc`.
  std::string FileOf(SourceLocation loc) {
    SourceLocation e = sm_.getExpansionLoc(loc);
    std::string raw = sm_.getFilename(e).str();
    if (raw.empty()) return raw;
    auto it = path_cache_.find(raw);
    if (it != path_cache_.end()) return it->second;
    llvm::SmallString<256> real;
    std::string out = raw;
    if (!llvm::sys::fs::real_path(raw, real)) {
      out = std::string(real.str());
      const std::string& root = state_.opts.root;
      if (!root.empty() && out.size() > root.size() + 1 &&
          out.compare(0, root.size(), root) == 0 && out[root.size()] == '/') {
        out = out.substr(root.size() + 1);
      }
    }
    path_cache_.emplace(raw, out);
    return out;
  }

  unsigned LineOf(SourceLocation loc) {
    return sm_.getExpansionLineNumber(loc);
  }

  /// Loads and caches a file's lines; on first load, validates every
  /// NOLINT-ANALYZER suppression in it and registers the valid ones.
  const std::vector<std::string>* LinesOf(const std::string& file) {
    auto it = file_lines_.find(file);
    if (it != file_lines_.end()) return &it->second;
    std::vector<std::string> lines;
    std::string disk = file;
    if (!llvm::sys::path::is_absolute(disk) && !state_.opts.root.empty())
      disk = state_.opts.root + "/" + file;
    std::ifstream in(disk);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    auto& stored = file_lines_[file] = std::move(lines);
    ScanSuppressions(file, stored);
    return &stored;
  }

  void ScanSuppressions(const std::string& file,
                        const std::vector<std::string>& lines) {
    if (!state_.scanned_files.insert(file).second) return;
    static const char kTag[] = "NOLINT-ANALYZER";
    for (unsigned i = 0; i < lines.size(); ++i) {
      size_t at = lines[i].find(kTag);
      if (at == std::string::npos) continue;
      const unsigned line_no = i + 1;
      llvm::StringRef rest(lines[i]);
      rest = rest.drop_front(at + sizeof(kTag) - 1);
      std::string pass;
      bool ok = rest.consume_front("(");
      if (ok) {
        size_t close = rest.find(')');
        ok = close != llvm::StringRef::npos;
        if (ok) {
          pass = rest.take_front(close).trim().str();
          rest = rest.drop_front(close + 1);
        }
      }
      const bool known = pass == kPassPollCoverage ||
                         pass == kPassGovernedAlloc ||
                         pass == kPassUnorderedEscape;
      ok = ok && rest.consume_front(":");
      ok = ok && rest.trim().size() >= 10;
      if (!ok || !known) {
        std::string why =
            pass == kPassLockOrder
                ? "lock-order findings are not suppressible: a cycle must "
                  "be fixed, not waved through"
                : "malformed suppression: expected // NOLINT-ANALYZER(<pass>)"
                  ": <justification >= 10 chars>";
        state_.AddFinding(file, line_no, kPassSuppression, why);
        continue;
      }
      state_.suppressions[file + ":" + std::to_string(line_no)].insert(pass);
    }
  }

  /// True if lines [line-3, line] of `file` carry `// <keyword> <cls> - <why>`
  /// for one of `classes`, with a substantive reason.
  bool HasMarker(const std::string& file, unsigned line, const char* keyword,
                 std::initializer_list<const char*> classes,
                 std::string* cls_out = nullptr) {
    const std::vector<std::string>* lines = LinesOf(file);
    if (lines == nullptr) return false;
    unsigned lo = line > 3 ? line - 3 : 1;
    for (unsigned l = lo; l <= line && l <= lines->size(); ++l) {
      llvm::StringRef text((*lines)[l - 1]);
      size_t slash = text.find("//");
      if (slash == llvm::StringRef::npos) continue;
      size_t at = text.find(keyword, slash);
      if (at == llvm::StringRef::npos) continue;
      llvm::StringRef rest = text.drop_front(at + llvm::StringRef(keyword).size());
      rest = rest.ltrim();
      for (const char* cls : classes) {
        // StringRef::startswith was removed in newer LLVM; spell it out.
        size_t n = llvm::StringRef(cls).size();
        if (rest.size() >= n && rest.take_front(n) == cls &&
            HasReasonTail(rest.drop_front(n))) {
          if (cls_out != nullptr) *cls_out = cls;
          return true;
        }
      }
    }
    return false;
  }

  bool UnderRestrict(const std::string& file) const {
    return StartsWithAny(file, state_.opts.restrict_dirs);
  }
  bool UnderPollDirs(const std::string& file) const {
    return StartsWithAny(file, state_.opts.poll_dirs);
  }

  // ---- pass 3: governed-type classification ----------------------------

  /// Walks the sugar chain of `qt` looking for the governed aliases, then
  /// falls back to canonical-type evidence (the named filter classes, the
  /// IdTupleHash hasher that identifies TupleSet through `auto`, nested
  /// row-id vectors).
  bool IsGovernedType(QualType qt, std::string* which) {
    if (qt.isNull()) return false;
    if (qt->isReferenceType() || qt->isPointerType()) return false;
    const Type* ty = qt.getTypePtr();
    for (int i = 0; i < 32 && ty != nullptr; ++i) {
      if (const auto* td = llvm::dyn_cast<TypedefType>(ty)) {
        llvm::StringRef n = td->getDecl()->getName();
        if (n == "TupleSet" || n == "ReachMap" || n == "JobTable" ||
            n == "AnswerBuffer") {
          *which = n.str();
          return true;
        }
        ty = td->getDecl()->getUnderlyingType().getTypePtr();
        continue;
      }
      if (const auto* et = llvm::dyn_cast<ElaboratedType>(ty)) {
        ty = et->getNamedType().getTypePtr();
        continue;
      }
      if (const auto* at = llvm::dyn_cast<AutoType>(ty)) {
        if (!at->isDeduced() || at->getDeducedType().isNull()) return false;
        ty = at->getDeducedType().getTypePtr();
        continue;
      }
      if (const auto* st = llvm::dyn_cast<SubstTemplateTypeParmType>(ty)) {
        ty = st->getReplacementType().getTypePtr();
        continue;
      }
      break;
    }
    QualType canon = qt.getCanonicalType();
    const CXXRecordDecl* rec = canon->getAsCXXRecordDecl();
    if (rec == nullptr) return false;
    llvm::StringRef n = rec->getName();
    if (n == "BitmapFilter" || n == "CompositeKeyFilter" ||
        n == "SubplanTable") {
      *which = n.str();
      return true;
    }
    const auto* spec = llvm::dyn_cast<ClassTemplateSpecializationDecl>(rec);
    if (spec == nullptr) return false;
    const TemplateArgumentList& args = spec->getTemplateArgs();
    const unsigned hasher_arg =
        n == "unordered_set" ? 1u : (n == "unordered_map" ? 2u : 0u);
    if (hasher_arg != 0 && args.size() > hasher_arg &&
        args[hasher_arg].getKind() == TemplateArgument::Type) {
      const CXXRecordDecl* hasher =
          args[hasher_arg].getAsType()->getAsCXXRecordDecl();
      if (hasher != nullptr && hasher->getName() == "IdTupleHash") {
        *which = n.str() + " (via IdTupleHash hasher)";
        return true;
      }
    }
    if (n == "vector" && args.size() >= 1 &&
        args[0].getKind() == TemplateArgument::Type) {
      const CXXRecordDecl* inner =
          args[0].getAsType().getCanonicalType()->getAsCXXRecordDecl();
      if (inner != nullptr && inner->getName() == "vector") {
        std::string spelled = qt.getAsString();
        if (spelled.find("RowId") != std::string::npos ||
            spelled.find("ValueId") != std::string::npos) {
          *which = "row-id matrix (vector<vector<RowId|ValueId>>)";
          return true;
        }
      }
    }
    return false;
  }

  void ClassifyGoverned(QualType qt, SourceLocation loc) {
    if (loc.isInvalid()) return;
    std::string file = FileOf(loc);
    if (file.empty() || !UnderRestrict(file)) return;
    std::string which;
    if (!IsGovernedType(qt, &which)) return;
    unsigned line = LineOf(loc);
    std::string key = file + ":" + std::to_string(line);
    if (state_.governed_sites.count(key) > 0) return;
    GovernedSite site;
    site.pos = {file, line};
    site.type_desc = which;
    site.has_marker = HasMarker(file, line, "gov:", {"charged", "bounded"});
    state_.governed_sites.emplace(std::move(key), std::move(site));
  }

  // ---- pass 1 helpers: lock identity -----------------------------------

  /// Canonical identity of a mutex expression: Class::field for members
  /// (any instance), <function>::name for locals, qualified name for
  /// globals; falls back to the pretty-printed expression.
  std::string LockId(const Expr* e, const WalkCtx& ctx) {
    if (e == nullptr) return "<unknown>";
    e = e->IgnoreParenImpCasts();
    if (const auto* uo = llvm::dyn_cast<UnaryOperator>(e)) {
      if (uo->getOpcode() == UO_AddrOf)
        e = uo->getSubExpr()->IgnoreParenImpCasts();
    }
    if (const auto* me = llvm::dyn_cast<MemberExpr>(e)) {
      return me->getMemberDecl()->getQualifiedNameAsString();
    }
    if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(e)) {
      const ValueDecl* d = dr->getDecl();
      if (const auto* vd = llvm::dyn_cast<VarDecl>(d)) {
        if (vd->isLocalVarDecl())
          return ctx.fn_name + "::" + vd->getNameAsString() + " (local)";
      }
      return d->getQualifiedNameAsString();
    }
    std::string s;
    llvm::raw_string_ostream os(s);
    e->printPretty(os, nullptr, PrintingPolicy(ctx_.getLangOpts()));
    return os.str();
  }

  /// Records edges held -> id against the locks in `held_before` and pushes
  /// the new acquisition.
  void Acquire(const std::string& id, SourceLocation loc, WalkCtx& ctx,
               size_t held_before) {
    std::string file = FileOf(loc);
    unsigned line = LineOf(loc);
    for (size_t i = 0; i < held_before && i < ctx.held.size(); ++i) {
      const auto& h = ctx.held[i];
      if (h.first == id) continue;
      LockEdge edge;
      edge.from = h.first;
      edge.to = id;
      edge.acquire_pos = {file, line};
      edge.function = ctx.fn_name;
      edge.held_line = h.second;
      state_.lock_edges.insert(std::move(edge));
    }
    ctx.held.emplace_back(id, line);
    ctx.facts->acquires.insert(id);
  }

  void Release(const std::string& id, WalkCtx& ctx) {
    for (auto it = ctx.held.rbegin(); it != ctx.held.rend(); ++it) {
      if (it->first == id) {
        ctx.held.erase(std::next(it).base());
        return;
      }
    }
  }

  // ---- pass 2/4 helpers -------------------------------------------------

  void NotePoll(WalkCtx& ctx) {
    ctx.facts->polls_directly = true;
    if (ctx.nest != nullptr) ctx.nest->has_poll = true;
  }

  /// The simple (unqualified) name a call is made through, covering direct
  /// calls, member calls, and operator() on lambdas / std::function values.
  std::string CallSpelling(const CallExpr* call) {
    if (const auto* op = llvm::dyn_cast<CXXOperatorCallExpr>(call)) {
      if (op->getOperator() == OO_Call && op->getNumArgs() > 0) {
        const Expr* obj = op->getArg(0)->IgnoreParenImpCasts();
        if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(obj))
          return dr->getDecl()->getNameAsString();
        if (const auto* me = llvm::dyn_cast<MemberExpr>(obj))
          return me->getMemberDecl()->getNameAsString();
      }
    }
    if (const FunctionDecl* fd = call->getDirectCallee())
      return fd->getNameAsString();
    const Expr* cal = call->getCallee();
    if (cal != nullptr) {
      cal = cal->IgnoreParenImpCasts();
      if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(cal))
        return dr->getDecl()->getNameAsString();
      if (const auto* me = llvm::dyn_cast<MemberExpr>(cal))
        return me->getMemberDecl()->getNameAsString();
    }
    return "";
  }

  /// Record an ordered-sink event on every open unordered site.
  void NoteOrderedSink(const Expr* target, const std::string& desc,
                       WalkCtx& ctx) {
    if (ctx.usites.empty()) return;
    const ValueDecl* decl = SinkDeclOf(target);
    bool local = false;
    if (const auto* vd = llvm::dyn_cast_or_null<VarDecl>(decl))
      local = vd->isLocalVarDecl() && !llvm::isa<ParmVarDecl>(vd);
    for (size_t i = 0; i < ctx.usites.size(); ++i) {
      ctx.usites[i]->ordered_sink = true;
      ctx.usites[i]->only_safe_ops = false;
      if (!local) ctx.usites[i]->sink_all_local = false;
      if (ctx.usites[i]->sink_desc.empty()) ctx.usites[i]->sink_desc = desc;
      ctx.usinks[i]->push_back(SinkEvent{decl, local, desc});
    }
  }

  /// Declaration an append-target expression writes into, if resolvable.
  const ValueDecl* SinkDeclOf(const Expr* target) {
    if (target == nullptr) return nullptr;
    const Expr* t = target->IgnoreParenImpCasts();
    if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(t)) return dr->getDecl();
    if (const auto* me = llvm::dyn_cast<MemberExpr>(t))
      return me->getMemberDecl();
    return nullptr;
  }

  void NoteUnknownOp(WalkCtx& ctx) {
    for (UnorderedSite* s : ctx.usites) s->only_safe_ops = false;
  }

  /// Canonical record name of an expression's class type ("" if none).
  llvm::StringRef RecordNameOf(const Expr* e) {
    if (e == nullptr) return "";
    QualType qt = e->getType();
    if (qt.isNull()) return "";
    const CXXRecordDecl* rec =
        qt.getNonReferenceType().getCanonicalType()->getAsCXXRecordDecl();
    return rec != nullptr ? rec->getName() : llvm::StringRef("");
  }

  // ---- the statement walker --------------------------------------------

  void WalkFunction(FunctionDecl* f) {
    WalkCtx ctx;
    ctx.fn_name = f->getQualifiedNameAsString();
    ctx.facts = &state_.functions[ctx.fn_name];
    // Thread-safety REQUIRES annotations: the named capabilities are held
    // on entry, so anything acquired inside orders after them.
    for (const auto* attr : f->specific_attrs<RequiresCapabilityAttr>()) {
      for (const Expr* arg : attr->args())
        ctx.held.emplace_back(LockId(arg, ctx), LineOf(f->getLocation()));
    }
    // Make sure the defining file's suppressions are validated even when no
    // site in it ever consults a marker.
    std::string file = FileOf(f->getLocation());
    if (!file.empty() && UnderRestrict(file)) LinesOf(file);
    WalkStmt(f->getBody(), ctx);
    ResolveSortedSinks(ctx);
  }

  /// After the whole function is walked: an ordered sink is harmless if the
  /// sink variable is sorted later in the same function.
  void ResolveSortedSinks(WalkCtx& ctx) {
    for (auto& entry : pending_sites_) {
      UnorderedSite* site = entry.first;
      std::vector<SinkEvent>& sinks = entry.second;
      if (!site->ordered_sink || sinks.empty()) continue;
      bool all_sorted = true;
      for (const SinkEvent& s : sinks) {
        bool sorted = false;
        if (s.decl != nullptr) {
          for (const auto& [decl, line] : ctx.sorts) {
            if (decl == s.decl && line >= site->pos.line) sorted = true;
          }
        }
        if (!sorted) all_sorted = false;
      }
      site->sink_sorted_after = all_sorted;
    }
    pending_sites_.clear();
  }

  void WalkChildren(const Stmt* s, WalkCtx& ctx) {
    for (const Stmt* c : s->children())
      if (c != nullptr) WalkStmt(c, ctx);
  }

  void WalkStmt(const Stmt* s, WalkCtx& ctx) {
    if (s == nullptr) return;

    if (const auto* cs = llvm::dyn_cast<CompoundStmt>(s)) {
      size_t mark = ctx.held.size();
      for (const Stmt* c : cs->body()) WalkStmt(c, ctx);
      if (ctx.held.size() > mark) ctx.held.resize(mark);
      return;
    }

    if (const auto* ds = llvm::dyn_cast<DeclStmt>(s)) {
      HandleDeclStmt(ds, ctx);
      return;
    }

    if (llvm::isa<ForStmt>(s) || llvm::isa<WhileStmt>(s) ||
        llvm::isa<DoStmt>(s) || llvm::isa<CXXForRangeStmt>(s)) {
      HandleLoop(s, ctx);
      return;
    }

    if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(s)) {
      if (dr->getDecl()->getName() == "kInterruptPollMask") NotePoll(ctx);
      return;  // leaf
    }

    if (const auto* lam = llvm::dyn_cast<LambdaExpr>(s)) {
      // Capture initializers, then the body inline: a lambda's loops and
      // polls are attributed to the enclosing function (over-approximate
      // for never-invoked lambdas; see DESIGN.md §14).
      for (const Expr* init : lam->capture_inits())
        if (init != nullptr) WalkStmt(init, ctx);
      WalkStmt(lam->getBody(), ctx);
      return;
    }

    if (const auto* call = llvm::dyn_cast<CallExpr>(s)) {
      HandleCall(call, ctx);
      return;
    }

    if (const auto* bin = llvm::dyn_cast<BinaryOperator>(s)) {
      HandleBinary(bin, ctx);
      return;
    }

    WalkChildren(s, ctx);
  }

  void HandleDeclStmt(const DeclStmt* ds, WalkCtx& ctx) {
    for (const Decl* d : ds->decls()) {
      const auto* vd = llvm::dyn_cast<VarDecl>(d);
      if (vd == nullptr) continue;
      if (!ctx.ulocals.empty()) {
        for (auto* locals : ctx.ulocals) locals->insert(vd);
      }
      // Scoped locker?
      const CXXRecordDecl* rec =
          vd->getType().getCanonicalType()->getAsCXXRecordDecl();
      const Expr* init = vd->getInit();
      if (rec != nullptr && IsScopedLockerName(rec->getName()) &&
          init != nullptr) {
        const Expr* stripped = init->IgnoreImplicit();
        if (const auto* ce = llvm::dyn_cast<CXXConstructExpr>(stripped)) {
          size_t held_before = ctx.held.size();
          for (unsigned i = 0; i < ce->getNumArgs(); ++i) {
            // std::scoped_lock acquires its arguments atomically; edges are
            // only recorded against locks held before the statement.
            Acquire(LockId(ce->getArg(i), ctx), vd->getLocation(), ctx,
                    held_before);
          }
          continue;
        }
      }
      if (init != nullptr) WalkStmt(init, ctx);
    }
  }

  void HandleLoop(const Stmt* s, WalkCtx& ctx) {
    const bool is_top = ctx.nest == nullptr;
    LoopNest local;
    if (is_top) {
      local.pos = {FileOf(s->getBeginLoc()), LineOf(s->getBeginLoc())};
      local.function = ctx.fn_name;
      local.morsel_bounded = ctx.in_morsel;
      ctx.nest = &local;
    }

    std::string file = FileOf(s->getBeginLoc());
    unsigned line = LineOf(s->getBeginLoc());

    // Data-scaled classification (pass 2), only inside the poll-checked
    // directories.
    if (UnderPollDirs(file) && !ctx.nest->data_scaled) {
      std::string trigger = DataScaledTrigger(s, ctx);
      if (!trigger.empty() &&
          !HasMarker(file, line, "poll:", {"bounded"}) &&
          !state_.IsSuppressed(file, line, kPassPollCoverage)) {
        ctx.nest->data_scaled = true;
        ctx.nest->data_pos = {file, line};
        ctx.nest->trigger = trigger;
      }
    }

    // Unordered-iteration site (pass 4), in the reported tree.
    UnorderedSite usite;
    std::vector<SinkEvent> usinks;
    std::set<const VarDecl*> ulocals;
    bool opened = false;
    if (const auto* rf = llvm::dyn_cast<CXXForRangeStmt>(s)) {
      if (UnderRestrict(file) && IsUnorderedRange(rf, &usite)) {
        usite.pos = {file, line};
        usite.function = ctx.fn_name;
        std::string cls;
        if (HasMarker(file, line, "det:", {"sorted", "order-insensitive"},
                      &cls)) {
          usite.marker = cls == "sorted"
                             ? UnorderedSite::Marker::kSorted
                             : UnorderedSite::Marker::kOrderInsensitive;
        }
        ctx.usites.push_back(&usite);
        ctx.usinks.push_back(&usinks);
        ctx.ulocals.push_back(&ulocals);
        opened = true;
      }
    }

    WalkChildren(s, ctx);

    if (opened) {
      ctx.usites.pop_back();
      ctx.usinks.pop_back();
      ctx.ulocals.pop_back();
      std::string key = usite.pos.file + ":" + std::to_string(usite.pos.line);
      auto [it, fresh] = state_.unordered_sites.emplace(key, usite);
      if (fresh) {
        // sink_sorted_after is resolved once the whole function is walked.
        pending_sites_.emplace_back(&it->second, std::move(usinks));
      }
    }

    if (is_top) {
      std::string key =
          local.pos.file + ":" + std::to_string(local.pos.line);
      auto [it, fresh] = state_.loop_nests.emplace(key, local);
      if (!fresh) {
        it->second.has_poll |= local.has_poll;
        it->second.callees.insert(local.callees.begin(), local.callees.end());
      }
      ctx.nest = nullptr;
    }
  }

  /// Why this loop's trip count scales with data ("" if it does not).
  std::string DataScaledTrigger(const Stmt* s, WalkCtx& ctx) {
    if (const auto* rf = llvm::dyn_cast<CXXForRangeStmt>(s)) {
      const Expr* range = rf->getRangeInit();
      if (range == nullptr) return "";
      llvm::StringRef rec = RecordNameOf(range);
      if (IsUnorderedContainerName(rec))
        return "iterates a " + rec.str() + " (TupleSet/ReachMap class)";
      if (ExprCallsAnyOf(range, {"DistinctSet"}))
        return "iterates a Column::DistinctSet() extent";
      if (ExprCallsAnyOf(range, {"Lookup", "Lookup1", "LookupBatch"}))
        return "iterates an index posting-list extent";
      return "";
    }
    if (const auto* fs = llvm::dyn_cast<ForStmt>(s)) {
      const auto* ds = llvm::dyn_cast_or_null<DeclStmt>(fs->getInit());
      if (ds == nullptr) return "";
      for (const Decl* d : ds->decls()) {
        const auto* vd = llvm::dyn_cast<VarDecl>(d);
        if (vd == nullptr) continue;
        std::string spelled = vd->getType().getAsString();
        if (spelled == "RowId" || spelled == "fastqre::RowId")
          return "RowId-indexed row scan";
      }
    }
    return "";
  }

  bool ExprCallsAnyOf(const Expr* e, std::initializer_list<const char*> names) {
    if (e == nullptr) return false;
    if (const auto* call = llvm::dyn_cast<CallExpr>(e)) {
      std::string spelled = CallSpelling(call);
      for (const char* n : names)
        if (spelled == n) return true;
    }
    for (const Stmt* c : e->children()) {
      const auto* ce = llvm::dyn_cast_or_null<Expr>(c);
      if (ce != nullptr && ExprCallsAnyOf(ce, names)) return true;
    }
    return false;
  }

  bool IsUnorderedRange(const CXXForRangeStmt* rf, UnorderedSite* /*site*/) {
    const Expr* range = rf->getRangeInit();
    if (range == nullptr) return false;
    if (IsUnorderedContainerName(RecordNameOf(range))) return true;
    return ExprCallsAnyOf(range, {"DistinctSet"});
  }

  void HandleCall(const CallExpr* call, WalkCtx& ctx) {
    std::string spelled = CallSpelling(call);

    if (InArray(spelled, kPollNames)) NotePoll(ctx);

    // RunMorsels(pool, workers, n, fn): loops inside `fn` are bounded by
    // the morsel partitioning, which polls between morsels.
    if (spelled == "RunMorsels") {
      for (unsigned i = 0; i < call->getNumArgs(); ++i) {
        const Expr* arg = call->getArg(i)->IgnoreImplicit();
        if (const auto* mt = llvm::dyn_cast<MaterializeTemporaryExpr>(arg))
          arg = mt->getSubExpr()->IgnoreImplicit();
        if (const auto* ce = llvm::dyn_cast<CXXConstructExpr>(arg);
            ce != nullptr && ce->getNumArgs() == 1)
          arg = ce->getArg(0)->IgnoreImplicit();
        if (const auto* lam = llvm::dyn_cast<LambdaExpr>(arg)) {
          bool saved = ctx.in_morsel;
          ctx.in_morsel = true;
          WalkStmt(lam->getBody(), ctx);
          ctx.in_morsel = saved;
        } else {
          WalkStmt(arg, ctx);
        }
      }
      return;
    }

    const FunctionDecl* callee = call->getDirectCallee();
    const auto* member = llvm::dyn_cast<CXXMemberCallExpr>(call);

    // Manual Lock()/Unlock() and thread-safety ACQUIRE/RELEASE attributes.
    if (member != nullptr && callee != nullptr) {
      const Expr* obj = member->getImplicitObjectArgument();
      llvm::StringRef mname = callee->getName();
      llvm::StringRef oname = RecordNameOf(obj);
      if ((mname == "Lock" || mname == "LockShared" || mname == "lock" ||
           mname == "lock_shared") &&
          (oname == "Mutex" || oname == "SharedMutex" ||
           callee->hasAttr<AcquireCapabilityAttr>())) {
        Acquire(LockId(obj, ctx), call->getBeginLoc(), ctx, ctx.held.size());
        WalkChildren(call, ctx);
        return;
      }
      if ((mname == "Unlock" || mname == "UnlockShared" || mname == "unlock" ||
           mname == "unlock_shared") &&
          (oname == "Mutex" || oname == "SharedMutex" ||
           callee->hasAttr<ReleaseCapabilityAttr>())) {
        Release(LockId(obj, ctx), ctx);
        WalkChildren(call, ctx);
        return;
      }
      if (mname == "sort") {
        // container.sort() counts like std::sort(container...).
        RecordSort(obj, call->getBeginLoc(), ctx);
      }
    }

    if (callee != nullptr && callee->getName() == "sort" &&
        call->getNumArgs() >= 1) {
      // std::sort(v.begin(), ...): resolve the sorted object from arg 0.
      const Expr* a0 = call->getArg(0)->IgnoreParenImpCasts();
      if (const auto* mc = llvm::dyn_cast<CXXMemberCallExpr>(a0))
        RecordSort(mc->getImplicitObjectArgument(), call->getBeginLoc(), ctx);
      else
        RecordSort(a0, call->getBeginLoc(), ctx);
    }

    // Call-graph facts.
    if (callee != nullptr) {
      std::string qname = callee->getQualifiedNameAsString();
      ctx.facts->callees.insert(qname);
      if (ctx.nest != nullptr) ctx.nest->callees.insert(qname);
      if (!ctx.held.empty()) {
        CallUnderLock cul;
        for (const auto& h : ctx.held) cul.held.push_back(h.first);
        cul.callee = qname;
        cul.pos = {FileOf(call->getBeginLoc()), LineOf(call->getBeginLoc())};
        cul.function = ctx.fn_name;
        state_.calls_under_lock.push_back(std::move(cul));
      }
    }

    // Pass-4 body-effect classification.
    if (!ctx.usites.empty()) ClassifyCallEffect(call, callee, spelled, ctx);

    WalkChildren(call, ctx);
  }

  void RecordSort(const Expr* target, SourceLocation loc, WalkCtx& ctx) {
    const ValueDecl* decl = SinkDeclOf(target);
    if (decl != nullptr) ctx.sorts.emplace_back(decl, LineOf(loc));
  }

  void ClassifyCallEffect(const CallExpr* call, const FunctionDecl* callee,
                          const std::string& spelled, WalkCtx& ctx) {
    // Reading a stop predicate is order-insensitive by construction.
    if (InArray(spelled, kPollNames)) return;

    const auto* member = llvm::dyn_cast<CXXMemberCallExpr>(call);
    const auto* opcall = llvm::dyn_cast<CXXOperatorCallExpr>(call);

    // Compound append through an overloaded operator (std::string += x).
    if (opcall != nullptr && opcall->getOperator() == OO_PlusEqual &&
        opcall->getNumArgs() >= 1 &&
        RecordNameOf(opcall->getArg(0)) == "basic_string") {
      NoteOrderedSink(opcall->getArg(0), "appends to a string (+=)", ctx);
      return;
    }

    // Stream insertion: operator<< with an ostream-like left operand.
    if (opcall != nullptr && opcall->getOperator() == OO_LessLess &&
        opcall->getNumArgs() >= 1) {
      llvm::StringRef lhs = RecordNameOf(opcall->getArg(0));
      if (lhs.contains("ostream") || lhs.contains("ostringstream")) {
        NoteOrderedSink(nullptr, "streams values via operator<<", ctx);
        return;
      }
    }

    if (member != nullptr) {
      const Expr* obj = member->getImplicitObjectArgument();
      llvm::StringRef rec = RecordNameOf(obj);
      if (spelled == "push_back" || spelled == "emplace_back" ||
          spelled == "append" || spelled == "AddRow") {
        NoteOrderedSink(obj, "appends to an ordered container (" +
                                 spelled + ")", ctx);
        return;
      }
      if (spelled == "insert" || spelled == "emplace") {
        const bool assoc = IsUnorderedContainerName(rec) || rec == "set" ||
                           rec == "map" || rec == "multiset" ||
                           rec == "multimap";
        if (assoc) return;  // order-insensitive final contents
        NoteOrderedSink(obj, "positional insert into " + rec.str(), ctx);
        return;
      }
      static const char* const kSafeMethods[] = {
          "count",    "find",  "contains", "at",    "size", "empty",
          "reserve",  "begin", "end",      "cbegin", "cend", "clear",
          "Lookup",   "Lookup1", "LookupBatch", "Test", "MayContain"};
      for (const char* m : kSafeMethods)
        if (spelled == m) return;
      if (rec == "priority_queue" && (spelled == "push" || spelled == "pop"))
        return;
      NoteUnknownOp(ctx);
      return;
    }

    static const char* const kSafeFree[] = {"min", "max", "swap", "move",
                                            "get", "make_pair", "tie"};
    for (const char* m : kSafeFree)
      if (spelled == m) return;
    (void)callee;
    NoteUnknownOp(ctx);
  }

  void HandleBinary(const BinaryOperator* bin, WalkCtx& ctx) {
    // (The masked-counter poll idiom is recognized at the kInterruptPollMask
    // DeclRef leaf, so no special casing of `&` here.)
    if (!ctx.usites.empty() && bin->isAssignmentOp()) {
      const Expr* lhs = bin->getLHS()->IgnoreParenImpCasts();
      if (bin->getOpcode() == BO_AddAssign &&
          RecordNameOf(lhs) == "basic_string") {
        NoteOrderedSink(lhs, "appends to a string (+=)", ctx);
        WalkChildren(bin, ctx);
        return;
      }
      const bool commutative = bin->getOpcode() == BO_AddAssign ||
                               bin->getOpcode() == BO_OrAssign ||
                               bin->getOpcode() == BO_AndAssign ||
                               bin->getOpcode() == BO_XorAssign;
      const bool arithmetic =
          !lhs->getType().isNull() &&
          (lhs->getType()->isIntegerType() ||
           lhs->getType()->isFloatingType() || lhs->getType()->isBooleanType());
      if (commutative && arithmetic) {
        // Commutative accumulation: order-insensitive.
      } else if (const auto* dr = llvm::dyn_cast<DeclRefExpr>(lhs)) {
        const auto* vd = llvm::dyn_cast<VarDecl>(dr->getDecl());
        bool local_to_loop = false;
        if (vd != nullptr && !ctx.ulocals.empty() &&
            ctx.ulocals.back()->count(vd) > 0) {
          local_to_loop = true;
        }
        if (!local_to_loop) NoteUnknownOp(ctx);
      } else {
        NoteUnknownOp(ctx);
      }
    }
    WalkChildren(bin, ctx);
  }

  AnalyzerState& state_;
  ASTContext& ctx_;
  SourceManager& sm_;
  std::map<std::string, std::string> path_cache_;
  std::map<std::string, std::vector<std::string>> file_lines_;
  // Unordered sites awaiting sorted-after resolution (per function).
  std::vector<std::pair<UnorderedSite*, std::vector<SinkEvent>>> pending_sites_;
};

class CollectConsumer : public ASTConsumer {
 public:
  explicit CollectConsumer(AnalyzerState& state) : state_(state) {}
  void HandleTranslationUnit(ASTContext& ctx) override {
    Collector collector(state_, ctx);
    collector.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  AnalyzerState& state_;
};

class CollectAction : public ASTFrontendAction {
 public:
  explicit CollectAction(AnalyzerState& state) : state_(state) {}
  std::unique_ptr<ASTConsumer> CreateASTConsumer(
      CompilerInstance& /*ci*/, llvm::StringRef /*file*/) override {
    return std::make_unique<CollectConsumer>(state_);
  }

 private:
  AnalyzerState& state_;
};

class CollectFactory : public tooling::FrontendActionFactory {
 public:
  explicit CollectFactory(AnalyzerState& state) : state_(state) {}
  std::unique_ptr<FrontendAction> create() override {
    return std::make_unique<CollectAction>(state_);
  }

 private:
  AnalyzerState& state_;
};

}  // namespace

std::unique_ptr<clang::tooling::FrontendActionFactory> MakeCollectorFactory(
    AnalyzerState& state) {
  return std::make_unique<CollectFactory>(state);
}

}  // namespace qre_analyzer
