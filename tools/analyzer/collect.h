// Per-TU fact collection for qre-analyzer (DESIGN.md §14).
#pragma once

#include <memory>

#include "clang/Tooling/Tooling.h"

#include "analyzer_state.h"

namespace qre_analyzer {

/// Returns a FrontendActionFactory whose actions append facts and findings
/// to `state`. ClangTool runs TUs sequentially, so no locking is needed.
std::unique_ptr<clang::tooling::FrontendActionFactory> MakeCollectorFactory(
    AnalyzerState& state);

}  // namespace qre_analyzer
