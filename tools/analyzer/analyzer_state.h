// qre-analyzer shared state and data model (DESIGN.md §14).
//
// The tool runs one Clang frontend per translation unit listed on the
// command line (compile flags from the exported compile_commands.json) and
// accumulates per-TU facts into one AnalyzerState. All whole-program
// reasoning — the mutex-acquisition graph, the reaches-a-poll fixpoint over
// the call graph, find-site deduplication across shared headers — happens in
// Finalize() (report.cc) after every TU has been visited.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace qre_analyzer {

// Pass identifiers, used in findings, suppressions, and SARIF rule ids.
inline const char kPassLockOrder[] = "lock-order";
inline const char kPassPollCoverage[] = "poll-coverage";
inline const char kPassGovernedAlloc[] = "governed-alloc";
inline const char kPassUnorderedEscape[] = "unordered-escape";
inline const char kPassSuppression[] = "suppression";

/// One reported problem. `file` is root-relative, `line` 1-based.
struct Finding {
  std::string file;
  unsigned line = 0;
  std::string pass;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (pass != o.pass) return pass < o.pass;
    return message < o.message;
  }
};

/// A source position for witness printing.
struct SourcePos {
  std::string file;
  unsigned line = 0;
};

/// One observed "lock A held while acquiring lock B" event. Lock identities
/// are canonicalized per *field* (Class::member) or per *variable*, not per
/// object: two IndexSlot instances share one node. That granularity is what
/// classic lock-order checkers use; it can merge distinct instances, so
/// self-edges (A -> A) are not reported (hand-over-hand locking of two
/// objects of one class is legitimate).
struct LockEdge {
  std::string from;
  std::string to;
  SourcePos acquire_pos;   // where `to` was acquired
  std::string function;    // enclosing function
  unsigned held_line = 0;  // where `from` was acquired

  bool operator<(const LockEdge& o) const {
    if (from != o.from) return from < o.from;
    return to < o.to;
  }
};

/// A call made while at least one lock was held; expanded against the
/// callee's transitive acquisition set in Finalize() so that
/// "hold A, call f, f locks B" contributes the edge A -> B.
struct CallUnderLock {
  std::vector<std::string> held;
  std::string callee;
  SourcePos pos;
  std::string function;
};

/// One top-level loop nest (a loop not syntactically inside another loop of
/// the same function; lambda bodies count as their enclosing function).
/// Pass 2 reasons at nest granularity: the repo's poll idiom is a masked
/// check on a monotone work counter somewhere in the nest, not one poll per
/// syntactic loop level.
struct LoopNest {
  SourcePos pos;             // the nest's outermost loop
  std::string function;
  bool has_poll = false;     // a poll statement occurs inside the nest
  bool morsel_bounded = false;
  // First data-scaled loop inside the nest, if any (what gets reported).
  bool data_scaled = false;
  SourcePos data_pos;
  std::string trigger;       // human-readable reason it is data-scaled
  std::set<std::string> callees;  // qualified names called inside the nest

  bool operator<(const LoopNest& o) const {
    if (pos.file != o.pos.file) return pos.file < o.pos.file;
    return pos.line < o.pos.line;
  }
};

/// Per-function whole-program facts, merged across TUs by qualified name.
struct FunctionFacts {
  bool polls_directly = false;   // contains a poll statement anywhere
  bool reaches_poll = false;     // fixpoint result
  std::set<std::string> callees;
  // Locks acquired anywhere inside the function body (scoped lockers or
  // manual Lock()), used for the interprocedural lock-order expansion.
  std::set<std::string> acquires;
};

/// One unordered-container iteration site (pass 4).
struct UnorderedSite {
  SourcePos pos;
  std::string function;
  // Determinism classification comment found within 3 lines above.
  enum class Marker { kNone, kSorted, kOrderInsensitive } marker = Marker::kNone;
  // Body analysis verdict.
  bool ordered_sink = false;      // appends/streams into an ordered sink
  bool sink_sorted_after = false; // every ordered sink is std::sort-ed later
  bool sink_all_local = true;     // every sink resolved to a function-local
  bool only_safe_ops = true;      // body provably order-insensitive
  std::string sink_desc;          // first ordered sink, for the message
};

/// One by-value data-scaled buffer declaration (pass 3).
struct GovernedSite {
  SourcePos pos;
  std::string type_desc;   // which governed type matched, for the message
  bool has_marker = false; // // gov: charged|bounded — <reason> present
};

struct Options {
  std::string root;                       // absolute repo root
  std::vector<std::string> restrict_dirs; // report findings only under these
  std::vector<std::string> poll_dirs;     // pass-2 loops checked only here
  std::string sarif_path;
};

/// Global accumulator shared by every TU's visitor.
struct AnalyzerState {
  Options opts;

  std::map<std::string, FunctionFacts> functions;
  std::set<LockEdge> lock_edges;
  std::vector<CallUnderLock> calls_under_lock;
  // Keyed by file:line of the nest's outermost loop for cross-TU merging.
  std::map<std::string, LoopNest> loop_nests;
  // Keyed by file:line for cross-TU dedup of header-resident sites.
  std::map<std::string, UnorderedSite> unordered_sites;
  std::map<std::string, GovernedSite> governed_sites;
  std::set<Finding> findings;  // direct findings (suppression hygiene)

  // Suppressions: "<file>:<line>" -> pass ids suppressed at that line.
  std::map<std::string, std::set<std::string>> suppressions;
  std::set<std::string> scanned_files;  // comment-scanned once per file

  void AddFinding(const std::string& file, unsigned line,
                  const std::string& pass, const std::string& message) {
    findings.insert(Finding{file, line, pass, message});
  }

  bool IsSuppressed(const std::string& file, unsigned line,
                    const std::string& pass) const {
    // lock-order findings are whole-program properties; a cycle cannot be
    // waved through at one of its edges.
    if (pass == kPassLockOrder) return false;
    for (unsigned l : {line, line == 0 ? 0u : line - 1}) {
      auto it = suppressions.find(file + ":" + std::to_string(l));
      if (it != suppressions.end() && it->second.count(pass) > 0) return true;
    }
    return false;
  }
};

inline bool StartsWithAny(const std::string& path,
                          const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (p.empty() || p == ".") return true;
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace qre_analyzer
