// fastqre_serverd — the QRE service daemon (DESIGN.md §15).
//
//   fastqre_serverd --db NAME=DIR [--db NAME=DIR ...] [--port P]
//                   [--workers N] [--max-jobs N] [--pool-mb MB]
//                   [--default-slice-mb MB] [--max-slice-mb MB]
//                   [--rate R] [--burst B] [--max-threads N]
//                   [--default-budget S] [--max-budget S]
//                   [--max-connections N] [--io-deadline-ms MS]
//                   [--idle-timeout-ms MS] [--fault-spec SPEC]
//                   [--port-file PATH]
//
// Attaches each NAME=DIR database (a SaveDatabase directory), starts the
// TCP server on --port (0 = ephemeral; the chosen port is printed to
// stdout as "listening on PORT" and, with --port-file, written there too —
// that is how the CI integration job finds it), then serves until SIGINT /
// SIGTERM, draining jobs before exit.
//
// Wire hardening knobs (DESIGN.md §15.5): --max-connections caps live
// connections (excess get a typed `overloaded` refusal; 0 = uncapped),
// --io-deadline-ms bounds how long a write may stall on a non-draining
// peer, --idle-timeout-ms bounds inbound silence (0 disables either).
// --fault-spec enables the deterministic wire chaos sites (wire-accept /
// wire-read / wire-write; grammar in common/fault_injection.h) — the chaos
// integration job runs the daemon under e.g.
// "wire-write=reset@4,wire-read=garbage@6".
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "server/job_manager.h"
#include "server/server.h"
#include "storage/catalog_io.h"

using namespace fastqre;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fastqre_serverd --db NAME=DIR [--db NAME=DIR ...] [--port P]\n"
      "                  [--workers N] [--max-jobs N] [--pool-mb MB]\n"
      "                  [--default-slice-mb MB] [--max-slice-mb MB]\n"
      "                  [--rate R] [--burst B] [--max-threads N]\n"
      "                  [--default-budget S] [--max-budget S]\n"
      "                  [--max-connections N] [--io-deadline-ms MS]\n"
      "                  [--idle-timeout-ms MS] [--fault-spec SPEC]\n"
      "                  [--port-file PATH]\n");
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// Signal-flag handshake: the handler only sets a flag the main loop polls
// (fprintf / condition variables are not async-signal-safe).
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> db_specs;
  JobManagerConfig config;
  ServerConfig server_config;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage();
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "error: --db expects NAME=DIR, got \"%s\"\n",
                     spec.c_str());
        return 2;
      }
      db_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--port") {
      const char* v = next();
      int64_t port = 0;
      if (v == nullptr || !ParseInt64(v, &port) || port < 0 || port > 65535) {
        return Usage();
      }
      server_config.port = static_cast<uint16_t>(port);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return Usage();
      port_file = v;
    } else {
      int64_t n = 0;
      double d = 0;
      const char* v = next();
      if (v == nullptr) return Usage();
      if (arg == "--workers" && ParseInt64(v, &n) && n > 0) {
        config.worker_threads = static_cast<int>(n);
      } else if (arg == "--max-jobs" && ParseInt64(v, &n) && n > 0) {
        config.admission.max_in_flight_jobs = static_cast<int>(n);
      } else if (arg == "--pool-mb" && ParseInt64(v, &n) && n >= 0) {
        config.admission.global_budget_bytes =
            static_cast<uint64_t>(n) << 20;
      } else if (arg == "--default-slice-mb" && ParseInt64(v, &n) && n > 0) {
        config.admission.default_slice_bytes =
            static_cast<uint64_t>(n) << 20;
      } else if (arg == "--max-slice-mb" && ParseInt64(v, &n) && n > 0) {
        config.admission.max_slice_bytes = static_cast<uint64_t>(n) << 20;
      } else if (arg == "--rate" && ParseDouble(v, &d) && d >= 0) {
        config.admission.tenant_rate_per_second = d;
      } else if (arg == "--burst" && ParseDouble(v, &d) && d >= 1) {
        config.admission.tenant_burst = d;
      } else if (arg == "--max-threads" && ParseInt64(v, &n) && n > 0) {
        config.max_validation_threads = static_cast<int>(n);
      } else if (arg == "--default-budget" && ParseDouble(v, &d) && d >= 0) {
        config.default_time_budget_seconds = d;
      } else if (arg == "--max-budget" && ParseDouble(v, &d) && d >= 0) {
        config.max_time_budget_seconds = d;
      } else if (arg == "--max-connections" && ParseInt64(v, &n) && n >= 0) {
        server_config.max_connections = static_cast<int>(n);
      } else if (arg == "--io-deadline-ms" && ParseInt64(v, &n) && n >= 0) {
        server_config.io_deadline_ms = static_cast<int>(n);
      } else if (arg == "--idle-timeout-ms" && ParseInt64(v, &n) && n >= 0) {
        server_config.idle_timeout_ms = static_cast<int>(n);
      } else if (arg == "--fault-spec") {
        server_config.fault_spec = v;
      } else {
        std::fprintf(stderr, "error: bad flag/value \"%s\"\n", arg.c_str());
        return 2;
      }
    }
  }
  if (db_specs.empty()) return Usage();

  // Load every database first: the manager holds raw pointers, so the
  // owning vector must outlive it (declared before, destroyed after).
  std::vector<Database> databases;
  databases.reserve(db_specs.size());
  for (const auto& [name, dir] : db_specs) {
    Result<Database> db = LoadDatabase(dir);
    if (!db.ok()) return Fail(db.status());
    databases.push_back(std::move(*db));
    std::fprintf(stderr, "attached \"%s\" from %s (%zu tables)\n",
                 name.c_str(), dir.c_str(), databases.back().num_tables());
  }

  JobManager manager(config);
  for (size_t i = 0; i < db_specs.size(); ++i) {
    const Status st = manager.AttachDatabase(db_specs[i].first, &databases[i]);
    if (!st.ok()) return Fail(st);
  }

  Server server(&manager, server_config);
  if (const Status st = server.Start(); !st.ok()) return Fail(st);
  std::printf("listening on %u\n", server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write port file " + port_file));
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    timespec ts{0, 100 * 1000 * 1000};  // 100ms poll of the stop flag
    nanosleep(&ts, nullptr);
  }

  std::fprintf(stderr, "shutting down\n");
  server.Stop();        // no new connections / frames
  manager.Shutdown();   // cancel + drain jobs
  return 0;
}
