// fastqre_client — command-line client for fastqre_serverd.
//
//   fastqre_client --port P submit --db NAME --rout FILE.csv [--tenant T]
//                  [--superset] [--all K] [--budget S] [--threads N]
//                  [--alpha A] [--slice-mb MB] [--json]
//       Submit a job and stream its answers until done. Exit codes mirror
//       `fastqre reverse`: 0 = found, 1 = exhausted without an answer,
//       2 = usage, 3 = stopped early (deadline / cancel / memory; proved
//       answers, if any, were still streamed), 4 = typed server rejection.
//   fastqre_client --port P status --job ID [--json]
//   fastqre_client --port P cancel --job ID [--json]
//   fastqre_client --port P list-dbs [--json]
//
// --json prints each raw response payload as one JSON line instead of the
// human rendering (what the CI integration job asserts on). The server is
// always 127.0.0.1: the daemon binds loopback only.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "server/protocol.h"

using namespace fastqre;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fastqre_client --port P submit --db NAME --rout FILE.csv\n"
      "                 [--tenant T] [--superset] [--all K] [--budget S]\n"
      "                 [--threads N] [--alpha A] [--slice-mb MB] [--json]\n"
      "  fastqre_client --port P status --job ID [--json]\n"
      "  fastqre_client --port P cancel --job ID [--json]\n"
      "  fastqre_client --port P list-dbs [--json]\n");
  return 2;
}

int FailErrno(const char* what) {
  std::fprintf(stderr, "error: %s: %s\n", what, std::strerror(errno));
  return 4;
}

int Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t rc =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(rc);
  }
  return true;
}

/// Blocks until one whole response frame arrives. Returns false on EOF or
/// a framing error.
bool ReadFrame(int fd, FrameReader* reader, std::string* payload) {
  char buf[4096];
  for (;;) {
    Result<bool> next = reader->Next(payload);
    if (!next.ok()) {
      std::fprintf(stderr, "error: %s\n", next.status().ToString().c_str());
      return false;
    }
    if (*next) return true;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader->Feed(buf, static_cast<size_t>(n));
  }
}

void PrintAnswer(const WireAnswer& a) {
  if (a.found) {
    std::printf("answer[%d]: %s\n", a.index, a.sql.c_str());
  } else {
    std::printf("answer[%d]: <none> (%s)\n", a.index,
                a.failure_reason.c_str());
  }
}

int RunRequest(uint16_t port, const Request& req, bool json) {
  const int fd = Connect(port);
  if (fd < 0) return FailErrno("connect");
  if (!SendAll(fd, EncodeFrame(SerializeRequest(req)))) {
    ::close(fd);
    return FailErrno("send");
  }

  FrameReader reader;
  std::string payload;
  int rc = 4;
  bool found_any = false;
  while (ReadFrame(fd, &reader, &payload)) {
    if (json) {
      std::printf("%s\n", payload.c_str());
      std::fflush(stdout);
    }
    Result<Response> parsed = ParseResponse(payload);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      rc = 4;
      break;
    }
    const Response& resp = *parsed;
    if (resp.kind == Response::Kind::kError) {
      if (!json) {
        std::fprintf(stderr, "error: %s: %s\n",
                     WireErrorToString(resp.error), resp.message.c_str());
      }
      rc = 4;
      break;
    }
    switch (resp.kind) {
      case Response::Kind::kAccepted:
        if (!json) std::printf("job %llu accepted\n",
                               static_cast<unsigned long long>(resp.job_id));
        continue;  // keep streaming
      case Response::Kind::kAnswer:
        if (resp.answer.found) found_any = true;
        if (!json) PrintAnswer(resp.answer);
        continue;  // keep streaming
      case Response::Kind::kDone:
        if (!json) {
          std::printf("done: state=%s answers=%llu%s%s\n",
                      JobStateToString(resp.state),
                      static_cast<unsigned long long>(resp.answers),
                      resp.failure_reason.empty() ? "" : " reason=",
                      resp.failure_reason.c_str());
        }
        // Same contract as `fastqre reverse`: an early stop is exit 3
        // whether or not answers were proved first.
        rc = !resp.failure_reason.empty() ? 3 : (found_any ? 0 : 1);
        break;
      case Response::Kind::kStatus:
        if (!json) {
          const WireJobStatus& s = resp.status;
          std::printf(
              "job %llu: state=%s tenant=%s db=%s answers=%llu found=%s "
              "slice=%llu peak=%llu run=%.3fs%s%s\n",
              static_cast<unsigned long long>(s.job_id),
              JobStateToString(s.state), s.tenant.c_str(), s.db.c_str(),
              static_cast<unsigned long long>(s.answers_streamed),
              s.found_any ? "yes" : "no",
              static_cast<unsigned long long>(s.slice_bytes),
              static_cast<unsigned long long>(s.peak_tracked_bytes),
              s.run_seconds,
              s.failure_reason.empty() ? "" : " reason=",
              s.failure_reason.c_str());
        }
        rc = 0;
        break;
      case Response::Kind::kDbList:
        if (!json) {
          for (const WireDbInfo& db : resp.dbs) {
            std::printf("%s: %llu tables, %llu rows\n", db.name.c_str(),
                        static_cast<unsigned long long>(db.tables),
                        static_cast<unsigned long long>(db.rows));
          }
        }
        rc = 0;
        break;
      default:
        rc = 4;
        break;
    }
    break;  // single-response verbs (and done) end the exchange
  }
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool json = false;
  std::string verb;
  Request req;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int64_t n = 0;
    double d = 0;
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1 || n > 65535) {
        return Usage();
      }
      port = static_cast<uint16_t>(n);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "submit" || arg == "status" || arg == "cancel" ||
               arg == "list-dbs") {
      verb = arg;
    } else if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage();
      req.db = v;
    } else if (arg == "--rout") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::ifstream in(v, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", v);
        return 2;
      }
      std::ostringstream csv;
      csv << in.rdbuf();
      req.rout_csv = csv.str();
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Usage();
      req.tenant = v;
    } else if (arg == "--superset") {
      req.options.superset = true;
    } else if (arg == "--all") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.limit = static_cast<int>(n);
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d) || d < 0) return Usage();
      req.options.time_budget_seconds = d;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.validation_threads = static_cast<int>(n);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d)) return Usage();
      req.options.alpha = d;
    } else if (arg == "--slice-mb") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.memory_budget_bytes = static_cast<uint64_t>(n) << 20;
    } else if (arg == "--job") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.job_id = static_cast<uint64_t>(n);
    } else {
      std::fprintf(stderr, "error: unknown flag \"%s\"\n", arg.c_str());
      return 2;
    }
  }

  if (port == 0 || verb.empty()) return Usage();
  if (verb == "submit") {
    req.verb = Verb::kSubmit;
    if (req.db.empty() || req.rout_csv.empty()) return Usage();
  } else if (verb == "status") {
    req.verb = Verb::kStatus;
    if (req.job_id == 0) return Usage();
  } else if (verb == "cancel") {
    req.verb = Verb::kCancel;
    if (req.job_id == 0) return Usage();
  } else {
    req.verb = Verb::kListDbs;
  }
  return RunRequest(port, req, json);
}
