// fastqre_client — command-line client for fastqre_serverd.
//
//   fastqre_client --port P submit --db NAME --rout FILE.csv [--tenant T]
//                  [--superset] [--all K] [--budget S] [--threads N]
//                  [--alpha A] [--slice-mb MB] [--idempotency-key K]
//                  [--json]
//       Submit a job and stream its answers until done. Exit codes mirror
//       `fastqre reverse`: 0 = found, 1 = exhausted without an answer,
//       2 = usage, 3 = stopped early (deadline / cancel / memory; proved
//       answers, if any, were still streamed), 4 = typed server rejection
//       or an unrecoverable transport / stream-integrity failure.
//   fastqre_client --port P attach --job ID [--cursor N] [--json]
//       Re-stream a live-or-finished job from sequence N (default 0); same
//       exit codes as submit.
//   fastqre_client --port P status --job ID [--json]
//   fastqre_client --port P cancel --job ID [--json]
//   fastqre_client --port P list-dbs [--json]
//   fastqre_client --port P ping [--json]
//
// Every mode accepts [--retries N] [--backoff-ms MS] (defaults 0 / 100):
// on a lost connection or a typed retryable error the client sleeps an
// exponentially growing backoff and reconnects. A streaming client that
// already knows its job id resumes with `attach` from the first sequence
// number it has not acknowledged — resubmitting only when the submit
// itself never got through, under the same idempotency key so the server
// never admits a duplicate job. The resumed stream is verified gap-free:
// an out-of-order sequence or a replayed frame whose bytes differ from the
// original is a hard integrity failure (exit 4), and replayed duplicates
// are suppressed from the output (so --json consumers see each answer
// exactly once, however many reconnects it took).
//
// --json prints each raw response payload as one JSON line instead of the
// human rendering (what the CI integration job asserts on). The server is
// always 127.0.0.1: the daemon binds loopback only.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "server/protocol.h"

using namespace fastqre;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fastqre_client --port P submit --db NAME --rout FILE.csv\n"
      "                 [--tenant T] [--superset] [--all K] [--budget S]\n"
      "                 [--threads N] [--alpha A] [--slice-mb MB]\n"
      "                 [--idempotency-key K] [--json]\n"
      "  fastqre_client --port P attach --job ID [--cursor N] [--json]\n"
      "  fastqre_client --port P status --job ID [--json]\n"
      "  fastqre_client --port P cancel --job ID [--json]\n"
      "  fastqre_client --port P list-dbs [--json]\n"
      "  fastqre_client --port P ping [--json]\n"
      "  any mode:      [--retries N] [--backoff-ms MS]\n");
  return 2;
}

int FailErrno(const char* what) {
  std::fprintf(stderr, "error: %s: %s\n", what, std::strerror(errno));
  return 4;
}

void SleepMs(int ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  nanosleep(&ts, nullptr);
}

int Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t rc =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(rc);
  }
  return true;
}

/// Blocks until one whole response frame arrives. Returns false on EOF or
/// a framing error (garbage on the wire) — both are transport failures the
/// retry loop may recover from.
bool ReadFrame(int fd, FrameReader* reader, std::string* payload) {
  char buf[4096];
  for (;;) {
    Result<bool> next = reader->Next(payload);
    if (!next.ok()) {
      std::fprintf(stderr, "error: %s\n", next.status().ToString().c_str());
      return false;
    }
    if (*next) return true;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader->Feed(buf, static_cast<size_t>(n));
  }
}

void PrintAnswer(const WireAnswer& a) {
  if (a.found) {
    std::printf("answer[%d]: %s\n", a.index, a.sql.c_str());
  } else {
    std::printf("answer[%d]: <none> (%s)\n", a.index,
                a.failure_reason.c_str());
  }
}

/// Progress of a resumable answer stream across connection attempts.
struct StreamState {
  uint64_t job_id = 0;    // learned from the first accepted frame
  bool announced = false; // accepted already printed once
  bool found_any = false;
  /// Raw payload bytes per acknowledged sequence number. A replayed frame
  /// (idempotent resubmit, or attach below our cursor) must match its
  /// original byte-for-byte — the stream is append-only and deterministic.
  std::vector<std::string> acked;

  uint64_t next_seq() const { return acked.size(); }
};

/// One connection attempt. Returns the final exit code; sets *retry when
/// the failure is recoverable (lost transport or a typed retryable error)
/// and the caller still has retries budgeted.
int RunAttempt(uint16_t port, const Request& req, bool json,
               StreamState* stream, bool* retry) {
  const int fd = Connect(port);
  if (fd < 0) {
    *retry = true;
    return FailErrno("connect");
  }
  if (!SendAll(fd, EncodeFrame(SerializeRequest(req)))) {
    ::close(fd);
    *retry = true;
    return FailErrno("send");
  }

  FrameReader reader;
  std::string payload;
  int rc = 4;
  bool saw_terminal = false;
  while (ReadFrame(fd, &reader, &payload)) {
    Result<Response> parsed = ParseResponse(payload);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      break;
    }
    const Response& resp = *parsed;

    if (resp.kind == Response::Kind::kError) {
      if (json) std::printf("%s\n", payload.c_str());
      std::fprintf(stderr, "error: %s: %s\n", WireErrorToString(resp.error),
                   resp.message.c_str());
      if (IsRetryableWireError(resp.error)) *retry = true;
      saw_terminal = !*retry;
      break;
    }

    if (resp.kind == Response::Kind::kAccepted && stream != nullptr) {
      stream->job_id = resp.job_id;
      if (!stream->announced) {
        stream->announced = true;
        if (json) {
          std::printf("%s\n", payload.c_str());
          std::fflush(stdout);
        } else {
          std::printf("job %llu accepted\n",
                      static_cast<unsigned long long>(resp.job_id));
        }
      }
      continue;  // keep streaming
    }

    if (resp.kind == Response::Kind::kAnswer && stream != nullptr) {
      if (resp.seq < stream->next_seq()) {
        // Replay overlap (attach below our cursor, or an idempotent
        // resubmit re-streaming from 0): verify, suppress, move on. An
        // empty slot is a pre-acknowledged frame from an earlier process
        // (explicit --cursor) — nothing to compare against.
        if (!stream->acked[resp.seq].empty() &&
            payload != stream->acked[resp.seq]) {
          std::fprintf(stderr,
                       "error: stream diverged at seq %llu: replayed frame "
                       "differs from the acknowledged one\n",
                       static_cast<unsigned long long>(resp.seq));
          ::close(fd);
          return 4;
        }
        continue;
      }
      if (resp.seq > stream->next_seq()) {
        std::fprintf(stderr,
                     "error: gap in answer stream: expected seq %llu, got "
                     "%llu\n",
                     static_cast<unsigned long long>(stream->next_seq()),
                     static_cast<unsigned long long>(resp.seq));
        ::close(fd);
        return 4;
      }
      stream->acked.push_back(payload);
      if (resp.answer.found) stream->found_any = true;
      if (json) {
        std::printf("%s\n", payload.c_str());
        std::fflush(stdout);
      } else {
        PrintAnswer(resp.answer);
      }
      continue;  // keep streaming
    }

    // Single-frame payloads (and `done`) print as-is in json mode.
    if (json) {
      std::printf("%s\n", payload.c_str());
      std::fflush(stdout);
    }
    switch (resp.kind) {
      case Response::Kind::kDone: {
        if (stream != nullptr && resp.answers != stream->next_seq()) {
          std::fprintf(
              stderr,
              "error: done claims %llu answers but %llu were streamed\n",
              static_cast<unsigned long long>(resp.answers),
              static_cast<unsigned long long>(stream->next_seq()));
          ::close(fd);
          return 4;
        }
        if (!json) {
          std::printf("done: state=%s answers=%llu%s%s\n",
                      JobStateToString(resp.state),
                      static_cast<unsigned long long>(resp.answers),
                      resp.failure_reason.empty() ? "" : " reason=",
                      resp.failure_reason.c_str());
        }
        // Same contract as `fastqre reverse`: an early stop is exit 3
        // whether or not answers were proved first.
        const bool found = stream != nullptr && stream->found_any;
        rc = !resp.failure_reason.empty() ? 3 : (found ? 0 : 1);
        saw_terminal = true;
        break;
      }
      case Response::Kind::kStatus:
        if (!json) {
          const WireJobStatus& s = resp.status;
          std::printf(
              "job %llu: state=%s tenant=%s db=%s answers=%llu found=%s "
              "slice=%llu peak=%llu run=%.3fs%s%s\n",
              static_cast<unsigned long long>(s.job_id),
              JobStateToString(s.state), s.tenant.c_str(), s.db.c_str(),
              static_cast<unsigned long long>(s.answers_streamed),
              s.found_any ? "yes" : "no",
              static_cast<unsigned long long>(s.slice_bytes),
              static_cast<unsigned long long>(s.peak_tracked_bytes),
              s.run_seconds,
              s.failure_reason.empty() ? "" : " reason=",
              s.failure_reason.c_str());
        }
        rc = 0;
        saw_terminal = true;
        break;
      case Response::Kind::kDbList:
        if (!json) {
          for (const WireDbInfo& db : resp.dbs) {
            std::printf("%s: %llu tables, %llu rows\n", db.name.c_str(),
                        static_cast<unsigned long long>(db.tables),
                        static_cast<unsigned long long>(db.rows));
          }
        }
        rc = 0;
        saw_terminal = true;
        break;
      case Response::Kind::kPong: {
        if (!json) {
          const WirePong& p = resp.pong;
          std::printf(
              "pong: uptime=%.1fs connections=%llu shed=%llu "
              "jobs queued=%llu running=%llu done=%llu cancelled=%llu "
              "failed=%llu\n",
              p.uptime_seconds,
              static_cast<unsigned long long>(p.active_connections),
              static_cast<unsigned long long>(p.shed_connections),
              static_cast<unsigned long long>(p.jobs_queued),
              static_cast<unsigned long long>(p.jobs_running),
              static_cast<unsigned long long>(p.jobs_done),
              static_cast<unsigned long long>(p.jobs_cancelled),
              static_cast<unsigned long long>(p.jobs_failed));
        }
        rc = 0;
        saw_terminal = true;
        break;
      }
      default:
        rc = 4;
        saw_terminal = true;
        break;
    }
    break;  // single-response verbs (and done) end the exchange
  }
  ::close(fd);
  // The stream died before its terminal frame: transport failure, let the
  // retry loop reconnect and resume.
  if (!saw_terminal && !*retry) *retry = true;
  if (saw_terminal) *retry = false;
  return rc;
}

int RunRequest(uint16_t port, Request req, bool json, int retries,
               int backoff_ms) {
  StreamState stream;
  const bool streaming =
      req.verb == Verb::kSubmit || req.verb == Verb::kAttach;
  if (req.verb == Verb::kAttach) {
    stream.job_id = req.job_id;
    // Resuming from --cursor N means sequences [0, N) are pre-acknowledged
    // (the caller has them from an earlier run); replay-verify is only
    // possible for frames this process saw, so mark them opaque.
    stream.acked.assign(req.cursor, std::string());
    stream.announced = true;  // no first-accepted banner on explicit attach
  }

  for (int attempt = 0;; ++attempt) {
    bool retry = false;
    const int rc = RunAttempt(port, req, json,
                              streaming ? &stream : nullptr, &retry);
    if (!retry) return rc;
    if (attempt >= retries) {
      if (retries > 0) {
        std::fprintf(stderr, "error: giving up after %d retries\n", retries);
      }
      return rc;
    }
    // Exponential backoff, deterministic (no jitter): reproducibility in
    // the chaos harness beats herd-avoidance on loopback.
    const int shift = attempt < 10 ? attempt : 10;
    const int delay = backoff_ms << shift;
    std::fprintf(stderr, "retrying in %d ms (attempt %d of %d)\n", delay,
                 attempt + 1, retries);
    SleepMs(delay);
    if (streaming && stream.job_id != 0) {
      // The job exists server-side: resume its stream instead of
      // resubmitting. (A submit that never got an accepted frame falls
      // through and is retried verbatim — safe under its idempotency key.)
      req.verb = Verb::kAttach;
      req.job_id = stream.job_id;
      req.cursor = stream.next_seq();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool json = false;
  int retries = 0;
  int backoff_ms = 100;
  std::string verb;
  Request req;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int64_t n = 0;
    double d = 0;
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1 || n > 65535) {
        return Usage();
      }
      port = static_cast<uint16_t>(n);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "submit" || arg == "status" || arg == "cancel" ||
               arg == "list-dbs" || arg == "attach" || arg == "ping") {
      verb = arg;
    } else if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage();
      req.db = v;
    } else if (arg == "--rout") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::ifstream in(v, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", v);
        return 2;
      }
      std::ostringstream csv;
      csv << in.rdbuf();
      req.rout_csv = csv.str();
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Usage();
      req.tenant = v;
    } else if (arg == "--idempotency-key") {
      const char* v = next();
      if (v == nullptr) return Usage();
      req.idempotency_key = v;
    } else if (arg == "--superset") {
      req.options.superset = true;
    } else if (arg == "--all") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.limit = static_cast<int>(n);
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d) || d < 0) return Usage();
      req.options.time_budget_seconds = d;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.validation_threads = static_cast<int>(n);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d)) return Usage();
      req.options.alpha = d;
    } else if (arg == "--slice-mb") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.options.memory_budget_bytes = static_cast<uint64_t>(n) << 20;
    } else if (arg == "--job") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      req.job_id = static_cast<uint64_t>(n);
    } else if (arg == "--cursor") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return Usage();
      req.cursor = static_cast<uint64_t>(n);
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 0) return Usage();
      retries = static_cast<int>(n);
    } else if (arg == "--backoff-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt64(v, &n) || n < 1) return Usage();
      backoff_ms = static_cast<int>(n);
    } else {
      std::fprintf(stderr, "error: unknown flag \"%s\"\n", arg.c_str());
      return 2;
    }
  }

  if (port == 0 || verb.empty()) return Usage();
  if (verb == "submit") {
    req.verb = Verb::kSubmit;
    if (req.db.empty() || req.rout_csv.empty()) return Usage();
  } else if (verb == "attach") {
    req.verb = Verb::kAttach;
    if (req.job_id == 0) return Usage();
  } else if (verb == "status") {
    req.verb = Verb::kStatus;
    if (req.job_id == 0) return Usage();
  } else if (verb == "cancel") {
    req.verb = Verb::kCancel;
    if (req.job_id == 0) return Usage();
  } else if (verb == "ping") {
    req.verb = Verb::kPing;
  } else {
    req.verb = Verb::kListDbs;
  }
  return RunRequest(port, req, json, retries, backoff_ms);
}
