#!/usr/bin/env sh
# Thread-safety annotation gate.
#
# Two assertions, both requiring clang (the only compiler implementing
# -Wthread-safety):
#   1. Every src/ translation unit passes -Wthread-safety -Werror=thread-safety
#      (syntax-only; no objects produced, no build tree required).
#   2. tools/thread_safety_negative.cc — which accesses a GUARDED_BY field
#      without its mutex — FAILS under the same flags. This proves the
#      annotations are actually enforced, not silently compiled out.
#
# Exit codes: 0 pass, 1 fail, 77 skipped (no clang; ctest SKIP_RETURN_CODE).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CXX="${CLANGXX:-clang++}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety: $CXX not found; skipping (annotations are no-op without clang)"
  exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$ROOT/src -Wthread-safety -Werror=thread-safety"

status=0
for tu in $(find "$ROOT/src" -name '*.cc' | sort); do
  if ! "$CXX" $FLAGS "$tu"; then
    echo "check_thread_safety: FAIL (thread-safety warning): $tu"
    status=1
  fi
done

# Negative check: the deliberately-buggy TU must NOT compile.
if "$CXX" $FLAGS "$ROOT/tools/thread_safety_negative.cc" 2>/dev/null; then
  echo "check_thread_safety: FAIL: thread_safety_negative.cc compiled clean —"
  echo "  -Wthread-safety is not enforcing GUARDED_BY; gate is toothless."
  status=1
else
  echo "check_thread_safety: negative TU rejected as expected"
fi

if [ "$status" -eq 0 ]; then
  echo "check_thread_safety: OK"
fi
exit "$status"
