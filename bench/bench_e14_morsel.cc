// E14 — morsel-driven execution and vectorized probes (DESIGN.md §12),
// measured where they matter: the convoy tail. The single-queue composer
// with the walk cache off revalidates concise-but-expensive candidates, so
// a run's wall clock is dominated by block execution and all-tuple point
// probes — exactly the kernels the batched path replaces (plan-once +
// Rebind per tuple, HashIndex::LookupBatch column probes).
//
// Two sections share one table:
//   * convoy rows (1q composer, cache off): the ablation target — batched
//     kernels should cut wall clock on the tail-heavy configuration.
//   * small rows (2q composer, cache on, smallest scale): the overhead
//     guard — even on inputs with little probe work, the batched path
//     must never be materially (>5%) slower than the scalar kernels.
//
// intra_threads stays 1 throughout: this harness reports single-thread
// kernel wins only, so numbers are honest on any core count (the morsel
// *determinism* matrix across thread counts lives in the test suite,
// tests/morsel_executor_test.cc and tests/parallel_test.cc).
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double budget = bench::BenchBudget(60.0);
  TablePrinter table(
      "E14: batched morsel kernels vs legacy scalar kernels",
      {"mode", "scale", "query", "scalar", "rows", "batched", "rows",
       "speedup"});

  struct Section {
    const char* mode;
    bool two_queue;
    bool cache;
    double scale;
  };
  const double s0 = bench::BenchScale(0.002);
  for (const Section sec :
       {Section{"convoy", false, false, s0}, Section{"convoy", false, false, s0 * 2},
        Section{"small", true, true, s0}}) {
    Database db =
        BuildTpch({.scale_factor = sec.scale, .seed = 42}).ValueOrDie();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    for (const char* qname : {"L09", "L10"}) {
      const WorkloadQuery* wq = nullptr;
      for (const auto& w : workload) {
        if (w.name == qname) wq = &w;
      }
      std::vector<std::string> row{sec.mode, StringFormat("%.4g", sec.scale),
                                   qname};
      double wall_scalar = 0, wall_batched = 0;
      for (bool batched : {false, true}) {
        QreOptions opts;
        opts.use_two_queue_composer = sec.two_queue;
        opts.time_budget_seconds = budget;
        opts.walk_cache_budget_bytes = sec.cache ? (64ull << 20) : 0;
        opts.walk_cache_admission = 0;
        opts.use_batched_probes = batched;
        FastQre engine(&db, opts);
        Timer t;
        QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
        const double wall = t.ElapsedSeconds();
        (batched ? wall_batched : wall_scalar) = wall;
        row.push_back(bench::ResultCell(a.found, !a.found, wall));
        row.push_back(FormatCount(a.stats.validation_rows));
      }
      row.push_back(wall_batched > 0
                        ? StringFormat("%.2fx", wall_scalar / wall_batched)
                        : "n/a");
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nShape check: on the convoy rows the batched kernels amortize cursor\n"
      "planning across each candidate's probe batch, so wall clock drops\n"
      "while validation rows stay identical (same visit order, DESIGN.md\n"
      "S12). The small rows are the overhead guard: batching must never be\n"
      "materially (>5%%) slower, since it is a pure kernel swap, not a\n"
      "different search. In practice it wins at any size, because even one\n"
      "candidate's probe pass replans a cursor per R_out tuple on the\n"
      "scalar path.\n");
  return 0;
}
