// E11 — parallel validation scaling: end-to-end exact QRE time as
// QreOptions::validation_threads sweeps {1, 2, 4, 8}, on the complex tail
// of the TPC-H ladder (the queries where validation dominates and the
// composer-fed worker pool has real work to overlap).
//
// The rank-barrier protocol (DESIGN.md §8) promises byte-identical SQL at
// every thread count; this harness asserts that on every cell, so a
// scheduling regression shows up as DIFF rather than a silently different
// (possibly cheaper) answer. Speedup is reported against the 1-thread run.
// On machines with few cores (or a single core), expect ~1.0x — the value
// of the sweep there is exercising the protocol, not the parallelism.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  const std::vector<int> kThreadCounts = {1, 2, 4, 8};

  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  std::printf("TPC-H scale=%.4g (%zu total rows), %u hardware threads\n\n",
              scale, db.TotalRows(), std::thread::hardware_concurrency());

  TablePrinter table(
      "E11: exact QRE time vs validation_threads (identical answers required)",
      {"query", "cand", "T=1", "T=2", "T=4", "T=8", "speedup@4", "match"});

  bool all_match = true;
  // The complex half of the ladder: joins deep enough that candidate
  // validation, not preprocessing, is the bottleneck.
  for (size_t qi = 4; qi < workload.size(); ++qi) {
    const auto& wq = workload[qi];
    std::vector<std::string> row = {wq.name, "?"};
    std::string reference_sql;
    bool reference_found = false;
    double serial_s = 0.0, four_s = 0.0;
    bool match = true;

    {
      // Untimed warm-up so the first measured cell doesn't pay for the
      // shared database's lazy index/pattern builds.
      FastQre warm(&db, QreOptions());
      (void)warm.Reverse(wq.rout);
    }

    for (int threads : kThreadCounts) {
      QreOptions opts;
      opts.validation_threads = threads;
      FastQre engine(&db, opts);
      Timer t;
      QreAnswer a = engine.Reverse(wq.rout).ValueOrDie();
      double s = t.ElapsedSeconds();
      if (threads == 1) {
        reference_sql = a.sql;
        reference_found = a.found;
        serial_s = s;
        row[1] = FormatCount(a.stats.candidates_generated);
      } else if (a.found != reference_found || a.sql != reference_sql) {
        match = false;
      }
      if (threads == 4) four_s = s;
      row.push_back(bench::ResultCell(a.found, !a.found, s));
    }

    row.push_back(StringFormat("%.2fx", serial_s / four_s));
    row.push_back(match ? "ok" : "DIFF");
    all_match &= match;
    table.AddRow(row);
  }
  table.Print();

  std::printf(
      "\nDeterminism: %s — every thread count returned %s SQL as the serial "
      "run.\nShape check: speedup@4 approaches the validation-bound fraction "
      "of each\nquery's runtime on multi-core hosts (Amdahl: preprocessing "
      "and composition\nstay serial); on single-core hosts it hovers near "
      "1.0x by design.\n",
      all_match ? "PASS" : "FAIL", all_match ? "identical" : "DIFFERENT");
  return all_match ? 0 : 1;
}
