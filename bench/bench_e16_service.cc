// E16 — service throughput and answer integrity: a closed loop of client
// threads drives an in-process JobManager with >= 1000 jobs (mixed normal /
// cancel / starved-slice flavours across four tenants) and audits every
// completed stream against a direct batch run of the same engine:
//
//   * zero lost, duplicated, or reordered answers — a fully completed job's
//     stream must be byte-identical to FastQre::ReverseAll on the same
//     R_out, and a cancelled or memory-stopped job's proved answers must be
//     an exact prefix of it (rank barrier, DESIGN.md §8);
//   * admission safety — the global BudgetPool's high-water mark must never
//     exceed its configured capacity, and everything must drain to zero
//     (no leaked slices, no stuck in-flight seats) once the loop ends.
//
// Reported: per-flavour completion counts, p50/p99 submit-to-terminal
// latency, end-to-end throughput, and typed-rejection (retry) counts from
// the closed loop. Overrides: FASTQRE_BENCH_SCALE, FASTQRE_BENCH_JOBS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"
#include "server/job_manager.h"
#include "storage/csv.h"

using namespace fastqre;

namespace {

enum class Flavour { kNormal, kCancel, kStarved };

struct JobSpec {
  Flavour flavour = Flavour::kNormal;
  size_t query = 0;  // workload index
  int limit = 1;
};

struct ReferenceAnswer {
  bool found = false;
  std::string sql;
  std::string failure_reason;
};

// Per-client-thread tally, merged after join (no shared mutable state on
// the hot path beyond the JobManager under test).
struct ClientStats {
  std::vector<double> latencies;  // submit -> terminal, seconds
  uint64_t done = 0;
  uint64_t cancelled = 0;
  uint64_t memory_stopped = 0;
  uint64_t retries = 0;  // typed rejections absorbed by the closed loop
  std::vector<std::string> violations;

  void Violate(std::string message) {
    if (violations.size() < 8) violations.push_back(std::move(message));
  }
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  const double scale = bench::BenchScale(0.001);
  const int total_jobs =
      static_cast<int>(bench::EnvDouble("FASTQRE_BENCH_JOBS", 1000));
  const int kClientThreads = 16;
  const std::vector<std::string> kTenants = {"acme", "globex", "initech",
                                             "umbrella"};

  Database db = BuildTpch({.scale_factor = scale, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  // Fast half of the ladder for the bulk of the traffic; the hardest query
  // for cancels, so cancellation actually lands mid-run.
  const size_t kEasyQueries = std::min<size_t>(5, workload.size());
  const size_t kHardQuery = workload.size() - 1;

  std::vector<std::string> rout_csv(workload.size());
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    rout_csv[qi] = TableToCsv(workload[qi].rout);
  }

  // Batch references: for each (query, limit, governor slice) the traffic
  // uses, the exact answer stream a lone engine produces under the same
  // options the JobManager builds — the slice IS the engine's memory
  // budget, and the stream (content, ranking, and any truncation tail) is
  // deterministic per budget, so the service must reproduce these streams
  // byte for byte. Populated before the clients start; read-only after.
  std::map<std::tuple<size_t, int, uint64_t>, std::vector<ReferenceAnswer>>
      references;
  auto reference_for = [&](size_t qi, int limit, uint64_t slice_bytes)
      -> const std::vector<ReferenceAnswer>& {
    auto key = std::make_tuple(qi, limit, slice_bytes);
    auto it = references.find(key);
    if (it == references.end()) {
      QreOptions opts;
      opts.memory_budget_bytes = slice_bytes;
      FastQre engine(&db, opts);
      auto answers = engine.ReverseAll(workload[qi].rout, limit).ValueOrDie();
      std::vector<ReferenceAnswer> refs;
      for (const auto& a : answers) {
        refs.push_back({a.found, a.sql, a.failure_reason});
      }
      it = references.emplace(key, std::move(refs)).first;
    }
    return it->second;
  };

  JobManagerConfig config;
  config.worker_threads = 8;
  // Slices are comfortable for this scale: a budget that bites mid-run
  // makes the stream depend on cross-engine cache warming (degradation
  // fires at interleaving-dependent points), which would invalidate the
  // byte-identical audit. Memory-pressure behaviour is exercised by the
  // starved flavour instead, whose 1-byte slice pins the ladder from the
  // first charge and is therefore deterministic again.
  config.admission.global_budget_bytes = 768ull << 20;
  config.admission.default_slice_bytes = 64ull << 20;
  config.admission.max_slice_bytes = 64ull << 20;
  // Deliberately below the client count, and with a finite per-tenant
  // rate, so the closed loop actually exercises the kSaturated and
  // kRateLimited rejection paths rather than sailing through.
  config.admission.max_in_flight_jobs = 12;
  config.admission.tenant_rate_per_second = 50;
  config.admission.tenant_burst = 25;
  JobManager manager(config);
  const Status attached = manager.AttachDatabase("tpch", &db);
  if (!attached.ok()) {
    std::printf("FAIL: %s\n", attached.message().c_str());
    return 1;
  }

  // Deterministic traffic deck: built once, then striped across the client
  // threads. ~15% cancels, ~15% starved slices, the rest normal.
  Rng rng(16);
  std::vector<JobSpec> deck;
  for (int i = 0; i < total_jobs; ++i) {
    JobSpec spec;
    const double roll = rng.UniformDouble();
    if (roll < 0.15) {
      spec.flavour = Flavour::kCancel;
      spec.query = kHardQuery;
      spec.limit = 8;
    } else if (roll < 0.30) {
      spec.flavour = Flavour::kStarved;
      spec.query = rng.Uniform(kEasyQueries);
      spec.limit = 2;
    } else {
      spec.flavour = Flavour::kNormal;
      spec.query = rng.Uniform(kEasyQueries);
      spec.limit = 1 + static_cast<int>(rng.Uniform(3));
    }
    deck.push_back(spec);
    // Warm the reference map before the clients start (read-only after).
    const uint64_t slice = spec.flavour == Flavour::kStarved
                               ? 1
                               : config.admission.default_slice_bytes;
    (void)reference_for(spec.query, spec.limit, slice);
  }

  std::printf(
      "TPC-H scale=%.4g (%zu total rows), %d jobs, %d client threads, "
      "%d workers, pool=%lluMB slice=%lluMB in-flight cap=%d\n\n",
      scale, db.TotalRows(), total_jobs, kClientThreads,
      config.worker_threads,
      static_cast<unsigned long long>(config.admission.global_budget_bytes >>
                                      20),
      static_cast<unsigned long long>(config.admission.default_slice_bytes >>
                                      20),
      config.admission.max_in_flight_jobs);

  std::vector<ClientStats> stats(kClientThreads);
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& my = stats[c];
      Rng coin(SplitMix64(static_cast<uint64_t>(c) + 99));
      for (int i = c; i < total_jobs; i += kClientThreads) {
        const JobSpec& spec = deck[static_cast<size_t>(i)];
        Request req;
        req.verb = Verb::kSubmit;
        req.db = "tpch";
        req.tenant = kTenants[static_cast<size_t>(i) % kTenants.size()];
        req.rout_csv = rout_csv[spec.query];
        req.options.limit = spec.limit;
        if (spec.flavour == Flavour::kStarved) {
          req.options.memory_budget_bytes = 1;  // clamps to a 1-byte slice
        }

        Timer latency;
        JobManager::SubmitOutcome out;
        for (;;) {
          out = manager.Submit(req);
          if (out.error == WireError::kNone) break;
          if (out.error == WireError::kRateLimited ||
              out.error == WireError::kSaturated ||
              out.error == WireError::kBudgetExhausted) {
            // Closed loop: typed rejection -> brief backoff -> retry.
            ++my.retries;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          my.Violate("unexpected submit rejection: " +
                     std::string(WireErrorToString(out.error)) + ": " +
                     out.message);
          break;
        }
        if (out.error != WireError::kNone) continue;

        // Cancel flavour: roughly half cancel immediately (racing job
        // start), half wait for the first streamed answer first.
        const bool cancel_early =
            spec.flavour == Flavour::kCancel && coin.Chance(0.5);
        if (cancel_early) (void)manager.Cancel(out.job_id);

        std::vector<WireAnswer> streamed;
        bool cancel_sent = cancel_early;
        JobState terminal = JobState::kQueued;
        std::string terminal_reason;
        for (;;) {
          auto progress =
              manager.WaitAnswers(out.job_id, streamed.size(), 0.25);
          if (!progress.ok()) {
            my.Violate("WaitAnswers failed: " + progress.status().message());
            break;
          }
          for (const auto& a : progress->answers) streamed.push_back(a);
          if (spec.flavour == Flavour::kCancel && !cancel_sent &&
              !streamed.empty()) {
            (void)manager.Cancel(out.job_id);
            cancel_sent = true;
          }
          if (progress->complete) {
            terminal = progress->state;
            terminal_reason = progress->failure_reason;
            break;
          }
        }
        my.latencies.push_back(latency.ElapsedSeconds());

        // ---- Integrity audit against the batch reference. --------------
        const uint64_t slice = spec.flavour == Flavour::kStarved
                                   ? 1
                                   : config.admission.default_slice_bytes;
        const std::vector<ReferenceAnswer>& ref =
            reference_for(spec.query, spec.limit, slice);
        bool structurally_ok = true;
        for (size_t k = 0; k < streamed.size(); ++k) {
          if (streamed[k].index != static_cast<int>(k)) {
            my.Violate("gap or duplicate at stream index " +
                       std::to_string(k));
            structurally_ok = false;
            break;
          }
          if (!streamed[k].found && k + 1 != streamed.size()) {
            my.Violate("unfound tail entry is not last");
            structurally_ok = false;
            break;
          }
        }
        if (structurally_ok) {
          // Proved answers are committed under the rank barrier, so even a
          // truncated stream must match the reference rank for rank.
          for (size_t k = 0; k < streamed.size(); ++k) {
            if (!streamed[k].found) break;
            if (k >= ref.size() || !ref[k].found ||
                streamed[k].sql != ref[k].sql) {
              my.Violate(workload[spec.query].name + ": streamed answer " +
                         std::to_string(k) +
                         " is not the batch answer at that rank");
              break;
            }
          }
        }
        if (terminal == JobState::kDone) {
          // Ran to its own conclusion (exhausted the limit, or stopped at
          // its memory budget): the stream — truncation tail included —
          // must be byte-identical to the batch run at the same budget.
          bool identical = streamed.size() == ref.size();
          for (size_t k = 0; identical && k < ref.size(); ++k) {
            identical = streamed[k].found == ref[k].found &&
                        streamed[k].sql == ref[k].sql &&
                        streamed[k].failure_reason == ref[k].failure_reason;
          }
          if (!identical) {
            my.Violate(workload[spec.query].name +
                       ": completed stream differs from batch (" +
                       std::to_string(streamed.size()) + " vs " +
                       std::to_string(ref.size()) + " entries)");
          }
          if (terminal_reason == "memory budget exceeded") {
            ++my.memory_stopped;
          } else {
            ++my.done;
          }
        } else if (terminal == JobState::kCancelled) {
          ++my.cancelled;
        } else {
          my.Violate("unexpected terminal state " +
                     std::string(JobStateToString(terminal)) + " (" +
                     terminal_reason + ")");
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();

  // ---- Merge + report. --------------------------------------------------
  std::vector<double> all_latencies;
  uint64_t done = 0, cancelled = 0, memory_stopped = 0, retries = 0;
  std::vector<std::string> violations;
  for (const ClientStats& s : stats) {
    all_latencies.insert(all_latencies.end(), s.latencies.begin(),
                         s.latencies.end());
    done += s.done;
    cancelled += s.cancelled;
    memory_stopped += s.memory_stopped;
    retries += s.retries;
    for (const std::string& v : s.violations) {
      if (violations.size() < 16) violations.push_back(v);
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());

  TablePrinter table("E16: service closed loop (submit -> terminal)",
                     {"metric", "value"});
  table.AddRow({"jobs completed", FormatCount(all_latencies.size())});
  table.AddRow({"  done (full stream)", FormatCount(done)});
  table.AddRow({"  cancelled", FormatCount(cancelled)});
  table.AddRow({"  memory-stopped", FormatCount(memory_stopped)});
  table.AddRow({"typed rejections retried", FormatCount(retries)});
  table.AddRow({"p50 latency", FormatDuration(Percentile(all_latencies, 0.50))});
  table.AddRow({"p99 latency", FormatDuration(Percentile(all_latencies, 0.99))});
  table.AddRow({"throughput",
                StringFormat("%.0f jobs/s",
                             static_cast<double>(all_latencies.size()) /
                                 wall_s)});
  table.AddRow({"wall time", FormatDuration(wall_s)});
  table.Print();

  const AdmissionController& admission = manager.admission();
  const uint64_t pool_peak = admission.pool().peak_reserved_bytes();
  const uint64_t pool_total = admission.pool().total_bytes();
  bool ok = violations.empty();
  if (pool_peak > pool_total) {
    ok = false;
    std::printf("FAIL: pool peak %llu exceeds capacity %llu\n",
                static_cast<unsigned long long>(pool_peak),
                static_cast<unsigned long long>(pool_total));
  }
  if (admission.pool().reserved_bytes() != 0 ||
      admission.in_flight_jobs() != 0) {
    ok = false;
    std::printf("FAIL: admission state not drained (reserved=%llu, "
                "in-flight=%d)\n",
                static_cast<unsigned long long>(
                    admission.pool().reserved_bytes()),
                admission.in_flight_jobs());
  }
  for (const std::string& v : violations) {
    std::printf("FAIL: %s\n", v.c_str());
  }

  std::printf(
      "\nIntegrity: %s — every completed stream matched its batch run, "
      "truncated\nstreams were exact prefixes, and the admission pool's "
      "high-water mark\n(%llu MB) stayed within its %llu MB capacity with "
      "everything released.\n",
      ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(pool_peak >> 20),
      static_cast<unsigned long long>(pool_total >> 20));
  return ok ? 0 : 1;
}
