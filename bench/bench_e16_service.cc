// E16 — service throughput and answer integrity: a closed loop of client
// threads drives an in-process JobManager with >= 1000 jobs (mixed normal /
// cancel / starved-slice flavours across four tenants) and audits every
// completed stream against a direct batch run of the same engine:
//
//   * zero lost, duplicated, or reordered answers — a fully completed job's
//     stream must be byte-identical to FastQre::ReverseAll on the same
//     R_out, and a cancelled or memory-stopped job's proved answers must be
//     an exact prefix of it (rank barrier, DESIGN.md §8);
//   * admission safety — the global BudgetPool's high-water mark must never
//     exceed its configured capacity, and everything must drain to zero
//     (no leaked slices, no stuck in-flight seats) once the loop ends.
//
// Reported: per-flavour completion counts, p50/p99 submit-to-terminal
// latency, end-to-end throughput, and typed-rejection (retry) counts from
// the closed loop. Overrides: FASTQRE_BENCH_SCALE, FASTQRE_BENCH_JOBS.
//
// E17 — wire-level misbehaving-client mix: the same JobManager is then
// fronted by a real TCP Server and a well-behaved tenant fleet measures
// its goodput twice — once alone, once sharing the daemon with droppers
// (vanish right after `accepted`), slow-readers (drain the stream one byte
// per millisecond) and retriers (drop mid-stream, resubmit under the same
// idempotency key, resume via `attach`). Pass requires well-behaved
// goodput to degrade < 10% and every retrier stream to reassemble with no
// answer lost or duplicated across reconnects (EXPERIMENTS.md E17).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"
#include "server/job_manager.h"
#include "server/server.h"
#include "storage/csv.h"

using namespace fastqre;

namespace {

enum class Flavour { kNormal, kCancel, kStarved };

struct JobSpec {
  Flavour flavour = Flavour::kNormal;
  size_t query = 0;  // workload index
  int limit = 1;
};

struct ReferenceAnswer {
  bool found = false;
  std::string sql;
  std::string failure_reason;
};

// Per-client-thread tally, merged after join (no shared mutable state on
// the hot path beyond the JobManager under test).
struct ClientStats {
  std::vector<double> latencies;  // submit -> terminal, seconds
  uint64_t done = 0;
  uint64_t cancelled = 0;
  uint64_t memory_stopped = 0;
  uint64_t retries = 0;  // typed rejections absorbed by the closed loop
  std::vector<std::string> violations;

  void Violate(std::string message) {
    if (violations.size() < 8) violations.push_back(std::move(message));
  }
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

// ---- E17: minimal blocking wire client -----------------------------------
// Just enough socket plumbing to speak the framed protocol from a bench
// thread; deliberately naive (blocking recv, no deadlines) because the
// *server* is the thing under test.
class WireClient {
 public:
  ~WireClient() { Close(); }

  bool Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    reader_ = FrameReader();
    return true;
  }

  bool Send(const Request& req) {
    const std::string frame = EncodeFrame(SerializeRequest(req));
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking read of the next response frame. False on EOF, a socket
  /// error, or a malformed frame.
  bool Read(Response* resp) { return ReadChunked(resp, 64 << 10, 0); }

  /// The slow-reader's drain: one byte per recv with a sleep in between,
  /// exercising the server's write-buffering rather than its fast path.
  bool ReadSlow(Response* resp) { return ReadChunked(resp, 1, 1); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }

 private:
  bool ReadChunked(Response* resp, size_t chunk, int sleep_ms) {
    std::string payload;
    for (;;) {
      auto next = reader_.Next(&payload);
      if (!next.ok()) return false;
      if (*next) break;
      char buf[64 << 10];
      const ssize_t n =
          ::recv(fd_, buf, std::min(chunk, sizeof(buf)), 0);
      if (n <= 0) return false;
      reader_.Feed(buf, static_cast<size_t>(n));
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
    auto parsed = ParseResponse(payload);
    if (!parsed.ok()) return false;
    *resp = std::move(*parsed);
    return true;
  }

  int fd_ = -1;
  FrameReader reader_;
};

Request MakeWireSubmit(const std::string& tenant, const std::string& rout_csv,
                       int limit) {
  Request req;
  req.verb = Verb::kSubmit;
  req.db = "tpch";
  req.tenant = tenant;
  req.rout_csv = rout_csv;
  req.options.limit = limit;
  return req;
}

/// One well-behaved wire job: submit on an (already connected) client,
/// consume the sequence-numbered stream to `done`, and audit it against the
/// batch reference. Returns false on a transport failure (caller
/// reconnects); typed retryable rejections are absorbed here.
bool RunWireJob(WireClient* client, const Request& req,
                const std::vector<ReferenceAnswer>& ref, uint64_t* retries,
                ClientStats* my) {
  for (;;) {
    if (!client->Send(req)) return false;
    Response resp;
    if (!client->Read(&resp)) return false;
    if (resp.kind == Response::Kind::kError) {
      if (!IsRetryableWireError(resp.error)) {
        my->Violate("unexpected wire rejection: " +
                    std::string(WireErrorToString(resp.error)));
        return true;  // connection is fine; the request is what failed
      }
      ++*retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (resp.kind != Response::Kind::kAccepted) {
      my->Violate("submit answered with unexpected frame kind");
      return true;
    }
    std::vector<WireAnswer> streamed;
    for (;;) {
      if (!client->Read(&resp)) return false;
      if (resp.kind == Response::Kind::kAnswer) {
        if (resp.seq != streamed.size()) {
          my->Violate("wire stream gap or duplicate at seq " +
                      std::to_string(resp.seq));
          return true;
        }
        streamed.push_back(resp.answer);
        continue;
      }
      if (resp.kind != Response::Kind::kDone) {
        my->Violate("stream interrupted by unexpected frame kind");
        return true;
      }
      if (resp.answers != streamed.size()) {
        my->Violate("done.answers disagrees with streamed count");
        return true;
      }
      break;
    }
    bool identical = streamed.size() == ref.size();
    for (size_t k = 0; identical && k < ref.size(); ++k) {
      identical = streamed[k].found == ref[k].found &&
                  streamed[k].sql == ref[k].sql &&
                  streamed[k].failure_reason == ref[k].failure_reason;
    }
    if (!identical) {
      my->Violate("wire stream differs from batch reference");
    }
    ++my->done;
    return true;
  }
}

}  // namespace

int main() {
  const double scale = bench::BenchScale(0.001);
  const int total_jobs =
      static_cast<int>(bench::EnvDouble("FASTQRE_BENCH_JOBS", 1000));
  const int kClientThreads = 16;
  const std::vector<std::string> kTenants = {"acme", "globex", "initech",
                                             "umbrella"};

  Database db = BuildTpch({.scale_factor = scale, .seed = 3}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  // Fast half of the ladder for the bulk of the traffic; the hardest query
  // for cancels, so cancellation actually lands mid-run.
  const size_t kEasyQueries = std::min<size_t>(5, workload.size());
  const size_t kHardQuery = workload.size() - 1;

  std::vector<std::string> rout_csv(workload.size());
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    rout_csv[qi] = TableToCsv(workload[qi].rout);
  }

  // Batch references: for each (query, limit, governor slice) the traffic
  // uses, the exact answer stream a lone engine produces under the same
  // options the JobManager builds — the slice IS the engine's memory
  // budget, and the stream (content, ranking, and any truncation tail) is
  // deterministic per budget, so the service must reproduce these streams
  // byte for byte. Populated before the clients start; read-only after.
  std::map<std::tuple<size_t, int, uint64_t>, std::vector<ReferenceAnswer>>
      references;
  auto reference_for = [&](size_t qi, int limit, uint64_t slice_bytes)
      -> const std::vector<ReferenceAnswer>& {
    auto key = std::make_tuple(qi, limit, slice_bytes);
    auto it = references.find(key);
    if (it == references.end()) {
      QreOptions opts;
      opts.memory_budget_bytes = slice_bytes;
      FastQre engine(&db, opts);
      auto answers = engine.ReverseAll(workload[qi].rout, limit).ValueOrDie();
      std::vector<ReferenceAnswer> refs;
      for (const auto& a : answers) {
        refs.push_back({a.found, a.sql, a.failure_reason});
      }
      it = references.emplace(key, std::move(refs)).first;
    }
    return it->second;
  };

  JobManagerConfig config;
  config.worker_threads = 8;
  // Slices are comfortable for this scale: a budget that bites mid-run
  // makes the stream depend on cross-engine cache warming (degradation
  // fires at interleaving-dependent points), which would invalidate the
  // byte-identical audit. Memory-pressure behaviour is exercised by the
  // starved flavour instead, whose 1-byte slice pins the ladder from the
  // first charge and is therefore deterministic again.
  config.admission.global_budget_bytes = 768ull << 20;
  config.admission.default_slice_bytes = 64ull << 20;
  config.admission.max_slice_bytes = 64ull << 20;
  // Deliberately below the client count, and with a finite per-tenant
  // rate, so the closed loop actually exercises the kSaturated and
  // kRateLimited rejection paths rather than sailing through.
  config.admission.max_in_flight_jobs = 12;
  config.admission.tenant_rate_per_second = 50;
  config.admission.tenant_burst = 25;
  JobManager manager(config);
  const Status attached = manager.AttachDatabase("tpch", &db);
  if (!attached.ok()) {
    std::printf("FAIL: %s\n", attached.message().c_str());
    return 1;
  }

  // Deterministic traffic deck: built once, then striped across the client
  // threads. ~15% cancels, ~15% starved slices, the rest normal.
  Rng rng(16);
  std::vector<JobSpec> deck;
  for (int i = 0; i < total_jobs; ++i) {
    JobSpec spec;
    const double roll = rng.UniformDouble();
    if (roll < 0.15) {
      spec.flavour = Flavour::kCancel;
      spec.query = kHardQuery;
      spec.limit = 8;
    } else if (roll < 0.30) {
      spec.flavour = Flavour::kStarved;
      spec.query = rng.Uniform(kEasyQueries);
      spec.limit = 2;
    } else {
      spec.flavour = Flavour::kNormal;
      spec.query = rng.Uniform(kEasyQueries);
      spec.limit = 1 + static_cast<int>(rng.Uniform(3));
    }
    deck.push_back(spec);
    // Warm the reference map before the clients start (read-only after).
    const uint64_t slice = spec.flavour == Flavour::kStarved
                               ? 1
                               : config.admission.default_slice_bytes;
    (void)reference_for(spec.query, spec.limit, slice);
  }

  std::printf(
      "TPC-H scale=%.4g (%zu total rows), %d jobs, %d client threads, "
      "%d workers, pool=%lluMB slice=%lluMB in-flight cap=%d\n\n",
      scale, db.TotalRows(), total_jobs, kClientThreads,
      config.worker_threads,
      static_cast<unsigned long long>(config.admission.global_budget_bytes >>
                                      20),
      static_cast<unsigned long long>(config.admission.default_slice_bytes >>
                                      20),
      config.admission.max_in_flight_jobs);

  std::vector<ClientStats> stats(kClientThreads);
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& my = stats[c];
      Rng coin(SplitMix64(static_cast<uint64_t>(c) + 99));
      for (int i = c; i < total_jobs; i += kClientThreads) {
        const JobSpec& spec = deck[static_cast<size_t>(i)];
        Request req;
        req.verb = Verb::kSubmit;
        req.db = "tpch";
        req.tenant = kTenants[static_cast<size_t>(i) % kTenants.size()];
        req.rout_csv = rout_csv[spec.query];
        req.options.limit = spec.limit;
        if (spec.flavour == Flavour::kStarved) {
          req.options.memory_budget_bytes = 1;  // clamps to a 1-byte slice
        }

        Timer latency;
        JobManager::SubmitOutcome out;
        for (;;) {
          out = manager.Submit(req);
          if (out.error == WireError::kNone) break;
          if (out.error == WireError::kRateLimited ||
              out.error == WireError::kSaturated ||
              out.error == WireError::kBudgetExhausted) {
            // Closed loop: typed rejection -> brief backoff -> retry.
            ++my.retries;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          my.Violate("unexpected submit rejection: " +
                     std::string(WireErrorToString(out.error)) + ": " +
                     out.message);
          break;
        }
        if (out.error != WireError::kNone) continue;

        // Cancel flavour: roughly half cancel immediately (racing job
        // start), half wait for the first streamed answer first.
        const bool cancel_early =
            spec.flavour == Flavour::kCancel && coin.Chance(0.5);
        if (cancel_early) (void)manager.Cancel(out.job_id);

        std::vector<WireAnswer> streamed;
        bool cancel_sent = cancel_early;
        JobState terminal = JobState::kQueued;
        std::string terminal_reason;
        for (;;) {
          auto progress =
              manager.WaitAnswers(out.job_id, streamed.size(), 0.25);
          if (!progress.ok()) {
            my.Violate("WaitAnswers failed: " + progress.status().message());
            break;
          }
          for (const auto& a : progress->answers) streamed.push_back(a);
          if (spec.flavour == Flavour::kCancel && !cancel_sent &&
              !streamed.empty()) {
            (void)manager.Cancel(out.job_id);
            cancel_sent = true;
          }
          if (progress->complete) {
            terminal = progress->state;
            terminal_reason = progress->failure_reason;
            break;
          }
        }
        my.latencies.push_back(latency.ElapsedSeconds());

        // ---- Integrity audit against the batch reference. --------------
        const uint64_t slice = spec.flavour == Flavour::kStarved
                                   ? 1
                                   : config.admission.default_slice_bytes;
        const std::vector<ReferenceAnswer>& ref =
            reference_for(spec.query, spec.limit, slice);
        bool structurally_ok = true;
        for (size_t k = 0; k < streamed.size(); ++k) {
          if (streamed[k].index != static_cast<int>(k)) {
            my.Violate("gap or duplicate at stream index " +
                       std::to_string(k));
            structurally_ok = false;
            break;
          }
          if (!streamed[k].found && k + 1 != streamed.size()) {
            my.Violate("unfound tail entry is not last");
            structurally_ok = false;
            break;
          }
        }
        if (structurally_ok) {
          // Proved answers are committed under the rank barrier, so even a
          // truncated stream must match the reference rank for rank.
          for (size_t k = 0; k < streamed.size(); ++k) {
            if (!streamed[k].found) break;
            if (k >= ref.size() || !ref[k].found ||
                streamed[k].sql != ref[k].sql) {
              my.Violate(workload[spec.query].name + ": streamed answer " +
                         std::to_string(k) +
                         " is not the batch answer at that rank");
              break;
            }
          }
        }
        if (terminal == JobState::kDone) {
          // Ran to its own conclusion (exhausted the limit, or stopped at
          // its memory budget): the stream — truncation tail included —
          // must be byte-identical to the batch run at the same budget.
          bool identical = streamed.size() == ref.size();
          for (size_t k = 0; identical && k < ref.size(); ++k) {
            identical = streamed[k].found == ref[k].found &&
                        streamed[k].sql == ref[k].sql &&
                        streamed[k].failure_reason == ref[k].failure_reason;
          }
          if (!identical) {
            my.Violate(workload[spec.query].name +
                       ": completed stream differs from batch (" +
                       std::to_string(streamed.size()) + " vs " +
                       std::to_string(ref.size()) + " entries)");
          }
          if (terminal_reason == "memory budget exceeded") {
            ++my.memory_stopped;
          } else {
            ++my.done;
          }
        } else if (terminal == JobState::kCancelled) {
          ++my.cancelled;
        } else {
          my.Violate("unexpected terminal state " +
                     std::string(JobStateToString(terminal)) + " (" +
                     terminal_reason + ")");
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();

  // ---- Merge + report. --------------------------------------------------
  std::vector<double> all_latencies;
  uint64_t done = 0, cancelled = 0, memory_stopped = 0, retries = 0;
  std::vector<std::string> violations;
  for (const ClientStats& s : stats) {
    all_latencies.insert(all_latencies.end(), s.latencies.begin(),
                         s.latencies.end());
    done += s.done;
    cancelled += s.cancelled;
    memory_stopped += s.memory_stopped;
    retries += s.retries;
    for (const std::string& v : s.violations) {
      if (violations.size() < 16) violations.push_back(v);
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());

  TablePrinter table("E16: service closed loop (submit -> terminal)",
                     {"metric", "value"});
  table.AddRow({"jobs completed", FormatCount(all_latencies.size())});
  table.AddRow({"  done (full stream)", FormatCount(done)});
  table.AddRow({"  cancelled", FormatCount(cancelled)});
  table.AddRow({"  memory-stopped", FormatCount(memory_stopped)});
  table.AddRow({"typed rejections retried", FormatCount(retries)});
  table.AddRow({"p50 latency", FormatDuration(Percentile(all_latencies, 0.50))});
  table.AddRow({"p99 latency", FormatDuration(Percentile(all_latencies, 0.99))});
  table.AddRow({"throughput",
                StringFormat("%.0f jobs/s",
                             static_cast<double>(all_latencies.size()) /
                                 wall_s)});
  table.AddRow({"wall time", FormatDuration(wall_s)});
  table.Print();

  const AdmissionController& admission = manager.admission();
  const uint64_t pool_peak = admission.pool().peak_reserved_bytes();
  const uint64_t pool_total = admission.pool().total_bytes();
  bool ok = violations.empty();
  if (pool_peak > pool_total) {
    ok = false;
    std::printf("FAIL: pool peak %llu exceeds capacity %llu\n",
                static_cast<unsigned long long>(pool_peak),
                static_cast<unsigned long long>(pool_total));
  }
  if (admission.pool().reserved_bytes() != 0 ||
      admission.in_flight_jobs() != 0) {
    ok = false;
    std::printf("FAIL: admission state not drained (reserved=%llu, "
                "in-flight=%d)\n",
                static_cast<unsigned long long>(
                    admission.pool().reserved_bytes()),
                admission.in_flight_jobs());
  }
  for (const std::string& v : violations) {
    std::printf("FAIL: %s\n", v.c_str());
  }

  // ===== E17: wire-level misbehaving-client mix ==========================
  // Front the same JobManager with a real TCP server and measure the
  // well-behaved fleet's goodput with and without hostile neighbours.
  // Half the worker count: the degradation claim is about *interference*
  // under realistic headroom, not about contending for a saturated worker
  // pool (E16 above already measures the saturated regime).
  const int kWireThreads = 4;
  const int kWireJobsPerThread = 100;
  const int kRetrierLimit = 3;
  const size_t pre_wire_violations = violations.size();
  // Warm every reference the wire phases read (the map is read-only once
  // the fleet starts).
  for (size_t qi = 0; qi < kEasyQueries; ++qi) {
    (void)reference_for(qi, 1, config.admission.default_slice_bytes);
    (void)reference_for(qi, 2, config.admission.default_slice_bytes);
  }
  (void)reference_for(0, kRetrierLimit, config.admission.default_slice_bytes);

  Server server(&manager, ServerConfig{});
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("FAIL: server start: %s\n", started.message().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  // One goodput phase: a fleet of per-tenant client threads pushes
  // kWireJobsPerThread easy jobs each over real sockets, auditing every
  // stream. Returns jobs/s; merges violations into the shared list.
  // Each phase gets fresh tenant identities so both start with full rate
  // buckets — the per-tenant pacing is the isolation mechanism under
  // test, not a warm-up artifact to inherit across phases.
  auto run_phase = [&](const char* tenant_prefix,
                       uint64_t* phase_retries) -> double {
    std::vector<ClientStats> wire_stats(kWireThreads);
    std::vector<uint64_t> wire_retries(
        static_cast<size_t>(kWireThreads), 0);
    Timer phase_wall;
    std::vector<std::thread> fleet;
    for (int c = 0; c < kWireThreads; ++c) {
      fleet.emplace_back([&, c] {
        WireClient client;
        const std::string tenant = tenant_prefix + std::to_string(c);
        for (int i = 0; i < kWireJobsPerThread; ++i) {
          const size_t qi = static_cast<size_t>(i) % kEasyQueries;
          const Request req = MakeWireSubmit(tenant, rout_csv[qi], 1);
          const auto& ref =
              reference_for(qi, 1, config.admission.default_slice_bytes);
          int reconnects = 0;
          for (;;) {
            if (!client.connected() && !client.Connect(port)) {
              wire_stats[static_cast<size_t>(c)].Violate("connect failed");
              return;
            }
            if (RunWireJob(&client, req, ref,
                           &wire_retries[static_cast<size_t>(c)],
                           &wire_stats[static_cast<size_t>(c)])) {
              break;
            }
            client.Close();  // transport hiccup: reconnect, resubmit
            if (++reconnects > 8) {
              wire_stats[static_cast<size_t>(c)].Violate(
                  "wire job kept failing across reconnects");
              return;
            }
          }
        }
      });
    }
    for (auto& t : fleet) t.join();
    const double phase_s = phase_wall.ElapsedSeconds();
    uint64_t phase_done = 0;
    for (int c = 0; c < kWireThreads; ++c) {
      const ClientStats& s = wire_stats[static_cast<size_t>(c)];
      phase_done += s.done;
      *phase_retries += wire_retries[static_cast<size_t>(c)];
      for (const std::string& v : s.violations) {
        if (violations.size() < 32) violations.push_back("wire: " + v);
      }
    }
    if (phase_done !=
        static_cast<uint64_t>(kWireThreads) * kWireJobsPerThread) {
      violations.push_back("wire phase lost jobs (" +
                           std::to_string(phase_done) + " completed)");
    }
    return static_cast<double>(phase_done) / phase_s;
  };

  // ---- Phase A: baseline, the daemon all to ourselves. ------------------
  uint64_t base_retries = 0;
  const double base_goodput = run_phase("wire-alone-", &base_retries);

  // ---- Phase B: same fleet, hostile neighbours. -------------------------
  std::atomic<bool> stop_misbehaving{false};
  std::atomic<uint64_t> dropped_conns{0};
  std::atomic<uint64_t> slow_streams{0};
  std::atomic<uint64_t> retrier_cycles{0};
  std::atomic<uint64_t> retrier_answers{0};
  Mutex misbehave_mu;
  std::vector<std::string> misbehave_violations;
  auto misbehave_violate = [&](std::string message) {
    MutexLock lock(&misbehave_mu);
    if (misbehave_violations.size() < 8) {
      misbehave_violations.push_back(std::move(message));
    }
  };

  std::vector<std::thread> misbehaving;
  // Droppers: submit, take the accepted frame, vanish. The orphaned job
  // still runs; the server must reclaim the streaming thread every time.
  for (int d = 0; d < 2; ++d) {
    misbehaving.emplace_back([&, d] {
      while (!stop_misbehaving.load(std::memory_order_relaxed)) {
        WireClient c;
        if (!c.Connect(port)) break;
        const size_t qi = static_cast<size_t>(d) % kEasyQueries;
        if (c.Send(MakeWireSubmit("mallory-drop", rout_csv[qi], 1))) {
          Response r;
          if (c.Read(&r) && r.kind == Response::Kind::kAccepted) {
            dropped_conns.fetch_add(1, std::memory_order_relaxed);
          }
        }
        c.Close();
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  // Slow-readers: drain a full stream one byte per millisecond, keeping a
  // connection thread pinned without ever tripping a deadline.
  for (int s = 0; s < 2; ++s) {
    misbehaving.emplace_back([&, s] {
      while (!stop_misbehaving.load(std::memory_order_relaxed)) {
        WireClient c;
        if (!c.Connect(port)) break;
        const size_t qi = static_cast<size_t>(s) % kEasyQueries;
        if (c.Send(MakeWireSubmit("mallory-slow", rout_csv[qi], 2))) {
          Response r;
          while (c.ReadSlow(&r)) {
            if (r.kind == Response::Kind::kDone) {
              slow_streams.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (r.kind == Response::Kind::kError) break;
          }
        }
        c.Close();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }
  // Retriers: keyed submit, drop mid-stream, resubmit under the same key
  // (must map to the SAME job), resume via attach, and audit the
  // reassembled stream — the "no answer lost or duplicated across
  // reconnects" half of the E17 claim.
  const std::vector<ReferenceAnswer>& retry_ref =
      reference_for(0, kRetrierLimit, config.admission.default_slice_bytes);
  for (int r = 0; r < 2; ++r) {
    misbehaving.emplace_back([&, r] {
      int cycle = 0;
      while (!stop_misbehaving.load(std::memory_order_relaxed)) {
        ++cycle;
        Request req = MakeWireSubmit("mallory-retry", rout_csv[0],
                                     kRetrierLimit);
        req.idempotency_key = "bench-retry-" + std::to_string(r) + "-" +
                              std::to_string(cycle);
        WireClient c;
        Response resp;
        if (!c.Connect(port)) break;
        if (!c.Send(req) || !c.Read(&resp)) continue;
        if (resp.kind == Response::Kind::kError) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;  // rate-limited; next cycle uses a fresh key
        }
        if (resp.kind != Response::Kind::kAccepted) continue;
        const uint64_t job = resp.job_id;
        std::vector<WireAnswer> stream;
        bool done_early = false;
        while (stream.empty()) {  // ack a prefix, then vanish mid-stream
          if (!c.Read(&resp)) break;
          if (resp.kind == Response::Kind::kAnswer &&
              resp.seq == stream.size()) {
            stream.push_back(resp.answer);
          } else if (resp.kind == Response::Kind::kDone) {
            done_early = true;
            break;
          }
        }
        c.Close();  // the ambiguous failure
        if (!done_early) {
          // Retry the submit verbatim: same key, so it must be the same job.
          WireClient c2;
          if (c2.Connect(port) && c2.Send(req) && c2.Read(&resp) &&
              resp.kind == Response::Kind::kAccepted && resp.job_id != job) {
            misbehave_violate("idempotent resubmit admitted a second job");
          }
          c2.Close();
          // Resume the stream where the acked prefix ends.
          Request att;
          att.verb = Verb::kAttach;
          att.job_id = job;
          att.cursor = stream.size();
          WireClient c3;
          if (!c3.Connect(port) || !c3.Send(att) || !c3.Read(&resp) ||
              resp.kind != Response::Kind::kAccepted) {
            continue;
          }
          bool complete = false;
          while (c3.Read(&resp)) {
            if (resp.kind == Response::Kind::kAnswer) {
              if (resp.seq != stream.size()) {
                misbehave_violate("attach replay gap or duplicate at seq " +
                                  std::to_string(resp.seq));
                break;
              }
              stream.push_back(resp.answer);
              continue;
            }
            if (resp.kind == Response::Kind::kDone) {
              complete = resp.answers == stream.size();
              if (!complete) {
                misbehave_violate("reassembled stream length disagrees "
                                  "with done.answers");
              }
            }
            break;
          }
          c3.Close();
          if (!complete) continue;
        }
        bool identical = stream.size() == retry_ref.size();
        for (size_t k = 0; identical && k < retry_ref.size(); ++k) {
          identical = stream[k].found == retry_ref[k].found &&
                      stream[k].sql == retry_ref[k].sql &&
                      stream[k].failure_reason == retry_ref[k].failure_reason;
        }
        if (!identical) {
          misbehave_violate("reassembled stream differs from batch run");
        }
        retrier_cycles.fetch_add(1, std::memory_order_relaxed);
        retrier_answers.fetch_add(stream.size(), std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  uint64_t mixed_retries = 0;
  const double mixed_goodput = run_phase("wire-mixed-", &mixed_retries);
  stop_misbehaving.store(true, std::memory_order_relaxed);
  for (auto& t : misbehaving) t.join();
  server.Stop();
  for (const std::string& v : misbehave_violations) {
    if (violations.size() < 32) violations.push_back(v);
  }

  const double degradation =
      base_goodput > 0 ? 1.0 - mixed_goodput / base_goodput : 1.0;
  TablePrinter e17("E17: wire goodput under a misbehaving-client mix",
                   {"metric", "value"});
  e17.AddRow({"well-behaved goodput (alone)",
              StringFormat("%.0f jobs/s", base_goodput)});
  e17.AddRow({"well-behaved goodput (mixed)",
              StringFormat("%.0f jobs/s", mixed_goodput)});
  e17.AddRow({"goodput degradation",
              StringFormat("%.1f%%", degradation * 100)});
  e17.AddRow({"typed rejections retried (alone/mixed)",
              FormatCount(base_retries) + " / " + FormatCount(mixed_retries)});
  e17.AddRow({"dropper connections abandoned", FormatCount(dropped_conns)});
  e17.AddRow({"slow-reader streams drained", FormatCount(slow_streams)});
  e17.AddRow({"retrier reconnect cycles", FormatCount(retrier_cycles)});
  e17.AddRow({"answers reassembled across reconnects",
              FormatCount(retrier_answers)});
  e17.Print();

  if (degradation >= 0.10) {
    ok = false;
    std::printf("FAIL: goodput degraded %.1f%% (budget < 10%%)\n",
                degradation * 100);
  }
  for (size_t v = pre_wire_violations; v < violations.size(); ++v) {
    ok = false;
    std::printf("FAIL: %s\n", violations[v].c_str());
  }

  std::printf(
      "\nIntegrity: %s — every completed stream matched its batch run, "
      "truncated\nstreams were exact prefixes, the admission pool's "
      "high-water mark\n(%llu MB) stayed within its %llu MB capacity, and "
      "well-behaved wire\ngoodput survived the misbehaving mix with every "
      "reconnected stream\nreassembled gap-free.\n",
      ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(pool_peak >> 20),
      static_cast<unsigned long long>(pool_total >> 20));
  return ok ? 0 : 1;
}
