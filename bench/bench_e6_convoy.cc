// E6 — the convoy effect (Figure 9): the basic single-queue composer orders
// candidates by Q_dc alone, so a concise but expensive-to-validate candidate
// can stall the whole search; the two-queue composer with Q_alpha validates
// cheap candidates first.
//
// The paper's Query 1 exhibits this naturally: several equal-Q_dc walk sets
// route through the high-fanout lineitem table and are orders of magnitude
// more expensive to validate than the correct set.
//
// E12 rides on the same workload: convoys revalidate the same few walks over
// and over, which is exactly what the walk-materialization cache (DESIGN.md
// §9) amortizes. Each configuration is run with the cache on and off
// (--walk-cache-mb 0 equivalent); the final column reports the rows-examined
// reduction the cache buys on the single-queue convoy.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double budget = bench::BenchBudget(30.0);
  TablePrinter table(
      "E6/E12: convoy effect - two-queue vs single-queue, walk cache on/off",
      {"scale", "query", "2q+cache", "validations", "rows", "1q+cache",
       "validations", "rows", "1q-nocache", "validations", "rows",
       "cache rows x"});

  for (double scale : {bench::BenchScale(0.002), bench::BenchScale(0.002) * 2}) {
    Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    for (const char* qname : {"L09", "L10"}) {
      const WorkloadQuery* wq = nullptr;
      for (const auto& w : workload) {
        if (w.name == qname) wq = &w;
      }
      std::vector<std::string> row{StringFormat("%.4g", scale), qname};
      struct Config {
        bool two_queue;
        bool cache;
      };
      uint64_t rows_cache = 0, rows_nocache = 0;
      for (Config cfg : {Config{true, true}, Config{false, true},
                         Config{false, false}}) {
        QreOptions opts;
        opts.use_two_queue_composer = cfg.two_queue;
        opts.time_budget_seconds = budget;
        opts.walk_cache_budget_bytes = cfg.cache ? (64ull << 20) : 0;
        opts.walk_cache_admission = 0;  // convoys re-use walks immediately
        FastQre engine(&db, opts);
        Timer t;
        QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
        row.push_back(bench::ResultCell(a.found, !a.found, t.ElapsedSeconds()));
        row.push_back(FormatCount(a.stats.full_validations));
        row.push_back(FormatCount(a.stats.validation_rows));
        if (!cfg.two_queue) {
          (cfg.cache ? rows_cache : rows_nocache) = a.stats.validation_rows;
        }
      }
      row.push_back(rows_cache > 0
                        ? StringFormat("%.1fx", static_cast<double>(rows_nocache) /
                                                    static_cast<double>(rows_cache))
                        : "n/a");
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper (Figure 9): the single-queue composer performs\n"
      "at least as many full validations and streams more rows, because it\n"
      "cannot defer concise-but-expensive candidates. The cache column (E12)\n"
      "is rows(no cache)/rows(cache) for the single-queue convoy: memoized\n"
      "walk relations replace the repeated intermediate-chain traversals.\n");
  return 0;
}
