// E6 — the convoy effect (Figure 9): the basic single-queue composer orders
// candidates by Q_dc alone, so a concise but expensive-to-validate candidate
// can stall the whole search; the two-queue composer with Q_alpha validates
// cheap candidates first.
//
// The paper's Query 1 exhibits this naturally: several equal-Q_dc walk sets
// route through the high-fanout lineitem table and are orders of magnitude
// more expensive to validate than the correct set.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double budget = bench::BenchBudget(30.0);
  TablePrinter table(
      "E6: convoy effect - two-queue (Q_alpha) vs single-queue (Q_dc)",
      {"scale", "query", "two-queue", "validations", "rows", "single-queue",
       "validations", "rows"});

  for (double scale : {bench::BenchScale(0.002), bench::BenchScale(0.002) * 2}) {
    Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    for (const char* qname : {"L09", "L10"}) {
      const WorkloadQuery* wq = nullptr;
      for (const auto& w : workload) {
        if (w.name == qname) wq = &w;
      }
      std::vector<std::string> row{StringFormat("%.4g", scale), qname};
      for (bool two_queue : {true, false}) {
        QreOptions opts;
        opts.use_two_queue_composer = two_queue;
        opts.time_budget_seconds = budget;
        FastQre engine(&db, opts);
        Timer t;
        QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
        row.push_back(bench::ResultCell(a.found, !a.found, t.ElapsedSeconds()));
        row.push_back(FormatCount(a.stats.full_validations));
        row.push_back(FormatCount(a.stats.validation_rows));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper (Figure 9): the single-queue composer performs\n"
      "at least as many full validations and streams more rows, because it\n"
      "cannot defer concise-but-expensive candidates.\n");
  return 0;
}
