// E15 — sideways information passing and cross-candidate subplan
// memoization (DESIGN.md §13), measured on the streaming-bound validation
// tail: the single-queue convoy with the walk cache off revalidates
// concise-but-expensive candidates through the exact block-execution extras
// check, so a run's wall clock is dominated by hash-join prefixes that
// sibling candidates recompute from scratch — exactly the work SIP filters
// shrink and the subplan cache shares.
//
// Two sections share one table:
//   * convoy rows (1q composer, walk cache off): the 2x2 ablation —
//     {SIP off/on} x {subplan cache off/on}; both-on should cut wall clock
//     >= 3x on the larger scale while every cell returns the identical
//     answer SQL (asserted here, not just eyeballed).
//   * small rows (2q composer, walk cache on, smallest scale): the overhead
//     guard — on inputs with little convoy work, SIP + cache must never be
//     materially (>5%) slower than both-off.
//
// Cell order runs both-off first, so one-time lazy structures (indexes,
// patterns, CGM) warm on the baseline and the reported speedup is
// conservative. intra_threads stays 1: single-thread wins only.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

namespace {

struct Cell {
  const char* name;
  bool sip;
  bool cache;
};

constexpr Cell kCells[] = {
    {"both-off", false, false},
    {"sip-only", true, false},
    {"cache-only", false, true},
    {"both-on", true, true},
};

}  // namespace

int main() {
  const double budget = bench::BenchBudget(240.0);
  TablePrinter table(
      "E15: SIP filters x subplan memoization on the convoy tail",
      {"mode", "scale", "query", "both-off", "rows", "sip-only", "cache-only",
       "both-on", "rows", "speedup"});

  struct Section {
    const char* mode;
    bool two_queue;
    bool walk_cache;
    double scale;
  };
  const double s0 = bench::BenchScale(0.004);
  bool identical = true;
  for (const Section sec :
       {Section{"convoy", false, false, s0 / 2},
        Section{"convoy", false, false, s0},
        Section{"small", true, true, bench::BenchScale(0.001)}}) {
    Database db =
        BuildTpch({.scale_factor = sec.scale, .seed = 42}).ValueOrDie();
    auto workload = StandardTpchWorkload(db).ValueOrDie();
    for (const char* qname : {"L09", "L10"}) {
      // Untimed warmup: build the lazy indexes/patterns/filters once so no
      // cell pays one-time costs and cross-cell ratios are warm-vs-warm.
      for (const auto& w : workload) {
        if (w.name != qname) continue;
        QreOptions warm;
        warm.use_two_queue_composer = sec.two_queue;
        warm.time_budget_seconds = budget;
        warm.walk_cache_budget_bytes = 0;
        warm.subplan_cache_budget_bytes = 0;
        FastQre engine(&db, warm);
        (void)engine.Reverse(w.rout).ValueOrDie();
      }
      const WorkloadQuery* wq = nullptr;
      for (const auto& w : workload) {
        if (w.name == qname) wq = &w;
      }
      std::vector<std::string> row{sec.mode, StringFormat("%.4g", sec.scale),
                                   qname};
      double wall_off = 0, wall_on = 0;
      std::string sql_off;
      uint64_t rows_off = 0, rows_on = 0;
      for (const Cell& cell : kCells) {
        QreOptions opts;
        opts.use_two_queue_composer = sec.two_queue;
        opts.time_budget_seconds = budget;
        opts.walk_cache_budget_bytes = sec.walk_cache ? (64ull << 20) : 0;
        opts.walk_cache_admission = 0;
        opts.use_sip = cell.sip;
        opts.subplan_cache_budget_bytes = cell.cache ? (256ull << 20) : 0;
        opts.subplan_cache_admission = 0;
        // Best of 3: each rep uses a fresh engine (and so a fresh subplan
        // cache — no cross-rep reuse), min squeezes out scheduler jitter.
        double wall = 0;
        QreAnswer a;
        for (int rep = 0; rep < 3; ++rep) {
          FastQre engine(&db, opts);
          Timer t;
          a = engine.Reverse(wq->rout).ValueOrDie();
          const double w = t.ElapsedSeconds();
          if (rep == 0 || w < wall) wall = w;
        }
        if (cell.sip && cell.cache) {
          wall_on = wall;
          rows_on = a.stats.validation_rows;
        }
        if (!cell.sip && !cell.cache) {
          wall_off = wall;
          sql_off = a.sql;
          rows_off = a.stats.validation_rows;
          row.push_back(bench::ResultCell(a.found, !a.found, wall));
          row.push_back(FormatCount(rows_off));
        } else {
          row.push_back(bench::ResultCell(a.found, !a.found, wall));
          // Semantics contract: every ablation cell returns the same SQL.
          if (a.sql != sql_off) identical = false;
        }
        if (cell.sip && cell.cache) row.push_back(FormatCount(rows_on));
      }
      row.push_back(wall_on > 0 ? StringFormat("%.2fx", wall_off / wall_on)
                                : "n/a");
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nanswers %s across all ablation cells\n",
      identical ? "IDENTICAL" : "DIVERGED (BUG: SIP/memo changed semantics)");
  std::printf(
      "\nShape check: on the convoy rows the subplan cache lets the second\n"
      "and later candidates of each convoy resume from a memoized join\n"
      "prefix, and SIP bitmap filters keep provably-dead rows out of the\n"
      "intermediates both executors materialize — wall clock drops while\n"
      "the answer SQL stays byte-identical in every cell. Validation rows\n"
      "differ only by the rows SIP provably skipped. The small rows are the\n"
      "overhead guard: with little convoy work both accelerations must be\n"
      "within noise (<5%%) of both-off.\n");
  return identical ? 0 : 1;
}
