// E10 — the semi-automated alpha calibration of Section 4.4.2 in action:
// cost of the calibration itself, the per-alpha totals on the self-generated
// test queries, and whether the chosen alpha helps on the real workload
// (paper Query 1).
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/fastqre.h"
#include "qre/tuning.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();

  TuneAlphaOptions topts;
  topts.num_test_queries = 4;
  topts.test_query_instances = 3;
  Timer calib_timer;
  TuneAlphaResult calib = TuneAlpha(db, QreOptions(), topts).ValueOrDie();
  double calib_s = calib_timer.ElapsedSeconds();

  TablePrinter table("E10: alpha calibration on self-generated test queries",
                     {"alpha", "calibration total"});
  for (size_t i = 0; i < calib.alphas.size(); ++i) {
    table.AddRow({StringFormat("%.2f", calib.alphas[i]),
                  FormatDuration(calib.total_seconds[i])});
  }
  table.Print();
  std::printf("chosen alpha: %.2f (calibration took %s overall)\n\n",
              calib.best_alpha, FormatDuration(calib_s).c_str());

  // Apply the chosen alpha to the real target workload.
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout =
      ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();
  TablePrinter apply("E10b: chosen alpha vs extremes on paper Query 1",
                     {"alpha", "time"});
  for (double alpha : {0.0, calib.best_alpha, 1.0}) {
    QreOptions opts;
    opts.alpha = alpha;
    opts.time_budget_seconds = 30.0;
    FastQre engine(&db, opts);
    Timer t;
    QreAnswer a = engine.Reverse(rout).ValueOrDie();
    apply.AddRow({StringFormat("%.2f%s", alpha,
                               alpha == calib.best_alpha ? " (chosen)" : ""),
                  bench::ResultCell(a.found, !a.found, t.ElapsedSeconds())});
  }
  apply.Print();
  std::printf(
      "\nShape check vs paper: calibration on a handful of self-generated\n"
      "test queries transfers — the chosen alpha performs at least as well\n"
      "as the extremes on the real workload.\n");
  return 0;
}
