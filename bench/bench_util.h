// Shared helpers for the paper-style benchmark harnesses (bench_e1..e9).
//
// Each binary prints one or more aligned tables to stdout and exits 0. All
// accept environment overrides so the default `for b in build/bench/*; do
// $b; done` stays fast while allowing larger runs:
//   FASTQRE_BENCH_SCALE   TPC-H scale factor (default per-bench)
//   FASTQRE_BENCH_BUDGET  per-query time budget in seconds for slow methods
#pragma once

#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace fastqre::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  double out = fallback;
  (void)ParseDouble(v, &out);
  return out;
}

inline double BenchScale(double fallback) {
  return EnvDouble("FASTQRE_BENCH_SCALE", fallback);
}

inline double BenchBudget(double fallback) {
  return EnvDouble("FASTQRE_BENCH_BUDGET", fallback);
}

/// Formats a method's result cell: time, ">budget" on timeout, or "FAIL".
inline std::string ResultCell(bool found, bool timed_out, double seconds) {
  if (found) return FormatDuration(seconds);
  return timed_out ? (">" + FormatDuration(seconds)) : "FAIL";
}

}  // namespace fastqre::bench
