// E5 — the Q_alpha trade-off (Section 4.4.2): response time as alpha sweeps
// from 0 (pure predicted-execution-cost Q_ex) to 1 (pure description
// complexity Q_dc). The paper argues neither extreme is ideal; the blend is
// set semi-automatically from test queries.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  const double budget = bench::BenchBudget(20.0);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::vector<std::string> header{"query"};
  for (double a : alphas) header.push_back(StringFormat("a=%.2f", a));
  TablePrinter table("E5: exact QRE time vs alpha (Q_alpha blend)", header);

  for (const char* qname : {"L07", "L09", "L10"}) {
    const WorkloadQuery* wq = nullptr;
    for (const auto& w : workload) {
      if (w.name == qname) wq = &w;
    }
    std::vector<std::string> row{qname};
    for (double alpha : alphas) {
      QreOptions opts;
      opts.alpha = alpha;
      opts.time_budget_seconds = budget;
      FastQre engine(&db, opts);
      Timer t;
      QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
      row.push_back(bench::ResultCell(a.found, !a.found, t.ElapsedSeconds()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: interior alpha values match or beat both\n"
      "extremes; alpha=1 (Q_dc only) risks the convoy effect, alpha=0\n"
      "(Q_ex only) trusts an imperfect cost model.\n");
  return 0;
}
