// E9 — candidate accounting: how much of the search space each FastQRE
// layer eliminates before full validation, per ladder query. This is the
// mechanism behind E1's speedups.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  TablePrinter table(
      "E9: candidate accounting per query (exact QRE, full FastQRE)",
      {"query", "mappings", "walks", "CGMs", "sets", "candidates",
       "probe-out", "walk-out", "dead-pruned", "full-checks", "time"});

  for (const auto& wq : workload) {
    QreOptions opts;
    opts.time_budget_seconds = 60.0;
    FastQre engine(&db, opts);
    Timer t;
    QreAnswer a = engine.Reverse(wq.rout).ValueOrDie();
    table.AddRow({wq.name, FormatCount(a.stats.mappings_tried),
                  FormatCount(a.stats.walks_discovered),
                  FormatCount(a.stats.num_cgms),
                  FormatCount(a.stats.walk_sets_expanded),
                  FormatCount(a.stats.candidates_generated),
                  FormatCount(a.stats.candidates_dismissed_probe),
                  FormatCount(a.stats.candidates_dismissed_walk),
                  FormatCount(a.stats.candidates_pruned_dead),
                  FormatCount(a.stats.full_validations),
                  bench::ResultCell(a.found, !a.found, t.ElapsedSeconds())});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: probing and indirect coherence dismiss most\n"
      "candidates before any full evaluation; only a handful of full checks\n"
      "remain even for the cyclic self-join queries.\n");
  return 0;
}
