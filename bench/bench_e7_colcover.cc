// E7 — preprocessing: pattern-pruned vs plain column-cover computation
// (Section 4.1: "FastQRE first computes patterns formed by column values,
// that are then leveraged to avoid certain column comparisons").
//
// Substrate note (recorded in EXPERIMENTS.md): with dictionary encoding a
// failed containment check already rejects in O(1) (the first R_out value
// missing from the other column's id-set), so the pruning benefit the paper
// reports against value-level column comparison is largely subsumed here.
// We therefore report (a) the pruning *rate*, (b) cold cover time (first
// call, includes building the per-column pattern cache) and (c) warm cover
// time (patterns cached in the Database), against the no-pattern cover.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/executor.h"
#include "qre/column_cover.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double base = bench::BenchScale(0.002);
  TablePrinter table(
      "E7: column-cover time, pattern pruning on vs off (paper Query 1 R_out)",
      {"scale", "rows(D)", "pairs", "pruned", "checked", "cold", "warm",
       "no patterns"});

  for (double scale : {base, base * 4, base * 16}) {
    Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
    PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
    Table rout =
        ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();

    QreOptions with, without;
    without.use_pattern_pruning = false;
    // Warm the distinct-set caches so both measurements see the same state.
    for (TableId t = 0; t < db.num_tables(); ++t) {
      for (ColumnId c = 0; c < db.table(t).num_columns(); ++c) {
        db.table(t).column(c).DistinctSet();
      }
    }
    QreStats s1, s1b, s2;
    Timer t1;
    ColumnCover c1 = ComputeColumnCover(db, rout, with, &s1);
    double cold_s = t1.ElapsedSeconds();
    Timer t1b;
    ColumnCover c1b = ComputeColumnCover(db, rout, with, &s1b);
    double warm_s = t1b.ElapsedSeconds();
    Timer t2;
    ColumnCover c2 = ComputeColumnCover(db, rout, without, &s2);
    double without_s = t2.ElapsedSeconds();
    (void)c1;
    (void)c1b;
    (void)c2;

    table.AddRow({StringFormat("%.4g", scale), FormatCount(db.TotalRows()),
                  FormatCount(s1.cover_pairs_total),
                  FormatCount(s1.cover_pairs_pruned),
                  FormatCount(s1.cover_pairs_checked),
                  FormatDuration(cold_s), FormatDuration(warm_s),
                  FormatDuration(without_s)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: patterns prune the large majority of the\n"
      "quadratic column-pair comparisons. In this substrate the plain cover\n"
      "is already O(1)-rejecting thanks to dictionary encoding, so pruning\n"
      "matters for the *rate* (pairs avoided) rather than raw time; see\n"
      "EXPERIMENTS.md for the substitution note.\n");
  return 0;
}
