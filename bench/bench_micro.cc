// Micro-benchmarks (google-benchmark) for the substrate hot paths:
// dictionary interning, distinct-set construction, hash-index build/probe,
// pipelined join execution, column cover, CGM discovery, walk discovery.
#include <benchmark/benchmark.h>

#include "common/resource_governor.h"
#include "common/rng.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/block_executor.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/fastqre.h"
#include "qre/mapping.h"
#include "qre/walks.h"

namespace fastqre {
namespace {

void BM_DictionaryIntern(benchmark::State& state) {
  Rng rng(1);
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) {
    values.emplace_back(static_cast<int64_t>(rng.Uniform(5000)));
  }
  for (auto _ : state) {
    Dictionary dict;
    for (const Value& v : values) benchmark::DoNotOptimize(dict.Intern(v));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_DictionaryIntern);

void BM_ColumnDistinctSet(benchmark::State& state) {
  auto dict = std::make_shared<Dictionary>();
  Table t("t", dict);
  (void)t.AddColumn("a", ValueType::kInt64);
  Rng rng(2);
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)t.AppendRow({Value(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  for (auto _ : state) {
    // Copy the column to defeat the cache.
    Column c = t.column(0);
    benchmark::DoNotOptimize(c.NumDistinct());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnDistinctSet)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashIndexBuild(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.01, .seed = 1}).ValueOrDie();
  const Table& lineitem = db.table(*db.FindTable("lineitem"));
  for (auto _ : state) {
    HashIndex index(lineitem, {0});
    benchmark::DoNotOptimize(index.num_keys());
  }
  state.SetItemsProcessed(state.iterations() * lineitem.num_rows());
}
BENCHMARK(BM_HashIndexBuild);

void BM_HashIndexProbe(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.01, .seed = 1}).ValueOrDie();
  const Table& lineitem = db.table(*db.FindTable("lineitem"));
  HashIndex index(lineitem, {0});
  std::vector<ValueId> keys;
  for (RowId r = 0; r < lineitem.num_rows(); r += 7) {
    keys.push_back(lineitem.column(0).at(r));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup1(keys[i++ % keys.size()]).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexProbe);

void BM_LookupBatch(benchmark::State& state) {
  // Vectorized counterpart of BM_HashIndexProbe: one LookupBatch call per
  // morsel of keys instead of one Lookup1 per key (DESIGN.md §12). Unlike
  // Lookup1 (which hands back a reference), LookupBatch materializes the
  // matching rows into a flat buffer — the executor needs them gathered
  // anyway. Arg = key stride: 1 keeps the generator's natural row order
  // (lineitems of one order are adjacent, so duplicate keys hit the
  // memoized fast path, as in the executor's reach-driven probes); 7
  // destroys adjacency (worst case, every key pays a full hash probe).
  Database db = BuildTpch({.scale_factor = 0.01, .seed = 1}).ValueOrDie();
  const Table& lineitem = db.table(*db.FindTable("lineitem"));
  HashIndex index(lineitem, {0});
  const size_t stride = static_cast<size_t>(state.range(0));
  std::vector<ValueId> keys;
  for (RowId r = 0; r < lineitem.num_rows(); r += stride) {
    keys.push_back(lineitem.column(0).at(r));
  }
  BatchMatches out;
  for (auto _ : state) {
    size_t done = 0;
    while (done < keys.size()) {
      done += index.LookupBatch(keys.data() + done, keys.size() - done, &out,
                                1u << 16);
    }
    benchmark::DoNotOptimize(out.rows.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_LookupBatch)->Arg(1)->Arg(7);

void BM_MorselFullCheck(benchmark::State& state) {
  // The all-tuple subset-probe pass of one candidate's full check: one
  // fully-bound point probe per R_out tuple. Arg(0) = the legacy kernel
  // (replan a fresh cursor per tuple); Arg(1) = the morsel kernel (plan
  // once, Rebind per tuple) — the E14 convoy-tail mechanism isolated.
  Database db = BuildTpch({.scale_factor = 0.01, .seed = 1}).ValueOrDie();
  QueryBuilder b(&db);
  InstanceId o = b.Instance("orders");
  InstanceId c = b.Instance("customer");
  b.Join(o, "o_custkey", c, "c_custkey");
  b.Project(o, "o_orderkey");
  b.Project(c, "c_name");
  PJQuery q = b.Build().ValueOrDie();
  Table rout = ExecuteToTable(db, q, "rout").ValueOrDie();
  const auto projections = q.projections();
  const bool batched = state.range(0) != 0;
  uint64_t probes = 0;
  for (auto _ : state) {
    std::vector<ValueId> row;
    if (batched) {
      PJQuery probe = q;
      for (size_t j = 0; j < projections.size(); ++j) {
        probe.AddSelection(projections[j].instance, projections[j].column,
                           rout.column(static_cast<ColumnId>(j)).at(0));
      }
      auto cursor = QueryCursor::Create(db, probe).ValueOrDie();
      std::vector<ValueId> vals(projections.size());
      for (RowId r = 0; r < rout.num_rows(); ++r) {
        for (size_t j = 0; j < vals.size(); ++j) {
          vals[j] = rout.column(static_cast<ColumnId>(j)).at(r);
        }
        cursor->Rebind(vals.data(), vals.size());
        benchmark::DoNotOptimize(cursor->Next(&row));
        ++probes;
      }
    } else {
      ExecPolicy scalar;
      scalar.batch_probes = false;
      PJQuery probe = q;
      for (RowId r = 0; r < rout.num_rows(); ++r) {
        probe.ClearSelections();
        for (size_t j = 0; j < projections.size(); ++j) {
          probe.AddSelection(projections[j].instance, projections[j].column,
                             rout.column(static_cast<ColumnId>(j)).at(r));
        }
        auto cursor = QueryCursor::Create(db, probe, {}, {}, scalar).ValueOrDie();
        benchmark::DoNotOptimize(cursor->Next(&row));
        ++probes;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
}
BENCHMARK(BM_MorselFullCheck)->Arg(0)->Arg(1);

void BM_JoinExecution(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.005, .seed = 1}).ValueOrDie();
  QueryBuilder b(&db);
  InstanceId o = b.Instance("orders");
  InstanceId l = b.Instance("lineitem");
  InstanceId p = b.Instance("part");
  b.Join(l, "l_orderkey", o, "o_orderkey");
  b.Join(l, "l_partkey", p, "p_partkey");
  b.Project(o, "o_orderkey");
  b.Project(p, "p_name");
  PJQuery q = b.Build().ValueOrDie();
  uint64_t rows = 0;
  for (auto _ : state) {
    auto cursor = QueryCursor::Create(db, q).ValueOrDie();
    std::vector<ValueId> row;
    while (cursor->Next(&row)) ++rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_JoinExecution);

void BM_PointProbe(benchmark::State& state) {
  // The workhorse of validation: a fully-bound membership probe.
  Database db = BuildTpch({.scale_factor = 0.005, .seed = 1}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout = ExecuteToTable(db, q1, "rout").ValueOrDie();
  size_t r = 0;
  for (auto _ : state) {
    PJQuery probe = q1;
    const auto& projections = probe.projections();
    for (size_t j = 0; j < projections.size(); ++j) {
      probe.AddSelection(projections[j].instance, projections[j].column,
                         rout.column(j).at(r % rout.num_rows()));
    }
    ++r;
    auto cursor = QueryCursor::Create(db, probe).ValueOrDie();
    std::vector<ValueId> row;
    benchmark::DoNotOptimize(cursor->Next(&row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointProbe);

void BM_ColumnCover(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.005, .seed = 1}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout = ExecuteToTable(db, q1, "rout").ValueOrDie();
  QreOptions opts;
  opts.use_pattern_pruning = state.range(0) != 0;
  for (auto _ : state) {
    QreStats stats;
    benchmark::DoNotOptimize(ComputeColumnCover(db, rout, opts, &stats));
  }
}
BENCHMARK(BM_ColumnCover)->Arg(0)->Arg(1);

void BM_CgmDiscovery(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.005, .seed = 1}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout = ExecuteToTable(db, q1, "rout").ValueOrDie();
  QreOptions opts;
  QreStats cover_stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &cover_stats);
  for (auto _ : state) {
    QreStats stats;
    benchmark::DoNotOptimize(DiscoverCgms(db, rout, cover, opts, &stats));
  }
}
BENCHMARK(BM_CgmDiscovery);

void BM_WalkDiscovery(benchmark::State& state) {
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 1}).ValueOrDie();
  PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
  Table rout = ExecuteToTable(db, q1, "rout").ValueOrDie();
  QreOptions opts;
  opts.max_walk_length = static_cast<int>(state.range(0));
  QreStats stats;
  ColumnCover cover = ComputeColumnCover(db, rout, opts, &stats);
  CgmSet cgms = DiscoverCgms(db, rout, cover, opts, &stats);
  MappingEnumerator e(&db, &rout, &cover, &cgms, &opts);
  ColumnMapping mapping;
  if (!e.Next(&mapping)) state.SkipWithError("no mapping");
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverWalks(db, mapping, opts));
  }
}
BENCHMARK(BM_WalkDiscovery)->Arg(2)->Arg(3)->Arg(4);

// ---- Resource governor (E13: accounting overhead) ---------------------------

void BM_GovernorChargeRelease(benchmark::State& state) {
  // The primitive cost every governed allocation pays: one optional charge
  // plus the matching release (two relaxed atomic RMWs + a peak CAS).
  ResourceGovernor gov(1ull << 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gov.TryCharge(64 * 1024, "block-buffer"));
    gov.Release(64 * 1024);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GovernorChargeRelease);

void BM_BlockExecGoverned(benchmark::State& state) {
  // The heaviest charged path: full block materialization of a 3-instance
  // join. Arg(0) = no governor attached (every charge short-circuits),
  // Arg(1) = governor attached with an ample budget (real accounting).
  // The delta between the two is the E13 accounting overhead.
  Database db = BuildTpch({.scale_factor = 0.005, .seed = 1}).ValueOrDie();
  QueryBuilder b(&db);
  InstanceId o = b.Instance("orders");
  InstanceId l = b.Instance("lineitem");
  InstanceId p = b.Instance("part");
  b.Join(l, "l_orderkey", o, "o_orderkey");
  b.Join(l, "l_partkey", p, "p_partkey");
  b.Project(o, "o_orderkey");
  b.Project(p, "p_name");
  PJQuery q = b.Build().ValueOrDie();
  std::shared_ptr<ResourceGovernor> gov;
  if (state.range(0) != 0) {
    gov = std::make_shared<ResourceGovernor>(1ull << 30);
    db.AttachGovernor(gov);
  }
  for (auto _ : state) {
    auto result = ExecuteBlock(db, q, "block", nullptr);
    benchmark::DoNotOptimize(result.ok());
  }
  if (gov != nullptr) db.DetachGovernor(gov.get());
}
BENCHMARK(BM_BlockExecGoverned)->Arg(0)->Arg(1);

void BM_ReverseGoverned(benchmark::State& state) {
  // End-to-end reverse engineering with the governor idle (budget 0 =
  // unlimited, accounting still live) vs. an ample configured budget.
  Database db = BuildTpch({.scale_factor = 0.002, .seed = 1}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  QreOptions opts;
  opts.memory_budget_bytes =
      state.range(0) != 0 ? (1ull << 30) : 0;
  for (auto _ : state) {
    FastQre engine(&db, opts);
    auto answer = engine.Reverse(workload[0].rout);
    benchmark::DoNotOptimize(answer.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseGoverned)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fastqre

BENCHMARK_MAIN();
