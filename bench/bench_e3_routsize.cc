// E3 — scalability in |R_out|: preprocessing (cover + CGM) and end-to-end
// time as the output table grows. The sweep fixes the database and query
// shape (L06: orders x lineitem x part, whose output is large) and feeds
// prefixes of R_out of increasing size to the *superset* variant, plus the
// full R_out to the exact variant.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();

  QueryBuilder b(&db);
  InstanceId o = b.Instance("orders");
  InstanceId l = b.Instance("lineitem");
  InstanceId p = b.Instance("part");
  b.Join(l, "l_orderkey", o, "o_orderkey");
  b.Join(l, "l_partkey", p, "p_partkey");
  b.Project(o, "o_orderkey");
  b.Project(p, "p_name");
  b.Project(l, "l_quantity");
  PJQuery q = b.Build().ValueOrDie();
  Table full = ExecuteToTable(db, q, "rout").ValueOrDie();

  std::printf("TPC-H scale=%.4g, query L06, full |R_out|=%zu\n\n", scale,
              full.num_rows());

  TablePrinter table(
      "E3: QRE time vs |R_out| (prefixes of L06's output)",
      {"|R_out|", "variant", "total", "cover", "CGMs", "candidates"});

  auto prefix = [&](size_t n) {
    Table t("prefix", db.dictionary());
    for (size_t c = 0; c < full.num_columns(); ++c) {
      FASTQRE_CHECK_OK(
          t.AddColumn(full.column(c).name(), full.column(c).type()));
    }
    for (RowId r = 0; r < n && r < full.num_rows(); ++r) {
      t.AppendRowIds(full.RowIds(r));
    }
    return t;
  };

  for (double frac : {0.01, 0.1, 0.5, 1.0}) {
    size_t n = std::max<size_t>(1, static_cast<size_t>(full.num_rows() * frac));
    Table rout = prefix(n);
    // Prefixes are only guaranteed solvable in the superset variant; the
    // full table also solves exactly.
    for (bool exact : {false, true}) {
      if (!exact || frac == 1.0) {
        QreOptions opts;
        opts.variant = exact ? QreVariant::kExact : QreVariant::kSuperset;
        opts.time_budget_seconds = 60.0;
        FastQre engine(&db, opts);
        Timer t;
        QreAnswer a = engine.Reverse(rout).ValueOrDie();
        table.AddRow({FormatCount(n), exact ? "exact" : "superset",
                      bench::ResultCell(a.found, !a.found, t.ElapsedSeconds()),
                      FormatDuration(a.stats.cover_seconds),
                      FormatDuration(a.stats.cgm_seconds),
                      FormatCount(a.stats.candidates_generated)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: preprocessing grows near-linearly in |R_out|\n"
      "(cover and CGM checks are per-distinct-tuple index probes) and stays\n"
      "a small fraction of total time.\n");
  return 0;
}
