// E4 — component ablations: contribution of each novel FastQRE component.
// Each column disables exactly one component; "full" enables everything.
// Run on the harder half of the ladder where the components matter.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  const double budget = bench::BenchBudget(15.0);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  struct Config {
    const char* name;
    std::function<void(QreOptions*)> apply;
  };
  std::vector<Config> configs = {
      {"full", [](QreOptions*) {}},
      {"-CGM", [](QreOptions* o) { o->use_cgm_ranking = false; }},
      {"-indirect", [](QreOptions* o) { o->use_indirect_coherence = false; }},
      {"-2queue", [](QreOptions* o) { o->use_two_queue_composer = false; }},
      {"-progress", [](QreOptions* o) { o->use_progressive_validation = false; }},
      {"-probing", [](QreOptions* o) { o->use_probing = false; }},
      {"-feedback", [](QreOptions* o) { o->use_feedback_pruning = false; }},
  };

  std::printf("TPC-H scale=%.4g, per-run budget=%.0fs\n\n", scale, budget);

  std::vector<std::string> header{"query"};
  for (const auto& c : configs) header.push_back(c.name);
  TablePrinter table("E4: time with one component disabled (exact QRE)",
                     header);

  for (const char* qname : {"L05", "L07", "L08", "L09", "L10"}) {
    const WorkloadQuery* wq = nullptr;
    for (const auto& w : workload) {
      if (w.name == qname) wq = &w;
    }
    std::vector<std::string> row{qname};
    for (const auto& config : configs) {
      QreOptions opts;
      config.apply(&opts);
      opts.time_budget_seconds = budget;
      FastQre engine(&db, opts);
      Timer t;
      QreAnswer a = engine.Reverse(wq->rout).ValueOrDie();
      row.push_back(bench::ResultCell(a.found, !a.found, t.ElapsedSeconds()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: each component mainly pays off on the complex\n"
      "cyclic queries (L09/L10); '-probing' and '-indirect' hurt the most\n"
      "because wrong candidates must then be refuted by full evaluation.\n");
  return 0;
}
