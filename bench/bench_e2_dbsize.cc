// E2 — scalability in database size: exact-QRE time for the paper's Query 1
// (the hardest ladder entry) and L05 as the database grows, FastQRE vs the
// exhaustive baseline (under budget).
//
// Paper claim: FastQRE scales to large databases because coherence checks
// and probing are index point-lookups; the baseline's block validations blow
// up with data size.
#include <cstdio>

#include "baseline/naive.h"
#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/builder.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double budget = bench::BenchBudget(10.0);
  const double base = bench::BenchScale(0.001);
  std::printf("baseline budget=%.0fs per query\n\n", budget);

  TablePrinter table("E2: exact QRE time vs database size (paper Query 1 / L05)",
                     {"scale", "rows(D)", "|R_out| Q1", "FastQRE Q1",
                      "baseline Q1", "FastQRE L05", "baseline L05"});

  for (double scale : {base, base * 2, base * 4, base * 8}) {
    Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
    PJQuery q1 = BuildPaperQuery1(db).ValueOrDie();
    Table rout_q1 =
        ExecuteToTable(db, q1, "rout", {"A", "B", "C", "D", "E"}).ValueOrDie();

    QueryBuilder b(&db);
    InstanceId s = b.Instance("supplier");
    InstanceId ps = b.Instance("partsupp");
    InstanceId p = b.Instance("part");
    b.Join(s, "s_suppkey", ps, "ps_suppkey");
    b.Join(p, "p_partkey", ps, "ps_partkey");
    b.Project(s, "s_name");
    b.Project(p, "p_name");
    Table rout_l05 =
        ExecuteToTable(db, b.Build().ValueOrDie(), "rout5").ValueOrDie();

    auto run = [&](const Table& rout, bool fast) {
      QreOptions opts =
          fast ? QreOptions() : NaiveQre::BaselineOptions(budget);
      opts.time_budget_seconds = budget * (fast ? 3 : 1);
      FastQre engine(&db, opts);
      Timer t;
      QreAnswer a = engine.Reverse(rout).ValueOrDie();
      return bench::ResultCell(a.found, !a.found, t.ElapsedSeconds());
    };

    table.AddRow({StringFormat("%.4g", scale), FormatCount(db.TotalRows()),
                  FormatCount(rout_q1.num_rows()), run(rout_q1, true),
                  run(rout_q1, false), run(rout_l05, true),
                  run(rout_l05, false)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: FastQRE's time grows roughly linearly with\n"
      "data size while the baseline crosses its budget early.\n");
  return 0;
}
