// E8 — the superset QRE variant (Definition 3.2): the analyst supplies a few
// sample tuples (a random sample of the true output) and asks for a query
// whose result contains them — the data-integration scenario of Section 1.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  const double budget = bench::BenchBudget(20.0);
  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();
  Rng rng(7);

  TablePrinter table(
      "E8: superset QRE on sampled R_out vs exact QRE on full R_out",
      {"query", "|R_out|", "sample", "superset time", "inst", "exact time"});

  for (const auto& wq : workload) {
    // Sample ~10 tuples (or all, if fewer).
    Table sample("sample", db.dictionary());
    for (size_t c = 0; c < wq.rout.num_columns(); ++c) {
      FASTQRE_CHECK_OK(
          sample.AddColumn(wq.rout.column(c).name(), wq.rout.column(c).type()));
    }
    size_t want = std::min<size_t>(10, wq.rout.num_rows());
    for (size_t k = 0; k < want; ++k) {
      sample.AppendRowIds(
          wq.rout.RowIds(static_cast<RowId>(rng.Uniform(wq.rout.num_rows()))));
    }

    QreOptions sup_opts;
    sup_opts.variant = QreVariant::kSuperset;
    sup_opts.time_budget_seconds = budget;
    FastQre sup_engine(&db, sup_opts);
    Timer t1;
    QreAnswer sa = sup_engine.Reverse(sample).ValueOrDie();
    double sup_s = t1.ElapsedSeconds();

    QreOptions ex_opts;
    ex_opts.time_budget_seconds = budget;
    FastQre ex_engine(&db, ex_opts);
    Timer t2;
    QreAnswer ea = ex_engine.Reverse(wq.rout).ValueOrDie();
    double ex_s = t2.ElapsedSeconds();

    table.AddRow({wq.name, FormatCount(wq.rout.num_rows()),
                  FormatCount(sample.num_rows()),
                  bench::ResultCell(sa.found, !sa.found, sup_s),
                  sa.found ? std::to_string(sa.num_instances) : "-",
                  bench::ResultCell(ea.found, !ea.found, ex_s)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: the superset variant is the easier problem —\n"
      "tree-shaped candidates suffice and validation can stop as soon as the\n"
      "sample is covered, so it resolves faster (often with a simpler query)\n"
      "than exact QRE on the full output.\n");
  return 0;
}
