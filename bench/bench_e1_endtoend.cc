// E1 — the headline experiment: end-to-end exact QRE time, FastQRE vs the
// exhaustive baseline, over the TPC-H query ladder (L01..L10, ending with
// the paper's Queries 2 and 1).
//
// Paper claim (Section 1): FastQRE "outperforms the existing state of the
// art by 2-3 orders of magnitude for complex queries, resolving those
// queries in seconds rather than days". The baseline runs under a time
// budget; ">budget" marks expiry, mirroring the paper's observation that
// exceeding a reasonable time bound is equivalent to failure.
#include <cstdio>

#include "baseline/naive.h"
#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

using namespace fastqre;

int main() {
  const double scale = bench::BenchScale(0.002);
  const double budget = bench::BenchBudget(20.0);

  Database db = BuildTpch({.scale_factor = scale, .seed = 42}).ValueOrDie();
  auto workload = StandardTpchWorkload(db).ValueOrDie();

  std::printf("TPC-H scale=%.4g (%zu total rows), baseline budget=%.0fs\n\n",
              scale, db.TotalRows(), budget);

  TablePrinter table(
      "E1: exact QRE end-to-end time (FastQRE vs exhaustive baseline)",
      {"query", "|R_out|", "inst", "joins", "FastQRE", "candidates",
       "baseline", "cand(base)", "speedup"});

  for (const auto& wq : workload) {
    QreOptions fast_opts;
    fast_opts.time_budget_seconds = budget;
    FastQre fast(&db, fast_opts);
    Timer t1;
    QreAnswer fa = fast.Reverse(wq.rout).ValueOrDie();
    double fast_s = t1.ElapsedSeconds();

    NaiveQre naive(&db, budget);
    Timer t2;
    QreAnswer na = naive.Reverse(wq.rout).ValueOrDie();
    double naive_s = t2.ElapsedSeconds();

    std::string speedup = "-";
    if (fa.found) {
      double ratio = naive_s / fast_s;
      speedup = StringFormat("%s%.1fx", na.found ? "" : ">", ratio);
    }
    table.AddRow({wq.name, FormatCount(wq.rout.num_rows()),
                  std::to_string(wq.query.num_instances()),
                  std::to_string(wq.query.joins().size()),
                  bench::ResultCell(fa.found, !fa.found, fast_s),
                  FormatCount(fa.stats.candidates_generated),
                  bench::ResultCell(na.found, !na.found, naive_s),
                  FormatCount(na.stats.candidates_generated), speedup});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: FastQRE stays in the sub-second-to-seconds\n"
      "range as query complexity grows, while the exhaustive baseline\n"
      "degrades by orders of magnitude and times out on the complex cyclic\n"
      "self-join queries (L09/L10 = paper Queries 2/1).\n");
  return 0;
}
