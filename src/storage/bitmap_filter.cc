#include "storage/bitmap_filter.h"

namespace fastqre {

BitmapFilter BuildColumnPresenceFilter(const Table& table, ColumnId col,
                                       size_t universe) {
  // gov: charged — callers cache the filter through
  // Database::GetOrBuildPresenceFilter, which charges "filter-build".
  BitmapFilter filter(universe);
  const Column& c = table.column(col);
  const ValueId* data = c.data().data();
  const size_t n = table.num_rows();
  for (size_t r = 0; r < n; ++r) filter.Set(data[r]);
  return filter;
}

CompositeKeyFilter::CompositeKeyFilter(const Table& table,
                                       const std::vector<ColumnId>& cols) {
  const size_t rows = table.num_rows();
  // ~8 slots per row keeps the false-positive rate near 1/8 with a single
  // hash function while the whole filter fits mid-level caches.
  size_t bits = 64;
  while (bits < rows * 8) bits <<= 1;
  mask_ = bits - 1;
  // gov: charged — callers cache the filter through
  // Database::GetOrBuildKeyFilter, which charges "filter-build".
  words_.assign(bits / 64, 0);
  std::vector<const ValueId*> data(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    data[i] = table.column(cols[i]).data().data();
  }
  std::vector<ValueId> key(cols.size());
  for (RowId r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = data[i][r];
    const uint64_t h = Hash(key.data(), key.size()) & mask_;
    words_[h >> 6] |= uint64_t{1} << (h & 63);
  }
}

}  // namespace fastqre
