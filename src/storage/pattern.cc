#include "storage/pattern.h"

namespace fastqre {

ColumnPattern ComputeColumnPattern(const Column& column, const Dictionary& dict) {
  ColumnPattern p;
  p.num_distinct = column.NumDistinct();
  bool first = true;
  // det: order-insensitive — folds min/max/type/null flags, all commutative
  // aggregates over the distinct set.
  for (ValueId id : column.DistinctSet()) {
    if (id == kNullValueId) {
      p.has_nulls = true;
      continue;
    }
    const Value& v = dict.Get(id);
    if (first) {
      p.type = v.type();
      p.min_value = v;
      p.max_value = v;
      first = false;
    } else {
      if (v < p.min_value) p.min_value = v;
      if (p.max_value < v) p.max_value = v;
    }
  }
  return p;
}

bool PatternCompatible(const ColumnPattern& sub, const ColumnPattern& super) {
  // An all-null sub column only needs the super column to contain NULL.
  if (sub.type == ValueType::kNull) return !sub.has_nulls || super.has_nulls;
  if (sub.type != super.type) return false;
  if (sub.num_distinct > super.num_distinct) return false;
  if (sub.has_nulls && !super.has_nulls) return false;
  if (super.type == ValueType::kNull) return false;
  if (sub.min_value < super.min_value) return false;
  if (super.max_value < sub.max_value) return false;
  return true;
}

}  // namespace fastqre
