// Dictionary: global value interning for a database.
//
// Every distinct Value seen by a Database (including a later-encoded R_out)
// maps to a dense 32-bit ValueId. Two cells are equal iff their ids are
// equal, across columns and tables, which turns the paper's π/⊆ containment
// machinery into integer-set operations.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "storage/value.h"

namespace fastqre {

/// \brief Dense identifier of an interned Value. Id 0 is always NULL.
using ValueId = uint32_t;

/// \brief The id the NULL value interns to.
inline constexpr ValueId kNullValueId = 0;

/// \brief Append-only value interner shared by all tables of a Database.
///
/// Thread-safe: concurrent Intern/Find/Get are allowed (reader-writer
/// locking). Values live in a deque, so the reference returned by Get()
/// stays valid across later Intern() calls.
class Dictionary {
 public:
  Dictionary() {
    // Reserve id 0 for NULL so callers can test nullness without a lookup.
    ids_.emplace(Value::Null(), kNullValueId);
    values_.push_back(Value::Null());
  }

  /// Returns the id of `v`, interning it if new.
  ValueId Intern(const Value& v) {
    {
      ReaderMutexLock lock(&mu_);
      auto it = ids_.find(v);
      if (it != ids_.end()) return it->second;
    }
    WriterMutexLock lock(&mu_);
    auto it = ids_.find(v);  // re-check: another thread may have won the race
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(v);
    ids_.emplace(v, id);
    return id;
  }

  /// Returns the id of `v` if already interned, else kNotInterned.
  static constexpr ValueId kNotInterned = 0xffffffffu;
  ValueId Find(const Value& v) const {
    ReaderMutexLock lock(&mu_);
    auto it = ids_.find(v);
    return it == ids_.end() ? kNotInterned : it->second;
  }

  /// Returns the value for an id. Precondition: id < size(). The reference
  /// is stable for the dictionary's lifetime (deque storage).
  const Value& Get(ValueId id) const {
    ReaderMutexLock lock(&mu_);
    return values_[id];
  }

  /// Number of interned values (including NULL).
  size_t size() const {
    ReaderMutexLock lock(&mu_);
    return values_.size();
  }

 private:
  mutable SharedMutex mu_;
  std::unordered_map<Value, ValueId, ValueHash> ids_ GUARDED_BY(mu_);
  std::deque<Value> values_ GUARDED_BY(mu_);
};

}  // namespace fastqre
