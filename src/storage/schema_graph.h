// SchemaGraph: the labeled multigraph G_S over the tables of a database.
//
// Nodes are tables; an edge (R_i.a, R_j.b) says a join R_i.a = R_j.b is
// possible. Parallel edges (different column pairs between the same tables)
// and self-loops (e.g. employee.manager_id = employee.id) are supported, as
// required by Section 3 of the paper. The QRE walk machinery traverses this
// graph; it does not care how the edges were produced, but Database derives
// them from declared pk-fk constraints, matching the paper's empirical setup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/table.h"

namespace fastqre {

/// \brief Index of an edge within a SchemaGraph.
using EdgeId = uint32_t;

/// \brief One join edge of the schema graph. side 0/1 are interchangeable;
/// the edge is undirected.
struct SchemaEdge {
  EdgeId id = 0;
  TableId table[2] = {0, 0};
  ColumnId column[2] = {0, 0};

  /// True if both endpoints are the same table (self-loop).
  bool IsSelfLoop() const { return table[0] == table[1]; }

  /// Given one endpoint table, returns which side (0/1) it is. For
  /// self-loops returns 0. Precondition: t is an endpoint.
  int SideOf(TableId t) const { return table[0] == t ? 0 : 1; }
};

/// \brief Undirected multigraph over tables.
class SchemaGraph {
 public:
  /// Adds an edge table_a.col_a = table_b.col_b; returns its id.
  EdgeId AddEdge(TableId table_a, ColumnId col_a, TableId table_b, ColumnId col_b) {
    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(SchemaEdge{id, {table_a, table_b}, {col_a, col_b}});
    EnsureTable(std::max(table_a, table_b));
    adjacency_[table_a].push_back(id);
    if (table_b != table_a) adjacency_[table_b].push_back(id);
    return id;
  }

  size_t num_edges() const { return edges_.size(); }
  const SchemaEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<SchemaEdge>& edges() const { return edges_; }

  /// Edges incident to table `t` (self-loops appear once).
  const std::vector<EdgeId>& EdgesOf(TableId t) const {
    static const std::vector<EdgeId> kEmpty;
    if (t >= adjacency_.size()) return kEmpty;
    return adjacency_[t];
  }

 private:
  void EnsureTable(TableId t) {
    if (adjacency_.size() <= t) adjacency_.resize(t + 1);
  }

  std::vector<SchemaEdge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace fastqre
