// CSV ingestion and export — the "Parsing Data" preprocessing component.
//
// R_out typically arrives as an exported spreadsheet (Example 2.1's excel
// table); LoadCsv turns such a file into a Table encoded against the target
// database's dictionary, inferring column types (int64 / double / string).
#pragma once

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace fastqre {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  char separator = ',';
  /// First row holds column names. If false, columns are named c0, c1, ...
  bool has_header = true;
  /// Cells equal to this string become NULL (in addition to empty cells).
  std::string null_token = "";
  /// Declared column types. Empty: infer per column (int64 -> double ->
  /// string widening). Non-empty: must match the column count; cells are
  /// parsed as the declared type (a non-parsing cell is an error), which
  /// keeps round trips exact (e.g. the string "05" is not narrowed to 5).
  std::vector<ValueType> column_types;
};

/// \brief Parses CSV text into a table named `table_name`, interning values
/// into `dict` (pass the target Database's dictionary so containment checks
/// against it are id-comparisons). Column types are inferred: a column where
/// every non-null cell parses as int64 is int64; else double; else string.
Result<Table> LoadCsvString(const std::string& csv, const std::string& table_name,
                            std::shared_ptr<Dictionary> dict,
                            const CsvOptions& options = CsvOptions());

/// \brief LoadCsvString over a file's contents.
Result<Table> LoadCsvFile(const std::string& path, const std::string& table_name,
                          std::shared_ptr<Dictionary> dict,
                          const CsvOptions& options = CsvOptions());

/// \brief Renders a table as CSV (header + rows).
std::string TableToCsv(const Table& table, char separator = ',');

}  // namespace fastqre
