// Database: catalog of tables + pk-fk constraints + derived schema graph +
// index cache. This is the substrate the QRE pipeline runs against.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <functional>

#include "common/counters.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/bitmap_filter.h"
#include "storage/dictionary.h"
#include "storage/index.h"
#include "storage/pattern.h"
#include "storage/schema_graph.h"
#include "storage/table.h"

namespace fastqre {

class ResourceGovernor;

/// \brief A declared pk-fk constraint (child.fk_col references parent.pk_col).
struct ForeignKey {
  TableId child_table;
  ColumnId child_column;
  TableId parent_table;
  ColumnId parent_column;
};

/// \brief Counters describing on-demand index construction (the paper's
/// "Index Creation" preprocessing component). Counters are relaxed atomics:
/// they are bumped from concurrent validation workers.
struct IndexBuildStats {
  RelaxedCounter indexes_built = 0;
  RelaxedCounter cache_hits = 0;
  RelaxedDouble build_seconds = 0.0;
};

/// \brief An in-memory relational database: tables sharing one dictionary,
/// pk-fk constraints, the schema graph they induce, and a cache of
/// on-demand hash indexes.
///
/// Thread-safety: schema/data mutation (AddTable, AddForeignKey, appends)
/// is single-threaded — the load phase. Once loaded, all logically-const
/// reads, including the lazily-built index, pattern and presence-filter
/// caches, are safe from any number of threads: each cache entry is built
/// exactly once (a per-key build-once slot) while other requesters of the
/// same key block and requesters of different keys proceed. Index builds
/// are additionally interruptible (TryGetOrBuildIndex): an aborted build
/// publishes nothing and leaves its slot rebuildable.
class Database {
 public:
  Database() : dict_(std::make_shared<Dictionary>()) {}

  // Movable, not copyable (tables can be large). Moves are explicit because
  // the lazy caches hold a mutex behind a pointer; the moved-from database
  // is left with fresh empty caches and stays destructible/usable.
  Database(Database&& o) noexcept
      : dict_(std::move(o.dict_)),
        tables_(std::move(o.tables_)),
        by_name_(std::move(o.by_name_)),
        fks_(std::move(o.fks_)),
        graph_(std::move(o.graph_)),
        caches_(std::exchange(o.caches_, std::make_unique<LazyCaches>())) {}
  Database& operator=(Database&& o) noexcept {
    dict_ = std::move(o.dict_);
    tables_ = std::move(o.tables_);
    by_name_ = std::move(o.by_name_);
    fks_ = std::move(o.fks_);
    graph_ = std::move(o.graph_);
    caches_ = std::exchange(o.caches_, std::make_unique<LazyCaches>());
    return *this;
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// Creates an empty table; fails on duplicate name.
  Result<TableId> AddTable(const std::string& name);

  size_t num_tables() const { return tables_.size(); }
  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  Result<TableId> FindTable(const std::string& name) const;

  /// Declares child.fk = parent.pk and adds the corresponding schema-graph
  /// edge. Column/table names are resolved immediately.
  Status AddForeignKey(const std::string& child_table, const std::string& child_col,
                       const std::string& parent_table, const std::string& parent_col);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const SchemaGraph& schema_graph() const { return graph_; }

  /// Adds an arbitrary schema-graph join edge without pk-fk semantics.
  /// (Section 3: "Our approach applies to any G_S irrespective of how its
  /// edges have been generated.")
  EdgeId AddJoinEdge(TableId table_a, ColumnId col_a, TableId table_b, ColumnId col_b) {
    return graph_.AddEdge(table_a, col_a, table_b, col_b);
  }

  /// Returns (building and caching on first use) the hash index over the
  /// given columns of the given table.
  const HashIndex& GetOrBuildIndex(TableId t, std::vector<ColumnId> cols) const;

  /// Like GetOrBuildIndex, but polls `interrupt` (may be empty) every
  /// kInterruptPollMask rows of a build it runs itself and returns nullptr
  /// if it fired — so a deadline or Cancel() lands *inside* a large
  /// hash-join build instead of after it. An aborted build publishes
  /// nothing; the cache slot stays rebuildable, and a concurrent waiter on
  /// the same key takes the build over (or a later caller retries).
  const HashIndex* TryGetOrBuildIndex(
      TableId t, std::vector<ColumnId> cols,
      const std::function<bool()>& interrupt) const;

  /// Returns (building and caching on first use) the presence bitmap of one
  /// column: bit v set iff value id v appears in t.c — the sideways
  /// information passing filter source (DESIGN.md §13). One bit per
  /// dictionary entry; bytes are charged to the attached governor as
  /// "filter-build" (required charge, like index builds).
  const BitmapFilter& GetOrBuildPresenceFilter(TableId t, ColumnId c) const;

  /// Returns (building and caching on first use) the hashed presence filter
  /// over a composite column tuple of `t` — the sideways-passing miss
  /// rejection for multi-column join keys, where single-column presence
  /// bitmaps are blind to absent value *combinations* (DESIGN.md §13).
  /// ~One byte per table row, charged as "filter-build" like the bitmaps.
  const CompositeKeyFilter& GetOrBuildKeyFilter(
      TableId t, std::vector<ColumnId> cols) const;

  /// Returns (computing and caching on first use) the value pattern of a
  /// column — the per-column statistic behind cover-comparison pruning.
  /// Invalidated never: patterns are computed on sealed data (the QRE
  /// pipeline treats the database as read-only).
  const ColumnPattern& GetColumnPattern(TableId t, ColumnId c) const;

  const IndexBuildStats& index_stats() const { return caches_->index_stats; }

  /// Attaches the resource governor charged for lazily-built index and
  /// pattern bytes (DESIGN.md §11). Logically const: governing is an
  /// accounting concern, not a data mutation. One governor at a time — the
  /// last attach wins, so multiple engines sharing a Database account index
  /// builds to the most recently constructed engine (documented limitation;
  /// indexes are built once and shared, so per-engine attribution is
  /// inherently approximate). Pass nullptr to detach. Thread-safe.
  void AttachGovernor(std::shared_ptr<ResourceGovernor> governor) const;

  /// The currently attached governor; may be null.
  std::shared_ptr<ResourceGovernor> governor() const;

  /// Detaches `governor` iff it is still the attached one (compare-and-clear,
  /// so a dying engine never clobbers a newer engine's attachment).
  /// Thread-safe.
  void DetachGovernor(const ResourceGovernor* governor) const;

  /// Total number of rows across all tables.
  size_t TotalRows() const;

 private:
  std::shared_ptr<Dictionary> dict_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> by_name_;
  std::vector<ForeignKey> fks_;
  SchemaGraph graph_;

  // Lazily-built caches. Mutable because building an index / pattern is a
  // logically-const acceleration. Each entry is a heap slot found-or-created
  // under the map mutex, then filled under its own once_flag, so concurrent
  // requests for the same key build exactly once (the losers block until the
  // winner finishes) while distinct keys build in parallel. Slots are
  // shared_ptr so a reference handed out stays valid for the Database's
  // lifetime regardless of map rebalancing. The whole cache state lives
  // behind a pointer to keep Database movable despite the mutex.
  // Index slots are a small build-once state machine instead of a
  // std::call_once: an *interruptible* build that aborts must leave the slot
  // rebuildable (call_once would latch the abort forever). States:
  // kEmpty -> kBuilding (one builder at a time, building outside the slot
  // lock) -> kBuilt (terminal; `index` is immutable thereafter), or back to
  // kEmpty when the builder's interrupt fired — waiters are notified and the
  // first non-interrupted one takes the build over.
  struct IndexSlot {
    enum class State { kEmpty, kBuilding, kBuilt };
    Mutex mu;
    CondVar cv;
    State state GUARDED_BY(mu) = State::kEmpty;
    std::unique_ptr<HashIndex> index GUARDED_BY(mu);
  };
  struct PatternSlot {
    std::once_flag once;
    ColumnPattern pattern;
  };
  struct FilterSlot {
    std::once_flag once;
    std::unique_ptr<BitmapFilter> filter;
  };
  struct KeyFilterSlot {
    std::once_flag once;
    std::unique_ptr<CompositeKeyFilter> filter;
  };
  struct LazyCaches {
    Mutex mu;
    std::map<std::pair<TableId, std::vector<ColumnId>>,
             std::shared_ptr<IndexSlot>>
        index_cache GUARDED_BY(mu);
    // Relaxed atomic counters: bumped lock-free from concurrent builders.
    IndexBuildStats index_stats;
    std::map<std::pair<TableId, ColumnId>, std::shared_ptr<PatternSlot>>
        pattern_cache GUARDED_BY(mu);
    // Presence bitmaps for sideways information passing (DESIGN.md §13).
    std::map<std::pair<TableId, ColumnId>, std::shared_ptr<FilterSlot>>
        filter_cache GUARDED_BY(mu);
    // Hashed composite-key presence filters (multi-column SIP).
    std::map<std::pair<TableId, std::vector<ColumnId>>,
             std::shared_ptr<KeyFilterSlot>>
        key_filter_cache GUARDED_BY(mu);
    // Charged for index/pattern/filter build bytes; held as shared_ptr so a
    // build racing an engine teardown keeps the governor alive.
    std::shared_ptr<ResourceGovernor> governor GUARDED_BY(mu);
  };
  mutable std::unique_ptr<LazyCaches> caches_ = std::make_unique<LazyCaches>();
};

}  // namespace fastqre
