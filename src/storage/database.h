// Database: catalog of tables + pk-fk constraints + derived schema graph +
// index cache. This is the substrate the QRE pipeline runs against.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/index.h"
#include "storage/pattern.h"
#include "storage/schema_graph.h"
#include "storage/table.h"

namespace fastqre {

/// \brief A declared pk-fk constraint (child.fk_col references parent.pk_col).
struct ForeignKey {
  TableId child_table;
  ColumnId child_column;
  TableId parent_table;
  ColumnId parent_column;
};

/// \brief Counters describing on-demand index construction (the paper's
/// "Index Creation" preprocessing component).
struct IndexBuildStats {
  uint64_t indexes_built = 0;
  uint64_t cache_hits = 0;
  double build_seconds = 0.0;
};

/// \brief An in-memory relational database: tables sharing one dictionary,
/// pk-fk constraints, the schema graph they induce, and a cache of
/// on-demand hash indexes.
///
/// Not thread-safe: the lazily-built caches (indexes, patterns, per-column
/// distinct sets) mutate under logically-const reads, so concurrent QRE
/// runs must use separate Database instances.
class Database {
 public:
  Database() : dict_(std::make_shared<Dictionary>()) {}

  // Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// Creates an empty table; fails on duplicate name.
  Result<TableId> AddTable(const std::string& name);

  size_t num_tables() const { return tables_.size(); }
  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  Result<TableId> FindTable(const std::string& name) const;

  /// Declares child.fk = parent.pk and adds the corresponding schema-graph
  /// edge. Column/table names are resolved immediately.
  Status AddForeignKey(const std::string& child_table, const std::string& child_col,
                       const std::string& parent_table, const std::string& parent_col);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const SchemaGraph& schema_graph() const { return graph_; }

  /// Adds an arbitrary schema-graph join edge without pk-fk semantics.
  /// (Section 3: "Our approach applies to any G_S irrespective of how its
  /// edges have been generated.")
  EdgeId AddJoinEdge(TableId table_a, ColumnId col_a, TableId table_b, ColumnId col_b) {
    return graph_.AddEdge(table_a, col_a, table_b, col_b);
  }

  /// Returns (building and caching on first use) the hash index over the
  /// given columns of the given table.
  const HashIndex& GetOrBuildIndex(TableId t, std::vector<ColumnId> cols) const;

  /// Returns (computing and caching on first use) the value pattern of a
  /// column — the per-column statistic behind cover-comparison pruning.
  /// Invalidated never: patterns are computed on sealed data (the QRE
  /// pipeline treats the database as read-only).
  const ColumnPattern& GetColumnPattern(TableId t, ColumnId c) const;

  const IndexBuildStats& index_stats() const { return index_stats_; }

  /// Total number of rows across all tables.
  size_t TotalRows() const;

 private:
  std::shared_ptr<Dictionary> dict_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> by_name_;
  std::vector<ForeignKey> fks_;
  SchemaGraph graph_;

  // Index cache: keyed by (table, column list). Mutable because building an
  // index is a logically-const acceleration.
  mutable std::map<std::pair<TableId, std::vector<ColumnId>>,
                   std::unique_ptr<HashIndex>>
      index_cache_;
  mutable IndexBuildStats index_stats_;
  mutable std::map<std::pair<TableId, ColumnId>, ColumnPattern> pattern_cache_;
};

}  // namespace fastqre
