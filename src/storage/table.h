// Table: a named collection of equal-length Columns sharing a Dictionary.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace fastqre {

/// \brief Index of a table within its Database.
using TableId = uint32_t;

/// \brief An in-memory relation. Rows are appended via Value (interned) or
/// pre-encoded ValueIds; reads are columnar.
class Table {
 public:
  Table(std::string name, std::shared_ptr<Dictionary> dict)
      : name_(std::move(name)), dict_(std::move(dict)) {}

  const std::string& name() const { return name_; }
  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// Declares a new column. Fails if the name already exists or rows have
  /// already been appended.
  Status AddColumn(const std::string& name, ValueType type);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const Column& column(ColumnId c) const { return columns_[c]; }
  Column& column(ColumnId c) { return columns_[c]; }

  /// Returns the index of the named column, or NotFound.
  Result<ColumnId> FindColumn(const std::string& name) const;

  /// Interns each Value and appends a row. Arity must match; each non-null
  /// cell must match its column's declared type.
  Status AppendRow(const std::vector<Value>& values);

  /// Fast path: appends a row of already-interned ids (no type checks).
  void AppendRowIds(const std::vector<ValueId>& ids);

  /// Reads back a row as ValueIds.
  std::vector<ValueId> RowIds(RowId row) const;

  /// Reads back a row as decoded Values.
  std::vector<Value> RowValues(RowId row) const;

  void ReserveRows(size_t n) {
    for (auto& c : columns_) c.Reserve(n);
  }

 private:
  std::string name_;
  std::shared_ptr<Dictionary> dict_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, ColumnId> by_name_;
};

}  // namespace fastqre
