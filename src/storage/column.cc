#include "storage/column.h"

namespace fastqre {

const std::unordered_set<ValueId>& Column::DistinctSet() const {
  if (!distinct_.has_value()) {
    std::unordered_set<ValueId> s;
    s.reserve(data_.size());
    for (ValueId id : data_) s.insert(id);
    distinct_ = std::move(s);
  }
  return *distinct_;
}

bool Column::HasNulls() const {
  if (!has_nulls_.has_value()) {
    has_nulls_ = DistinctSet().count(kNullValueId) > 0;
  }
  return *has_nulls_;
}

}  // namespace fastqre
