#include "storage/column.h"

namespace fastqre {

const std::unordered_set<ValueId>& Column::DistinctSet() const {
  MutexLock lock(&stats_->mu);
  if (!stats_->distinct.has_value()) {
    std::unordered_set<ValueId> s;
    s.reserve(data_.size());
    for (ValueId id : data_) s.insert(id);
    stats_->distinct = std::move(s);
  }
  // The reference stays valid: the optional is only reset by InvalidateStats,
  // which only runs during the single-threaded load phase.
  return *stats_->distinct;
}

bool Column::HasNulls() const {
  MutexLock lock(&stats_->mu);
  if (!stats_->has_nulls.has_value()) {
    bool has = false;
    for (ValueId id : data_) {
      if (id == kNullValueId) {
        has = true;
        break;
      }
    }
    stats_->has_nulls = has;
  }
  return *stats_->has_nulls;
}

}  // namespace fastqre
