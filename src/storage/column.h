// Column: a named, typed vector of dictionary-encoded values with lazily
// computed statistics (distinct set, uniqueness, min/max).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace fastqre {

/// \brief Index of a column within its table.
using ColumnId = uint32_t;
/// \brief Index of a row within its table.
using RowId = uint32_t;

/// \brief One column of a Table. Values are ValueIds into the owning
/// Database's Dictionary; NULL cells store kNullValueId.
///
/// Appending is single-threaded (load phase); once the data is sealed, the
/// lazily computed statistics are safe to request from concurrent readers
/// (build-once under an internal mutex).
class Column {
 public:
  Column(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}

  // Copies duplicate the data and start with a fresh (empty) stats cache;
  // moves steal the cache and leave the source with a fresh one.
  Column(const Column& o)
      : name_(o.name_), type_(o.type_), data_(o.data_) {}
  Column& operator=(const Column& o) {
    name_ = o.name_;
    type_ = o.type_;
    data_ = o.data_;
    stats_ = std::make_unique<LazyStats>();
    return *this;
  }
  Column(Column&& o) noexcept
      : name_(std::move(o.name_)),
        type_(o.type_),
        data_(std::move(o.data_)),
        stats_(std::exchange(o.stats_, std::make_unique<LazyStats>())) {}
  Column& operator=(Column&& o) noexcept {
    name_ = std::move(o.name_);
    type_ = o.type_;
    data_ = std::move(o.data_);
    stats_ = std::exchange(o.stats_, std::make_unique<LazyStats>());
    return *this;
  }

  const std::string& name() const { return name_; }

  /// Declared type. Cells are either this type or NULL.
  ValueType type() const { return type_; }

  size_t size() const { return data_.size(); }
  ValueId at(RowId row) const { return data_[row]; }
  const std::vector<ValueId>& data() const { return data_; }

  void Append(ValueId id) {
    data_.push_back(id);
    InvalidateStats();
  }
  void Reserve(size_t n) { data_.reserve(n); }

  /// The set of distinct ValueIds in this column. Computed once, cached.
  const std::unordered_set<ValueId>& DistinctSet() const;

  /// Number of distinct values (including NULL if present).
  size_t NumDistinct() const { return DistinctSet().size(); }

  /// True if no value occurs twice (a key column in isolation).
  bool IsUnique() const { return NumDistinct() == size(); }

  /// True if any cell is NULL.
  bool HasNulls() const;

 private:
  // Stats live behind a pointer so Column stays movable despite the mutex.
  struct LazyStats {
    Mutex mu;
    std::optional<std::unordered_set<ValueId>> distinct GUARDED_BY(mu);
    std::optional<bool> has_nulls GUARDED_BY(mu);
  };

  void InvalidateStats() {
    MutexLock lock(&stats_->mu);
    stats_->distinct.reset();
    stats_->has_nulls.reset();
  }

  std::string name_;
  ValueType type_;
  std::vector<ValueId> data_;
  mutable std::unique_ptr<LazyStats> stats_ = std::make_unique<LazyStats>();
};

}  // namespace fastqre
