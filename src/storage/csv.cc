#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace fastqre {

namespace {

// Splits one CSV line honoring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool NeedsQuoting(const std::string& s, char sep) {
  return s.find(sep) != std::string::npos || s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteCsv(const std::string& s, char sep) {
  if (!NeedsQuoting(s, sep)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Table> LoadCsvString(const std::string& csv, const std::string& table_name,
                            std::shared_ptr<Dictionary> dict,
                            const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  {
    std::istringstream in(csv);
    std::string line;
    std::vector<std::string> raw;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      raw.push_back(line);
    }
    // A trailing empty line is the final row terminator, not a row; interior
    // empty lines are legitimate rows (a NULL cell in a 1-column table).
    while (!raw.empty() && raw.back().empty()) raw.pop_back();
    rows.reserve(raw.size());
    for (const std::string& l : raw) {
      rows.push_back(SplitCsvLine(l, options.separator));
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input for table '" + table_name + "'");
  }

  std::vector<std::string> header;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const auto& name : rows[0]) header.emplace_back(TrimString(name));
    first_data_row = 1;
  } else {
    for (size_t i = 0; i < rows[0].size(); ++i) {
      header.push_back("c" + std::to_string(i));
    }
  }
  const size_t ncols = header.size();
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (rows[r].size() != ncols) {
      return Status::InvalidArgument(StringFormat(
          "CSV row %zu has %zu fields; expected %zu", r, rows[r].size(), ncols));
    }
  }

  auto is_null = [&](const std::string& cell) {
    return cell.empty() || cell == options.null_token;
  };

  // Use declared types when given; otherwise infer the narrowest type that
  // fits every non-null cell of each column.
  std::vector<ValueType> types(ncols, ValueType::kInt64);
  if (!options.column_types.empty()) {
    if (options.column_types.size() != ncols) {
      return Status::InvalidArgument(StringFormat(
          "declared %zu column types for %zu CSV columns",
          options.column_types.size(), ncols));
    }
    types = options.column_types;
  } else {
  for (size_t c = 0; c < ncols; ++c) {
    bool all_null = true;
    for (size_t r = first_data_row; r < rows.size(); ++r) {
      const std::string& cell = rows[r][c];
      if (is_null(cell)) continue;
      all_null = false;
      int64_t i64;
      double d;
      if (types[c] == ValueType::kInt64 && !ParseInt64(cell, &i64)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !ParseDouble(cell, &d)) {
        types[c] = ValueType::kString;
        break;
      }
    }
    if (all_null) types[c] = ValueType::kString;
  }
  }

  Table table(table_name, std::move(dict));
  for (size_t c = 0; c < ncols; ++c) {
    FASTQRE_RETURN_NOT_OK(table.AddColumn(header[c], types[c]));
  }
  std::vector<Value> row(ncols);
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = rows[r][c];
      if (is_null(cell)) {
        row[c] = Value::Null();
      } else if (types[c] == ValueType::kInt64) {
        int64_t v = 0;
        if (!ParseInt64(cell, &v)) {
          return Status::InvalidArgument(StringFormat(
              "row %zu column %zu: '%s' is not an int64", r, c, cell.c_str()));
        }
        row[c] = Value(v);
      } else if (types[c] == ValueType::kDouble) {
        double v = 0;
        if (!ParseDouble(cell, &v)) {
          return Status::InvalidArgument(StringFormat(
              "row %zu column %zu: '%s' is not a double", r, c, cell.c_str()));
        }
        row[c] = Value(v);
      } else {
        row[c] = Value(cell);
      }
    }
    FASTQRE_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<Table> LoadCsvFile(const std::string& path, const std::string& table_name,
                          std::shared_ptr<Dictionary> dict,
                          const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadCsvString(buf.str(), table_name, std::move(dict), options);
}

std::string TableToCsv(const Table& table, char separator) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += separator;
    out += QuoteCsv(table.column(c).name(), separator);
  }
  out += '\n';
  const auto& dict = *table.dictionary();
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += separator;
      const Value& v = dict.Get(table.column(c).at(r));
      if (!v.is_null()) out += QuoteCsv(v.ToString(), separator);
    }
    out += '\n';
  }
  return out;
}

}  // namespace fastqre
