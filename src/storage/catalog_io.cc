#include "storage/catalog_io.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "storage/csv.h"

namespace fastqre {

namespace fs = std::filesystem;

namespace {

Result<ValueType> ParseType(const std::string& s) {
  if (s == "int64") return ValueType::kInt64;
  if (s == "double") return ValueType::kDouble;
  if (s == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown column type '" + s + "' in manifest");
}

}  // namespace

namespace {

bool NameIsManifestSafe(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '/' || c == '\\') {
      return false;
    }
  }
  return true;
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& dir) {
  for (TableId t = 0; t < db.num_tables(); ++t) {
    if (!NameIsManifestSafe(db.table(t).name())) {
      return Status::InvalidArgument("table name '" + db.table(t).name() +
                                     "' is not manifest-safe");
    }
    for (ColumnId c = 0; c < db.table(t).num_columns(); ++c) {
      if (!NameIsManifestSafe(db.table(t).column(c).name())) {
        return Status::InvalidArgument("column name '" +
                                       db.table(t).column(c).name() +
                                       "' is not manifest-safe");
      }
    }
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir + "': " +
                           ec.message());
  }

  std::ostringstream manifest;
  manifest << "fastqre-db 1\n";
  for (TableId t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    manifest << "table " << table.name() << " " << table.num_columns() << "\n";
    for (ColumnId c = 0; c < table.num_columns(); ++c) {
      manifest << "column " << table.name() << " " << table.column(c).name()
               << " " << ValueTypeToString(table.column(c).type()) << "\n";
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    manifest << "fk " << db.table(fk.child_table).name() << " "
             << db.table(fk.child_table).column(fk.child_column).name() << " "
             << db.table(fk.parent_table).name() << " "
             << db.table(fk.parent_table).column(fk.parent_column).name()
             << "\n";
  }
  // Schema edges beyond the fks (AddJoinEdge): fks created the first
  // |foreign_keys| edges, in order.
  const auto& edges = db.schema_graph().edges();
  for (size_t e = db.foreign_keys().size(); e < edges.size(); ++e) {
    const SchemaEdge& edge = edges[e];
    manifest << "join " << db.table(edge.table[0]).name() << " "
             << db.table(edge.table[0]).column(edge.column[0]).name() << " "
             << db.table(edge.table[1]).name() << " "
             << db.table(edge.table[1]).column(edge.column[1]).name() << "\n";
  }
  {
    std::ofstream out(fs::path(dir) / "schema.fqre");
    if (!out) return Status::IOError("cannot write manifest in '" + dir + "'");
    out << manifest.str();
  }

  for (TableId t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    std::ofstream out(fs::path(dir) / (table.name() + ".csv"));
    if (!out) {
      return Status::IOError("cannot write table file for '" + table.name() +
                             "'");
    }
    out << TableToCsv(table);
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& dir) {
  std::ifstream in(fs::path(dir) / "schema.fqre");
  if (!in) {
    return Status::IOError("cannot open manifest '" + dir + "/schema.fqre'");
  }

  Database db;
  std::string line;
  bool header_seen = false;
  // Deferred constraint lines: applied after all tables are loaded.
  std::vector<std::vector<std::string>> fks;
  std::vector<std::vector<std::string>> joins;
  // Column declarations per table, in manifest order.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, ValueType>>>>
      table_decls;

  while (std::getline(in, line)) {
    std::string trimmed(TrimString(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tok = SplitString(trimmed, ' ');
    if (!header_seen) {
      if (tok.size() != 2 || tok[0] != "fastqre-db" || tok[1] != "1") {
        return Status::InvalidArgument("bad manifest header: '" + trimmed + "'");
      }
      header_seen = true;
      continue;
    }
    if (tok[0] == "table" && tok.size() == 3) {
      table_decls.emplace_back(tok[1],
                               std::vector<std::pair<std::string, ValueType>>{});
    } else if (tok[0] == "column" && tok.size() == 4) {
      if (table_decls.empty() || table_decls.back().first != tok[1]) {
        return Status::InvalidArgument("column line outside its table: '" +
                                       trimmed + "'");
      }
      FASTQRE_ASSIGN_OR_RETURN(ValueType type, ParseType(tok[3]));
      table_decls.back().second.emplace_back(tok[2], type);
    } else if (tok[0] == "fk" && tok.size() == 5) {
      fks.push_back(std::move(tok));
    } else if (tok[0] == "join" && tok.size() == 5) {
      joins.push_back(std::move(tok));
    } else {
      return Status::InvalidArgument("bad manifest line: '" + trimmed + "'");
    }
  }
  if (!header_seen) return Status::InvalidArgument("empty manifest");

  for (const auto& [name, columns] : table_decls) {
    FASTQRE_ASSIGN_OR_RETURN(TableId tid, db.AddTable(name));
    Table& table = db.table(tid);
    for (const auto& [col_name, type] : columns) {
      FASTQRE_RETURN_NOT_OK(table.AddColumn(col_name, type));
    }
    // Load rows from CSV against the manifest-declared types (no inference,
    // so round trips are exact — "05" stays a string).
    std::ifstream csv_in(fs::path(dir) / (name + ".csv"));
    if (!csv_in) {
      return Status::IOError("missing table file '" + name + ".csv'");
    }
    std::ostringstream buf;
    buf << csv_in.rdbuf();
    CsvOptions csv_opts;
    for (const auto& [col_name, type] : columns) {
      csv_opts.column_types.push_back(type);
    }
    FASTQRE_ASSIGN_OR_RETURN(
        Table parsed,
        LoadCsvString(buf.str(), name, db.dictionary(), csv_opts));
    if (parsed.num_columns() != columns.size()) {
      return Status::InvalidArgument(StringFormat(
          "table '%s': CSV has %zu columns, manifest declares %zu",
          name.c_str(), parsed.num_columns(), columns.size()));
    }
    for (RowId r = 0; r < parsed.num_rows(); ++r) {
      table.AppendRowIds(parsed.RowIds(r));
    }
  }

  for (const auto& fk : fks) {
    FASTQRE_RETURN_NOT_OK(db.AddForeignKey(fk[1], fk[2], fk[3], fk[4]));
  }
  for (const auto& j : joins) {
    FASTQRE_ASSIGN_OR_RETURN(TableId ta, db.FindTable(j[1]));
    FASTQRE_ASSIGN_OR_RETURN(TableId tb, db.FindTable(j[3]));
    FASTQRE_ASSIGN_OR_RETURN(ColumnId ca, db.table(ta).FindColumn(j[2]));
    FASTQRE_ASSIGN_OR_RETURN(ColumnId cb, db.table(tb).FindColumn(j[4]));
    db.AddJoinEdge(ta, ca, tb, cb);
  }
  return db;
}

}  // namespace fastqre
