// Column patterns: cheap per-column summaries used to prune column-cover
// comparisons (Section 4.1: "FastQRE first computes patterns formed by
// column values, that are then leveraged to avoid certain column
// comparisons").
//
// A pattern captures type, distinct count, value range and null presence;
// containment pi_c(R_out) ⊆ pi_a(R) is impossible unless the patterns are
// compatible, and incompatibility is detected in O(1). Patterns are
// database-level statistics: Database caches one per column (see
// Database::GetColumnPattern), so repeated cover computations pay nothing.
#pragma once

#include "storage/column.h"
#include "storage/dictionary.h"

namespace fastqre {

/// \brief O(1)-comparable summary of a column's value set.
struct ColumnPattern {
  /// Type of the non-null values (kNull iff the column is entirely null).
  ValueType type = ValueType::kNull;
  size_t num_distinct = 0;  // including NULL if present
  bool has_nulls = false;
  /// Min / max over non-null values (Value ordering). Unset if all-null.
  Value min_value;
  Value max_value;
};

/// \brief Computes the pattern of a column (one pass over its distinct set).
ColumnPattern ComputeColumnPattern(const Column& column, const Dictionary& dict);

/// \brief True if a column with pattern `sub` could possibly be a subset of
/// a column with pattern `super`; false proves non-containment.
bool PatternCompatible(const ColumnPattern& sub, const ColumnPattern& super);

}  // namespace fastqre
