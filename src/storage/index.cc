#include "storage/index.h"

namespace fastqre {

HashIndex::HashIndex(const Table& table, std::vector<ColumnId> cols)
    : cols_(std::move(cols)) {
  const size_t n = table.num_rows();
  if (cols_.size() == 1) {
    const Column& c = table.column(cols_[0]);
    single_.reserve(n);
    for (RowId r = 0; r < n; ++r) {
      single_[c.at(r)].push_back(r);
    }
  } else {
    multi_.reserve(n);
    std::vector<ValueId> key(cols_.size());
    for (RowId r = 0; r < n; ++r) {
      for (size_t i = 0; i < cols_.size(); ++i) {
        key[i] = table.column(cols_[i]).at(r);
      }
      multi_[key].push_back(r);
    }
  }
  // Per-entry estimate: key storage + posting-list header and capacity +
  // ~16 bytes of hash-table node/bucket overhead. Computed once here so the
  // governor charge is O(keys) at build, not recomputed per query.
  size_t bytes = sizeof(HashIndex);
  if (cols_.size() == 1) {
    // det: order-insensitive — commutative sum of per-entry byte estimates.
    for (const auto& [key, rows] : single_) {
      bytes += sizeof(key) + sizeof(rows) + rows.capacity() * sizeof(RowId) + 16;
    }
  } else {
    // det: order-insensitive — commutative sum of per-entry byte estimates.
    for (const auto& [key, rows] : multi_) {
      bytes += sizeof(rows) + key.capacity() * sizeof(ValueId) +
               rows.capacity() * sizeof(RowId) + 16;
    }
  }
  estimated_bytes_ = bytes;
}

}  // namespace fastqre
