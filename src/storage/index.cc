#include "storage/index.h"

namespace fastqre {

HashIndex::HashIndex(const Table& table, std::vector<ColumnId> cols)
    : cols_(std::move(cols)) {
  const size_t n = table.num_rows();
  if (cols_.size() == 1) {
    const Column& c = table.column(cols_[0]);
    single_.reserve(n);
    for (RowId r = 0; r < n; ++r) {
      single_[c.at(r)].push_back(r);
    }
  } else {
    multi_.reserve(n);
    std::vector<ValueId> key(cols_.size());
    for (RowId r = 0; r < n; ++r) {
      for (size_t i = 0; i < cols_.size(); ++i) {
        key[i] = table.column(cols_[i]).at(r);
      }
      multi_[key].push_back(r);
    }
  }
}

}  // namespace fastqre
