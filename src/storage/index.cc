#include "storage/index.h"

#include "common/interrupt.h"

namespace fastqre {

HashIndex::HashIndex(const Table& table, std::vector<ColumnId> cols)
    : cols_(std::move(cols)) {
  (void)BuildRows(table, {});  // no interrupt: cannot fail
}

std::unique_ptr<HashIndex> HashIndex::Build(
    const Table& table, std::vector<ColumnId> cols,
    const std::function<bool()>& interrupt) {
  auto index = std::make_unique<HashIndex>(DeferTag{}, std::move(cols));
  if (!index->BuildRows(table, interrupt)) return nullptr;
  return index;
}

bool HashIndex::BuildRows(const Table& table,
                          const std::function<bool()>& interrupt) {
  const size_t n = table.num_rows();
  if (cols_.empty()) {
    estimated_bytes_ = sizeof(HashIndex);
    return true;
  }
  if (cols_.size() == 1) {
    const Column& c = table.column(cols_[0]);
    single_.reserve(n);
    for (RowId r = 0; r < n; ++r) {
      if ((r & kInterruptPollMask) == 0 && interrupt && interrupt()) {
        return false;
      }
      single_[c.at(r)].push_back(r);
    }
  } else {
    multi_.reserve(n);
    std::vector<ValueId> key(cols_.size());
    for (RowId r = 0; r < n; ++r) {
      if ((r & kInterruptPollMask) == 0 && interrupt && interrupt()) {
        return false;
      }
      for (size_t i = 0; i < cols_.size(); ++i) {
        key[i] = table.column(cols_[i]).at(r);
      }
      multi_[key].push_back(r);
    }
  }
  // Per-entry estimate: key storage + posting-list header and capacity +
  // ~16 bytes of hash-table node/bucket overhead. Computed once here so the
  // governor charge is O(keys) at build, not recomputed per query.
  size_t bytes = sizeof(HashIndex);
  if (cols_.size() == 1) {
    // det: order-insensitive — commutative sum of per-entry byte estimates.
    for (const auto& [key, rows] : single_) {
      bytes += sizeof(key) + sizeof(rows) + rows.capacity() * sizeof(RowId) + 16;
    }
  } else {
    // det: order-insensitive — commutative sum of per-entry byte estimates.
    for (const auto& [key, rows] : multi_) {
      bytes += sizeof(rows) + key.capacity() * sizeof(ValueId) +
               rows.capacity() * sizeof(RowId) + 16;
    }
  }
  estimated_bytes_ = bytes;
  return true;
}

size_t HashIndex::LookupBatch(const ValueId* keys, size_t n,
                              BatchMatches* out, size_t max_rows) const {
  out->rows.clear();
  out->offsets.clear();
  out->offsets.reserve(n + 1);
  out->offsets.push_back(0);
  const size_t width = cols_.size();
  if (width == 1) {
    // Adjacent duplicate keys (common when the driving morsel is sorted or
    // clustered) reuse the previous probe's posting list without re-hashing.
    const std::vector<RowId>* last = nullptr;
    ValueId last_key = 0;
    for (size_t i = 0; i < n; ++i) {
      const ValueId k = keys[i];
      if (last == nullptr || k != last_key) {
        auto it = single_.find(k);
        last = (it == single_.end()) ? &kEmpty() : &it->second;
        last_key = k;
      }
      out->rows.insert(out->rows.end(), last->begin(), last->end());
      out->offsets.push_back(out->rows.size());
      if (max_rows > 0 && out->rows.size() >= max_rows) return i + 1;
    }
    return n;
  }
  std::vector<ValueId> key(width);
  for (size_t i = 0; i < n; ++i) {
    key.assign(keys + i * width, keys + (i + 1) * width);
    auto it = multi_.find(key);
    if (it != multi_.end()) {
      out->rows.insert(out->rows.end(), it->second.begin(), it->second.end());
    }
    out->offsets.push_back(out->rows.size());
    if (max_rows > 0 && out->rows.size() >= max_rows) return i + 1;
  }
  return n;
}

}  // namespace fastqre
