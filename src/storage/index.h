// HashIndex: an equality index over one or more columns of a table.
//
// Indexes back both the pipelined join executor (index-nested-loop joins on
// pk-fk edges) and the probing-query mechanism (point lookups binding
// projection columns to an R_out tuple's values).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace fastqre {

/// \brief Equality index: (value tuple over `cols`) -> row ids.
///
/// Single-column indexes (the overwhelmingly common case for pk-fk joins)
/// use a flat ValueId-keyed map; multi-column indexes key on the id tuple.
class HashIndex {
 public:
  /// Builds the index eagerly over all rows of `table`.
  HashIndex(const Table& table, std::vector<ColumnId> cols);

  const std::vector<ColumnId>& columns() const { return cols_; }
  size_t num_keys() const {
    return cols_.size() == 1 ? single_.size() : multi_.size();
  }

  /// Rows whose single indexed column equals `key`. Requires 1 column.
  const std::vector<RowId>& Lookup1(ValueId key) const {
    auto it = single_.find(key);
    return it == single_.end() ? kEmpty() : it->second;
  }

  /// Rows whose indexed columns equal `key` position-wise.
  const std::vector<RowId>& Lookup(const std::vector<ValueId>& key) const {
    if (cols_.size() == 1) return Lookup1(key[0]);
    auto it = multi_.find(key);
    return it == multi_.end() ? kEmpty() : it->second;
  }

  /// Estimated resident bytes (keys, posting lists, hash-node overhead),
  /// computed once at build time. Charged to the resource governor by the
  /// database's index cache (DESIGN.md §11); indexes persist for the
  /// database's lifetime, so the charge is never released.
  size_t EstimatedBytes() const { return estimated_bytes_; }

 private:
  static const std::vector<RowId>& kEmpty() {
    static const std::vector<RowId> e;
    return e;
  }

  std::vector<ColumnId> cols_;
  size_t estimated_bytes_ = 0;
  std::unordered_map<ValueId, std::vector<RowId>> single_;
  std::unordered_map<std::vector<ValueId>, std::vector<RowId>, IdTupleHash> multi_;
};

}  // namespace fastqre
