// HashIndex: an equality index over one or more columns of a table.
//
// Indexes back both the pipelined join executor (index-nested-loop joins on
// pk-fk edges) and the probing-query mechanism (point lookups binding
// projection columns to an R_out tuple's values).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace fastqre {

/// \brief Reusable result buffer of HashIndex::LookupBatch: the concatenated
/// posting lists of a whole morsel of probe keys.
///
/// Key i's matches are rows[offsets[i] .. offsets[i+1]); offsets has one
/// more entry than keys probed. Callers keep one BatchMatches alive across
/// morsels so the buffers' capacity is paid once per join step.
struct BatchMatches {
  std::vector<RowId> rows;
  std::vector<size_t> offsets;

  size_t num_keys() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  const RowId* begin_of(size_t i) const { return rows.data() + offsets[i]; }
  const RowId* end_of(size_t i) const { return rows.data() + offsets[i + 1]; }
};

/// \brief Equality index: (value tuple over `cols`) -> row ids.
///
/// Single-column indexes (the overwhelmingly common case for pk-fk joins)
/// use a flat ValueId-keyed map; multi-column indexes key on the id tuple.
class HashIndex {
  // Constructor gate for Build(): only members can name DeferTag, yet the
  // tagged constructor stays public so std::make_unique works (no naked
  // `new`; see tools/lint_invariants.py rule naked-new).
  struct DeferTag {
    explicit DeferTag() = default;
  };

 public:
  /// Builds the index eagerly over all rows of `table`.
  HashIndex(const Table& table, std::vector<ColumnId> cols);

  explicit HashIndex(DeferTag, std::vector<ColumnId> cols)
      : cols_(std::move(cols)) {}

  /// Interruptible build: like the constructor, but polls `interrupt` (may
  /// be empty) every kInterruptPollMask rows and returns nullptr if it
  /// fired — so a deadline or Cancel() lands inside a large build instead of
  /// after it (the hash-join build-side interrupt gap, DESIGN.md §13). An
  /// aborted build publishes nothing.
  static std::unique_ptr<HashIndex> Build(
      const Table& table, std::vector<ColumnId> cols,
      const std::function<bool()>& interrupt);

  const std::vector<ColumnId>& columns() const { return cols_; }
  size_t num_keys() const {
    return cols_.size() == 1 ? single_.size() : multi_.size();
  }

  /// Rows whose single indexed column equals `key`. Requires 1 column.
  const std::vector<RowId>& Lookup1(ValueId key) const {
    auto it = single_.find(key);
    return it == single_.end() ? kEmpty() : it->second;
  }

  /// Rows whose indexed columns equal `key` position-wise.
  const std::vector<RowId>& Lookup(const std::vector<ValueId>& key) const {
    if (cols_.size() == 1) return Lookup1(key[0]);
    auto it = multi_.find(key);
    return it == multi_.end() ? kEmpty() : it->second;
  }

  /// Probes a whole morsel of keys in one pass, filling `out` with each
  /// key's posting list in index row order — byte-identical to probing the
  /// same keys one at a time with Lookup1 / Lookup. `keys` holds `n` keys of
  /// width columns().size(), laid out key-major (key i starts at
  /// keys[i * width]); missing keys contribute an empty extent. When
  /// `max_rows` > 0 the batch stops early once out->rows reaches it (a
  /// single key's matches are never split, so at least one key is always
  /// consumed when n > 0 — the caller can bound its scratch buffer without
  /// losing progress). Returns the number of keys consumed.
  size_t LookupBatch(const ValueId* keys, size_t n, BatchMatches* out,
                     size_t max_rows = 0) const;

  /// Estimated resident bytes (keys, posting lists, hash-node overhead),
  /// computed once at build time. Charged to the resource governor by the
  /// database's index cache (DESIGN.md §11); indexes persist for the
  /// database's lifetime, so the charge is never released.
  size_t EstimatedBytes() const { return estimated_bytes_; }

 private:
  static const std::vector<RowId>& kEmpty() {
    static const std::vector<RowId> e;
    return e;
  }

  // Shared body of the constructor and Build(): inserts all rows, polling
  // `interrupt` per stride. Returns false (leaving the maps partial — the
  // caller discards the object) when the interrupt fired.
  bool BuildRows(const Table& table, const std::function<bool()>& interrupt);

  std::vector<ColumnId> cols_;
  size_t estimated_bytes_ = 0;
  std::unordered_map<ValueId, std::vector<RowId>> single_;
  // gov: charged — EstimatedBytes() covers both maps; the cache owner
  // charges it as "index-build" when the built index is published.
  std::unordered_map<std::vector<ValueId>, std::vector<RowId>, IdTupleHash> multi_;
};

}  // namespace fastqre
