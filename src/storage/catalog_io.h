// Database persistence: save/load a whole Database as a directory of CSV
// files plus a plain-text schema manifest.
//
// Layout of a database directory:
//   <dir>/schema.fqre       manifest (version, tables, column types, fks,
//                           extra join edges)
//   <dir>/<table>.csv       one CSV per table, header row included
//
// The manifest is line-oriented:
//   fastqre-db 1
//   table <name> <ncols>
//   column <table> <name> <type>          # type in {int64,double,string}
//   fk <child_table> <child_col> <parent_table> <parent_col>
//   join <table_a> <col_a> <table_b> <col_b>   # non-fk schema edge
//
// This backs the CLI tool and lets examples/tests round-trip databases.
#pragma once

#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Writes `db` into directory `dir` (created if missing). Existing
/// files with the same names are overwritten.
Status SaveDatabase(const Database& db, const std::string& dir);

/// \brief Loads a database previously written by SaveDatabase. Column types
/// come from the manifest (not re-inferred), so a round trip is exact with
/// one documented exception: an empty-string cell is indistinguishable from
/// NULL in CSV and loads back as NULL.
Result<Database> LoadDatabase(const std::string& dir);

}  // namespace fastqre
