// Value: the dynamically-typed cell type of the storage layer.
//
// The engine dictionary-encodes every distinct Value into a dense ValueId
// (see dictionary.h); all hot paths (joins, coherence checks, covers) operate
// on ValueIds, and Value itself only appears at ingest and display time.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"

namespace fastqre {

/// \brief Storage type of a column / value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// \brief Returns "null" / "int64" / "double" / "string".
const char* ValueTypeToString(ValueType t);

/// \brief A single dynamically-typed cell.
///
/// Ordering and equality are defined first by type, then by payload, so that
/// Values of mixed types can live in ordered containers. NULL compares equal
/// to NULL: the QRE containment checks treat cells as opaque values (set
/// semantics over R_out), which is the semantics the paper's π/⊆ notation
/// uses.
class Value {
 public:
  Value() : payload_(std::monostate{}) {}
  explicit Value(int64_t v) : payload_(v) {}
  explicit Value(double v) : payload_(v) {}
  explicit Value(std::string v) : payload_(std::move(v)) {}
  explicit Value(const char* v) : payload_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(payload_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt64() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsString() const { return std::get<std::string>(payload_); }

  bool operator==(const Value& o) const { return payload_ == o.payload_; }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const {
    if (payload_.index() != o.payload_.index()) {
      return payload_.index() < o.payload_.index();
    }
    return payload_ < o.payload_;
  }

  /// Stable hash (used by the dictionary).
  uint64_t Hash() const {
    switch (type()) {
      case ValueType::kNull:
        return 0x6e756c6cULL;
      case ValueType::kInt64:
        return HashCombine(1, static_cast<uint64_t>(AsInt64()));
      case ValueType::kDouble: {
        double d = AsDouble();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return HashCombine(2, bits);
      }
      case ValueType::kString:
        return HashCombine(3, HashString(AsString()));
    }
    return 0;
  }

  /// Human-readable rendering; strings are returned verbatim.
  std::string ToString() const;

  /// SQL-literal rendering; strings are single-quoted with escaping.
  std::string ToSqlLiteral() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> payload_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace fastqre
