#include "storage/value.h"

#include <cstdlib>

#include "common/strings.h"

namespace fastqre {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return std::to_string(AsInt64());
    case ValueType::kDouble: {
      // Shortest representation that round-trips: try increasing precision
      // until parsing the text recovers the exact double (usually %.15g).
      double d = AsDouble();
      for (int precision : {15, 16}) {
        std::string s = StringFormat("%.*g", precision, d);
        if (std::strtod(s.c_str(), nullptr) == d) return s;
      }
      return StringFormat("%.17g", d);
    }
    case ValueType::kString: return AsString();
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  if (type() != ValueType::kString) return ToString();
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace fastqre
