#include "storage/table.h"

#include "common/strings.h"

namespace fastqre {

Status Table::AddColumn(const std::string& name, ValueType type) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("column '" + name + "' already exists in table '" +
                                 name_ + "'");
  }
  if (num_rows() > 0) {
    return Status::InvalidArgument("cannot add column '" + name +
                                   "' after rows were appended");
  }
  if (type == ValueType::kNull) {
    return Status::InvalidArgument("column '" + name + "' cannot have type null");
  }
  by_name_.emplace(name, static_cast<ColumnId>(columns_.size()));
  columns_.emplace_back(name, type);
  return Status::OK();
}

Result<ColumnId> Table::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
  }
  return it->second;
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(StringFormat(
        "row arity %zu does not match table '%s' arity %zu", values.size(),
        name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i].is_null() && values[i].type() != columns_[i].type()) {
      return Status::InvalidArgument(StringFormat(
          "value type %s does not match column '%s' type %s",
          ValueTypeToString(values[i].type()), columns_[i].name().c_str(),
          ValueTypeToString(columns_[i].type())));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].Append(dict_->Intern(values[i]));
  }
  return Status::OK();
}

void Table::AppendRowIds(const std::vector<ValueId>& ids) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Append(ids[i]);
  }
}

std::vector<ValueId> Table::RowIds(RowId row) const {
  std::vector<ValueId> out(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) out[i] = columns_[i].at(row);
  return out;
}

std::vector<Value> Table::RowValues(RowId row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.push_back(dict_->Get(columns_[i].at(row)));
  }
  return out;
}

}  // namespace fastqre
