// BitmapFilter: a dense bitset over dictionary ValueIds, the carrier of
// sideways information passing (DESIGN.md §13).
//
// The dictionary interns every distinct value of the database into a dense
// 32-bit code, so "which values appear in column T.c" is one bit per
// dictionary entry — a few hundred KB even for multi-million-row databases.
// Executors push these filters sideways into joins: a row whose join-key
// code is provably absent from the other endpoint's column (or from a
// materialized walk relation's key domain) can be skipped before it enters
// an intermediate relation, without ever changing which result tuples
// survive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace fastqre {

/// \brief Dense bitset keyed by ValueId. Test() of an id at or beyond the
/// construction-time universe returns false — on a sealed database such ids
/// were interned after the filter was built and cannot appear in the
/// filtered column, so "absent" is exact, never a false negative.
class BitmapFilter {
 public:
  BitmapFilter() = default;
  explicit BitmapFilter(size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  /// Sets the bit for `v`. Requires v < universe().
  void Set(ValueId v) {
    uint64_t& word = words_[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    set_count_ += (word & bit) == 0 ? 1 : 0;
    word |= bit;
  }

  /// True iff Set(v) happened. Out-of-universe ids are absent by definition.
  bool Test(ValueId v) const {
    return v < universe_ && (words_[v >> 6] >> (v & 63)) & 1;
  }

  size_t universe() const { return universe_; }

  /// Number of distinct ids set — the filter's selectivity numerator for
  /// SIP-aware cost estimation.
  size_t set_count() const { return set_count_; }

  /// Resident bytes, for resource-governor accounting.
  size_t EstimatedBytes() const {
    return sizeof(BitmapFilter) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t universe_ = 0;
  size_t set_count_ = 0;
  // Bounded by construction: universe/8 bytes, i.e. one bit per dictionary
  // entry — callers holding a BitmapFilter by value charge it (the lint rule
  // governed-alloc enforces the classification at every declaration site).
  std::vector<uint64_t> words_;
};

/// \brief Builds the presence filter of one column: bit v set iff some row
/// of `table` has value id v in column `col`. `universe` is the dictionary
/// size at build time.
BitmapFilter BuildColumnPresenceFilter(const Table& table, ColumnId col,
                                       size_t universe);

/// \brief Hashed presence filter over a composite column tuple: one bit per
/// hash slot, set for every row's key tuple. MayContain() == false proves no
/// row of the table carries that key combination (the probe can be skipped);
/// true may be a hash collision, so the caller still consults the index.
/// Single-column presence bitmaps cannot express this — on foreign-key data
/// every component value exists somewhere, yet most *combinations* do not.
/// Sized to ~one byte per row (power-of-two slots), so the filter stays
/// cache-resident where the hash index it shields is not: the cheap first
/// line of a sideways-passing miss rejection (DESIGN.md §13).
class CompositeKeyFilter {
 public:
  CompositeKeyFilter(const Table& table, const std::vector<ColumnId>& cols);

  /// True unless no row's `cols` tuple hashes to this key's slot. `width`
  /// must equal the construction column count.
  bool MayContain(const ValueId* key, size_t width) const {
    const uint64_t h = Hash(key, width) & mask_;
    return (words_[h >> 6] >> (h & 63)) & 1;
  }

  /// Resident bytes, for resource-governor accounting.
  size_t EstimatedBytes() const {
    return sizeof(CompositeKeyFilter) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  static uint64_t Hash(const ValueId* key, size_t width) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < width; ++i) {
      h ^= key[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    // Finalizer: the slot index is taken from the low bits, so they must
    // depend on every key component.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
  }

  uint64_t mask_ = 0;
  // Bounded by construction: ~one byte per table row; the database cache
  // slot holding the filter charges these bytes as "filter-build".
  std::vector<uint64_t> words_;
};

}  // namespace fastqre
