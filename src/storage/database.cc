#include "storage/database.h"

#include "common/timer.h"

namespace fastqre {

Result<TableId> Database::AddTable(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(name, dict_));
  by_name_.emplace(name, id);
  return id;
}

Result<TableId> Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second;
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_col,
                               const std::string& parent_table,
                               const std::string& parent_col) {
  FASTQRE_ASSIGN_OR_RETURN(TableId child_t, FindTable(child_table));
  FASTQRE_ASSIGN_OR_RETURN(TableId parent_t, FindTable(parent_table));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId child_c, table(child_t).FindColumn(child_col));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId parent_c, table(parent_t).FindColumn(parent_col));
  fks_.push_back(ForeignKey{child_t, child_c, parent_t, parent_c});
  graph_.AddEdge(child_t, child_c, parent_t, parent_c);
  return Status::OK();
}

const HashIndex& Database::GetOrBuildIndex(TableId t,
                                           std::vector<ColumnId> cols) const {
  auto key = std::make_pair(t, cols);
  auto it = index_cache_.find(key);
  if (it != index_cache_.end()) {
    ++index_stats_.cache_hits;
    return *it->second;
  }
  Timer timer;
  auto index = std::make_unique<HashIndex>(*tables_[t], std::move(cols));
  index_stats_.build_seconds += timer.ElapsedSeconds();
  ++index_stats_.indexes_built;
  auto [pos, _] = index_cache_.emplace(std::move(key), std::move(index));
  return *pos->second;
}

const ColumnPattern& Database::GetColumnPattern(TableId t, ColumnId c) const {
  auto key = std::make_pair(t, c);
  auto it = pattern_cache_.find(key);
  if (it != pattern_cache_.end()) return it->second;
  auto [pos, _] = pattern_cache_.emplace(
      key, ComputeColumnPattern(tables_[t]->column(c), *dict_));
  return pos->second;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

}  // namespace fastqre
