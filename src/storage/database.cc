#include "storage/database.h"

#include "common/resource_governor.h"
#include "common/timer.h"

namespace fastqre {

Result<TableId> Database::AddTable(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(name, dict_));
  by_name_.emplace(name, id);
  return id;
}

Result<TableId> Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second;
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_col,
                               const std::string& parent_table,
                               const std::string& parent_col) {
  FASTQRE_ASSIGN_OR_RETURN(TableId child_t, FindTable(child_table));
  FASTQRE_ASSIGN_OR_RETURN(TableId parent_t, FindTable(parent_table));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId child_c, table(child_t).FindColumn(child_col));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId parent_c, table(parent_t).FindColumn(parent_col));
  fks_.push_back(ForeignKey{child_t, child_c, parent_t, parent_c});
  graph_.AddEdge(child_t, child_c, parent_t, parent_c);
  return Status::OK();
}

void Database::AttachGovernor(std::shared_ptr<ResourceGovernor> governor) const {
  MutexLock lock(&caches_->mu);
  caches_->governor = std::move(governor);
}

std::shared_ptr<ResourceGovernor> Database::governor() const {
  MutexLock lock(&caches_->mu);
  return caches_->governor;
}

void Database::DetachGovernor(const ResourceGovernor* governor) const {
  MutexLock lock(&caches_->mu);
  if (caches_->governor.get() == governor) caches_->governor.reset();
}

const HashIndex& Database::GetOrBuildIndex(TableId t,
                                           std::vector<ColumnId> cols) const {
  // No interrupt: TryGetOrBuildIndex cannot return nullptr.
  return *TryGetOrBuildIndex(t, std::move(cols), {});
}

const HashIndex* Database::TryGetOrBuildIndex(
    TableId t, std::vector<ColumnId> cols,
    const std::function<bool()>& interrupt) const {
  std::shared_ptr<IndexSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  bool inserted = false;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] =
        caches_->index_cache.try_emplace(std::make_pair(t, cols), nullptr);
    if (fresh) pos->second = std::make_shared<IndexSlot>();
    slot = pos->second;
    inserted = fresh;
    governor = caches_->governor;
  }
  if (!inserted) ++caches_->index_stats.cache_hits;
  // Build-once state machine (see IndexSlot): one builder per slot at a
  // time; waiters block until the slot is built or the builder aborts, in
  // which case the first waiter whose own interrupt has not fired takes the
  // build over.
  {
    MutexLock lock(&slot->mu);
    for (;;) {
      if (slot->state == IndexSlot::State::kBuilt) return slot->index.get();
      if (slot->state == IndexSlot::State::kEmpty) {
        if (interrupt && interrupt()) return nullptr;
        slot->state = IndexSlot::State::kBuilding;
        break;  // this caller builds
      }
      slot->cv.Wait(slot->mu);
    }
  }
  // Build outside the slot lock so waiters (and requesters of other keys)
  // are never blocked behind the row scan itself.
  Timer timer;
  std::unique_ptr<HashIndex> built =
      HashIndex::Build(*tables_[t], std::move(cols), interrupt);
  caches_->index_stats.build_seconds += timer.ElapsedSeconds();
  MutexLock lock(&slot->mu);
  if (built == nullptr) {
    // Interrupted: publish nothing, hand the slot to a waiter (or leave it
    // empty for a later caller to rebuild).
    slot->state = IndexSlot::State::kEmpty;
    slot->cv.NotifyAll();
    return nullptr;
  }
  if (governor != nullptr) {
    // Required charge: the index is already built and cached for the
    // database's lifetime; overflow degrades the search, not the build.
    governor->Charge(built->EstimatedBytes(), "index-build");
  }
  ++caches_->index_stats.indexes_built;
  slot->index = std::move(built);
  slot->state = IndexSlot::State::kBuilt;
  slot->cv.NotifyAll();
  return slot->index.get();
}

const BitmapFilter& Database::GetOrBuildPresenceFilter(TableId t,
                                                       ColumnId c) const {
  std::shared_ptr<FilterSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] =
        caches_->filter_cache.try_emplace(std::make_pair(t, c), nullptr);
    if (fresh) pos->second = std::make_shared<FilterSlot>();
    slot = pos->second;
    governor = caches_->governor;
  }
  // Presence filters are one bit per dictionary entry and built by a single
  // linear column scan — cheap enough that the build-once slot can stay a
  // plain call_once (no interruption needed, unlike index builds).
  std::call_once(slot->once, [&] {
    slot->filter = std::make_unique<BitmapFilter>(
        BuildColumnPresenceFilter(*tables_[t], c, dict_->size()));
    if (governor != nullptr) {
      // Required charge: cached for the database's lifetime, like indexes.
      governor->Charge(slot->filter->EstimatedBytes(), "filter-build");
    }
  });
  return *slot->filter;
}

const CompositeKeyFilter& Database::GetOrBuildKeyFilter(
    TableId t, std::vector<ColumnId> cols) const {
  std::shared_ptr<KeyFilterSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] = caches_->key_filter_cache.try_emplace(
        std::make_pair(t, cols), nullptr);
    if (fresh) pos->second = std::make_shared<KeyFilterSlot>();
    slot = pos->second;
    governor = caches_->governor;
  }
  // One linear scan hashing each row's key tuple — cheap enough for a plain
  // call_once, like the single-column presence filters above.
  std::call_once(slot->once, [&] {
    slot->filter = std::make_unique<CompositeKeyFilter>(*tables_[t], cols);
    if (governor != nullptr) {
      // Required charge: cached for the database's lifetime, like indexes.
      governor->Charge(slot->filter->EstimatedBytes(), "filter-build");
    }
  });
  return *slot->filter;
}

const ColumnPattern& Database::GetColumnPattern(TableId t, ColumnId c) const {
  std::shared_ptr<PatternSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] =
        caches_->pattern_cache.try_emplace(std::make_pair(t, c), nullptr);
    if (fresh) pos->second = std::make_shared<PatternSlot>();
    slot = pos->second;
    governor = caches_->governor;
  }
  std::call_once(slot->once, [&] {
    slot->pattern = ComputeColumnPattern(tables_[t]->column(c), *dict_);
    if (governor != nullptr) {
      governor->Charge(sizeof(PatternSlot), "pattern-build");
    }
  });
  return slot->pattern;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

}  // namespace fastqre
