#include "storage/database.h"

#include "common/resource_governor.h"
#include "common/timer.h"

namespace fastqre {

Result<TableId> Database::AddTable(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(name, dict_));
  by_name_.emplace(name, id);
  return id;
}

Result<TableId> Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second;
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_col,
                               const std::string& parent_table,
                               const std::string& parent_col) {
  FASTQRE_ASSIGN_OR_RETURN(TableId child_t, FindTable(child_table));
  FASTQRE_ASSIGN_OR_RETURN(TableId parent_t, FindTable(parent_table));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId child_c, table(child_t).FindColumn(child_col));
  FASTQRE_ASSIGN_OR_RETURN(ColumnId parent_c, table(parent_t).FindColumn(parent_col));
  fks_.push_back(ForeignKey{child_t, child_c, parent_t, parent_c});
  graph_.AddEdge(child_t, child_c, parent_t, parent_c);
  return Status::OK();
}

void Database::AttachGovernor(std::shared_ptr<ResourceGovernor> governor) const {
  MutexLock lock(&caches_->mu);
  caches_->governor = std::move(governor);
}

std::shared_ptr<ResourceGovernor> Database::governor() const {
  MutexLock lock(&caches_->mu);
  return caches_->governor;
}

void Database::DetachGovernor(const ResourceGovernor* governor) const {
  MutexLock lock(&caches_->mu);
  if (caches_->governor.get() == governor) caches_->governor.reset();
}

const HashIndex& Database::GetOrBuildIndex(TableId t,
                                           std::vector<ColumnId> cols) const {
  std::shared_ptr<IndexSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  bool inserted = false;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] =
        caches_->index_cache.try_emplace(std::make_pair(t, cols), nullptr);
    if (fresh) pos->second = std::make_shared<IndexSlot>();
    slot = pos->second;
    inserted = fresh;
    governor = caches_->governor;
  }
  if (!inserted) ++caches_->index_stats.cache_hits;
  // Exactly one caller per key runs the build; concurrent requesters of the
  // same key block here until the index is ready.
  std::call_once(slot->once, [&] {
    Timer timer;
    slot->index = std::make_unique<HashIndex>(*tables_[t], std::move(cols));
    if (governor != nullptr) {
      // Required charge: the index is already built and cached for the
      // database's lifetime; overflow degrades the search, not the build.
      governor->Charge(slot->index->EstimatedBytes(), "index-build");
    }
    caches_->index_stats.build_seconds += timer.ElapsedSeconds();
    ++caches_->index_stats.indexes_built;
  });
  return *slot->index;
}

const ColumnPattern& Database::GetColumnPattern(TableId t, ColumnId c) const {
  std::shared_ptr<PatternSlot> slot;
  std::shared_ptr<ResourceGovernor> governor;
  {
    MutexLock lock(&caches_->mu);
    auto [pos, fresh] =
        caches_->pattern_cache.try_emplace(std::make_pair(t, c), nullptr);
    if (fresh) pos->second = std::make_shared<PatternSlot>();
    slot = pos->second;
    governor = caches_->governor;
  }
  std::call_once(slot->once, [&] {
    slot->pattern = ComputeColumnPattern(tables_[t]->column(c), *dict_);
    if (governor != nullptr) {
      governor->Charge(sizeof(PatternSlot), "pattern-build");
    }
  });
  return slot->pattern;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

}  // namespace fastqre
