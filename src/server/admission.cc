#include "server/admission.h"

#include <algorithm>

namespace fastqre {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config), pool_(config.global_budget_bytes) {}

AdmissionController::Admission AdmissionController::Admit(
    const std::string& tenant, uint64_t requested_slice_bytes,
    double now_seconds) {
  Admission result;

  uint64_t slice = requested_slice_bytes == 0 ? config_.default_slice_bytes
                                              : requested_slice_bytes;
  slice = std::min(slice, config_.max_slice_bytes);

  {
    MutexLock lock(&mu_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(tenant, TokenBucket(config_.tenant_rate_per_second,
                                            config_.tenant_burst))
               .first;
    }
    if (!it->second.TryAcquire(now_seconds)) {
      result.error = WireError::kRateLimited;
      result.message = "tenant \"" + tenant + "\" is over its submit rate (" +
                       std::to_string(config_.tenant_rate_per_second) +
                       "/s, burst " + std::to_string(config_.tenant_burst) +
                       ")";
      return result;
    }
    if (in_flight_ >= config_.max_in_flight_jobs) {
      result.error = WireError::kSaturated;
      result.message =
          "server is at its in-flight job cap (" +
          std::to_string(config_.max_in_flight_jobs) + ")";
      return result;
    }
    // Reserve the seat and the slice together under the lock: two racing
    // admits must not both pass the seat check, and a seat without a slice
    // (or vice versa) would leak on the early-return paths.
    if (!pool_.TryReserve(slice)) {
      result.error = WireError::kBudgetExhausted;
      result.message = "global memory pool cannot fund a " +
                       std::to_string(slice) + "-byte slice (" +
                       std::to_string(pool_.reserved_bytes()) + " of " +
                       std::to_string(pool_.total_bytes()) +
                       " bytes reserved)";
      return result;
    }
    ++in_flight_;
  }

  result.slice_bytes = slice;
  return result;
}

void AdmissionController::Release(uint64_t slice_bytes) {
  pool_.Release(slice_bytes);
  MutexLock lock(&mu_);
  --in_flight_;
}

int AdmissionController::in_flight_jobs() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

}  // namespace fastqre
