// TCP front end of the QRE service (DESIGN.md §15.4).
//
// A thin, dependency-free adapter from POSIX sockets to the JobManager:
// one acceptor thread, one thread per connection, length-prefixed JSON
// frames (protocol.{h,cc}) in both directions. All policy — admission,
// budgets, job lifecycle — lives in the JobManager; this layer only moves
// frames and maps verbs to calls.
//
// Connection model: a connection is a request pipeline. status / cancel /
// list-dbs get one response frame each. submit gets an `accepted` frame and
// then *blocks the connection* streaming `answer` frames as the job proves
// them, ending with a `done` frame — so a client runs N concurrent jobs by
// opening N connections (which is also what makes the admission gates
// observable per connection). The job keeps running server-side if the
// client disconnects mid-stream; cancel it from another connection if the
// answers are no longer wanted.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "server/job_manager.h"

namespace fastqre {

struct ServerConfig {
  /// Port to listen on; 0 picks an ephemeral port (read it back with
  /// port() — the tests and the CI integration job rely on this).
  uint16_t port = 0;
  /// Listen backlog.
  int backlog = 64;
};

class Server {
 public:
  /// `manager` must outlive the server.
  Server(JobManager* manager, ServerConfig config);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread. Fails (IOError) if the
  /// port is taken.
  Status Start();

  /// The bound port (useful with ServerConfig::port == 0). 0 before Start().
  uint16_t port() const { return port_; }

  /// Closes the listener, shuts down live connections, joins all threads.
  /// Does NOT shut down the JobManager — jobs outlive their connections by
  /// design; the owner decides when to drain them.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one parsed request, writing one or more response frames.
  /// Returns false when the connection should close (write failure).
  bool Dispatch(int fd, const Request& req);
  bool WriteResponse(int fd, const Response& resp);

  JobManager* const manager_;
  const ServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  Mutex mu_;
  std::vector<int> conn_fds_ GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(mu_);
  std::thread acceptor_;
};

}  // namespace fastqre
