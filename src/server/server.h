// TCP front end of the QRE service (DESIGN.md §15.4, §15.5).
//
// A thin, dependency-free adapter from POSIX sockets to the JobManager:
// one acceptor thread, one thread per connection, length-prefixed JSON
// frames (protocol.{h,cc}) in both directions. All policy — admission,
// budgets, job lifecycle — lives in the JobManager; this layer only moves
// frames and maps verbs to calls.
//
// Connection model: a connection is a request pipeline. status / cancel /
// list-dbs / ping get one response frame each. submit gets an `accepted`
// frame and then *blocks the connection* streaming sequence-numbered
// `answer` frames as the job proves them, ending with a `done` frame — so a
// client runs N concurrent jobs by opening N connections (which is also
// what makes the admission gates observable per connection). The job keeps
// running server-side if the client disconnects mid-stream; `attach`
// resumes its stream from any cursor on a fresh connection, `cancel` stops
// it if the answers are no longer wanted.
//
// The wire layer does not trust the network (DESIGN.md §15.5): reads are
// poll-sliced against a read-idle deadline, writes against a write-stall
// deadline (both observe Stop() within one ~100 ms slice), the acceptor
// sheds connections over the cap with a typed kOverloaded refusal, a client
// that vanished mid-stream is detected and its thread reclaimed, and every
// connection self-reaps its registry entry when it ends. The fault sites
// wire-accept / wire-read / wire-write replay hostile-network behavior
// (resets, stalls, short writes, garbage bytes) deterministically in ctest.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "server/job_manager.h"

namespace fastqre {

struct ServerConfig {
  /// Port to listen on; 0 picks an ephemeral port (read it back with
  /// port() — the tests and the CI integration job rely on this).
  uint16_t port = 0;
  /// Listen backlog.
  int backlog = 64;
  /// Wire-layer load shedding: connections accepted beyond this many live
  /// ones get a best-effort typed kOverloaded frame and an immediate close.
  /// 0 disables the cap.
  int max_connections = 64;
  /// Write-stall deadline: a frame write making no progress for this long
  /// (peer not draining its receive window) aborts the connection. The job
  /// itself survives; the client re-attaches. 0 disables the deadline.
  int io_deadline_ms = 10'000;
  /// Read-idle deadline: a connection with no inbound bytes and no active
  /// stream for this long gets a typed kTimeout frame and is closed. 0
  /// disables the deadline.
  int idle_timeout_ms = 60'000;
  /// Wire fault spec (grammar in common/fault_injection.h) for the sites
  /// wire-accept, wire-read and wire-write. Empty = no injection; parsed in
  /// Start(), which fails on a malformed spec.
  std::string fault_spec;
};

class Server {
 public:
  /// `manager` must outlive the server.
  Server(JobManager* manager, ServerConfig config);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread. Fails (IOError) if the
  /// port is taken, (InvalidArgument) on a malformed fault_spec.
  Status Start();

  /// The bound port (useful with ServerConfig::port == 0). 0 before Start().
  uint16_t port() const { return port_; }

  /// Live connections right now (the ping snapshot; tests assert this
  /// returns to baseline after chaos).
  uint64_t active_connections() const;

  /// Connections refused at the max_connections cap since Start().
  uint64_t shed_connections() const {
    return shed_connections_.load(std::memory_order_relaxed);
  }

  /// Closes the listener, shuts down live connections, joins all
  /// connection threads (self-reaped tombstones included). Does NOT shut
  /// down the JobManager — jobs outlive their connections by design; the
  /// owner decides when to drain them.
  void Stop();

 private:
  /// One live connection's registry record. The serving thread's handle
  /// lives here until the connection self-reaps it into reaped_.
  struct Conn {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  /// Dispatches one parsed request, writing one or more response frames.
  /// Returns false when the connection should close (write failure, stream
  /// abort, or an injected reset).
  bool Dispatch(int fd, const Request& req);
  /// Streams a job's answers from `cursor` (each frame tagged with its
  /// sequence number), ending with `done`. Shared by submit and attach.
  bool StreamJob(int fd, uint64_t job_id, uint64_t cursor);
  bool WriteResponse(int fd, const Response& resp);
  /// Deadline-bounded full write: MSG_DONTWAIT sends with POLLOUT waits in
  /// ~100 ms slices, aborting when the peer stalls past io_deadline_ms or
  /// the server stops. `short_write` degrades to 1-byte sends (chaos).
  bool SendWithDeadline(int fd, const char* data, size_t n, bool short_write);
  /// True when the peer has gone away (orderly EOF or a hard error) — the
  /// dropper check that reclaims streaming threads.
  static bool PeerClosed(int fd);
  /// Marks `fd` for abortive close: the eventual ::close() emits a TCP RST
  /// instead of a FIN (SO_LINGER with zero timeout).
  static void ArmReset(int fd);
  /// Joins tombstoned threads collected from self-reaped connections.
  void JoinReaped();

  JobManager* const manager_;
  const ServerConfig config_;
  std::unique_ptr<FaultInjector> faults_;  // null: no wire rules
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> shed_connections_{0};
  Timer uptime_;  // reset in Start(); read by ping

  mutable Mutex mu_;
  /// Signalled whenever a connection self-reaps; Stop() waits on it for
  /// conns_ to drain.
  CondVar conns_cv_;
  // gov: bounded — at most max_connections entries (the shed gate above).
  std::map<uint64_t, Conn> conns_ GUARDED_BY(mu_);
  /// Threads of ended connections, parked until AcceptLoop or Stop()
  /// joins them (a thread cannot join itself).
  std::vector<std::thread> reaped_ GUARDED_BY(mu_);
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 1;
  std::thread acceptor_;
};

}  // namespace fastqre
