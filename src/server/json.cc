#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace fastqre {

namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

// Shortest double rendering that round-trips; integers-valued doubles keep
// a trailing ".0" so the type survives a round trip.
void AppendDouble(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; the protocol never produces them, but serialize
    // defensively rather than emitting invalid output.
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Try shorter forms first (matches how printf-based stats elsewhere in
  // the repo stay readable).
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      std::memcpy(buf, probe, sizeof(probe));
      break;
    }
  }
  *out += buf;
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    FASTQRE_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        FASTQRE_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      FASTQRE_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue v;
      FASTQRE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue v;
      FASTQRE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          unsigned code = 0;
          FASTQRE_RETURN_NOT_OK(ParseHex4(&code));
          // Surrogate pair -> one code point.
          if (code >= 0xD800 && code <= 0xDBFF &&
              pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            FASTQRE_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return Error("invalid number");
    if (integral) {
      int64_t i = 0;
      if (std::sscanf(tok.c_str(), "%lld",
                      reinterpret_cast<long long*>(&i)) == 1) {
        *out = JsonValue::Int(i);
        return Status::OK();
      }
    }
    double d = 0.0;
    if (std::sscanf(tok.c_str(), "%lf", &d) != 1) {
      return Error("invalid number");
    }
    *out = JsonValue::Double(d);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Get(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string JsonValue::Serialize() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out = std::to_string(int_);
      break;
    case Type::kDouble:
      AppendDouble(double_, &out);
      break;
    case Type::kString:
      AppendEscaped(string_, &out);
      break;
    case Type::kArray: {
      out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i].Serialize();
      }
      out += "]";
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ",";
        first = false;
        AppendEscaped(k, &out);
        out += ":";
        out += v.Serialize();
      }
      out += "}";
      break;
    }
  }
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace fastqre
