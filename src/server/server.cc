#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fastqre {
namespace {

/// How long one WaitAnswers pull blocks while streaming a submit. Short
/// enough that Stop() is observed promptly, long enough to not busy-poll.
constexpr double kStreamPollSeconds = 0.2;

/// Poll slice for deadline-bounded socket I/O: every read or write wait is
/// chopped into slices this long so a connection observes Stop() and its
/// own deadlines within ~one slice, whatever the peer does.
constexpr int kPollSliceMs = 100;

/// Bytes injected by a `garbage` wire fault. As a length prefix they decode
/// to 0xDEADBEEF — far over kMaxFramePayload — so the framing layer turns
/// them into a typed error deterministically, never a stuck parse.
constexpr char kGarbageBytes[] = {'\xDE', '\xAD', '\xBE', '\xEF'};

}  // namespace

Server::Server(JobManager* manager, ServerConfig config)
    : manager_(manager), config_(std::move(config)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!config_.fault_spec.empty()) {
    Result<std::unique_ptr<FaultInjector>> parsed =
        FaultInjector::Parse(config_.fault_spec);
    if (!parsed.ok()) return parsed.status();
    faults_ = std::move(*parsed);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::IOError("bind: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    const Status s =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  uptime_.Reset();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint64_t Server::active_connections() const {
  MutexLock lock(&mu_);
  return conns_.size();
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close alone may not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    // Every fd in the registry is live — a connection erases its entry
    // *before* closing its descriptor — so this shutdown() can never hit a
    // reused fd. It wakes each serving thread's poll; they self-reap while
    // we wait for the registry to drain.
    for (auto& [id, conn] : conns_) ::shutdown(conn.fd, SHUT_RDWR);
    while (!conns_.empty()) conns_cv_.Wait(mu_);
    to_join.swap(reaped_);
  }
  for (std::thread& t : to_join) t.join();
}

void Server::JoinReaped() {
  std::vector<std::thread> done;
  {
    MutexLock lock(&mu_);
    done.swap(reaped_);
  }
  for (std::thread& t : done) t.join();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    // Reap ended connections opportunistically so a long-lived server's
    // tombstone list stays bounded by the accept cadence.
    JoinReaped();
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or unrecoverable
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (faults_ != nullptr) {
      // `stall` sleeps inside Hit(), holding up the accept pipeline the way
      // a SYN-flood-throttled listener would.
      const FaultActions actions = faults_->Hit("wire-accept");
      if (actions.reset) {
        ArmReset(fd);
        ::close(fd);
        continue;
      }
    }

    bool shed = false;
    {
      MutexLock lock(&mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      if (config_.max_connections > 0 &&
          conns_.size() >= static_cast<size_t>(config_.max_connections)) {
        shed = true;
      } else {
        const uint64_t conn_id = next_conn_id_++;
        Conn& conn = conns_[conn_id];
        conn.fd = fd;
        // The serving thread self-reaps under mu_, so it cannot race this
        // assignment: it blocks here until we release the lock.
        conn.thread =
            std::thread([this, conn_id, fd] { ServeConnection(conn_id, fd); });
      }
    }
    if (shed) {
      shed_connections_.fetch_add(1, std::memory_order_relaxed);
      // Best-effort typed refusal: one non-blocking send (the frame is tens
      // of bytes, a fresh socket buffer always holds it) — the acceptor
      // must never block on a shed peer.
      const std::string frame = EncodeFrame(SerializeResponse(
          MakeErrorResponse(WireError::kOverloaded,
                            "connection limit reached (" +
                                std::to_string(config_.max_connections) +
                                "); retry with backoff")));
      ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
    }
  }
}

void Server::ServeConnection(uint64_t conn_id, int fd) {
  FrameReader reader;
  char buf[4096];
  bool open = true;
  Timer idle;  // reset on every inbound byte; measures pure silence
  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = ::poll(&p, 1, kPollSliceMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      if (config_.idle_timeout_ms > 0 &&
          idle.ElapsedMillis() >= config_.idle_timeout_ms) {
        // A half-open or forgotten client does not pin a thread forever:
        // typed timeout, then close. Any job it submitted keeps running.
        WriteResponse(
            fd, MakeErrorResponse(
                    WireError::kTimeout,
                    "read-idle deadline (" +
                        std::to_string(config_.idle_timeout_ms) +
                        " ms) expired"));
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // orderly client close
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    idle.Reset();
    if (faults_ != nullptr) {
      // `stall` sleeps inside Hit(), simulating a read-side network stall.
      const FaultActions actions = faults_->Hit("wire-read");
      if (actions.reset) {
        ArmReset(fd);
        break;
      }
      if (actions.garbage) {
        // Corrupt the inbound stream the way a broken proxy would; the
        // framing layer must answer with a typed error, not wedge.
        reader.Feed(kGarbageBytes, sizeof(kGarbageBytes));
      }
    }
    reader.Feed(buf, static_cast<size_t>(n));
    std::string payload;
    for (;;) {
      Result<bool> next = reader.Next(&payload);
      if (!next.ok()) {
        // Unrecoverable framing error: answer once, drop the connection.
        WriteResponse(fd, MakeErrorResponse(WireError::kInvalidArgument,
                                            next.status().message()));
        open = false;
        break;
      }
      if (!*next) break;
      Result<Request> req = ParseRequest(payload);
      if (!req.ok()) {
        const std::string& msg = req.status().message();
        const WireError code =
            msg.compare(0, 16, "version-mismatch") == 0
                ? WireError::kVersionMismatch
                : WireError::kInvalidArgument;
        if (!WriteResponse(fd, MakeErrorResponse(code, msg))) {
          open = false;
          break;
        }
        continue;
      }
      if (!Dispatch(fd, *req)) {
        open = false;
        break;
      }
    }
  }
  // Self-reap: erase our registry entry (parking the thread handle as a
  // tombstone for AcceptLoop / Stop() to join) *before* closing the fd, so
  // no other thread can ever shutdown() a closed-and-reused descriptor.
  {
    MutexLock lock(&mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) {
      reaped_.push_back(std::move(it->second.thread));
      conns_.erase(it);
    }
    conns_cv_.NotifyAll();
  }
  ::close(fd);
}

bool Server::Dispatch(int fd, const Request& req) {
  switch (req.verb) {
    case Verb::kListDbs: {
      Response resp;
      resp.kind = Response::Kind::kDbList;
      resp.dbs = manager_->ListDbs();
      return WriteResponse(fd, resp);
    }
    case Verb::kPing: {
      Response resp;
      resp.kind = Response::Kind::kPong;
      resp.pong.uptime_seconds = uptime_.ElapsedSeconds();
      resp.pong.active_connections = active_connections();
      resp.pong.shed_connections =
          shed_connections_.load(std::memory_order_relaxed);
      const JobManager::JobStateCounts counts = manager_->CountJobsByState();
      resp.pong.jobs_queued = counts.queued;
      resp.pong.jobs_running = counts.running;
      resp.pong.jobs_done = counts.done;
      resp.pong.jobs_cancelled = counts.cancelled;
      resp.pong.jobs_failed = counts.failed;
      return WriteResponse(fd, resp);
    }
    case Verb::kStatus:
    case Verb::kCancel: {
      Result<WireJobStatus> status = req.verb == Verb::kStatus
                                         ? manager_->GetStatus(req.job_id)
                                         : manager_->Cancel(req.job_id);
      if (!status.ok()) {
        return WriteResponse(
            fd, MakeErrorResponse(WireError::kNotFound,
                                  status.status().message()));
      }
      Response resp;
      resp.kind = Response::Kind::kStatus;
      resp.status = *status;
      return WriteResponse(fd, resp);
    }
    case Verb::kAttach: {
      // Existence check first, so attaching to an unknown id is one clean
      // typed NotFound rather than accepted-then-error.
      const Result<WireJobStatus> status = manager_->GetStatus(req.job_id);
      if (!status.ok()) {
        return WriteResponse(
            fd, MakeErrorResponse(WireError::kNotFound,
                                  status.status().message()));
      }
      if (!WriteResponse(fd, MakeAcceptedResponse(req.job_id))) return false;
      return StreamJob(fd, req.job_id, req.cursor);
    }
    case Verb::kSubmit: {
      const JobManager::SubmitOutcome outcome = manager_->Submit(req);
      if (outcome.error != WireError::kNone) {
        return WriteResponse(fd,
                             MakeErrorResponse(outcome.error, outcome.message));
      }
      if (!WriteResponse(fd, MakeAcceptedResponse(outcome.job_id))) {
        return false;
      }
      // An idempotent retry (outcome.existing) replays the stream from 0;
      // the client dedupes by sequence number and byte-compares overlaps.
      return StreamJob(fd, outcome.job_id, 0);
    }
  }
  return false;
}

bool Server::StreamJob(int fd, uint64_t job_id, uint64_t cursor) {
  // Stream the job's answers on this connection until the stream completes
  // or the connection dies (the job itself survives either way; the client
  // resumes with attach from its last acknowledged sequence + 1).
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    // A peer that vanished mid-stream must not pin this thread for the
    // job's whole runtime: detect the EOF/reset and reclaim the thread.
    if (PeerClosed(fd)) return false;
    Result<JobManager::StreamProgress> pull = manager_->WaitAnswers(
        job_id, static_cast<size_t>(cursor), kStreamPollSeconds);
    if (!pull.ok()) {
      return WriteResponse(fd,
                           MakeErrorResponse(WireError::kInternal,
                                             pull.status().message()));
    }
    for (const WireAnswer& answer : pull->answers) {
      Response resp;
      resp.kind = Response::Kind::kAnswer;
      resp.job_id = job_id;
      resp.answer = answer;
      // seq IS the stream position: a resume cursor names the first seq
      // the client has not yet acknowledged.
      resp.seq = cursor;
      if (!WriteResponse(fd, resp)) return false;
      ++cursor;
    }
    if (pull->complete) {
      Response done;
      done.kind = Response::Kind::kDone;
      done.job_id = job_id;
      done.state = pull->state;
      done.failure_reason = pull->failure_reason;
      done.answers = cursor;  // total stream length, cursor-independent
      return WriteResponse(fd, done);
    }
  }
}

bool Server::WriteResponse(int fd, const Response& resp) {
  bool short_write = false;
  if (faults_ != nullptr) {
    // `stall` sleeps inside Hit(), simulating a write-side network stall.
    const FaultActions actions = faults_->Hit("wire-write");
    if (actions.reset) {
      ArmReset(fd);
      return false;
    }
    short_write = actions.short_write;
    if (actions.garbage) {
      // Corrupt the outbound stream: the client must treat the framing
      // error as a transport failure and recover via reconnect + attach.
      if (!SendWithDeadline(fd, kGarbageBytes, sizeof(kGarbageBytes),
                            /*short_write=*/false)) {
        return false;
      }
    }
  }
  const std::string frame = EncodeFrame(SerializeResponse(resp));
  return SendWithDeadline(fd, frame.data(), frame.size(), short_write);
}

bool Server::SendWithDeadline(int fd, const char* data, size_t n,
                              bool short_write) {
  Timer stall;  // reset on every byte of progress: measures pure stall time
  size_t sent = 0;
  while (sent < n) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    const size_t chunk = short_write ? 1 : n - sent;
    // MSG_NOSIGNAL: a client that disconnected mid-stream must surface as
    // an error return, not a process-killing SIGPIPE. MSG_DONTWAIT keeps
    // the stall deadline honest on a blocking fd.
    const ssize_t rc =
        ::send(fd, data + sent, chunk, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      stall.Reset();
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (config_.io_deadline_ms > 0 &&
          stall.ElapsedMillis() >= config_.io_deadline_ms) {
        // The peer stopped draining its window. Abort this connection —
        // the job survives, the client re-attaches when it recovers.
        return false;
      }
      pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      ::poll(&p, 1, kPollSliceMs);
      continue;
    }
    return false;
  }
  return true;
}

bool Server::PeerClosed(int fd) {
  pollfd p;
  p.fd = fd;
  p.events = POLLIN;
  p.revents = 0;
  if (::poll(&p, 1, 0) <= 0) return false;
  if ((p.revents & (POLLERR | POLLNVAL)) != 0) return true;
  char byte;
  const ssize_t rc = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (rc > 0) return false;  // pipelined request bytes: the peer is alive
  if (rc == 0) return true;  // orderly EOF
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void Server::ArmReset(int fd) {
  linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace fastqre
