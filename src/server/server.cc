#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fastqre {
namespace {

/// How long one WaitAnswers pull blocks while streaming a submit. Short
/// enough that Stop() is observed promptly, long enough to not busy-poll.
constexpr double kStreamPollSeconds = 0.2;

bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a client that disconnected mid-stream must surface as
    // an error return, not a process-killing SIGPIPE.
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(rc);
  }
  return true;
}

}  // namespace

Server::Server(JobManager* manager, ServerConfig config)
    : manager_(manager), config_(config) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::IOError("bind: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    const Status s =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close alone may not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(&mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or unrecoverable
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(&mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  FrameReader reader;
  char buf[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // orderly client close
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.Feed(buf, static_cast<size_t>(n));
    std::string payload;
    for (;;) {
      Result<bool> next = reader.Next(&payload);
      if (!next.ok()) {
        // Unrecoverable framing error: answer once, drop the connection.
        WriteResponse(fd, MakeErrorResponse(WireError::kInvalidArgument,
                                            next.status().message()));
        open = false;
        break;
      }
      if (!*next) break;
      Result<Request> req = ParseRequest(payload);
      if (!req.ok()) {
        const std::string& msg = req.status().message();
        const WireError code =
            msg.compare(0, 16, "version-mismatch") == 0
                ? WireError::kVersionMismatch
                : WireError::kInvalidArgument;
        if (!WriteResponse(fd, MakeErrorResponse(code, msg))) {
          open = false;
          break;
        }
        continue;
      }
      if (!Dispatch(fd, *req)) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
  // The fd stays in conn_fds_ until Stop(); shutdown() on a closed fd is
  // harmless (EBADF) because fds are never reused: we don't remove entries
  // to keep the bookkeeping race-free without a per-connection state
  // machine. Connection counts here are test-scale, not C10K.
}

bool Server::Dispatch(int fd, const Request& req) {
  switch (req.verb) {
    case Verb::kListDbs: {
      Response resp;
      resp.kind = Response::Kind::kDbList;
      resp.dbs = manager_->ListDbs();
      return WriteResponse(fd, resp);
    }
    case Verb::kStatus:
    case Verb::kCancel: {
      Result<WireJobStatus> status = req.verb == Verb::kStatus
                                         ? manager_->GetStatus(req.job_id)
                                         : manager_->Cancel(req.job_id);
      if (!status.ok()) {
        return WriteResponse(
            fd, MakeErrorResponse(WireError::kNotFound,
                                  status.status().message()));
      }
      Response resp;
      resp.kind = Response::Kind::kStatus;
      resp.status = *status;
      return WriteResponse(fd, resp);
    }
    case Verb::kSubmit: {
      const JobManager::SubmitOutcome outcome = manager_->Submit(req);
      if (outcome.error != WireError::kNone) {
        return WriteResponse(fd,
                             MakeErrorResponse(outcome.error, outcome.message));
      }
      if (!WriteResponse(fd, MakeAcceptedResponse(outcome.job_id))) {
        return false;
      }
      // Stream the job's answers on this connection until the stream
      // completes or the server stops (the job itself survives either way).
      size_t cursor = 0;
      for (;;) {
        if (stopping_.load(std::memory_order_acquire)) return false;
        Result<JobManager::StreamProgress> pull = manager_->WaitAnswers(
            outcome.job_id, cursor, kStreamPollSeconds);
        if (!pull.ok()) {
          return WriteResponse(fd,
                               MakeErrorResponse(WireError::kInternal,
                                                 pull.status().message()));
        }
        for (const WireAnswer& answer : pull->answers) {
          Response resp;
          resp.kind = Response::Kind::kAnswer;
          resp.job_id = outcome.job_id;
          resp.answer = answer;
          if (!WriteResponse(fd, resp)) return false;
        }
        cursor += pull->answers.size();
        if (pull->complete) {
          Response done;
          done.kind = Response::Kind::kDone;
          done.job_id = outcome.job_id;
          done.state = pull->state;
          done.failure_reason = pull->failure_reason;
          done.answers = cursor;
          return WriteResponse(fd, done);
        }
      }
    }
  }
  return false;
}

bool Server::WriteResponse(int fd, const Response& resp) {
  const std::string frame = EncodeFrame(SerializeResponse(resp));
  return SendAll(fd, frame.data(), frame.size());
}

}  // namespace fastqre
