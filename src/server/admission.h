// Per-tenant admission control for the QRE service (DESIGN.md §15.3).
//
// Every submit passes three gates, in order, each with its own typed
// rejection so clients can tell "back off" from "shrink your ask":
//
//   1. Rate:   a per-tenant token bucket (cost 1 per submit). Empty bucket
//              -> kRateLimited. Buckets are created on first use; an idle
//              tenant's bucket refills to burst and stays there.
//   2. Load:   a cap on in-flight jobs (queued + running) across all
//              tenants. Full -> kSaturated.
//   3. Memory: the job's governor slice is carved out of the global
//              BudgetPool. requested == 0 takes the default slice; any
//              request is clamped to max_slice_bytes. Pool can't fund it
//              -> kBudgetExhausted.
//
// A job that passes all three holds its slice until Release() — the
// JobManager calls that exactly once per admitted job, in its terminal
// state transition, so pool.reserved_bytes() is always the sum of live
// slices and pool.peak_reserved_bytes() bounds the service's worst case.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rate_limiter.h"
#include "common/resource_governor.h"
#include "common/thread_annotations.h"
#include "server/protocol.h"

namespace fastqre {

struct AdmissionConfig {
  /// Global memory pool all job slices are carved from; 0 = unlimited.
  uint64_t global_budget_bytes = 0;
  /// Slice handed to a job that doesn't ask for one.
  uint64_t default_slice_bytes = 64ull << 20;
  /// Hard cap on any single job's slice (clamps client requests).
  uint64_t max_slice_bytes = 256ull << 20;
  /// Token-bucket submits/second per tenant; 0 disables rate limiting.
  double tenant_rate_per_second = 0.0;
  /// Token-bucket burst per tenant.
  double tenant_burst = 8.0;
  /// Cap on jobs admitted but not yet released (queued + running).
  int max_in_flight_jobs = 64;
};

class AdmissionController {
 public:
  /// Outcome of one Admit() call. error == kNone means admitted and
  /// slice_bytes is reserved in the pool until Release(slice_bytes).
  struct Admission {
    WireError error = WireError::kNone;
    std::string message;
    uint64_t slice_bytes = 0;
  };

  explicit AdmissionController(AdmissionConfig config);

  /// Runs the three gates for one submit. `now_seconds` is injected (any
  /// monotonic clock) so tests drive the token buckets deterministically.
  /// Thread-safe.
  Admission Admit(const std::string& tenant, uint64_t requested_slice_bytes,
                  double now_seconds);

  /// Returns an admitted job's slice to the pool and frees its in-flight
  /// seat. Must be called exactly once per successful Admit().
  void Release(uint64_t slice_bytes);

  int in_flight_jobs() const;
  const BudgetPool& pool() const { return pool_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  const AdmissionConfig config_;
  BudgetPool pool_;

  mutable Mutex mu_;
  // std::map for deterministic iteration should diagnostics ever walk it
  // (unordered iteration is banned from observable output, DESIGN.md §10).
  std::map<std::string, TokenBucket> buckets_ GUARDED_BY(mu_);
  int in_flight_ GUARDED_BY(mu_) = 0;
};

}  // namespace fastqre
