// QRE-as-a-service wire protocol, version 1 (DESIGN.md §15).
//
// Transport: length-prefixed JSON frames over a byte stream. Each frame is
//
//     [4-byte big-endian payload length][payload bytes]
//
// where the payload is one compact JSON document. The length prefix makes
// framing independent of JSON content (no sentinel scanning), and the
// kMaxFramePayload cap rejects hostile lengths before any allocation.
//
// Schema: every request carries {"v": 1, "verb": ...}; a server that does
// not speak the requested version answers a typed "version-mismatch" error
// instead of guessing. Verbs:
//
//   submit    {"v","verb","tenant","db","rout_csv","options":{...},
//              "idempotency_key"?}
//             -> accepted, then a stream of answer events (rank order, as
//                proved, each carrying a monotonic per-job "seq"), then
//                done. A repeated submit with the same idempotency key
//                returns the existing job instead of admitting a second.
//   attach    {"v","verb","job","cursor"?} -> accepted, then the job's
//             answer stream re-played from `cursor` (live or finished) —
//             the resume path after a dropped connection.
//   status    {"v","verb","job"}       -> one status event.
//   cancel    {"v","verb","job"}       -> one status event (post-cancel).
//   list-dbs  {"v","verb"}             -> one db-list event.
//   ping      {"v","verb"}             -> one pong event (uptime, active
//             connections, jobs by state) for health checks.
//
// This header is the *pure* serialization layer: structs in, JSON frames
// out, and back — no sockets, no threads — so protocol_test exercises every
// schema path hermetically. The TCP plumbing lives in server.{h,cc}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "qre/fastqre.h"

namespace fastqre {

inline constexpr int kProtocolVersion = 1;

/// Frames larger than this are a protocol error (defensive cap, not a
/// tuning knob: a CSV R_out or an answer batch is megabytes at most).
inline constexpr uint32_t kMaxFramePayload = 32u << 20;

// ---- Framing ---------------------------------------------------------------

/// \brief Wraps `payload` in a length-prefixed frame.
std::string EncodeFrame(const std::string& payload);

/// \brief Incremental frame decoder: feed raw bytes from the stream, pull
/// complete payloads. Tolerates arbitrary fragmentation (a frame split
/// across reads) and coalescing (many frames in one read).
class FrameReader {
 public:
  /// Appends raw stream bytes to the internal buffer.
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete payload into `out`. Returns OK(true) on a
  /// frame, OK(false) when more bytes are needed, InvalidArgument when the
  /// stream is unrecoverably malformed (length over kMaxFramePayload).
  Result<bool> Next(std::string* out);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

// ---- Requests --------------------------------------------------------------

enum class Verb { kSubmit, kStatus, kCancel, kListDbs, kAttach, kPing };

const char* VerbToString(Verb verb);

/// \brief The QreOptions subset a client may set per job. Everything else
/// (cache budgets, kernel toggles) is server policy, not client input.
struct WireOptions {
  bool superset = false;
  int limit = 1;                    // ReverseAll answer limit
  double time_budget_seconds = 0;   // 0 = server default
  int validation_threads = 1;       // clamped by the server
  double alpha = 0.5;
  /// Requested governor slice; 0 = the server's default slice. The
  /// admission controller clamps and reserves it from the global pool.
  uint64_t memory_budget_bytes = 0;
};

struct Request {
  int version = kProtocolVersion;
  Verb verb = Verb::kListDbs;
  std::string tenant;   // submit (admission identity); empty = "default"
  std::string db;       // submit: named pre-attached database
  std::string rout_csv; // submit: the R_out table, CSV with header
  WireOptions options;  // submit
  /// Client-chosen idempotency key (submit, optional). A retry after an
  /// ambiguous failure that carries the same (tenant, key) returns the
  /// already-admitted job instead of creating a second one.
  std::string idempotency_key;
  uint64_t job_id = 0;  // status / cancel / attach
  uint64_t cursor = 0;  // attach: first sequence number to (re-)stream
};

std::string SerializeRequest(const Request& req);

/// Parses and validates one request payload. Typed failures: a bad version
/// yields InvalidArgument whose message begins with "version-mismatch".
Result<Request> ParseRequest(const std::string& payload);

// ---- Responses -------------------------------------------------------------

/// \brief Typed error taxonomy of the service. Stable wire strings — the
/// client and the admission tests match on them.
enum class WireError {
  kNone,
  kInvalidArgument,   // malformed request / CSV / options
  kVersionMismatch,   // client speaks a different protocol version
  kNotFound,          // unknown db name or job id
  kRateLimited,       // tenant token bucket empty
  kSaturated,         // job table / queue full (or injected admission fault)
  kBudgetExhausted,   // global memory pool cannot fund the slice
  kOverloaded,        // connection cap reached (wire-layer load shedding)
  kTimeout,           // read-idle deadline expired on this connection
  kShuttingDown,      // server is draining
  kInternal,
};

/// True for errors a client may retry (with backoff) without changing the
/// request: transient load / pacing conditions. The retry matrix lives in
/// DESIGN.md §15.5.
bool IsRetryableWireError(WireError code);

const char* WireErrorToString(WireError code);
WireError WireErrorFromString(const std::string& s);

/// \brief Job lifecycle states (DESIGN.md §15 state machine).
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* JobStateToString(JobState s);
JobState JobStateFromString(const std::string& s);

/// \brief One streamed answer event: a found entry carries SQL + a
/// job-scoped stats snapshot; the single possible unfound tail entry
/// carries the failure_reason instead.
struct WireAnswer {
  int index = 0;  // rank position within the job's answer stream
  bool found = false;
  std::string sql;
  std::string failure_reason;
  // Stats snapshot subset (full QreStats stays engine-side).
  double total_seconds = 0;
  uint64_t candidates_validated = 0;
  uint64_t peak_tracked_bytes = 0;
  bool cancelled = false;
};

/// Conversion from an engine answer at stream position `index`.
WireAnswer ToWireAnswer(const QreAnswer& answer, int index);

struct WireDbInfo {
  std::string name;
  uint64_t tables = 0;
  uint64_t rows = 0;
};

/// \brief The `pong` event: liveness plus a coarse load snapshot, enough
/// for a load balancer's health probe without a privileged verb.
struct WirePong {
  double uptime_seconds = 0;
  uint64_t active_connections = 0;
  /// Connections refused at the wire-layer cap since start.
  uint64_t shed_connections = 0;
  uint64_t jobs_queued = 0;
  uint64_t jobs_running = 0;
  uint64_t jobs_done = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_failed = 0;
};

struct WireJobStatus {
  uint64_t job_id = 0;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string db;
  uint64_t answers_streamed = 0;
  bool found_any = false;
  std::string failure_reason;
  uint64_t slice_bytes = 0;
  uint64_t peak_tracked_bytes = 0;
  double run_seconds = 0;
};

/// \brief One response frame. `kind` selects which fields are meaningful —
/// a tagged record rather than a class hierarchy, so serialization stays a
/// single pure function.
struct Response {
  enum class Kind {
    kAccepted,
    kAnswer,
    kDone,
    kStatus,
    kDbList,
    kError,
    kPong
  };

  Kind kind = Kind::kError;
  uint64_t job_id = 0;        // accepted / answer / done
  WireAnswer answer;          // answer
  /// answer: monotonic per-job sequence number (the stream cursor). A
  /// client resumes a broken stream with attach{job, cursor = last seq
  /// acknowledged + 1} and asserts the replayed stream is gap-free.
  uint64_t seq = 0;
  JobState state = JobState::kQueued;  // done / status
  std::string failure_reason; // done (empty = search ran to completion)
  uint64_t answers = 0;       // done: total entries streamed
  WireJobStatus status;       // status
  std::vector<WireDbInfo> dbs;  // db-list
  WirePong pong;              // pong
  WireError error = WireError::kNone;  // error
  std::string message;        // error
};

std::string SerializeResponse(const Response& resp);
Result<Response> ParseResponse(const std::string& payload);

// Convenience constructors for the server's dispatch code.
Response MakeErrorResponse(WireError code, std::string message);
Response MakeAcceptedResponse(uint64_t job_id);

}  // namespace fastqre
