#include "server/protocol.h"

#include <cstring>

#include "server/json.h"

namespace fastqre {
namespace {

// Wire field names are terse on purpose: frames are per-answer, and the
// bench pushes thousands of them. Abbreviating costs nothing in clarity
// because this file is the only place they appear.
constexpr char kFieldVersion[] = "v";
constexpr char kFieldVerb[] = "verb";
constexpr char kFieldKind[] = "kind";

uint32_t DecodeLength(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(u[0]) << 24) |
         (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

JsonValue OptionsToJson(const WireOptions& o) {
  JsonValue v = JsonValue::Object();
  v.Set("superset", JsonValue::Bool(o.superset));
  v.Set("limit", JsonValue::Int(o.limit));
  v.Set("time_budget_seconds", JsonValue::Double(o.time_budget_seconds));
  v.Set("validation_threads", JsonValue::Int(o.validation_threads));
  v.Set("alpha", JsonValue::Double(o.alpha));
  v.Set("memory_budget_bytes",
        JsonValue::Int(static_cast<int64_t>(o.memory_budget_bytes)));
  return v;
}

WireOptions OptionsFromJson(const JsonValue& v) {
  WireOptions o;
  o.superset = v.GetBool("superset", o.superset);
  o.limit = static_cast<int>(v.GetInt("limit", o.limit));
  o.time_budget_seconds =
      v.GetDouble("time_budget_seconds", o.time_budget_seconds);
  o.validation_threads =
      static_cast<int>(v.GetInt("validation_threads", o.validation_threads));
  o.alpha = v.GetDouble("alpha", o.alpha);
  o.memory_budget_bytes = static_cast<uint64_t>(
      v.GetInt("memory_budget_bytes",
               static_cast<int64_t>(o.memory_budget_bytes)));
  return o;
}

JsonValue AnswerToJson(const WireAnswer& a) {
  JsonValue v = JsonValue::Object();
  v.Set("index", JsonValue::Int(a.index));
  v.Set("found", JsonValue::Bool(a.found));
  if (a.found) {
    v.Set("sql", JsonValue::Str(a.sql));
  } else {
    v.Set("failure_reason", JsonValue::Str(a.failure_reason));
  }
  JsonValue stats = JsonValue::Object();
  stats.Set("total_seconds", JsonValue::Double(a.total_seconds));
  stats.Set("candidates_validated",
            JsonValue::Int(static_cast<int64_t>(a.candidates_validated)));
  stats.Set("peak_tracked_bytes",
            JsonValue::Int(static_cast<int64_t>(a.peak_tracked_bytes)));
  stats.Set("cancelled", JsonValue::Bool(a.cancelled));
  v.Set("stats", std::move(stats));
  return v;
}

WireAnswer AnswerFromJson(const JsonValue& v) {
  WireAnswer a;
  a.index = static_cast<int>(v.GetInt("index", 0));
  a.found = v.GetBool("found", false);
  a.sql = v.GetString("sql");
  a.failure_reason = v.GetString("failure_reason");
  if (const JsonValue* stats = v.Get("stats"); stats && stats->is_object()) {
    a.total_seconds = stats->GetDouble("total_seconds", 0);
    a.candidates_validated =
        static_cast<uint64_t>(stats->GetInt("candidates_validated", 0));
    a.peak_tracked_bytes =
        static_cast<uint64_t>(stats->GetInt("peak_tracked_bytes", 0));
    a.cancelled = stats->GetBool("cancelled", false);
  }
  return a;
}

JsonValue StatusToJson(const WireJobStatus& s) {
  JsonValue v = JsonValue::Object();
  v.Set("job", JsonValue::Int(static_cast<int64_t>(s.job_id)));
  v.Set("state", JsonValue::Str(JobStateToString(s.state)));
  v.Set("tenant", JsonValue::Str(s.tenant));
  v.Set("db", JsonValue::Str(s.db));
  v.Set("answers_streamed",
        JsonValue::Int(static_cast<int64_t>(s.answers_streamed)));
  v.Set("found_any", JsonValue::Bool(s.found_any));
  v.Set("failure_reason", JsonValue::Str(s.failure_reason));
  v.Set("slice_bytes", JsonValue::Int(static_cast<int64_t>(s.slice_bytes)));
  v.Set("peak_tracked_bytes",
        JsonValue::Int(static_cast<int64_t>(s.peak_tracked_bytes)));
  v.Set("run_seconds", JsonValue::Double(s.run_seconds));
  return v;
}

WireJobStatus StatusFromJson(const JsonValue& v) {
  WireJobStatus s;
  s.job_id = static_cast<uint64_t>(v.GetInt("job", 0));
  s.state = JobStateFromString(v.GetString("state", "queued"));
  s.tenant = v.GetString("tenant");
  s.db = v.GetString("db");
  s.answers_streamed = static_cast<uint64_t>(v.GetInt("answers_streamed", 0));
  s.found_any = v.GetBool("found_any", false);
  s.failure_reason = v.GetString("failure_reason");
  s.slice_bytes = static_cast<uint64_t>(v.GetInt("slice_bytes", 0));
  s.peak_tracked_bytes =
      static_cast<uint64_t>(v.GetInt("peak_tracked_bytes", 0));
  s.run_seconds = v.GetDouble("run_seconds", 0);
  return s;
}

}  // namespace

// ---- Framing ---------------------------------------------------------------

std::string EncodeFrame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

Result<bool> FrameReader::Next(std::string* out) {
  // Compact lazily: drop already-consumed bytes once they dominate the
  // buffer, so a long-lived connection doesn't grow without bound but a
  // burst of small frames doesn't memmove per frame either.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  const uint32_t len = DecodeLength(buffer_.data() + consumed_);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds cap " +
                                   std::to_string(kMaxFramePayload));
  }
  if (avail < 4 + static_cast<size_t>(len)) return false;
  out->assign(buffer_, consumed_ + 4, len);
  consumed_ += 4 + static_cast<size_t>(len);
  return true;
}

// ---- Enum <-> string -------------------------------------------------------

const char* VerbToString(Verb verb) {
  switch (verb) {
    case Verb::kSubmit:
      return "submit";
    case Verb::kStatus:
      return "status";
    case Verb::kCancel:
      return "cancel";
    case Verb::kListDbs:
      return "list-dbs";
    case Verb::kAttach:
      return "attach";
    case Verb::kPing:
      return "ping";
  }
  return "list-dbs";
}

const char* WireErrorToString(WireError code) {
  switch (code) {
    case WireError::kNone:
      return "none";
    case WireError::kInvalidArgument:
      return "invalid-argument";
    case WireError::kVersionMismatch:
      return "version-mismatch";
    case WireError::kNotFound:
      return "not-found";
    case WireError::kRateLimited:
      return "rate-limited";
    case WireError::kSaturated:
      return "saturated";
    case WireError::kBudgetExhausted:
      return "budget-exhausted";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kTimeout:
      return "timeout";
    case WireError::kShuttingDown:
      return "shutting-down";
    case WireError::kInternal:
      return "internal";
  }
  return "internal";
}

WireError WireErrorFromString(const std::string& s) {
  if (s == "none") return WireError::kNone;
  if (s == "invalid-argument") return WireError::kInvalidArgument;
  if (s == "version-mismatch") return WireError::kVersionMismatch;
  if (s == "not-found") return WireError::kNotFound;
  if (s == "rate-limited") return WireError::kRateLimited;
  if (s == "saturated") return WireError::kSaturated;
  if (s == "budget-exhausted") return WireError::kBudgetExhausted;
  if (s == "overloaded") return WireError::kOverloaded;
  if (s == "timeout") return WireError::kTimeout;
  if (s == "shutting-down") return WireError::kShuttingDown;
  return WireError::kInternal;
}

bool IsRetryableWireError(WireError code) {
  switch (code) {
    case WireError::kRateLimited:
    case WireError::kSaturated:
    case WireError::kBudgetExhausted:
    case WireError::kOverloaded:
    case WireError::kTimeout:
      return true;
    default:
      return false;
  }
}

const char* JobStateToString(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "failed";
}

JobState JobStateFromString(const std::string& s) {
  if (s == "queued") return JobState::kQueued;
  if (s == "running") return JobState::kRunning;
  if (s == "done") return JobState::kDone;
  if (s == "cancelled") return JobState::kCancelled;
  return JobState::kFailed;
}

// ---- Requests --------------------------------------------------------------

std::string SerializeRequest(const Request& req) {
  JsonValue v = JsonValue::Object();
  v.Set(kFieldVersion, JsonValue::Int(req.version));
  v.Set(kFieldVerb, JsonValue::Str(VerbToString(req.verb)));
  switch (req.verb) {
    case Verb::kSubmit:
      v.Set("tenant", JsonValue::Str(req.tenant));
      v.Set("db", JsonValue::Str(req.db));
      v.Set("rout_csv", JsonValue::Str(req.rout_csv));
      v.Set("options", OptionsToJson(req.options));
      if (!req.idempotency_key.empty()) {
        v.Set("idempotency_key", JsonValue::Str(req.idempotency_key));
      }
      break;
    case Verb::kStatus:
    case Verb::kCancel:
      v.Set("job", JsonValue::Int(static_cast<int64_t>(req.job_id)));
      break;
    case Verb::kAttach:
      v.Set("job", JsonValue::Int(static_cast<int64_t>(req.job_id)));
      v.Set("cursor", JsonValue::Int(static_cast<int64_t>(req.cursor)));
      break;
    case Verb::kListDbs:
    case Verb::kPing:
      break;
  }
  return v.Serialize();
}

Result<Request> ParseRequest(const std::string& payload) {
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::InvalidArgument("request payload is not a JSON object");
  }
  Request req;
  req.version = static_cast<int>(v.GetInt(kFieldVersion, 0));
  if (req.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "version-mismatch: server speaks protocol version " +
        std::to_string(kProtocolVersion) + ", request carries " +
        std::to_string(req.version));
  }
  const std::string verb = v.GetString(kFieldVerb);
  if (verb == "submit") {
    req.verb = Verb::kSubmit;
    req.tenant = v.GetString("tenant", "default");
    if (req.tenant.empty()) req.tenant = "default";
    req.db = v.GetString("db");
    if (req.db.empty()) {
      return Status::InvalidArgument("submit request is missing \"db\"");
    }
    req.rout_csv = v.GetString("rout_csv");
    if (req.rout_csv.empty()) {
      return Status::InvalidArgument("submit request is missing \"rout_csv\"");
    }
    if (const JsonValue* opts = v.Get("options"); opts && opts->is_object()) {
      req.options = OptionsFromJson(*opts);
    }
    if (req.options.limit < 1) {
      return Status::InvalidArgument("options.limit must be >= 1");
    }
    if (req.options.validation_threads < 1) {
      return Status::InvalidArgument(
          "options.validation_threads must be >= 1");
    }
    if (req.options.alpha < 0.0 || req.options.alpha > 1.0) {
      return Status::InvalidArgument("options.alpha must be in [0, 1]");
    }
    if (req.options.time_budget_seconds < 0.0) {
      return Status::InvalidArgument(
          "options.time_budget_seconds must be >= 0");
    }
    req.idempotency_key = v.GetString("idempotency_key");
  } else if (verb == "status" || verb == "cancel" || verb == "attach") {
    req.verb = verb == "status"   ? Verb::kStatus
               : verb == "cancel" ? Verb::kCancel
                                  : Verb::kAttach;
    const JsonValue* job = v.Get("job");
    if (job == nullptr || !job->is_number()) {
      return Status::InvalidArgument(verb + " request is missing \"job\"");
    }
    req.job_id = static_cast<uint64_t>(job->AsInt());
    if (req.verb == Verb::kAttach) {
      const int64_t cursor = v.GetInt("cursor", 0);
      if (cursor < 0) {
        return Status::InvalidArgument("attach cursor must be >= 0");
      }
      req.cursor = static_cast<uint64_t>(cursor);
    }
  } else if (verb == "list-dbs") {
    req.verb = Verb::kListDbs;
  } else if (verb == "ping") {
    req.verb = Verb::kPing;
  } else {
    return Status::InvalidArgument("unknown verb \"" + verb + "\"");
  }
  return req;
}

// ---- Responses -------------------------------------------------------------

WireAnswer ToWireAnswer(const QreAnswer& answer, int index) {
  WireAnswer a;
  a.index = index;
  a.found = answer.found;
  a.sql = answer.sql;
  a.failure_reason = answer.failure_reason;
  a.total_seconds = answer.stats.total_seconds;
  a.candidates_validated = answer.stats.candidates_validated.value();
  a.peak_tracked_bytes = answer.stats.peak_tracked_bytes.value();
  a.cancelled = answer.stats.cancelled;
  return a;
}

std::string SerializeResponse(const Response& resp) {
  JsonValue v = JsonValue::Object();
  v.Set(kFieldVersion, JsonValue::Int(kProtocolVersion));
  switch (resp.kind) {
    case Response::Kind::kAccepted:
      v.Set(kFieldKind, JsonValue::Str("accepted"));
      v.Set("job", JsonValue::Int(static_cast<int64_t>(resp.job_id)));
      break;
    case Response::Kind::kAnswer:
      v.Set(kFieldKind, JsonValue::Str("answer"));
      v.Set("job", JsonValue::Int(static_cast<int64_t>(resp.job_id)));
      v.Set("seq", JsonValue::Int(static_cast<int64_t>(resp.seq)));
      v.Set("answer", AnswerToJson(resp.answer));
      break;
    case Response::Kind::kDone:
      v.Set(kFieldKind, JsonValue::Str("done"));
      v.Set("job", JsonValue::Int(static_cast<int64_t>(resp.job_id)));
      v.Set("state", JsonValue::Str(JobStateToString(resp.state)));
      v.Set("failure_reason", JsonValue::Str(resp.failure_reason));
      v.Set("answers", JsonValue::Int(static_cast<int64_t>(resp.answers)));
      break;
    case Response::Kind::kStatus:
      v.Set(kFieldKind, JsonValue::Str("status"));
      v.Set("status", StatusToJson(resp.status));
      break;
    case Response::Kind::kDbList: {
      v.Set(kFieldKind, JsonValue::Str("db-list"));
      JsonValue dbs = JsonValue::Array();
      for (const WireDbInfo& db : resp.dbs) {
        JsonValue d = JsonValue::Object();
        d.Set("name", JsonValue::Str(db.name));
        d.Set("tables", JsonValue::Int(static_cast<int64_t>(db.tables)));
        d.Set("rows", JsonValue::Int(static_cast<int64_t>(db.rows)));
        dbs.Append(std::move(d));
      }
      v.Set("dbs", std::move(dbs));
      break;
    }
    case Response::Kind::kPong: {
      v.Set(kFieldKind, JsonValue::Str("pong"));
      JsonValue p = JsonValue::Object();
      p.Set("uptime_seconds", JsonValue::Double(resp.pong.uptime_seconds));
      p.Set("active_connections",
            JsonValue::Int(static_cast<int64_t>(
                resp.pong.active_connections)));
      p.Set("shed_connections",
            JsonValue::Int(static_cast<int64_t>(resp.pong.shed_connections)));
      JsonValue jobs = JsonValue::Object();
      jobs.Set("queued",
               JsonValue::Int(static_cast<int64_t>(resp.pong.jobs_queued)));
      jobs.Set("running",
               JsonValue::Int(static_cast<int64_t>(resp.pong.jobs_running)));
      jobs.Set("done",
               JsonValue::Int(static_cast<int64_t>(resp.pong.jobs_done)));
      jobs.Set("cancelled",
               JsonValue::Int(static_cast<int64_t>(resp.pong.jobs_cancelled)));
      jobs.Set("failed",
               JsonValue::Int(static_cast<int64_t>(resp.pong.jobs_failed)));
      p.Set("jobs", std::move(jobs));
      v.Set("pong", std::move(p));
      break;
    }
    case Response::Kind::kError:
      v.Set(kFieldKind, JsonValue::Str("error"));
      v.Set("error", JsonValue::Str(WireErrorToString(resp.error)));
      v.Set("message", JsonValue::Str(resp.message));
      break;
  }
  return v.Serialize();
}

Result<Response> ParseResponse(const std::string& payload) {
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::InvalidArgument("response payload is not a JSON object");
  }
  const int version = static_cast<int>(v.GetInt(kFieldVersion, 0));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "version-mismatch: response carries protocol version " +
        std::to_string(version));
  }
  Response resp;
  const std::string kind = v.GetString(kFieldKind);
  if (kind == "accepted") {
    resp.kind = Response::Kind::kAccepted;
    resp.job_id = static_cast<uint64_t>(v.GetInt("job", 0));
  } else if (kind == "answer") {
    resp.kind = Response::Kind::kAnswer;
    resp.job_id = static_cast<uint64_t>(v.GetInt("job", 0));
    resp.seq = static_cast<uint64_t>(v.GetInt("seq", 0));
    const JsonValue* answer = v.Get("answer");
    if (answer == nullptr || !answer->is_object()) {
      return Status::InvalidArgument("answer response is missing \"answer\"");
    }
    resp.answer = AnswerFromJson(*answer);
  } else if (kind == "done") {
    resp.kind = Response::Kind::kDone;
    resp.job_id = static_cast<uint64_t>(v.GetInt("job", 0));
    resp.state = JobStateFromString(v.GetString("state", "done"));
    resp.failure_reason = v.GetString("failure_reason");
    resp.answers = static_cast<uint64_t>(v.GetInt("answers", 0));
  } else if (kind == "status") {
    resp.kind = Response::Kind::kStatus;
    const JsonValue* status = v.Get("status");
    if (status == nullptr || !status->is_object()) {
      return Status::InvalidArgument("status response is missing \"status\"");
    }
    resp.status = StatusFromJson(*status);
  } else if (kind == "db-list") {
    resp.kind = Response::Kind::kDbList;
    if (const JsonValue* dbs = v.Get("dbs"); dbs && dbs->is_array()) {
      for (size_t i = 0; i < dbs->size(); ++i) {
        const JsonValue& d = dbs->at(i);
        if (!d.is_object()) continue;
        WireDbInfo info;
        info.name = d.GetString("name");
        info.tables = static_cast<uint64_t>(d.GetInt("tables", 0));
        info.rows = static_cast<uint64_t>(d.GetInt("rows", 0));
        resp.dbs.push_back(std::move(info));
      }
    }
  } else if (kind == "pong") {
    resp.kind = Response::Kind::kPong;
    const JsonValue* p = v.Get("pong");
    if (p == nullptr || !p->is_object()) {
      return Status::InvalidArgument("pong response is missing \"pong\"");
    }
    resp.pong.uptime_seconds = p->GetDouble("uptime_seconds", 0);
    resp.pong.active_connections =
        static_cast<uint64_t>(p->GetInt("active_connections", 0));
    resp.pong.shed_connections =
        static_cast<uint64_t>(p->GetInt("shed_connections", 0));
    if (const JsonValue* jobs = p->Get("jobs"); jobs && jobs->is_object()) {
      resp.pong.jobs_queued =
          static_cast<uint64_t>(jobs->GetInt("queued", 0));
      resp.pong.jobs_running =
          static_cast<uint64_t>(jobs->GetInt("running", 0));
      resp.pong.jobs_done = static_cast<uint64_t>(jobs->GetInt("done", 0));
      resp.pong.jobs_cancelled =
          static_cast<uint64_t>(jobs->GetInt("cancelled", 0));
      resp.pong.jobs_failed =
          static_cast<uint64_t>(jobs->GetInt("failed", 0));
    }
  } else if (kind == "error") {
    resp.kind = Response::Kind::kError;
    resp.error = WireErrorFromString(v.GetString("error", "internal"));
    resp.message = v.GetString("message");
  } else {
    return Status::InvalidArgument("unknown response kind \"" + kind + "\"");
  }
  return resp;
}

Response MakeErrorResponse(WireError code, std::string message) {
  Response resp;
  resp.kind = Response::Kind::kError;
  resp.error = code;
  resp.message = std::move(message);
  return resp;
}

Response MakeAcceptedResponse(uint64_t job_id) {
  Response resp;
  resp.kind = Response::Kind::kAccepted;
  resp.job_id = job_id;
  return resp;
}

}  // namespace fastqre
