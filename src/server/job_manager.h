// Async job management for the QRE service (DESIGN.md §15.2).
//
// A JobManager owns a set of named, pre-attached databases and a worker
// pool. Submit() validates the request, runs it through the
// AdmissionController (rate / load / memory gates, typed rejections),
// assigns a job id and enqueues the search; the worker thread builds a
// job-private FastQre whose governor budget IS the admitted slice, so a
// job can exhaust its own slice but never the pool's.
//
// Job lifecycle (DESIGN.md §15.2 state machine):
//
//     kQueued --start--> kRunning --search ends--> kDone
//         \                  \--cancel observed--> kCancelled
//          \--cancel before start-------------->   kCancelled
//           (engine rejects input / internal) -->  kFailed
//
// Terminal states are sticky; the admission slice is released exactly once,
// in the terminal transition. Answers stream into the job's AnswerBuffer
// from the engine's AnswerCallback — rank order, byte-identical to a batch
// run — and readers pull them with WaitAnswers() (cursor + timed wait), so
// no socket write ever happens under a job lock.
//
// Everything here is transport-agnostic: server.{h,cc} adapts it to TCP,
// the tests and bench_e16_service drive it in-process.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "qre/fastqre.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "storage/database.h"

namespace fastqre {

struct JobManagerConfig {
  /// Worker threads executing jobs (each job occupies one worker for its
  /// whole run; intra-job parallelism is the engine's own affair).
  int worker_threads = 2;

  AdmissionConfig admission;

  /// Server-side clamp on a job's requested validation_threads.
  int max_validation_threads = 8;
  /// Time budget applied when the client asks for none; 0 = unlimited.
  double default_time_budget_seconds = 0.0;
  /// Hard cap on any job's time budget; 0 = no cap.
  double max_time_budget_seconds = 0.0;

  /// Fault spec for the manager's own sites (grammar in
  /// common/fault_injection.h; empty falls back to FASTQRE_FAULTS). Site
  /// "job-admit" fires per submit after request validation: alloc-fail
  /// simulates an admission rejection (typed kSaturated), cancel cancels
  /// the job the moment it is admitted, delay widens the submit/cancel
  /// race window.
  std::string fault_spec;
};

/// \brief The streamed answers of one job, in rank order. Named so the
/// governed-alloc analyzer classifies it: growth is bounded by the job's
/// ReverseAll limit (+1 tail entry), set at admission time.
using AnswerBuffer = std::vector<WireAnswer>;

class JobManager {
 public:
  explicit JobManager(JobManagerConfig config);

  /// Cancels every live job, waits for terminal states, joins the pool.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Registers a database under `name`. Must happen before any Submit that
  /// names it; `db` must outlive the manager. Fails on duplicate name.
  Status AttachDatabase(const std::string& name, const Database* db);

  /// Outcome of a submit: error == kNone means `job_id` is live.
  struct SubmitOutcome {
    WireError error = WireError::kNone;
    std::string message;
    uint64_t job_id = 0;
    /// True when an idempotency key matched an already-admitted job:
    /// `job_id` names that job, nothing new was admitted or enqueued.
    bool existing = false;
  };

  /// Validates, admits and enqueues one job. Thread-safe; never blocks on
  /// job execution (admission rejections return immediately with their
  /// typed error). A request carrying an idempotency key dedupes against
  /// earlier keyed submits from the same tenant (DESIGN.md §15.5): a key
  /// that already produced a job returns it with `existing` set; a key
  /// whose original submit is still mid-admission gets a retryable
  /// kSaturated so the retry backs off instead of double-admitting.
  SubmitOutcome Submit(const Request& req);

  /// Snapshot of a job's externally visible state.
  Result<WireJobStatus> GetStatus(uint64_t job_id) const;

  /// Requests cooperative cancellation: a queued job dies before starting,
  /// a running job stops at its next interrupt poll and keeps its proved
  /// prefix (failure_reason "cancelled"). Idempotent; returns the status
  /// snapshot taken just after the request was recorded.
  Result<WireJobStatus> Cancel(uint64_t job_id);

  std::vector<WireDbInfo> ListDbs() const;

  /// Jobs bucketed by lifecycle state (the `ping` load snapshot).
  struct JobStateCounts {
    uint64_t queued = 0;
    uint64_t running = 0;
    uint64_t done = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
  };

  /// Counts every known job by its current state. O(jobs); cheap at the
  /// health-probe cadence this exists for.
  JobStateCounts CountJobsByState() const;

  /// One pull of a job's answer stream.
  struct StreamProgress {
    /// Answers with index >= the requested cursor, in rank order.
    // gov: bounded — a slice of one job's AnswerBuffer, itself capped at
    // options.limit + 1 entries.
    AnswerBuffer answers;
    JobState state = JobState::kQueued;
    /// True once `state` is terminal AND `answers` reaches the end of the
    /// stream — the caller has seen everything and can stop polling.
    bool complete = false;
    std::string failure_reason;
  };

  /// Blocks until the job has answers beyond `cursor`, reaches a terminal
  /// state, or `timeout_seconds` elapses (a plain timeout returns OK with
  /// empty answers and complete == false). NotFound for unknown ids.
  Result<StreamProgress> WaitAnswers(uint64_t job_id, size_t cursor,
                                     double timeout_seconds) const;

  /// Rejects new submits with kShuttingDown, cancels live jobs and waits
  /// for them to reach terminal states. Idempotent; the destructor calls it.
  void Shutdown();

  const AdmissionController& admission() const { return admission_; }

 private:
  struct Job {
    explicit Job(Table rout_table) : rout(std::move(rout_table)) {}

    uint64_t id = 0;
    std::string tenant;
    std::string db_name;
    const Database* db = nullptr;
    Table rout;
    WireOptions options;
    uint64_t slice_bytes = 0;

    mutable Mutex mu;
    mutable CondVar cv;
    JobState state GUARDED_BY(mu) = JobState::kQueued;
    // gov: bounded — at most options.limit + 1 entries (ReverseAll's
    // answer limit plus the single unfound tail), fixed at admission.
    AnswerBuffer answers GUARDED_BY(mu);
    bool found_any GUARDED_BY(mu) = false;
    std::string failure_reason GUARDED_BY(mu);
    uint64_t peak_tracked_bytes GUARDED_BY(mu) = 0;
    double run_seconds GUARDED_BY(mu) = 0;
    bool cancel_requested GUARDED_BY(mu) = false;
    /// Live only while kRunning; FastQre::Cancel() is const + thread-safe,
    /// so Cancel() pokes it without stopping the worker.
    std::shared_ptr<const FastQre> engine GUARDED_BY(mu);
  };

  /// Job-id -> record. Named so the governed-alloc analyzer classifies it:
  /// growth is bounded by the admission controller's in-flight cap per unit
  /// time, and each record is O(limit) WireAnswers.
  using JobTable = std::map<uint64_t, std::shared_ptr<Job>>;

  std::shared_ptr<Job> FindJob(uint64_t job_id) const;
  WireJobStatus SnapshotLocked(const Job& job) const REQUIRES(job.mu);
  /// The worker-thread body: runs the engine, streams answers, performs the
  /// terminal transition and releases the admission slice.
  void RunJob(const std::shared_ptr<Job>& job);

  const JobManagerConfig config_;
  AdmissionController admission_;
  std::unique_ptr<FaultInjector> faults_;  // null: no rules
  Status fault_spec_error_;
  Timer clock_;  // monotonic epoch for token buckets + run_seconds

  mutable Mutex mu_;
  std::map<std::string, const Database*> dbs_ GUARDED_BY(mu_);
  // gov: bounded — one entry per admitted job; in-flight is capped by
  // admission and terminal records are O(limit) answers each.
  JobTable jobs_ GUARDED_BY(mu_);
  /// (tenant, idempotency key) -> job id, 0 while the original submit is
  /// still between key reservation and job insertion. Entries are kept for
  /// the life of the manager, mirroring jobs_ retention, so a late retry
  /// still finds its job.
  // gov: bounded — at most one entry per keyed admitted job (see jobs_).
  std::map<std::string, uint64_t> idempotency_ GUARDED_BY(mu_);
  uint64_t next_job_id_ GUARDED_BY(mu_) = 1;
  bool shutting_down_ GUARDED_BY(mu_) = false;

  // Last: workers touch everything above, so the pool must die first.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fastqre
