// Minimal JSON value model for the wire protocol (DESIGN.md §15).
//
// Dependency-free by project rule: the container bakes in no JSON library,
// so the protocol layer carries its own small recursive-descent parser and
// serializer. Deliberately tiny — only what the length-prefixed frame
// payloads need:
//
//  * Objects preserve insertion order (a vector of pairs, not a hash map),
//    so serialization is deterministic and the unordered-iteration rules
//    (DESIGN.md §10/§14) never apply.
//  * Numbers remember whether they were written as integers: job ids and
//    byte counts round-trip exactly as int64; everything else is double.
//  * Strings are byte sequences: UTF-8 passes through untouched, control
//    characters and quotes are escaped on output, \uXXXX escapes decode to
//    UTF-8 on input.
//  * Parse depth is capped so a hostile payload cannot recurse the stack
//    out (the frame length cap in protocol.h bounds breadth the same way).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace fastqre {

/// \brief One JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.type_ = Type::kDouble;
    v.double_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }
  const JsonValue& at(size_t i) const { return items_[i]; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  // Object access. Get returns nullptr when the key is absent; the typed
  // getters additionally fall back when the value has the wrong type, so
  // protocol parsing reads like a schema.
  const JsonValue* Get(const std::string& key) const;
  void Set(std::string key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Compact single-line serialization (no whitespace). Deterministic:
  /// object members serialize in insertion order.
  std::string Serialize() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

}  // namespace fastqre
