#include "server/job_manager.h"

#include <algorithm>
#include <cstdlib>

#include "storage/csv.h"

namespace fastqre {
namespace {

bool IsTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kCancelled ||
         s == JobState::kFailed;
}

// Idempotency map key. Length-prefixing the tenant keeps distinct
// (tenant, key) pairs distinct even when either string contains the other's
// separator — both are caller-chosen bytes.
std::string IdempotencyMapKey(const std::string& tenant,
                              const std::string& key) {
  return std::to_string(tenant.size()) + ':' + tenant + key;
}

}  // namespace

JobManager::JobManager(JobManagerConfig config)
    : config_(std::move(config)), admission_(config_.admission) {
  std::string spec = config_.fault_spec;
  if (spec.empty()) {
    if (const char* env = std::getenv("FASTQRE_FAULTS")) spec = env;
  }
  if (!spec.empty()) {
    Result<std::unique_ptr<FaultInjector>> parsed = FaultInjector::Parse(spec);
    if (parsed.ok()) {
      faults_ = std::move(*parsed);
    } else {
      // Constructors cannot return Status; every Submit() reports this.
      fault_spec_error_ = parsed.status();
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.worker_threads);
}

JobManager::~JobManager() {
  Shutdown();
  pool_.reset();
}

Status JobManager::AttachDatabase(const std::string& name,
                                  const Database* db) {
  if (name.empty()) return Status::InvalidArgument("empty database name");
  MutexLock lock(&mu_);
  if (!dbs_.emplace(name, db).second) {
    return Status::InvalidArgument("database \"" + name +
                                   "\" is already attached");
  }
  return Status::OK();
}

JobManager::SubmitOutcome JobManager::Submit(const Request& req) {
  SubmitOutcome out;
  if (!fault_spec_error_.ok()) {
    out.error = WireError::kInvalidArgument;
    out.message = "bad fault spec: " + fault_spec_error_.message();
    return out;
  }

  const bool keyed = !req.idempotency_key.empty();
  const std::string idem_key =
      keyed ? IdempotencyMapKey(req.tenant, req.idempotency_key)
            : std::string();

  const Database* db = nullptr;
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      out.error = WireError::kShuttingDown;
      out.message = "server is shutting down";
      return out;
    }
    auto it = dbs_.find(req.db);
    if (it == dbs_.end()) {
      out.error = WireError::kNotFound;
      out.message = "no database named \"" + req.db + "\"";
      return out;
    }
    db = it->second;
    if (keyed) {
      // Reserve the key (value 0) before the slow work below, so two racing
      // retries with the same key cannot both reach admission. The reserver
      // either publishes its job id or erases the reservation on rejection.
      auto [slot, inserted] = idempotency_.emplace(idem_key, 0);
      if (!inserted) {
        if (slot->second != 0) {
          out.job_id = slot->second;
          out.existing = true;
          return out;
        }
        out.error = WireError::kSaturated;
        out.message = "a submit with this idempotency key is in flight";
        return out;
      }
    }
  }
  // From here every rejection path must drop the reservation, or retries of
  // a rejected submit would wedge on the in-flight placeholder forever.
  auto drop_reservation = [&] {
    if (!keyed) return;
    MutexLock lock(&mu_);
    idempotency_.erase(idem_key);
  };

  // Parse R_out synchronously (outside the manager lock: CSV size is client
  // controlled) so malformed input is a typed submit-time rejection, not a
  // failed job.
  Result<Table> rout =
      LoadCsvString(req.rout_csv, "rout", db->dictionary());
  if (!rout.ok()) {
    drop_reservation();
    out.error = WireError::kInvalidArgument;
    out.message = "rout_csv: " + rout.status().message();
    return out;
  }

  // The "job-admit" fault site: alloc-fail simulates an admission rejection
  // so clients' retry paths are testable; cancel races a cancellation
  // against the enqueue below; delay (handled inside Hit) widens both
  // windows for the sanitizer jobs.
  bool inject_cancel = false;
  if (faults_ != nullptr) {
    const FaultActions actions = faults_->Hit("job-admit");
    if (actions.alloc_fail) {
      drop_reservation();
      out.error = WireError::kSaturated;
      out.message = "injected admission fault (job-admit=alloc-fail)";
      return out;
    }
    inject_cancel = actions.cancel;
  }

  const AdmissionController::Admission admit = admission_.Admit(
      req.tenant, req.options.memory_budget_bytes, clock_.ElapsedSeconds());
  if (admit.error != WireError::kNone) {
    drop_reservation();
    out.error = admit.error;
    out.message = admit.message;
    return out;
  }

  auto job = std::make_shared<Job>(std::move(*rout));
  job->tenant = req.tenant;
  job->db_name = req.db;
  job->db = db;
  job->options = req.options;
  job->slice_bytes = admit.slice_bytes;
  if (inject_cancel) {
    MutexLock lock(&job->mu);
    job->cancel_requested = true;
  }

  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      // Lost the race against Shutdown(): undo the admission and reject —
      // nobody would cancel a job inserted after Shutdown's snapshot.
      admission_.Release(job->slice_bytes);
      if (keyed) idempotency_.erase(idem_key);
      out.error = WireError::kShuttingDown;
      out.message = "server is shutting down";
      return out;
    }
    job->id = next_job_id_++;
    jobs_.emplace(job->id, job);
    // Publish the id in the same critical section that makes the job
    // findable: a racing keyed retry sees either "in flight" or this job,
    // never a gap.
    if (keyed) idempotency_[idem_key] = job->id;
  }

  pool_->Submit([this, job] { RunJob(job); });
  out.job_id = job->id;
  return out;
}

std::shared_ptr<JobManager::Job> JobManager::FindJob(uint64_t job_id) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second;
}

WireJobStatus JobManager::SnapshotLocked(const Job& job) const {
  WireJobStatus s;
  s.job_id = job.id;
  s.state = job.state;
  s.tenant = job.tenant;
  s.db = job.db_name;
  s.answers_streamed = job.answers.size();
  s.found_any = job.found_any;
  s.failure_reason = job.failure_reason;
  s.slice_bytes = job.slice_bytes;
  s.peak_tracked_bytes = job.peak_tracked_bytes;
  s.run_seconds = job.run_seconds;
  return s;
}

Result<WireJobStatus> JobManager::GetStatus(uint64_t job_id) const {
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  MutexLock lock(&job->mu);
  return SnapshotLocked(*job);
}

Result<WireJobStatus> JobManager::Cancel(uint64_t job_id) {
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  MutexLock lock(&job->mu);
  job->cancel_requested = true;
  if (job->engine != nullptr) job->engine->Cancel();
  // The snapshot is honest about timing: a running job is still kRunning
  // here and flips to kCancelled when the engine observes the token.
  return SnapshotLocked(*job);
}

std::vector<WireDbInfo> JobManager::ListDbs() const {
  std::vector<WireDbInfo> out;
  MutexLock lock(&mu_);
  for (const auto& [name, db] : dbs_) {  // std::map: deterministic order
    WireDbInfo info;
    info.name = name;
    info.tables = db->num_tables();
    for (size_t t = 0; t < db->num_tables(); ++t) {
      info.rows += db->table(static_cast<TableId>(t)).num_rows();
    }
    out.push_back(std::move(info));
  }
  return out;
}

JobManager::JobStateCounts JobManager::CountJobsByState() const {
  // Snapshot the table first, then read states lock-by-lock: mu_ is never
  // held across a job->mu acquisition (same discipline as Shutdown), and a
  // job transitioning mid-scan is counted in whichever state it held when
  // its turn came — a health probe wants a coarse load sketch, not a
  // linearizable census.
  std::vector<std::shared_ptr<Job>> snapshot;
  {
    MutexLock lock(&mu_);
    snapshot.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) snapshot.push_back(job);
  }
  JobStateCounts counts;
  for (const std::shared_ptr<Job>& job : snapshot) {
    MutexLock lock(&job->mu);
    switch (job->state) {
      case JobState::kQueued:
        ++counts.queued;
        break;
      case JobState::kRunning:
        ++counts.running;
        break;
      case JobState::kDone:
        ++counts.done;
        break;
      case JobState::kCancelled:
        ++counts.cancelled;
        break;
      case JobState::kFailed:
        ++counts.failed;
        break;
    }
  }
  return counts;
}

Result<JobManager::StreamProgress> JobManager::WaitAnswers(
    uint64_t job_id, size_t cursor, double timeout_seconds) const {
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Timer waited;
  MutexLock lock(&job->mu);
  while (job->answers.size() <= cursor && !IsTerminal(job->state)) {
    const double remaining = timeout_seconds - waited.ElapsedSeconds();
    if (remaining <= 0) break;
    job->cv.WaitFor(job->mu, remaining);
  }
  StreamProgress progress;
  for (size_t i = cursor; i < job->answers.size(); ++i) {
    progress.answers.push_back(job->answers[i]);
  }
  progress.state = job->state;
  progress.failure_reason = job->failure_reason;
  // Once terminal, the stream is final (the terminal transition happens
  // after the engine returns, i.e. after the last callback), so handing
  // out the remaining answers completes the stream.
  progress.complete = IsTerminal(job->state);
  return progress;
}

void JobManager::RunJob(const std::shared_ptr<Job>& job) {
  Timer run_timer;
  {
    MutexLock lock(&job->mu);
    if (job->cancel_requested) {
      job->failure_reason = "cancelled";
      job->run_seconds = run_timer.ElapsedSeconds();
      // Release before the terminal state is observable: a waiter that
      // sees kCancelled may immediately assert the pool drained.
      admission_.Release(job->slice_bytes);
      job->state = JobState::kCancelled;
      job->cv.NotifyAll();
      return;
    }
    job->state = JobState::kRunning;
    job->cv.NotifyAll();
  }

  QreOptions opts;
  opts.variant = job->options.superset ? QreVariant::kSuperset
                                       : QreVariant::kExact;
  opts.alpha = job->options.alpha;
  opts.validation_threads =
      std::max(1, std::min(job->options.validation_threads,
                           config_.max_validation_threads));
  opts.time_budget_seconds = job->options.time_budget_seconds > 0
                                 ? job->options.time_budget_seconds
                                 : config_.default_time_budget_seconds;
  if (config_.max_time_budget_seconds > 0) {
    opts.time_budget_seconds =
        opts.time_budget_seconds > 0
            ? std::min(opts.time_budget_seconds,
                       config_.max_time_budget_seconds)
            : config_.max_time_budget_seconds;
  }
  // The admitted slice IS the job's governor budget: the engine degrades
  // and ultimately stops against it, so a greedy job exhausts itself, not
  // the pool.
  opts.memory_budget_bytes = job->slice_bytes;

  auto engine = std::make_shared<const FastQre>(job->db, opts);
  {
    MutexLock lock(&job->mu);
    job->engine = engine;
    // A cancel that arrived between the kRunning transition and here found
    // engine == nullptr; honor it now that the engine exists.
    if (job->cancel_requested) engine->Cancel();
  }

  Job* raw = job.get();
  Result<std::vector<QreAnswer>> result = engine->ReverseAll(
      job->rout, job->options.limit, [raw](const QreAnswer& answer) {
        MutexLock lock(&raw->mu);
        const int index = static_cast<int>(raw->answers.size());
        raw->answers.push_back(ToWireAnswer(answer, index));
        if (answer.found) raw->found_any = true;
        raw->cv.NotifyAll();
      });

  {
    MutexLock lock(&job->mu);
    job->engine.reset();
    job->run_seconds = run_timer.ElapsedSeconds();
    JobState terminal;
    if (!result.ok()) {
      terminal = JobState::kFailed;
      job->failure_reason = result.status().message();
    } else {
      const std::vector<QreAnswer>& answers = *result;
      if (!answers.empty()) {
        job->peak_tracked_bytes =
            answers.back().stats.peak_tracked_bytes.value();
        if (!answers.back().found) {
          job->failure_reason = answers.back().failure_reason;
        }
      }
      terminal = job->failure_reason == "cancelled" ? JobState::kCancelled
                                                    : JobState::kDone;
    }
    // Release before the terminal state is observable (see the queued-
    // cancel path above). Lock order job->mu -> admission mutex appears
    // nowhere reversed.
    admission_.Release(job->slice_bytes);
    job->state = terminal;
    job->cv.NotifyAll();
  }
}

void JobManager::Shutdown() {
  std::vector<std::shared_ptr<Job>> live;
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
    for (const auto& [id, job] : jobs_) live.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : live) {
    MutexLock lock(&job->mu);
    job->cancel_requested = true;
    if (job->engine != nullptr) job->engine->Cancel();
  }
  for (const std::shared_ptr<Job>& job : live) {
    MutexLock lock(&job->mu);
    while (!IsTerminal(job->state)) job->cv.Wait(job->mu);
  }
}

}  // namespace fastqre
