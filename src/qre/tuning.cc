#include "qre/tuning.h"

#include <limits>

#include "common/rng.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "qre/fastqre.h"

namespace fastqre {

Result<TuneAlphaResult> TuneAlpha(const Database& db, const QreOptions& base,
                                  const TuneAlphaOptions& tune_options) {
  if (tune_options.candidates.empty()) {
    return Status::InvalidArgument("no candidate alpha values");
  }

  // Self-generate the calibration workload.
  Rng rng(SplitMix64(tune_options.seed) ^ 0x616c706861ULL);
  RandomQueryOptions q_opts;
  q_opts.num_instances = tune_options.test_query_instances;
  q_opts.num_projections = tune_options.test_query_instances;
  std::vector<Table> routs;
  for (int i = 0; i < tune_options.num_test_queries; ++i) {
    auto wq = RandomCpjQuery(db, &rng, q_opts);
    if (wq.ok()) routs.push_back(std::move(wq->rout));
  }
  if (routs.empty()) {
    return Status::NotFound("could not generate any calibration query");
  }

  TuneAlphaResult result;
  result.alphas = tune_options.candidates;
  double best_total = std::numeric_limits<double>::infinity();
  for (double alpha : tune_options.candidates) {
    QreOptions opts = base;
    opts.alpha = alpha;
    opts.time_budget_seconds = tune_options.per_run_budget_seconds;
    FastQre engine(&db, opts);
    double total = 0.0;
    for (const Table& rout : routs) {
      Timer t;
      auto answer = engine.Reverse(rout);
      total += answer.ok() && (*answer).found
                   ? t.ElapsedSeconds()
                   : tune_options.per_run_budget_seconds;
    }
    result.total_seconds.push_back(total);
    if (total < best_total) {
      best_total = total;
      result.best_alpha = alpha;
    }
  }
  return result;
}

}  // namespace fastqre
