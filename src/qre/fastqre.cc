#include "qre/fastqre.h"

#include <unordered_set>

#include "common/strings.h"
#include "common/timer.h"
#include "engine/compare.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/composer.h"
#include "qre/feedback.h"
#include "qre/mapping.h"
#include "qre/validator.h"
#include "qre/walks.h"

namespace fastqre {

namespace {

// Re-encodes `rout` against the database dictionary (if needed) and
// collapses duplicate rows: the paper's pi/⊆ machinery is set-semantics.
Result<Table> NormalizeRout(const Database& db, const Table& rout) {
  Table out(rout.name(), db.dictionary());
  for (size_t c = 0; c < rout.num_columns(); ++c) {
    FASTQRE_RETURN_NOT_OK(
        out.AddColumn(rout.column(c).name(), rout.column(c).type()));
  }
  const bool same_dict = rout.dictionary() == db.dictionary();
  TupleSet seen;
  seen.reserve(rout.num_rows());
  for (RowId r = 0; r < rout.num_rows(); ++r) {
    std::vector<ValueId> ids(rout.num_columns());
    if (same_dict) {
      ids = rout.RowIds(r);
    } else {
      for (size_t c = 0; c < rout.num_columns(); ++c) {
        ids[c] = db.dictionary()->Intern(
            rout.dictionary()->Get(rout.column(c).at(r)));
      }
    }
    if (seen.insert(ids).second) out.AppendRowIds(ids);
  }
  return out;
}

}  // namespace

std::string QreTrace::ToString() const {
  std::string out;
  for (size_t m = 0; m < mappings.size(); ++m) {
    out += StringFormat("mapping #%zu: %s\n", m, mappings[m].c_str());
  }
  for (const auto& c : candidates) {
    out += StringFormat("  [m%d dc=%.0f a=%.2f] %-16s %s\n", c.mapping_index,
                        c.dc, c.alpha_cost, c.outcome.c_str(), c.sql.c_str());
  }
  return out;
}

FastQre::FastQre(const Database* db, QreOptions options)
    : db_(db), options_(options) {}

Result<QreAnswer> FastQre::Reverse(const Table& rout) const {
  FASTQRE_ASSIGN_OR_RETURN(auto answers, ReverseAll(rout, 1));
  return std::move(answers[0]);
}

Result<std::vector<QreAnswer>> FastQre::ReverseAll(const Table& rout,
                                                   int limit) const {
  if (rout.num_columns() == 0) {
    return Status::InvalidArgument("R_out has no columns");
  }
  if (rout.num_rows() == 0) {
    return Status::InvalidArgument(
        "R_out has no rows; any query with an empty result would generate it");
  }
  if (limit < 1) return Status::InvalidArgument("limit must be >= 1");

  Timer total_timer;
  QreStats stats;
  auto budget_exceeded = [this, &total_timer]() {
    return options_.time_budget_seconds > 0 &&
           total_timer.ElapsedSeconds() > options_.time_budget_seconds;
  };
  auto finish = [&](QreAnswer* a) {
    a->stats = stats;
    a->stats.total_seconds = total_timer.ElapsedSeconds();
  };
  QreTrace* trace_ptr = nullptr;  // set below once the trace exists
  auto not_found = [&](const std::string& reason) {
    QreAnswer a;
    a.found = false;
    a.failure_reason = reason;
    if (trace_ptr != nullptr) a.trace = *trace_ptr;
    finish(&a);
    return std::vector<QreAnswer>{std::move(a)};
  };

  // ---- Preprocessing -------------------------------------------------------
  FASTQRE_ASSIGN_OR_RETURN(Table norm_rout, NormalizeRout(*db_, rout));
  const TupleSet rout_set = TableToTupleSet(norm_rout);

  ColumnCover cover = ComputeColumnCover(*db_, norm_rout, options_, &stats);
  if (cover.HasEmptyCover()) {
    return not_found(
        "some R_out column is contained in no database column; no PJ query "
        "can generate R_out");
  }

  CgmSet cgms;
  if (options_.use_cgm_ranking) {
    cgms = DiscoverCgms(*db_, norm_rout, cover, options_, &stats);
  }

  // ---- Candidate generation + validation -----------------------------------
  QreTrace trace;
  trace_ptr = &trace;
  std::vector<QreAnswer> answers;
  MappingEnumerator mappings(db_, &norm_rout, &cover,
                             options_.use_cgm_ranking ? &cgms : nullptr,
                             &options_, budget_exceeded);
  ColumnMapping mapping;
  for (int m = 0; m < options_.max_mappings && mappings.Next(&mapping); ++m) {
    ++stats.mappings_tried;
    if (options_.collect_trace) {
      trace.mappings.push_back(mapping.ToString(*db_, norm_rout));
    }
    if (budget_exceeded()) return not_found("time budget exceeded");

    std::vector<Walk> walks;
    if (mapping.instances.size() > 1) {
      walks = DiscoverWalks(*db_, mapping, options_);
      stats.walks_discovered += walks.size();
      if (walks.empty()) continue;  // instances cannot be connected
    }

    Feedback feedback(walks.size());
    RankedComposer composer(db_, &mapping, &walks, &options_, &feedback,
                            budget_exceeded);
    Validator validator(db_, &norm_rout, &rout_set, &mapping, &walks,
                        &options_, &feedback, &stats, budget_exceeded);

    CandidateQuery candidate;
    uint64_t tried = 0;
    while (tried < options_.max_candidates_per_mapping &&
           composer.Next(&candidate)) {
      ++tried;
      ++stats.candidates_generated;
      if (budget_exceeded()) return not_found("time budget exceeded");

      CandidateOutcome outcome = validator.Validate(candidate);
      if (options_.collect_trace) {
        trace.candidates.push_back(QreTrace::Candidate{
            m, candidate.query.ToSql(*db_), candidate.dc, candidate.alpha_cost,
            CandidateOutcomeToString(outcome)});
      }
      switch (outcome) {
        case CandidateOutcome::kGenerating: {
          QreAnswer a;
          a.found = true;
          a.query = candidate.query;
          a.sql = candidate.query.ToSql(*db_);
          a.num_instances = candidate.query.num_instances();
          a.num_joins = candidate.query.joins().size();
          // Fold the composer counters in before snapshotting the stats.
          a.trace = trace;
          a.stats = stats;
          a.stats.candidates_pruned_dead += composer.sets_pruned_dead();
          a.stats.walk_sets_expanded += composer.sets_expanded();
          a.stats.total_seconds = total_timer.ElapsedSeconds();
          answers.push_back(std::move(a));
          if (static_cast<int>(answers.size()) >= limit) {
            return answers;
          }
          break;
        }
        case CandidateOutcome::kMissingTuples:
          if (options_.use_feedback_pruning && !candidate.walk_ids.empty()) {
            feedback.AddDeadSet(candidate.walk_ids);
          }
          break;
        case CandidateOutcome::kIncoherentWalk:
          // The validator already memoized the incoherent walk in feedback.
          break;
        case CandidateOutcome::kExtraTuples:
        case CandidateOutcome::kError:
          break;  // only this candidate is dismissed
        case CandidateOutcome::kBudgetExhausted:
          return not_found("time budget exceeded");
      }
    }
    stats.candidates_pruned_dead += composer.sets_pruned_dead();
    stats.walk_sets_expanded += composer.sets_expanded();
  }

  if (!answers.empty()) return answers;
  if (budget_exceeded()) return not_found("time budget exceeded");
  return not_found("search space exhausted without finding a generating query");
}

}  // namespace fastqre
