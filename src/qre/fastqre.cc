#include "qre/fastqre.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <thread>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/resource_governor.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/compare.h"
#include "engine/subplan_cache.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/composer.h"
#include "qre/feedback.h"
#include "qre/mapping.h"
#include "qre/validator.h"
#include "qre/walk_cache.h"
#include "qre/walks.h"

namespace fastqre {

namespace {

// Re-encodes `rout` against the database dictionary (if needed) and
// collapses duplicate rows: the paper's pi/⊆ machinery is set-semantics.
Result<Table> NormalizeRout(const Database& db, const Table& rout) {
  Table out(rout.name(), db.dictionary());
  for (size_t c = 0; c < rout.num_columns(); ++c) {
    FASTQRE_RETURN_NOT_OK(
        out.AddColumn(rout.column(c).name(), rout.column(c).type()));
  }
  const bool same_dict = rout.dictionary() == db.dictionary();
  // gov: bounded — one set of R_out's rows (small by problem definition),
  // freed at scope exit.
  TupleSet seen;
  seen.reserve(rout.num_rows());
  // poll: bounded — one pass over R_out's rows (small by problem
  // definition); normalization finishes before any budget can expire.
  for (RowId r = 0; r < rout.num_rows(); ++r) {
    std::vector<ValueId> ids(rout.num_columns());
    if (same_dict) {
      ids = rout.RowIds(r);
    } else {
      for (size_t c = 0; c < rout.num_columns(); ++c) {
        ids[c] = db.dictionary()->Intern(
            rout.dictionary()->Get(rout.column(c).at(r)));
      }
    }
    if (seen.insert(ids).second) out.AppendRowIds(ids);
  }
  return out;
}

// ---- Parallel candidate validation ------------------------------------------
//
// With QreOptions::validation_threads > 1, the composer stays on the calling
// thread and feeds ranked candidates (tagged with a rank sequence number)
// into a bounded queue drained by N workers, each validating with its own
// QueryCursor against the shared thread-safe Database caches and Feedback.
//
// Determinism protocol (DESIGN.md §8): the answer must be byte-identical to
// a serial run, so a generating verdict at rank s is only *accepted* after
// every rank < s has completed non-generating (the rank barrier, enforced at
// finalization by scanning outcomes in rank order). Conversely, once the
// `need`-th generating candidate is known at rank f, candidates ranked below
// it (seq > f) are cancelled: queued ones are dropped, in-flight ones are
// interrupted through the executor's interrupt callback. Feedback published
// by workers is conservative (it only ever dismisses provably non-generating
// subtrees), so sharing it across threads reorders *work*, never *answers*.

// One validated (or cancelled) candidate, tagged with its rank.
struct RankedOutcome {
  uint64_t seq = 0;
  CandidateQuery cand;
  CandidateOutcome outcome = CandidateOutcome::kError;
  // True if validation was skipped or interrupted because a better-ranked
  // generating candidate had already won (not a real budget expiry).
  bool cancelled = false;
};

struct ParallelMappingResult {
  std::vector<RankedOutcome> outcomes;  // sorted by rank
  bool budget_exhausted = false;
};

// Runs one mapping's candidate stream through the validation worker pool.
// `need_answers` is how many more generating queries the caller wants; the
// pool cancels candidates ranked below the need_answers-th generating one.
ParallelMappingResult RunMappingParallel(
    const Database* db, const Table* rout, const TupleSet* rout_set,
    const ColumnMapping* mapping, const std::vector<Walk>* walks,
    const QreOptions* options, Feedback* feedback, QreStats* stats,
    WalkCache* walk_cache, const std::function<bool()>& budget_exceeded,
    RankedComposer* composer, int need_answers, ResourceGovernor* governor,
    const ExecPolicy& policy) {
  struct Item {
    uint64_t seq;
    CandidateQuery cand;
  };
  constexpr uint64_t kNoFloor = std::numeric_limits<uint64_t>::max();
  const int num_workers = std::max(1, options->validation_threads);
  const size_t capacity =
      options->validation_queue_capacity > 0
          ? static_cast<size_t>(options->validation_queue_capacity)
          : static_cast<size_t>(2 * num_workers);
  BoundedQueue<Item> queue(capacity);

  // Ranks strictly greater than cancel_floor can no longer affect the
  // answer set and are cancelled.
  std::atomic<uint64_t> cancel_floor{kNoFloor};
  std::atomic<bool> hard_abort{false};  // real time-budget expiry
  Mutex mu;                             // guards outcomes + generating_seqs
  ParallelMappingResult result;
  std::vector<uint64_t> generating_seqs;  // sorted ranks of generating hits

  auto worker = [&] {
    Item item;
    while (queue.Pop(&item)) {
      // Fault site "parallel-worker": fires once per dequeued candidate, so
      // a cancel/delay schedule can target the exact worker iteration that
      // races the rank barrier (DESIGN.md §11).
      if (governor != nullptr) governor->FaultPoint("parallel-worker");
      const uint64_t seq = item.seq;
      if (hard_abort.load(std::memory_order_relaxed) ||
          seq > cancel_floor.load(std::memory_order_relaxed)) {
        ++stats->candidates_cancelled;
        MutexLock lock(&mu);
        result.outcomes.push_back(RankedOutcome{
            seq, std::move(item.cand), CandidateOutcome::kBudgetExhausted,
            /*cancelled=*/true});
        continue;
      }
      auto interrupt = [&, seq] {
        return hard_abort.load(std::memory_order_relaxed) ||
               seq > cancel_floor.load(std::memory_order_relaxed) ||
               (budget_exceeded && budget_exceeded());
      };
      Validator validator(db, rout, rout_set, mapping, walks, options,
                          feedback, stats, walk_cache, interrupt, policy);
      CandidateOutcome outcome = validator.Validate(item.cand);
      bool cancelled = false;
      if (outcome == CandidateOutcome::kBudgetExhausted) {
        if (budget_exceeded && budget_exceeded()) {
          hard_abort.store(true, std::memory_order_relaxed);
        } else {
          cancelled = true;  // interrupted by the rank-cancellation signal
          ++stats->candidates_cancelled;
        }
      } else {
        ++stats->candidates_validated;
        if (outcome == CandidateOutcome::kMissingTuples &&
            options->use_feedback_pruning && !item.cand.walk_ids.empty()) {
          feedback->AddDeadSet(item.cand.walk_ids);
        }
      }
      MutexLock lock(&mu);
      if (outcome == CandidateOutcome::kGenerating) {
        generating_seqs.insert(
            std::upper_bound(generating_seqs.begin(), generating_seqs.end(),
                             seq),
            seq);
        if (generating_seqs.size() >= static_cast<size_t>(need_answers)) {
          uint64_t floor = generating_seqs[need_answers - 1];
          uint64_t cur = cancel_floor.load(std::memory_order_relaxed);
          while (floor < cur && !cancel_floor.compare_exchange_weak(
                                    cur, floor, std::memory_order_relaxed)) {
          }
        }
      }
      result.outcomes.push_back(
          RankedOutcome{seq, std::move(item.cand), outcome, cancelled});
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) threads.emplace_back(worker);

  // Producer: drain the composer in rank order until the candidate cap, the
  // budget, the cancellation floor, or lattice exhaustion stops it.
  CandidateQuery cand;
  uint64_t seq = 0;
  while (seq < options->max_candidates_per_mapping &&
         !hard_abort.load(std::memory_order_relaxed) &&
         cancel_floor.load(std::memory_order_relaxed) == kNoFloor &&
         composer->Next(&cand)) {
    ++stats->candidates_generated;
    if (budget_exceeded && budget_exceeded()) {
      hard_abort.store(true, std::memory_order_relaxed);
      break;
    }
    if (!queue.Push(Item{seq, std::move(cand)})) break;
    ++seq;
  }
  queue.Close();
  for (auto& t : threads) t.join();

  result.budget_exhausted = hard_abort.load(std::memory_order_relaxed);
  std::sort(result.outcomes.begin(), result.outcomes.end(),
            [](const RankedOutcome& a, const RankedOutcome& b) {
              return a.seq < b.seq;
            });
  return result;
}

}  // namespace

std::string QreTrace::ToString() const {
  std::string out;
  for (size_t m = 0; m < mappings.size(); ++m) {
    out += StringFormat("mapping #%zu: %s\n", m, mappings[m].c_str());
  }
  for (const auto& c : candidates) {
    out += StringFormat("  [m%d dc=%.0f a=%.2f] %-16s %s\n", c.mapping_index,
                        c.dc, c.alpha_cost, c.outcome.c_str(), c.sql.c_str());
  }
  return out;
}

FastQre::FastQre(const Database* db, QreOptions options)
    : db_(db), options_(std::move(options)) {
  // Fault injection: the option wins; the FASTQRE_FAULTS environment
  // variable is the no-recompile hook for CI matrices. A malformed spec is
  // remembered and reported by the next ReverseAll() call (constructors
  // cannot return Status), so it can never be silently ignored.
  std::string spec = options_.fault_spec;
  if (spec.empty()) {
    const char* env = std::getenv("FASTQRE_FAULTS");
    if (env != nullptr) spec = env;
  }
  std::unique_ptr<FaultInjector> injector;
  if (!spec.empty()) {
    auto parsed = FaultInjector::Parse(spec);
    if (parsed.ok()) {
      injector = std::move(parsed).ValueOrDie();
    } else {
      fault_spec_error_ = parsed.status();
    }
  }
  cancel_token_ = std::make_shared<CancellationToken>();
  governor_ = std::make_shared<ResourceGovernor>(
      options_.memory_budget_bytes, cancel_token_, std::move(injector));
  if (options_.intra_candidate_threads > 1) {
    // N morsel workers per batch = the dispatching thread + (N-1) helpers.
    intra_pool_ =
        std::make_unique<ThreadPool>(options_.intra_candidate_threads - 1);
  }
  if (options_.walk_cache_budget_bytes > 0) {
    walk_cache_ = std::make_shared<WalkCache>(options_.walk_cache_budget_bytes,
                                              options_.walk_cache_admission,
                                              governor_);
  }
  if (options_.subplan_cache_budget_bytes > 0) {
    subplan_cache_ = std::make_shared<SubplanCache>(
        options_.subplan_cache_budget_bytes, options_.subplan_cache_admission,
        governor_);
  }
  if (walk_cache_ != nullptr || subplan_cache_ != nullptr) {
    // Degradation rung 1 (DESIGN.md §11): under memory pressure, first shed
    // optional materializations — walk relations and memoized subplans —
    // down to half their configured budgets. The hook captures the caches
    // weakly — each cache itself holds the governor by shared_ptr, so a
    // shared capture here would be a cycle — and a late charge arriving
    // through the database attachment after a cache died simply finds no
    // hook target.
    std::weak_ptr<WalkCache> wcache = walk_cache_;
    std::weak_ptr<SubplanCache> scache = subplan_cache_;
    governor_->SetPressureHook([wcache, scache] {
      if (std::shared_ptr<WalkCache> c = wcache.lock()) {
        c->ShrinkTo(c->budget_bytes() / 2);
      }
      if (std::shared_ptr<SubplanCache> c = scache.lock()) {
        c->ShrinkTo(c->budget_bytes() / 2);
      }
    });
  }
  db_->AttachGovernor(governor_);
}

FastQre::~FastQre() {
  // Compare-and-clear: only detaches if no newer engine attached since.
  if (db_ != nullptr && governor_ != nullptr) {
    db_->DetachGovernor(governor_.get());
  }
}

FastQre::FastQre(FastQre&&) noexcept = default;

FastQre& FastQre::operator=(FastQre&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && governor_ != nullptr) {
      db_->DetachGovernor(governor_.get());
    }
    db_ = other.db_;
    options_ = std::move(other.options_);
    walk_cache_ = std::move(other.walk_cache_);
    subplan_cache_ = std::move(other.subplan_cache_);
    cancel_token_ = std::move(other.cancel_token_);
    governor_ = std::move(other.governor_);
    intra_pool_ = std::move(other.intra_pool_);
    fault_spec_error_ = std::move(other.fault_spec_error_);
  }
  return *this;
}

void FastQre::Cancel() const { cancel_token_->Cancel(); }

Result<QreAnswer> FastQre::Reverse(const Table& rout) const {
  FASTQRE_ASSIGN_OR_RETURN(auto answers, ReverseAll(rout, 1));
  return std::move(answers[0]);
}

Result<std::vector<QreAnswer>> FastQre::ReverseAll(const Table& rout,
                                                   int limit) const {
  return ReverseAll(rout, limit, AnswerCallback());
}

Result<std::vector<QreAnswer>> FastQre::ReverseAll(
    const Table& rout, int limit, const AnswerCallback& on_answer) const {
  if (rout.num_columns() == 0) {
    return Status::InvalidArgument("R_out has no columns");
  }
  if (rout.num_rows() == 0) {
    return Status::InvalidArgument(
        "R_out has no rows; any query with an empty result would generate it");
  }
  if (limit < 1) return Status::InvalidArgument("limit must be >= 1");
  if (!fault_spec_error_.ok()) return fault_spec_error_;

  QreStats stats;
  // One stop predicate for every phase: deadline, Cancel() and memory
  // exhaustion all funnel through the RunControl (DESIGN.md §11), which
  // records the *first* cause to fire.
  RunControl run(options_.time_budget_seconds, cancel_token_.get(),
                 governor_.get());
  auto budget_exceeded = [&run]() { return run.ShouldStop(); };
  // The validation paths learn "the run stopped" from a boolean; the precise
  // cause lives in the RunControl. The deadline string is the fallback for
  // the pre-governor code paths that only ever stopped on time.
  auto stop_reason = [&run]() {
    std::string reason = run.reason();
    return reason.empty() ? std::string("time budget exceeded") : reason;
  };

  // Intra-candidate execution policy (DESIGN.md §12), shared by every
  // validator this call constructs. Verdicts and answers are identical for
  // every setting; only the kernels and the morsel dispatch differ.
  ExecPolicy exec_policy;
  exec_policy.batch_probes = options_.use_batched_probes;
  exec_policy.intra_threads = std::max(1, options_.intra_candidate_threads);
  exec_policy.morsel_size =
      static_cast<size_t>(std::max(1, options_.morsel_size));
  exec_policy.intra_threshold =
      static_cast<size_t>(std::max(0, options_.intra_row_threshold));
  exec_policy.pool = intra_pool_.get();
  exec_policy.use_sip = options_.use_sip;
  exec_policy.subplan_cache = subplan_cache_.get();
  // Candidate-local charges go to THIS engine's governor, never the
  // database attachment (which a concurrent engine may have displaced).
  exec_policy.governor = governor_;

  std::vector<QreAnswer> answers;
  // Single append point for the result vector: every entry is streamed to
  // `on_answer` exactly as it is committed, so the streamed sequence is the
  // returned vector (DESIGN.md §15). All three call sites run on this
  // thread after the rank barrier, so the callback never races itself.
  auto publish = [&](QreAnswer a) {
    answers.push_back(std::move(a));
    if (on_answer) on_answer(answers.back());
  };
  auto attach_run_stats = [&](QreAnswer* a) {
    a->stats.walk_cache_bytes = walk_cache_ ? walk_cache_->bytes() : 0;
    // Engine-lifetime tallies snapshotted at answer time (exact per-run
    // totals on a fresh engine, which is how the CLI and benches run).
    if (subplan_cache_ != nullptr) {
      a->stats.subplan_cache_hits = subplan_cache_->hits();
      a->stats.subplan_cache_misses = subplan_cache_->misses();
      a->stats.subplan_cache_evictions = subplan_cache_->evictions();
      a->stats.subplan_cache_bytes = subplan_cache_->bytes();
    }
    a->stats.peak_tracked_bytes = governor_->peak_tracked_bytes();
    a->stats.degradation_events = governor_->degradation_events();
    a->stats.cancelled = run.cause() == StopCause::kCancelled;
    a->stats.total_seconds = run.ElapsedSeconds();
  };
  QreTrace* trace_ptr = nullptr;  // set below once the trace exists
  // Ends the search without discarding progress: the answers already found
  // are returned, followed by one unfound entry whose failure_reason says
  // why the tail was truncated.
  auto aborted = [&](const std::string& reason) {
    QreAnswer a;
    a.found = false;
    a.failure_reason = reason;
    if (trace_ptr != nullptr) a.trace = *trace_ptr;
    a.stats = stats;
    attach_run_stats(&a);
    publish(std::move(a));
    return std::move(answers);
  };

  // ---- Preprocessing -------------------------------------------------------
  FASTQRE_ASSIGN_OR_RETURN(Table norm_rout, NormalizeRout(*db_, rout));
  // gov: bounded — one set copy of R_out (small by problem definition),
  // alive for the whole search.
  const TupleSet rout_set = TableToTupleSet(norm_rout, budget_exceeded);
  if (run.ShouldStop()) return aborted(stop_reason());

  ColumnCover cover = ComputeColumnCover(*db_, norm_rout, options_, &stats);
  if (cover.HasEmptyCover()) {
    return aborted(
        "some R_out column is contained in no database column; no PJ query "
        "can generate R_out");
  }

  CgmSet cgms;
  if (options_.use_cgm_ranking) {
    cgms = DiscoverCgms(*db_, norm_rout, cover, options_, &stats,
                        budget_exceeded, governor_.get());
    // A partially discovered CGM set must not rank mappings: if the stop
    // fired mid-discovery, abort here with the stats gathered so far.
    if (run.ShouldStop()) return aborted(stop_reason());
  }

  // ---- Candidate generation + validation -----------------------------------
  QreTrace trace;
  trace_ptr = &trace;
  MappingEnumerator mappings(db_, &norm_rout, &cover,
                             options_.use_cgm_ranking ? &cgms : nullptr,
                             &options_, budget_exceeded, governor_.get());
  ColumnMapping mapping;
  for (int m = 0; m < options_.max_mappings && mappings.Next(&mapping); ++m) {
    ++stats.mappings_tried;
    if (options_.collect_trace) {
      trace.mappings.push_back(mapping.ToString(*db_, norm_rout));
    }
    if (budget_exceeded()) return aborted(stop_reason());

    std::vector<Walk> walks;
    if (mapping.instances.size() > 1) {
      walks = DiscoverWalks(*db_, mapping, options_);
      stats.walks_discovered += walks.size();
      if (walks.empty()) continue;  // instances cannot be connected
    }

    Feedback feedback(walks.size());
    RankedComposer composer(db_, &mapping, &walks, &options_, &feedback,
                            budget_exceeded);

    if (options_.validation_threads > 1) {
      // ---- Parallel validation path --------------------------------------
      const int need = limit - static_cast<int>(answers.size());
      ParallelMappingResult pr = RunMappingParallel(
          db_, &norm_rout, &rout_set, &mapping, &walks, &options_, &feedback,
          &stats, walk_cache_.get(), budget_exceeded, &composer, need,
          governor_.get(), exec_policy);
      stats.candidates_pruned_dead += composer.sets_pruned_dead();
      stats.walk_sets_expanded += composer.sets_expanded();

      // Finalize in rank order. An outcome counts toward the answer only
      // while the rank prefix is complete (every lower rank finished
      // non-generating) — the rank barrier that makes the answer identical
      // to a serial run's.
      if (options_.collect_trace) {
        for (const auto& ro : pr.outcomes) {
          trace.candidates.push_back(QreTrace::Candidate{
              m, ro.cand.query.ToSql(*db_), ro.cand.dc, ro.cand.alpha_cost,
              ro.cancelled ? "cancelled"
                           : CandidateOutcomeToString(ro.outcome)});
        }
      }
      bool prefix_complete = true;
      uint64_t expected_seq = 0;
      for (const auto& ro : pr.outcomes) {
        if (ro.seq != expected_seq) prefix_complete = false;
        expected_seq = ro.seq + 1;
        if (!prefix_complete) break;
        if (ro.cancelled || ro.outcome == CandidateOutcome::kBudgetExhausted) {
          prefix_complete = false;
          break;
        }
        if (ro.outcome == CandidateOutcome::kGenerating &&
            static_cast<int>(answers.size()) < limit) {
          QreAnswer a;
          a.found = true;
          a.query = ro.cand.query;
          a.sql = ro.cand.query.ToSql(*db_);
          a.num_instances = ro.cand.query.num_instances();
          a.num_joins = ro.cand.query.joins().size();
          a.trace = trace;
          a.stats = stats;
          attach_run_stats(&a);
          publish(std::move(a));
          // Fault site "answer-found": fires once per accepted answer, so a
          // cancel@n schedule can truncate ReverseAll() after exactly n
          // answers (the truncation-semantics regression tests).
          governor_->FaultPoint("answer-found");
        }
      }
      if (static_cast<int>(answers.size()) >= limit) return answers;
      if (pr.budget_exhausted || !prefix_complete) {
        return aborted(stop_reason());
      }
      continue;  // next mapping
    }

    // ---- Serial validation path (validation_threads == 1) ----------------
    Validator validator(db_, &norm_rout, &rout_set, &mapping, &walks,
                        &options_, &feedback, &stats, walk_cache_.get(),
                        budget_exceeded, exec_policy);

    CandidateQuery candidate;
    uint64_t tried = 0;
    while (tried < options_.max_candidates_per_mapping &&
           composer.Next(&candidate)) {
      ++tried;
      ++stats.candidates_generated;
      if (budget_exceeded()) return aborted(stop_reason());

      CandidateOutcome outcome = validator.Validate(candidate);
      if (outcome != CandidateOutcome::kBudgetExhausted) {
        ++stats.candidates_validated;
      }
      if (options_.collect_trace) {
        trace.candidates.push_back(QreTrace::Candidate{
            m, candidate.query.ToSql(*db_), candidate.dc, candidate.alpha_cost,
            CandidateOutcomeToString(outcome)});
      }
      switch (outcome) {
        case CandidateOutcome::kGenerating: {
          QreAnswer a;
          a.found = true;
          a.query = candidate.query;
          a.sql = candidate.query.ToSql(*db_);
          a.num_instances = candidate.query.num_instances();
          a.num_joins = candidate.query.joins().size();
          // Fold the composer counters in before snapshotting the stats.
          a.trace = trace;
          a.stats = stats;
          a.stats.candidates_pruned_dead += composer.sets_pruned_dead();
          a.stats.walk_sets_expanded += composer.sets_expanded();
          attach_run_stats(&a);
          publish(std::move(a));
          // See the parallel path: per-answer fault site for truncation
          // tests.
          governor_->FaultPoint("answer-found");
          if (static_cast<int>(answers.size()) >= limit) {
            return answers;
          }
          break;
        }
        case CandidateOutcome::kMissingTuples:
          if (options_.use_feedback_pruning && !candidate.walk_ids.empty()) {
            feedback.AddDeadSet(candidate.walk_ids);
          }
          break;
        case CandidateOutcome::kIncoherentWalk:
          // The validator already memoized the incoherent walk in feedback.
          break;
        case CandidateOutcome::kExtraTuples:
        case CandidateOutcome::kError:
          break;  // only this candidate is dismissed
        case CandidateOutcome::kBudgetExhausted:
          // Validate() only reports this for a *global* stop (candidate-local
          // memory refusals surface as kError and dismiss one candidate).
          return aborted(stop_reason());
      }
    }
    stats.candidates_pruned_dead += composer.sets_pruned_dead();
    stats.walk_sets_expanded += composer.sets_expanded();
  }

  // A stop that fired between candidates (e.g. an injected cancel right
  // after an accepted answer) still truncates: report it before returning a
  // below-limit answer set as complete.
  if (run.ShouldStop()) return aborted(stop_reason());
  if (!answers.empty()) return answers;
  return aborted("search space exhausted without finding a generating query");
}

}  // namespace fastqre
