// Tuning knobs of the FastQRE framework, including ablation toggles for each
// novel component (used by experiment E4) and the QRE-variant switch.
#pragma once

#include <cstdint>
#include <string>

namespace fastqre {

/// \brief Which QRE problem variant to solve (Definitions 3.1 / 3.2).
enum class QreVariant {
  /// Find Q with Q(D) = R_out.
  kExact,
  /// Find Q with Q(D) ⊇ R_out. Tree-shaped query graphs suffice for this
  /// variant, which the composer exploits.
  kSuperset,
};

/// \brief Options controlling the FastQRE pipeline.
struct QreOptions {
  QreVariant variant = QreVariant::kExact;

  /// L of the "L-short walks" in Section 4.4: maximum number of schema-graph
  /// edges per discovered walk.
  int max_walk_length = 3;

  /// Cap on walks kept per instance pair (the paper notes |W| can exceed
  /// 100; capping per pair, in BFS length order, bounds the subset lattice).
  int max_walks_per_pair = 24;

  /// alpha of Q_alpha = alpha*Q_dc + (1-alpha)*Q_ex (Section 4.4.2).
  double alpha = 0.5;

  /// C1 of Algorithm 1 line 13: keep draining PQ1 while its best Q_dc is
  /// within this slack of PQ2's best.
  double pool_dc_slack = 2.0;

  /// C2 of Algorithm 1 line 13: target size of the PQ2 candidate pool.
  int pool_min_size = 16;

  /// How many ranked column mappings to try before giving up.
  int max_mappings = 64;

  /// Cap on candidate queries validated per column mapping.
  uint64_t max_candidates_per_mapping = 20000;

  /// Cap on expanded states in the mapping enumerator's best-first search.
  uint64_t max_mapping_states = 200000;

  /// Largest CGM size discovered (R_out is rarely wider than this).
  int max_cgm_columns = 8;

  /// Wall-clock budget for one Reverse() call; 0 = unlimited. On timeout,
  /// Reverse returns ResourceExhausted with the statistics gathered so far.
  double time_budget_seconds = 0.0;

  /// Byte budget of the ResourceGovernor (DESIGN.md §11): tracked bytes of
  /// every large search-path allocation (hash indexes, block buffers, walk
  /// materializations, mapping frontier). 0 = unlimited (accounting still
  /// runs, so QreStats::peak_tracked_bytes is always meaningful). On
  /// pressure the engine degrades gracefully — walk-cache shrink, then
  /// pipelined-only validation — before aborting the search with
  /// failure_reason "memory budget exceeded".
  uint64_t memory_budget_bytes = 0;

  /// Deterministic fault-injection spec (testing; see
  /// common/fault_injection.h for the grammar). Empty: fall back to the
  /// FASTQRE_FAULTS environment variable; both empty: injection disabled at
  /// zero overhead.
  std::string fault_spec;

  /// Number of threads validating candidate queries concurrently. 1 (the
  /// default) keeps the exact serial pipeline; N > 1 runs the composer on
  /// the calling thread feeding a bounded queue drained by N workers, each
  /// with its own QueryCursor. Answers are deterministic regardless of N:
  /// a generating candidate is only accepted once every higher-ranked
  /// candidate has completed non-generating (the rank barrier), so the SQL
  /// returned is byte-identical to a serial run.
  int validation_threads = 1;

  /// Capacity of the composer→worker candidate queue per mapping; 0 derives
  /// 2 × validation_threads. The bound back-pressures the composer so it
  /// never runs arbitrarily far ahead of the rank frontier.
  int validation_queue_capacity = 0;

  /// Workers (including the validating thread itself) executing morsels
  /// *inside* one candidate's materializing checks — block evaluation and
  /// the per-R_out-tuple probe pass (DESIGN.md §12). 1 (the default) keeps
  /// every candidate on its own validation thread. N > 1 dispatches morsels
  /// onto an engine-owned pool shared across validation threads; morsel
  /// results merge in morsel-index order, so answers stay byte-identical at
  /// any setting.
  int intra_candidate_threads = 1;

  /// Driving-relation tuples per morsel for intra-candidate execution —
  /// also the block executor's interrupt-poll granularity (a deadline or
  /// Cancel() lands within one morsel of work). Clamped to >= 1.
  int morsel_size = 2048;

  /// Smallest driving relation (rows) dispatched to the intra-candidate
  /// pool; below it morsels stay on the validating thread.
  int intra_row_threshold = 4096;

  /// Vectorized (batched) column probes: HashIndex::LookupBatch over dense
  /// key vectors, columnar span filters in the block executor, and
  /// rebind-amortized point probes in the validator. Off = the legacy
  /// tuple-at-a-time kernels (ablation axis, experiment E14). Results are
  /// byte-identical either way.
  bool use_batched_probes = true;

  /// Number of R_out tuples bound by probing queries per candidate
  /// (the basic probing mechanism of Section 4.1; 0 disables).
  int probe_tuples = 2;

  /// Byte budget of the cross-candidate walk-materialization cache
  /// (WalkCache): materialized endpoint semi-join relations of join-path
  /// walks, shared across candidates, mappings and validation threads, with
  /// LRU eviction once the budget is exceeded. 0 disables the cache (every
  /// walk stays pipelined). The cache never changes accepted answers — only
  /// how much join work validation performs (DESIGN.md §9).
  uint64_t walk_cache_budget_bytes = 64ull << 20;

  /// Admission threshold of the walk cache: a walk's relation is only
  /// materialized once the walk has been executed this many times, so
  /// one-off walks never pay the materialization cost.
  int walk_cache_admission = 2;

  /// Sideways information passing (DESIGN.md §13): push per-(table, column)
  /// presence bitmaps — and walk relations' key-domain bitmaps — into scan
  /// and probe steps of both executors, so rows provably absent from every
  /// later join partner are skipped before entering an intermediate
  /// relation. Semantics-preserving (answers stay byte-identical). Off =
  /// ablation axis of experiment E15.
  bool use_sip = true;

  /// Byte budget of the cross-candidate subplan memoization cache
  /// (SubplanCache): materialized block-execution join prefixes, keyed by
  /// canonical prefix signature and shared across convoy candidates. Also
  /// switches the exact extras check to the block path when nonzero. 0
  /// disables memoization and keeps the legacy streaming extra-tuple hunt
  /// (the --subplan-cache-mb 0 ablation cell of E15). Never changes
  /// accepted answers (DESIGN.md §13).
  uint64_t subplan_cache_budget_bytes = 64ull << 20;

  /// Admission threshold of the subplan cache: a join prefix is snapshotted
  /// once it has been requested this many times. 1 (the default) caches on
  /// first execution — convoy candidates reuse prefixes immediately, and the
  /// snapshot is a flat memcpy of an intermediate that was just built anyway.
  int subplan_cache_admission = 1;

  // --- Ablation toggles (experiment E4). All on by default. ---------------

  /// Rank column mappings using CGMs (Sections 4.2-4.3). Off: mappings are
  /// enumerated from per-column covers with unrestricted instance grouping
  /// and no Jaccard ranking (the naive behaviour).
  bool use_cgm_ranking = true;

  /// Indirect column coherence: lazily check walk coherence and filter all
  /// candidate queries containing incoherent walks (Section 4.5).
  bool use_indirect_coherence = true;

  /// Two-queue ranked composition with Q_alpha (Algorithm 1). Off: the
  /// "basic approach" (single queue ordered by Q_dc only), exhibiting the
  /// convoy effect of Figure 9.
  bool use_two_queue_composer = true;

  /// Progressive evaluation: stream Q(D) and stop at the first tuple
  /// contradicting R_out. Off: materialize Q(D) fully, then compare.
  bool use_progressive_validation = true;

  /// Basic probing queries before full validation.
  bool use_probing = true;

  /// Feedback module: dead walk-set subtree pruning from
  /// missing-tuple failures plus incoherent-walk memoization.
  bool use_feedback_pruning = true;

  /// Pattern-based pruning of column-cover comparisons (Section 4.1).
  bool use_pattern_pruning = true;

  /// Record a QreTrace (ranked mappings + per-candidate verdicts) in the
  /// answer. Off by default: traces of long searches can be large.
  bool collect_trace = false;
};

}  // namespace fastqre
