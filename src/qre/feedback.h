// Feedback module (Section 4.1, module 4).
//
// When the Query Validation module dismisses a candidate, it propagates why:
//  * an incoherent walk (indirect column coherence, Section 4.5) — every
//    candidate containing that walk is dead;
//  * a missing-tuple failure (Q(D) ⊉ R_out). Adding walks only adds join
//    constraints, so Q(D) shrinks monotonically along the generation tree;
//    hence every superset of a missing-tuple-failed walk set is dead too.
// The composer consults this state to dismiss queued candidates and to avoid
// generating dead subtrees in the first place.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fastqre {

/// \brief Shared search state between the validator and the composer for
/// one column mapping (walk ids are mapping-scoped).
class Feedback {
 public:
  explicit Feedback(size_t num_walks)
      : walk_state_(num_walks, kUnknown) {}

  /// Memoized indirect-coherence verdict for a walk, if checked.
  std::optional<bool> WalkCoherence(int walk_id) const {
    int8_t s = walk_state_[walk_id];
    if (s == kUnknown) return std::nullopt;
    return s == kCoherent;
  }

  void SetWalkCoherence(int walk_id, bool coherent) {
    walk_state_[walk_id] = coherent ? kCoherent : kIncoherent;
  }

  /// Registers a walk set whose supersets are all non-generating.
  /// `sorted_ids` must be sorted ascending.
  void AddDeadSet(std::vector<int> sorted_ids) {
    if (sorted_ids.size() == 1) {
      // Single-walk dead sets are folded into the fast per-walk bitmap.
      walk_state_[sorted_ids[0]] = kIncoherent;
      return;
    }
    dead_sets_.push_back(std::move(sorted_ids));
  }

  /// True if `sorted_ids` contains an incoherent walk or is a superset of
  /// any registered dead set.
  bool IsDead(const std::vector<int>& sorted_ids) const {
    for (int id : sorted_ids) {
      if (walk_state_[id] == kIncoherent) return true;
    }
    for (const auto& dead : dead_sets_) {
      if (IsSubset(dead, sorted_ids)) return true;
    }
    return false;
  }

  size_t num_dead_sets() const { return dead_sets_.size(); }

 private:
  static bool IsSubset(const std::vector<int>& sub, const std::vector<int>& sup) {
    size_t i = 0;
    for (int v : sup) {
      if (i == sub.size()) return true;
      if (sub[i] == v) ++i;
      else if (sub[i] < v) return false;
    }
    return i == sub.size();
  }

  static constexpr int8_t kUnknown = -1;
  static constexpr int8_t kIncoherent = 0;
  static constexpr int8_t kCoherent = 1;

  std::vector<int8_t> walk_state_;
  std::vector<std::vector<int>> dead_sets_;
};

}  // namespace fastqre
