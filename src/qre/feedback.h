// Feedback module (Section 4.1, module 4).
//
// When the Query Validation module dismisses a candidate, it propagates why:
//  * an incoherent walk (indirect column coherence, Section 4.5) — every
//    candidate containing that walk is dead;
//  * a missing-tuple failure (Q(D) ⊉ R_out). Adding walks only adds join
//    constraints, so Q(D) shrinks monotonically along the generation tree;
//    hence every superset of a missing-tuple-failed walk set is dead too.
// The composer consults this state to dismiss queued candidates and to avoid
// generating dead subtrees in the first place.
//
// Thread-safety: with parallel validation (QreOptions::validation_threads),
// multiple workers publish verdicts while the composer thread reads them.
// Per-walk verdicts are atomics; dead sets are guarded by a reader-writer
// lock. Sharing is *conservative*: a verdict landing late only means a dead
// candidate gets validated (and dismissed) instead of pruned — it can never
// suppress a generating candidate, which is what keeps parallel runs
// answer-deterministic (see DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"

namespace fastqre {

/// \brief Shared search state between the validator and the composer for
/// one column mapping (walk ids are mapping-scoped).
class Feedback {
 public:
  explicit Feedback(size_t num_walks) : walk_state_(num_walks) {
    for (auto& s : walk_state_) s.store(kUnknown, std::memory_order_relaxed);
  }

  /// Memoized indirect-coherence verdict for a walk, if checked.
  std::optional<bool> WalkCoherence(int walk_id) const {
    int8_t s = walk_state_[walk_id].load(std::memory_order_acquire);
    if (s == kUnknown) return std::nullopt;
    return s == kCoherent;
  }

  void SetWalkCoherence(int walk_id, bool coherent) {
    walk_state_[walk_id].store(coherent ? kCoherent : kIncoherent,
                               std::memory_order_release);
  }

  /// Registers a walk set whose supersets are all non-generating.
  /// `sorted_ids` must be sorted ascending.
  void AddDeadSet(std::vector<int> sorted_ids) {
    if (sorted_ids.size() == 1) {
      // Single-walk dead sets are folded into the fast per-walk bitmap.
      walk_state_[sorted_ids[0]].store(kIncoherent, std::memory_order_release);
      return;
    }
    WriterMutexLock lock(&dead_mu_);
    dead_sets_.push_back(std::move(sorted_ids));
  }

  /// True if `sorted_ids` contains an incoherent walk or is a superset of
  /// any registered dead set.
  bool IsDead(const std::vector<int>& sorted_ids) const {
    for (int id : sorted_ids) {
      if (walk_state_[id].load(std::memory_order_acquire) == kIncoherent) {
        return true;
      }
    }
    ReaderMutexLock lock(&dead_mu_);
    for (const auto& dead : dead_sets_) {
      if (IsSubset(dead, sorted_ids)) return true;
    }
    return false;
  }

  size_t num_dead_sets() const {
    ReaderMutexLock lock(&dead_mu_);
    return dead_sets_.size();
  }

 private:
  static bool IsSubset(const std::vector<int>& sub, const std::vector<int>& sup) {
    size_t i = 0;
    for (int v : sup) {
      if (i == sub.size()) return true;
      if (sub[i] == v) ++i;
      else if (sub[i] < v) return false;
    }
    return i == sub.size();
  }

  static constexpr int8_t kUnknown = -1;
  static constexpr int8_t kIncoherent = 0;
  static constexpr int8_t kCoherent = 1;

  // Sized at construction, never resized: element-wise atomic access is safe.
  std::vector<std::atomic<int8_t>> walk_state_;
  mutable SharedMutex dead_mu_;
  std::vector<std::vector<int>> dead_sets_ GUARDED_BY(dead_mu_);
};

}  // namespace fastqre
