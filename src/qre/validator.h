// Query Validation module (Section 4.5): given a candidate query Q, decide
// whether Q(D) = R_out (exact) or Q(D) ⊇ R_out (superset), trying to
// dismiss Q as cheaply as possible first:
//
//  1. Probing queries (basic mechanism of Section 4.1): bind all projection
//     columns to a sampled R_out tuple and ask for one result row (a missed
//     tuple dismisses Q and, via feedback, its whole generation subtree);
//     in exact mode, a partial probe binding only the first projection
//     column streams a bounded prefix looking for tuples outside R_out.
//  2. Indirect column coherence: each walk's join-path subquery must cover
//     pi(R_out) on the walk's endpoint columns; verdicts are memoized in
//     Feedback and shared across candidates (lazy, per Section 4.5).
//  3. Progressive full evaluation: stream Q(D) one tuple at a time and stop
//     at the first contradiction.
#pragma once

#include <functional>

#include "engine/compare.h"
#include "engine/executor.h"
#include "qre/composer.h"
#include "qre/feedback.h"
#include "qre/mapping.h"
#include "qre/options.h"
#include "qre/stats.h"
#include "qre/walk_cache.h"
#include "qre/walks.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Why a candidate was accepted or dismissed.
enum class CandidateOutcome {
  kGenerating,       // Q is a generating query
  kMissingTuples,    // some R_out tuple not in Q(D)  => subtree is dead
  kExtraTuples,      // some Q(D) tuple not in R_out (exact variant only)
  kIncoherentWalk,   // a walk failed indirect coherence => walk is dead
  kBudgetExhausted,  // the time budget expired mid-validation
  kError,            // execution error (malformed candidate)
};

const char* CandidateOutcomeToString(CandidateOutcome outcome);

/// \brief Validates candidates against one (R_out, mapping) pair.
class Validator {
 public:
  /// `walk_cache` (may be null) enables walk substitution: materialized walk
  /// chains are replaced with virtual joins over cached reachability
  /// relations (DESIGN.md §9); verdicts and emitted answers are unchanged.
  /// `budget_exceeded` (may be empty) is polled during long streams.
  /// `policy` selects the probe kernels and intra-candidate morsel dispatch
  /// (DESIGN.md §12); verdicts are identical for every policy.
  Validator(const Database* db, const Table* rout, const TupleSet* rout_set,
            const ColumnMapping* mapping, const std::vector<Walk>* walks,
            const QreOptions* options, Feedback* feedback, QreStats* stats,
            WalkCache* walk_cache = nullptr,
            std::function<bool()> budget_exceeded = {},
            ExecPolicy policy = {});

  /// Runs the dismissal cascade and, if needed, the full check.
  CandidateOutcome Validate(const CandidateQuery& candidate);

 private:
  // The executable form of one candidate: its query with every cached walk's
  // intermediate chain replaced by a virtual join, plus the cache pins that
  // keep those relations alive (eviction-safe) for the candidate's lifetime.
  // With no cache (or nothing materialized), query == candidate.query.
  struct Execution {
    PJQuery query;
    std::vector<VirtualJoin> vjoins;
    std::vector<WalkCache::Handle> pins;
  };
  Execution PrepareExecution(const CandidateQuery& candidate);

  CandidateOutcome ProbeCheck(const Execution& exec);
  /// Checks (and memoizes) indirect coherence of one walk; true = coherent.
  bool WalkCoherent(int walk_id);
  /// Coherence of a materialized walk straight off its cached relation; no
  /// subquery execution. `verdict` is set iff the cached check applies.
  bool TryCachedCoherence(const Walk& walk, bool* verdict);
  /// Establishes R_out ⊆ Q(D) by point-probing every R_out tuple
  /// (kGenerating = containment holds).
  CandidateOutcome AllTupleProbe(const Execution& exec);
  CandidateOutcome FullCheck(const CandidateQuery& candidate,
                             const Execution& exec);

  bool BudgetExceeded() const {
    return budget_exceeded_ && budget_exceeded_();
  }

  const Database* db_;
  const Table* rout_;
  const TupleSet* rout_set_;
  const ColumnMapping* mapping_;
  const std::vector<Walk>* walks_;
  const QreOptions* options_;
  Feedback* feedback_;
  QreStats* stats_;
  WalkCache* walk_cache_;
  std::function<bool()> budget_exceeded_;
  ExecPolicy policy_;

  // Rows streamed by the partial probe before giving up (keeps the probe a
  // quick check even for unselective first columns).
  static constexpr uint64_t kPartialProbeRowCap = 256;
};

}  // namespace fastqre
