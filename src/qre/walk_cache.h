// Walk-materialization cache (DESIGN.md §9): memoized semi-join relations
// for walk intermediate chains, shared across candidates, mappings, and
// Reverse() calls.
//
// FastQRE's candidate space is dominated by *convoys*: long runs of
// candidates that reuse the same few walks in different combinations. The
// pipelined executor re-traverses each walk's intermediate chain for every
// candidate; this cache instead materializes, once per distinct chain (up to
// reversal — see CanonicalWalkSignature), the endpoint reachability relation
//   forward[u] = sorted distinct values v such that a row chain through the
//                intermediate tables connects left join value u to right
//                join value v,
// and the validator substitutes it into candidate queries as a VirtualJoin.
// Substitution never changes a verdict or an emitted answer: validation is
// set-semantics over projected endpoint columns, and the relation encodes
// exactly the chain's join condition.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/resource_governor.h"
#include "common/thread_annotations.h"
#include "engine/executor.h"
#include "qre/stats.h"
#include "qre/walks.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Materialized reachability of one walk chain, in the chain's
/// canonical orientation. Immutable after construction; consumers hold it
/// through a shared_ptr pin, so eviction never invalidates a live cursor.
struct WalkRelation {
  // gov: charged — FinishBuild charges published relations to the governor;
  // unpublished builds are transient and interrupt-bounded.
  ReachMap forward;  // canonical-left join value -> sorted reachable rights
  // gov: charged — accounted together with `forward` via `bytes`.
  ReachMap reverse;  // inverse of forward
  // Key-domain bitmaps for sideways information passing (DESIGN.md §13):
  // bit u set iff the corresponding map has key u, i.e. u reaches something
  // across the chain. The validator hands them to the executor as
  // VirtualJoin domains, so the earlier endpoint skips rows that reach
  // nothing before any deeper binding is attempted.
  // gov: charged — accounted together with the reach maps via `bytes`.
  BitmapFilter forward_domain;
  // gov: charged — accounted together with the reach maps via `bytes`.
  BitmapFilter reverse_domain;
  size_t bytes = 0;  // estimated resident size (cost accounting)
};

/// \brief Budgeted, thread-safe cache of WalkRelations keyed by canonical
/// walk signature.
///
/// Admission: a chain is materialized only once it has been requested more
/// than `admission` times (cheap one-shot candidates never pay the build).
/// Eviction: LRU by relation bytes down to `budget_bytes`; evicted entries
/// keep their use counters, so a re-hot chain is re-admitted immediately.
/// Concurrency: per-key build-once — the first admitted caller builds
/// outside the cache lock; concurrent callers for the same key get nullptr
/// (pipelined fallback) instead of blocking. An interrupted build publishes
/// nothing, mirroring the validator's no-memo-under-interrupt rule so
/// rank-cancellation cannot make cache contents depend on thread timing.
class WalkCache {
 public:
  using Handle = std::shared_ptr<const WalkRelation>;

  /// `governor` (may be null) is charged for resident relation bytes and
  /// consulted before materializing: once the degradation ladder reaches
  /// pipelined-only (DESIGN.md §11), Acquire returns nullptr without
  /// building.
  WalkCache(size_t budget_bytes, int admission,
            std::shared_ptr<ResourceGovernor> governor = nullptr)
      : budget_bytes_(budget_bytes),
        admission_(admission),
        governor_(std::move(governor)) {}

  WalkCache(const WalkCache&) = delete;
  WalkCache& operator=(const WalkCache&) = delete;

  /// Returns the materialized relation for `sig`, building it on admission.
  /// Returns nullptr — caller falls back to pipelined execution — when the
  /// signature is not cacheable, the use count is still below the admission
  /// threshold, another thread is building the same key, or `interrupt`
  /// (polled every few thousand rows; may be empty) fired mid-build.
  /// A relation larger than the whole budget is returned to the caller but
  /// never cached. `stats` (may be null) receives hit/miss/eviction counts.
  Handle Acquire(const Database& db, const WalkSignature& sig, QreStats* stats,
                 const std::function<bool()>& interrupt);

  /// Evicts LRU relations until resident bytes drop to `target_bytes` (the
  /// governor's level-1 pressure action; also usable directly). Pinned
  /// readers are unaffected — eviction only drops the cache's references.
  void ShrinkTo(size_t target_bytes) EXCLUDES(mu_);

  /// Current resident relation bytes (gauge).
  size_t bytes() const;

  /// Total evictions since construction.
  uint64_t evictions() const;

  /// Configured byte budget (for pressure-hook arithmetic).
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    // All fields are guarded by the owning WalkCache's mu_ (expressed on the
    // containing map below; Clang attributes cannot name an outer class's
    // mutex from a nested struct).
    Handle relation;  // null until built (or after eviction)
    uint64_t uses = 0;
    bool building = false;
    std::list<Entry*>::iterator lru_it;  // valid iff relation != nullptr
  };

  // Looks up `sig` and decides hit / not-admitted / build, marking the entry
  // as building in the last case. Returns the entry to publish into, or
  // null when the caller should fall back without building.
  Entry* BeginBuild(const WalkSignature& sig, QreStats* stats, Handle* hit)
      EXCLUDES(mu_);
  // Publishes a finished (possibly null = interrupted) build and runs
  // eviction. Returns the handle the caller should use.
  Handle FinishBuild(Entry* entry, std::unique_ptr<WalkRelation> built,
                     QreStats* stats) EXCLUDES(mu_);

  const size_t budget_bytes_;
  const int admission_;
  // Charged before mu_ is taken (a failed charge may escalate the governor,
  // whose pressure hook re-enters this cache through ShrinkTo); Release is
  // atomic-only and safe under mu_ on eviction paths.
  const std::shared_ptr<ResourceGovernor> governor_;

  mutable Mutex mu_;
  // Entries are never erased (only their relations are dropped), so Entry
  // pointers handed around under mu_ stay stable.
  // gov: charged — relations are charged in FinishBuild and released on
  // eviction; map nodes hold per-signature admission metadata only.
  std::unordered_map<std::vector<uint32_t>, Entry, IdTupleHash> entries_
      GUARDED_BY(mu_);
  std::list<Entry*> lru_ GUARDED_BY(mu_);  // front = most recently used
  size_t bytes_used_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

/// \brief Builds the reachability relation of an intermediate-hop chain by a
/// backward pass over the hop tables (exposed for tests). Returns nullptr if
/// `interrupt` fired. NULL ids participate like ordinary values, matching
/// the executor's join semantics.
std::unique_ptr<WalkRelation> BuildWalkRelation(
    const Database& db, const std::vector<WalkHop>& hops,
    const std::function<bool()>& interrupt);

}  // namespace fastqre
