// Ranked walk composition — Algorithm 1 (Section 4.4).
//
// Candidate queries are subsets of the discovered walk set W that connect
// all mapping instances. Subsets are enumerated bottom-up without
// repetition: PQ1 holds walk sets ordered by Q_dc (sum of walk lengths);
// the children of a set whose minimum walk index is k are its extensions by
// w_i for i < k, so every subset of W is generated exactly once in
// non-decreasing Q_dc. Connected sets enter PQ2, a candidate pool ordered
// by Q_alpha = alpha*Q_dc + (1-alpha)*Q_ex; the pool policy (line 13:
// constants C1/C2) balances draining PQ1 against validating from PQ2,
// fixing the two drawbacks of Figure 9 (convoy effect; oracle-blind
// parent-first testing).
//
// The Minimum Spanning Tree component of Figure 6 seeds PQ2 with the
// cheapest walk group that spans all mapping instances (Kruskal over walks
// weighted by length), so a plausible connected candidate is available for
// validation before the subset lattice has been drained to its depth.
// Emission is deduplicated, so the seed does not reappear when the lattice
// reaches it.
//
// With options.use_two_queue_composer = false this degrades to the paper's
// "basic approach": a single queue ordered by Q_dc only.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "engine/cost.h"
#include "qre/feedback.h"
#include "qre/mapping.h"
#include "qre/options.h"
#include "qre/walks.h"

namespace fastqre {

/// \brief A composed candidate query ready for validation.
struct CandidateQuery {
  /// Sorted indexes into the walk set W. Empty for the single-instance
  /// candidate.
  std::vector<int> walk_ids;
  PJQuery query;
  double dc = 0.0;
  double alpha_cost = 0.0;
};

/// \brief Generator form of Algorithm 1: Next() yields candidate queries in
/// ranked order, consulting Feedback to skip dead subtrees.
class RankedComposer {
 public:
  /// `walks`, `mapping`, `feedback` must outlive the composer.
  /// `budget_exceeded` (may be empty) is polled during long lattice drains
  /// so a time-budgeted search cannot stall inside subset enumeration.
  RankedComposer(const Database* db, const ColumnMapping* mapping,
                 const std::vector<Walk>* walks, const QreOptions* options,
                 Feedback* feedback,
                 std::function<bool()> budget_exceeded = {});

  /// Produces the next candidate; false when the subset space is exhausted
  /// (or the expansion safety cap was hit).
  bool Next(CandidateQuery* out);

  uint64_t sets_expanded() const { return sets_expanded_; }
  uint64_t sets_pruned_dead() const { return sets_pruned_dead_; }

 private:
  struct SetEntry {
    std::vector<int> walk_ids;  // sorted
    double dc;
    bool operator>(const SetEntry& o) const {
      if (dc != o.dc) return dc > o.dc;
      return walk_ids > o.walk_ids;  // deterministic tie-break
    }
  };
  struct PoolEntry {
    CandidateQuery candidate;
    bool operator>(const PoolEntry& o) const {
      if (candidate.alpha_cost != o.candidate.alpha_cost) {
        return candidate.alpha_cost > o.candidate.alpha_cost;
      }
      return candidate.walk_ids > o.candidate.walk_ids;
    }
  };

  // Pops from PQ1, pushes children, and moves connected sets into PQ2.
  // Returns false when PQ1 is exhausted.
  bool DrainOne();
  // Kruskal seed: pushes the minimum spanning walk group into PQ2.
  void SeedSpanningGroup();
  bool IsConnectedGroup(const std::vector<int>& walk_ids) const;
  CandidateQuery BuildCandidate(std::vector<int> walk_ids, double dc) const;

  const Database* db_;
  const ColumnMapping* mapping_;
  const std::vector<Walk>* walks_;
  const QreOptions* options_;
  Feedback* feedback_;
  std::function<bool()> budget_exceeded_;
  CostEstimator estimator_;

  std::priority_queue<SetEntry, std::vector<SetEntry>, std::greater<SetEntry>> pq1_;
  std::priority_queue<PoolEntry, std::vector<PoolEntry>, std::greater<PoolEntry>> pq2_;

  bool emitted_single_ = false;  // single-instance mapping case
  std::set<std::vector<int>> emitted_;  // dedup (lattice can re-reach the seed)
  uint64_t sets_expanded_ = 0;
  uint64_t sets_pruned_dead_ = 0;

  // Safety cap: subset lattices are exponential; a run that expands this
  // many sets without finding the generating query is hopeless for this
  // mapping and should move on.
  static constexpr uint64_t kMaxSetsExpanded = 2'000'000;
};

}  // namespace fastqre
