// Execution statistics reported by FastQre::Reverse — the accounting behind
// experiments E7 (preprocessing) and E9 (candidate counts).
#pragma once

#include <cstdint>
#include <string>

#include "common/counters.h"

namespace fastqre {

/// \brief Counters and timings for one Reverse() run.
///
/// Search counters are relaxed atomics (RelaxedCounter): with
/// QreOptions::validation_threads > 1 they are bumped concurrently from
/// validation workers. They stay copyable and implicitly convertible to
/// uint64_t, so single-threaded call sites are unchanged.
///
/// Relaxed is the right (and only permitted) order here per the memory-order
/// policy in common/counters.h: these are monotonic tallies that never gate
/// visibility of other data — exact totals are read only after the worker
/// pool has joined, which itself provides the needed synchronization.
struct QreStats {
  // Preprocessing (single-threaded phase).
  double cover_seconds = 0.0;
  double cgm_seconds = 0.0;
  RelaxedCounter cover_pairs_total = 0;    // candidate (c, R.a) pairs considered
  RelaxedCounter cover_pairs_pruned = 0;   // dismissed by pattern compatibility
  RelaxedCounter cover_pairs_checked = 0;  // full set-containment checks run
  RelaxedCounter cgm_candidates_checked = 0;
  RelaxedCounter num_cgms = 0;

  // Search.
  RelaxedCounter mappings_tried = 0;
  RelaxedCounter walks_discovered = 0;
  RelaxedCounter candidates_generated = 0;     // popped from PQ2 (or single queue)
  RelaxedCounter candidates_validated = 0;     // validations run to completion
  RelaxedCounter candidates_cancelled = 0;     // abandoned: a better-ranked
                                               // candidate already won
  RelaxedCounter walk_sets_expanded = 0;       // PQ1 pops across all composers
  RelaxedCounter candidates_pruned_dead = 0;   // skipped via feedback dead sets
  RelaxedCounter candidates_dismissed_probe = 0;
  RelaxedCounter candidates_dismissed_walk = 0;  // via indirect coherence
  RelaxedCounter walk_coherence_checks = 0;
  RelaxedCounter full_validations = 0;         // candidates reaching the full check
  RelaxedCounter validation_rows = 0;          // result rows streamed during checks
  // Phase attribution of validation_rows:
  RelaxedCounter probe_rows = 0;       // quick 2-tuple + partial probes
  RelaxedCounter coherence_rows = 0;   // walk-coherence streams
  RelaxedCounter alltuple_rows = 0;    // per-R_out-tuple membership probes
  RelaxedCounter fullscan_rows = 0;    // extra-tuple hunting streams

  // Walk-materialization cache (DESIGN.md §9). hits/misses count Acquire()
  // calls that did / did not return a materialized relation; bytes is a
  // gauge snapshotted at answer time (resident relation bytes).
  RelaxedCounter walk_cache_hits = 0;
  RelaxedCounter walk_cache_misses = 0;
  RelaxedCounter walk_cache_evictions = 0;
  RelaxedCounter walk_cache_bytes = 0;

  // Sideways information passing (DESIGN.md §13): rows skipped by presence/
  // domain bitmap filters across both executors (each passed its local
  // predicates but was provably absent from a later join partner).
  RelaxedCounter sip_rows_skipped = 0;

  // Subplan memoization cache (DESIGN.md §13). hits/misses count block-
  // execution prefix lookups; bytes is a gauge snapshotted at answer time
  // (resident memoized-prefix bytes).
  RelaxedCounter subplan_cache_hits = 0;
  RelaxedCounter subplan_cache_misses = 0;
  RelaxedCounter subplan_cache_evictions = 0;
  RelaxedCounter subplan_cache_bytes = 0;

  // Resource governor (DESIGN.md §11). peak_tracked_bytes is the high-water
  // mark of governor-charged bytes during the run; degradation_events counts
  // ladder escalations (shrink / pipelined-only / exhausted); cancelled is
  // set when the run stopped because of FastQre::Cancel() (or an injected
  // cancel fault), as opposed to a time or memory budget.
  RelaxedCounter peak_tracked_bytes = 0;
  RelaxedCounter degradation_events = 0;
  bool cancelled = false;

  double total_seconds = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;

  /// Accumulates counters (used by benchmark sweeps).
  void Accumulate(const QreStats& other);
};

}  // namespace fastqre
