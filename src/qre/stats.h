// Execution statistics reported by FastQre::Reverse — the accounting behind
// experiments E7 (preprocessing) and E9 (candidate counts).
#pragma once

#include <cstdint>
#include <string>

namespace fastqre {

/// \brief Counters and timings for one Reverse() run.
struct QreStats {
  // Preprocessing.
  double cover_seconds = 0.0;
  double cgm_seconds = 0.0;
  uint64_t cover_pairs_total = 0;    // candidate (c, R.a) pairs considered
  uint64_t cover_pairs_pruned = 0;   // dismissed by pattern compatibility
  uint64_t cover_pairs_checked = 0;  // full set-containment checks run
  uint64_t cgm_candidates_checked = 0;
  uint64_t num_cgms = 0;

  // Search.
  uint64_t mappings_tried = 0;
  uint64_t walks_discovered = 0;
  uint64_t candidates_generated = 0;     // popped from PQ2 (or single queue)
  uint64_t walk_sets_expanded = 0;       // PQ1 pops across all composers
  uint64_t candidates_pruned_dead = 0;   // skipped via feedback dead sets
  uint64_t candidates_dismissed_probe = 0;
  uint64_t candidates_dismissed_walk = 0;  // via indirect coherence
  uint64_t walk_coherence_checks = 0;
  uint64_t full_validations = 0;         // candidates reaching the full check
  uint64_t validation_rows = 0;          // result rows streamed during checks
  // Phase attribution of validation_rows:
  uint64_t probe_rows = 0;       // quick 2-tuple + partial probes
  uint64_t coherence_rows = 0;   // walk-coherence streams
  uint64_t alltuple_rows = 0;    // per-R_out-tuple membership probes
  uint64_t fullscan_rows = 0;    // extra-tuple hunting streams

  double total_seconds = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;

  /// Accumulates counters (used by benchmark sweeps).
  void Accumulate(const QreStats& other);
};

}  // namespace fastqre
