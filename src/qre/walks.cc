#include "qre/walks.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/strings.h"

namespace fastqre {

namespace {

// Enumerates all oriented edge sequences of length <= max_len from table
// `from` to table `to` by DFS over the schema multigraph.
void EnumerateShapes(const SchemaGraph& graph, TableId from, TableId to,
                     int max_len, std::vector<std::vector<WalkStep>>* out) {
  std::vector<WalkStep> path;
  // Iterative DFS with explicit stack of (table, next edge cursor) would be
  // noisier; recursion depth is bounded by max_len (small).
  struct Dfs {
    const SchemaGraph& graph;
    TableId to;
    int max_len;
    std::vector<std::vector<WalkStep>>* out;
    std::vector<WalkStep> path;

    void Run(TableId at) {
      if (!path.empty() && at == to) {
        out->push_back(path);
        // A walk may continue through `to` as an intermediate and come back,
        // so do not return here.
      }
      if (static_cast<int>(path.size()) == max_len) return;
      for (EdgeId eid : graph.EdgesOf(at)) {
        const SchemaEdge& e = graph.edge(eid);
        if (e.IsSelfLoop()) {
          // Both orientations of a self-loop are distinct traversals.
          for (bool fwd : {true, false}) {
            path.push_back(WalkStep{eid, fwd});
            Run(at);
            path.pop_back();
          }
        } else {
          int side = e.SideOf(at);
          path.push_back(WalkStep{eid, side == 0});
          Run(e.table[1 - side]);
          path.pop_back();
        }
      }
    }
  };
  Dfs dfs{graph, to, max_len, out, {}};
  dfs.Run(from);
}

std::vector<TableId> ShapeTables(const SchemaGraph& graph, TableId from,
                                 const std::vector<WalkStep>& steps) {
  std::vector<TableId> tables{from};
  TableId at = from;
  for (const WalkStep& s : steps) {
    const SchemaEdge& e = graph.edge(s.edge);
    at = s.forward ? e.table[1] : e.table[0];
    tables.push_back(at);
  }
  return tables;
}

// Canonical form up to reversal: a walk traversed backwards (edges reversed,
// orientations flipped) is the same walk.
std::vector<WalkStep> ReverseShape(const std::vector<WalkStep>& steps) {
  std::vector<WalkStep> rev(steps.rbegin(), steps.rend());
  for (WalkStep& s : rev) s.forward = !s.forward;
  return rev;
}

}  // namespace

std::string Walk::ToString(const Database& db) const {
  std::vector<std::string> names;
  for (TableId t : tables) names.push_back(db.table(t).name());
  return StringFormat("w[%d->%d] ", from_instance, to_instance) +
         JoinStrings(names, "-");
}

WalkSignature CanonicalWalkSignature(const Database& db, const Walk& walk) {
  const SchemaGraph& graph = db.schema_graph();
  WalkSignature sig;
  const size_t len = walk.steps.size();
  if (len == 0) return sig;

  // Per step k: the join column on the previous-side table (walk.tables[k])
  // and on the next-side table (walk.tables[k+1]).
  std::vector<ColumnId> prev_col(len), next_col(len);
  for (size_t k = 0; k < len; ++k) {
    const SchemaEdge& e = graph.edge(walk.steps[k].edge);
    int side_prev = walk.steps[k].forward ? 0 : 1;
    prev_col[k] = e.column[side_prev];
    next_col[k] = e.column[1 - side_prev];
  }
  sig.from_col = prev_col[0];
  sig.to_col = next_col[len - 1];
  if (len < 2) return sig;  // direct join: no intermediate chain

  // Intermediate table i (1..len-1) receives rows on step i-1's next column
  // and hands them on through step i's previous column.
  std::vector<WalkHop> hops;
  hops.reserve(len - 1);
  for (size_t i = 1; i < len; ++i) {
    hops.push_back(WalkHop{walk.tables[i], next_col[i - 1], prev_col[i]});
  }
  std::vector<WalkHop> rev(hops.rbegin(), hops.rend());
  for (WalkHop& h : rev) std::swap(h.in_col, h.out_col);

  auto flatten = [](const std::vector<WalkHop>& hs) {
    std::vector<uint32_t> flat;
    flat.reserve(hs.size() * 3);
    for (const WalkHop& h : hs) {
      flat.push_back(h.table);
      flat.push_back(h.in_col);
      flat.push_back(h.out_col);
    }
    return flat;
  };
  std::vector<uint32_t> fwd_key = flatten(hops);
  std::vector<uint32_t> rev_key = flatten(rev);
  sig.flipped = rev_key < fwd_key;
  sig.hops = sig.flipped ? std::move(rev) : std::move(hops);
  sig.key = sig.flipped ? std::move(rev_key) : std::move(fwd_key);
  sig.cacheable = true;
  return sig;
}

std::vector<Walk> DiscoverWalks(const Database& db, const ColumnMapping& mapping,
                                const QreOptions& options) {
  const SchemaGraph& graph = db.schema_graph();
  std::vector<Walk> walks;
  const int n = static_cast<int>(mapping.instances.size());

  // Shape cache per (from table, to table): instance pairs over the same
  // table pair share the enumeration.
  std::map<std::pair<TableId, TableId>, std::vector<std::vector<WalkStep>>>
      shape_cache;

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      TableId ti = mapping.instances[i].table;
      TableId tj = mapping.instances[j].table;
      auto key = std::make_pair(ti, tj);
      auto it = shape_cache.find(key);
      if (it == shape_cache.end()) {
        std::vector<std::vector<WalkStep>> shapes;
        EnumerateShapes(graph, ti, tj, options.max_walk_length, &shapes);
        // Dedup up to reversal. Reversal only identifies two enumerated
        // shapes when endpoints coincide (ti == tj); otherwise every shape
        // is enumerated exactly once from ti.
        if (ti == tj) {
          std::set<std::vector<WalkStep>> canon;
          std::vector<std::vector<WalkStep>> kept;
          for (auto& s : shapes) {
            std::vector<WalkStep> c = std::min(s, ReverseShape(s));
            if (canon.insert(c).second) kept.push_back(std::move(s));
          }
          shapes = std::move(kept);
        }
        // Shortest first; cap per pair.
        std::stable_sort(shapes.begin(), shapes.end(),
                         [](const auto& a, const auto& b) {
                           return a.size() < b.size();
                         });
        if (shapes.size() > static_cast<size_t>(options.max_walks_per_pair)) {
          shapes.resize(options.max_walks_per_pair);
        }
        it = shape_cache.emplace(key, std::move(shapes)).first;
      }
      for (const auto& shape : it->second) {
        Walk w;
        w.from_instance = i;
        w.to_instance = j;
        w.steps = shape;
        w.tables = ShapeTables(graph, ti, shape);
        walks.push_back(std::move(w));
      }
    }
  }
  return walks;
}

namespace {

// Adds walk `w`'s chain of joins to `q`, creating fresh intermediate
// instances; `endpoint_nodes` maps mapping-instance index -> InstanceId.
void AddWalkJoins(const Database& db, const Walk& w,
                  const std::vector<InstanceId>& endpoint_nodes, PJQuery* q) {
  const SchemaGraph& graph = db.schema_graph();
  InstanceId prev = endpoint_nodes[w.from_instance];
  for (size_t k = 0; k < w.steps.size(); ++k) {
    const WalkStep& step = w.steps[k];
    const SchemaEdge& e = graph.edge(step.edge);
    int side_prev = step.forward ? 0 : 1;
    int side_next = 1 - side_prev;
    InstanceId next;
    if (k + 1 == w.steps.size()) {
      next = endpoint_nodes[w.to_instance];
    } else {
      next = q->AddInstance(e.table[side_next]);
    }
    q->AddJoin(prev, e.column[side_prev], next, e.column[side_next]);
    prev = next;
  }
}

}  // namespace

PJQuery ComposeQueryFromWalks(const Database& db, const ColumnMapping& mapping,
                              const std::vector<const Walk*>& group) {
  return ComposeQueryFromWalksPartial(db, mapping, group,
                                      std::vector<bool>(group.size(), false));
}

PJQuery ComposeQueryFromWalksPartial(const Database& db,
                                     const ColumnMapping& mapping,
                                     const std::vector<const Walk*>& group,
                                     const std::vector<bool>& materialized) {
  PJQuery q;
  std::vector<InstanceId> nodes;
  nodes.reserve(mapping.instances.size());
  for (const auto& inst : mapping.instances) {
    nodes.push_back(q.AddInstance(inst.table));
  }
  for (size_t i = 0; i < group.size(); ++i) {
    if (!materialized[i]) AddWalkJoins(db, *group[i], nodes, &q);
  }
  for (const auto& [inst, db_col] : mapping.slots) {
    q.AddProjection(nodes[inst], db_col);
  }
  return q;
}

PJQuery ComposeWalkSubquery(const Database& db, const ColumnMapping& mapping,
                            const Walk& walk, std::vector<ColumnId>* out_cols) {
  PJQuery q;
  std::vector<InstanceId> nodes(mapping.instances.size(),
                                std::numeric_limits<InstanceId>::max());
  nodes[walk.from_instance] = q.AddInstance(mapping.instances[walk.from_instance].table);
  nodes[walk.to_instance] = q.AddInstance(mapping.instances[walk.to_instance].table);
  AddWalkJoins(db, walk, nodes, &q);
  out_cols->clear();
  for (ColumnId c = 0; c < mapping.slots.size(); ++c) {
    const auto& [inst, db_col] = mapping.slots[c];
    if (inst == walk.from_instance || inst == walk.to_instance) {
      q.AddProjection(nodes[inst], db_col);
      out_cols->push_back(c);
    }
  }
  return q;
}

}  // namespace fastqre
