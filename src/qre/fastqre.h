// FastQre: the end-to-end Query Reverse Engineering driver (Figure 6).
//
// Given a database D and an output table R_out, Reverse() finds a
// generating CPJ query Q_gen with Q_gen(D) = R_out (exact variant) or
// Q_gen(D) ⊇ R_out (superset variant), wiring together the four framework
// modules: Preprocessing (parsing, column cover, index creation), Candidate
// Query Generation (CGMs, ranked mappings, walk discovery, ranked walk
// composition), Query Validation (probing, indirect coherence, progressive
// evaluation) and Feedback.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "qre/options.h"
#include "qre/stats.h"
#include "storage/database.h"

namespace fastqre {

class CancellationToken;
class ResourceGovernor;
class SubplanCache;
class ThreadPool;
class WalkCache;

/// \brief Optional explanation of a Reverse() run (QreOptions::collect_trace):
/// the ranked column mappings that were tried and every candidate query that
/// was validated, with its verdict — the paper's decision process, replayable.
struct QreTrace {
  /// Human-readable descriptions of the column mappings, in rank order.
  std::vector<std::string> mappings;

  struct Candidate {
    /// Index into `mappings` of the mapping this candidate came from.
    int mapping_index;
    std::string sql;
    double dc;
    double alpha_cost;
    /// "generating", "missing-tuples", "extra-tuples", "incoherent-walk",
    /// "cancelled" (parallel runs: a better-ranked candidate won first), ...
    std::string outcome;
  };
  /// In candidate rank order; parallel runs re-sort completion-order results
  /// back into rank order before the trace is published.
  std::vector<Candidate> candidates;

  /// Multi-line rendering for logs / the CLI.
  std::string ToString() const;
};

/// \brief Result of a Reverse() run.
struct QreAnswer {
  /// True if a generating query was found; the remaining query fields are
  /// only meaningful then.
  bool found = false;
  /// Why the search ended without an answer ("search space exhausted...",
  /// "time budget exceeded", "cancelled", "memory budget exceeded", ...).
  /// Empty when found.
  std::string failure_reason;

  PJQuery query;
  /// SQL text of the found query.
  std::string sql;
  /// Number of table instances / joins in the found query.
  size_t num_instances = 0;
  size_t num_joins = 0;

  QreStats stats;

  /// Present iff QreOptions::collect_trace was set.
  QreTrace trace;
};

/// \brief The FastQRE engine.
///
/// Reverse()/ReverseAll() are const and thread-safe: the Database's lazy
/// caches build each entry exactly once under internal synchronization, so
/// concurrent Reverse() calls may share one Database instance. With
/// QreOptions::validation_threads > 1 a single Reverse() call additionally
/// validates candidates on a worker pool; the answer is deterministic
/// (byte-identical SQL) regardless of thread count — see DESIGN.md §8 for
/// the rank-barrier protocol.
class FastQre {
 public:
  /// `db` must outlive the engine.
  explicit FastQre(const Database* db, QreOptions options = QreOptions());
  ~FastQre();

  FastQre(FastQre&&) noexcept;
  FastQre& operator=(FastQre&&) noexcept;

  const QreOptions& options() const { return options_; }

  /// Reverse-engineers a generating query for `rout`. `rout` may be encoded
  /// against any dictionary; it is re-encoded and row-deduplicated (set
  /// semantics) internally. Returns an error Status only for invalid input
  /// (empty table, zero columns); an unsuccessful search returns found =
  /// false with a reason and full statistics.
  Result<QreAnswer> Reverse(const Table& rout) const;

  /// Like Reverse() but keeps enumerating after the first answer, returning
  /// up to `limit` distinct generating queries in discovery order (the
  /// "enumerate other generating queries" interface of Section 3). When the
  /// search stops early (time budget, Cancel(), memory exhaustion), the
  /// answers already found are returned followed by one unfound entry whose
  /// failure_reason records why the tail was truncated.
  Result<std::vector<QreAnswer>> ReverseAll(const Table& rout, int limit) const;

  /// Observer of answers as they are accepted (the server's streaming hook).
  /// Invoked with each entry exactly as it is appended to the eventual
  /// ReverseAll result — found answers carry a full job-scoped stats
  /// snapshot, and the one possible unfound tail entry carries the
  /// failure_reason. Because acceptance happens under the rank barrier
  /// (DESIGN.md §8), the streamed order equals the final rank order and the
  /// streamed SQL is byte-identical to the batch result at any thread count.
  using AnswerCallback = std::function<void(const QreAnswer&)>;

  /// ReverseAll with a streaming observer: `on_answer` (may be empty) fires
  /// on the search thread for every entry of the returned vector, in order,
  /// at the moment the entry is proved. The callback must not call back
  /// into this engine (other than Cancel(), which is always safe).
  Result<std::vector<QreAnswer>> ReverseAll(const Table& rout, int limit,
                                            const AnswerCallback& on_answer)
      const;

  /// Cooperatively cancels every in-flight and future Reverse()/ReverseAll()
  /// call on this engine, from any thread. The search stops at its next
  /// interrupt poll and returns the answers found so far with
  /// failure_reason "cancelled" on the truncated tail. Sticky: construct a
  /// fresh engine to search again (which also makes a retried run
  /// byte-identical — the engine carries no partial-search state).
  void Cancel() const;

 private:
  const Database* db_;
  QreOptions options_;
  // Walk-materialization cache (DESIGN.md §9), shared across Reverse()
  // calls and validation workers; null when the budget is 0. Internally
  // synchronized, so the const/thread-safety contract above still holds.
  // shared_ptr because the governor's pressure hook holds a reference: the
  // cache must outlive any late charge arriving through the database's
  // governor attachment.
  std::shared_ptr<WalkCache> walk_cache_;
  // Cross-candidate subplan memoization cache (DESIGN.md §13), shared the
  // same way; null when QreOptions::subplan_cache_budget_bytes is 0.
  // shared_ptr for the same pressure-hook lifetime reason as walk_cache_.
  std::shared_ptr<SubplanCache> subplan_cache_;
  // Cancellation + resource governing (DESIGN.md §11). Both are created in
  // the constructor and never null in a live engine (moved-from engines
  // hold nulls and must not be used, as usual).
  std::shared_ptr<CancellationToken> cancel_token_;
  std::shared_ptr<ResourceGovernor> governor_;
  // Engine-owned pool for intra-candidate morsel execution (DESIGN.md §12);
  // null unless QreOptions::intra_candidate_threads > 1. Shared by every
  // validation thread of every Reverse() call on this engine: RunMorsels
  // batches always complete on the dispatching thread itself, so sharing
  // the pool can delay but never deadlock a candidate.
  std::unique_ptr<ThreadPool> intra_pool_;
  // Deferred QreOptions::fault_spec / FASTQRE_FAULTS parse error, reported
  // by the next ReverseAll() call (constructors cannot return Status).
  Status fault_spec_error_;
};

}  // namespace fastqre
