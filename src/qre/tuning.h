// Semi-automated alpha calibration (Section 4.4.2).
//
// "The value of alpha is set in a semi-automated fashion as follows. Given a
// database and its schema, either the analyst, or the QRE approach itself,
// generates a few test queries and their corresponding R_out tables. Tests
// then are done to determine which alpha results in good performance for the
// test queries."
//
// TuneAlpha implements the self-generating form: it samples random CPJ
// queries over the database (via the workload generator), times Reverse()
// under each candidate alpha, and returns the alpha with the best total
// response time.
#pragma once

#include <vector>

#include "common/result.h"
#include "qre/options.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Options for TuneAlpha.
struct TuneAlphaOptions {
  /// Candidate alpha values to evaluate.
  std::vector<double> candidates = {0.0, 0.25, 0.5, 0.75, 1.0};
  /// Number of self-generated test queries.
  int num_test_queries = 4;
  /// Table instances per test query (complexity of the calibration set).
  int test_query_instances = 3;
  /// Per-(query, alpha) time budget; expiring counts as this many seconds.
  double per_run_budget_seconds = 5.0;
  /// Seed for test-query generation.
  uint64_t seed = 97;
};

/// \brief Result of a calibration run.
struct TuneAlphaResult {
  double best_alpha = 0.5;
  /// Total Reverse() seconds per candidate (index-parallel to the
  /// candidates evaluated, in their given order).
  std::vector<double> total_seconds;
  std::vector<double> alphas;
};

/// \brief Calibrates QreOptions::alpha for `db` by self-generated test
/// queries. `base` supplies every other option (variant, toggles, limits);
/// its alpha field is ignored. Returns NotFound if no usable test query
/// could be generated (e.g. an empty database).
Result<TuneAlphaResult> TuneAlpha(const Database& db, const QreOptions& base,
                                  const TuneAlphaOptions& tune_options = {});

}  // namespace fastqre
