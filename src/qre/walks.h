// Walk discovery (Section 4.4): the set W of all L-short walks between
// pairs of projection table instances of a column mapping.
//
// A walk is a sequence of schema-graph edges from one mapping instance to
// another. Walks need not be simple (an edge can repeat, e.g. the paper's
// w3 = S-N-S2 uses the S-N schema edge twice); intermediate nodes are
// always *fresh* instances, never instances from I_M (Section 4.4 "does not
// have any instances from I_M as intermediate nodes"), though they may be
// fresh instances of a projection table (w2's PS2).
#pragma once

#include <string>
#include <vector>

#include "engine/query.h"
#include "qre/mapping.h"
#include "qre/options.h"
#include "storage/database.h"

namespace fastqre {

/// \brief One traversal step: a schema edge with its orientation.
/// `forward` means edge side 0 is the node closer to the walk's start
/// (orientation matters for self-loops and repeated tables).
struct WalkStep {
  EdgeId edge;
  bool forward;

  bool operator==(const WalkStep& o) const {
    return edge == o.edge && forward == o.forward;
  }
  bool operator<(const WalkStep& o) const {
    return edge != o.edge ? edge < o.edge : forward < o.forward;
  }
};

/// \brief A walk between two mapping instances.
struct Walk {
  /// Endpoint indexes into ColumnMapping::instances (from < to).
  int from_instance;
  int to_instance;
  std::vector<WalkStep> steps;
  /// Node table sequence; tables.size() == steps.size() + 1.
  std::vector<TableId> tables;

  int length() const { return static_cast<int>(steps.size()); }

  std::string ToString(const Database& db) const;
};

/// \brief Discovers all walks of length <= options.max_walk_length between
/// every pair of instances in `mapping`, deduplicated up to reversal and
/// capped at options.max_walks_per_pair per pair (shortest first).
std::vector<Walk> DiscoverWalks(const Database& db, const ColumnMapping& mapping,
                                const QreOptions& options);

/// \brief Instantiates a candidate query from a walk group: one node per
/// mapping instance, fresh nodes for walk intermediates, joins along walk
/// steps, and projections in R_out column order per `mapping`.
PJQuery ComposeQueryFromWalks(const Database& db, const ColumnMapping& mapping,
                              const std::vector<const Walk*>& group);

/// \brief The subquery corresponding to a single walk (Section 4.5): the
/// walk's join path projected onto the R_out columns generated from its two
/// endpoint instances. `out_cols` receives those R_out column ids in the
/// projection order used.
PJQuery ComposeWalkSubquery(const Database& db, const ColumnMapping& mapping,
                            const Walk& walk, std::vector<ColumnId>* out_cols);

}  // namespace fastqre
