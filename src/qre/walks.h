// Walk discovery (Section 4.4): the set W of all L-short walks between
// pairs of projection table instances of a column mapping.
//
// A walk is a sequence of schema-graph edges from one mapping instance to
// another. Walks need not be simple (an edge can repeat, e.g. the paper's
// w3 = S-N-S2 uses the S-N schema edge twice); intermediate nodes are
// always *fresh* instances, never instances from I_M (Section 4.4 "does not
// have any instances from I_M as intermediate nodes"), though they may be
// fresh instances of a projection table (w2's PS2).
#pragma once

#include <string>
#include <vector>

#include "engine/query.h"
#include "qre/mapping.h"
#include "qre/options.h"
#include "storage/database.h"

namespace fastqre {

/// \brief One traversal step: a schema edge with its orientation.
/// `forward` means edge side 0 is the node closer to the walk's start
/// (orientation matters for self-loops and repeated tables).
struct WalkStep {
  EdgeId edge;
  bool forward;

  bool operator==(const WalkStep& o) const {
    return edge == o.edge && forward == o.forward;
  }
  bool operator<(const WalkStep& o) const {
    return edge != o.edge ? edge < o.edge : forward < o.forward;
  }
};

/// \brief A walk between two mapping instances.
struct Walk {
  /// Endpoint indexes into ColumnMapping::instances (from < to).
  int from_instance;
  int to_instance;
  std::vector<WalkStep> steps;
  /// Node table sequence; tables.size() == steps.size() + 1.
  std::vector<TableId> tables;

  int length() const { return static_cast<int>(steps.size()); }

  std::string ToString(const Database& db) const;
};

/// \brief One intermediate table of a walk's join chain: rows enter through
/// `in_col` (joined to the previous hop) and leave through `out_col`.
struct WalkHop {
  TableId table;
  ColumnId in_col;
  ColumnId out_col;
};

/// \brief Canonical identity of a walk's *intermediate chain* — the part of
/// the join path between (but excluding) the two endpoint instances. Two
/// walks with the same canonical signature induce the same endpoint
/// reachability relation regardless of which mapping instances they connect,
/// which is what lets the walk-materialization cache (qre/walk_cache.h)
/// share work across candidates, mappings, and Reverse() calls.
///
/// A walk traversed backwards is the same walk, so the chain is canonicalized
/// up to reversal; `flipped` records whether the canonical orientation is the
/// reverse of the walk's own from→to orientation.
struct WalkSignature {
  /// Intermediate hops in canonical orientation. Empty for length-1 walks
  /// (a direct join: nothing to materialize — `cacheable` is false).
  std::vector<WalkHop> hops;
  /// Flattened hops (table, in_col, out_col)* — the cache key.
  std::vector<uint32_t> key;
  /// True if the canonical orientation reverses the walk's own orientation.
  bool flipped = false;
  /// Join columns the chain binds on the walk's endpoint instances, in the
  /// walk's own orientation (from_instance side, to_instance side).
  ColumnId from_col = 0;
  ColumnId to_col = 0;
  /// True for walks of length >= 2 (only those have a chain to materialize).
  bool cacheable = false;
};

/// \brief Computes the canonical signature of `walk` (see WalkSignature).
WalkSignature CanonicalWalkSignature(const Database& db, const Walk& walk);

/// \brief Discovers all walks of length <= options.max_walk_length between
/// every pair of instances in `mapping`, deduplicated up to reversal and
/// capped at options.max_walks_per_pair per pair (shortest first).
std::vector<Walk> DiscoverWalks(const Database& db, const ColumnMapping& mapping,
                                const QreOptions& options);

/// \brief Instantiates a candidate query from a walk group: one node per
/// mapping instance, fresh nodes for walk intermediates, joins along walk
/// steps, and projections in R_out column order per `mapping`.
PJQuery ComposeQueryFromWalks(const Database& db, const ColumnMapping& mapping,
                              const std::vector<const Walk*>& group);

/// \brief Like ComposeQueryFromWalks, but omits the intermediate chain (and
/// joins) of every walk with `materialized[i]` set — those endpoints are
/// wired up by the caller with virtual joins over cached walk relations
/// instead. Instance i of the returned query is mapping instance i (walk
/// endpoints keep their indexes); fresh intermediates of the remaining walks
/// follow.
PJQuery ComposeQueryFromWalksPartial(const Database& db,
                                     const ColumnMapping& mapping,
                                     const std::vector<const Walk*>& group,
                                     const std::vector<bool>& materialized);

/// \brief The subquery corresponding to a single walk (Section 4.5): the
/// walk's join path projected onto the R_out columns generated from its two
/// endpoint instances. `out_cols` receives those R_out column ids in the
/// projection order used.
PJQuery ComposeWalkSubquery(const Database& db, const ColumnMapping& mapping,
                            const Walk& walk, std::vector<ColumnId>* out_cols);

}  // namespace fastqre
