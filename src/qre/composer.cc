#include "qre/composer.h"

#include <algorithm>
#include <numeric>

#include "engine/executor.h"  // kInterruptPollMask

namespace fastqre {

RankedComposer::RankedComposer(const Database* db, const ColumnMapping* mapping,
                               const std::vector<Walk>* walks,
                               const QreOptions* options, Feedback* feedback,
                               std::function<bool()> budget_exceeded)
    : db_(db),
      mapping_(mapping),
      walks_(walks),
      options_(options),
      feedback_(feedback),
      budget_exceeded_(std::move(budget_exceeded)),
      estimator_(db, options->use_sip) {
  // Initialize PQ1 with all singleton walk sets (Algorithm 1 lines 1-2).
  for (int i = 0; i < static_cast<int>(walks_->size()); ++i) {
    pq1_.push(SetEntry{{i}, static_cast<double>((*walks_)[i].length())});
  }
  if (options_->use_two_queue_composer && mapping_->instances.size() > 1) {
    SeedSpanningGroup();
  }
}

void RankedComposer::SeedSpanningGroup() {
  // Kruskal over walks as instance-graph edges, weighted by walk length
  // (ties broken by discovery order, i.e. shorter-first within pairs).
  std::vector<int> order(walks_->size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (*walks_)[a].length() < (*walks_)[b].length();
  });
  const size_t n = mapping_->instances.size();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<int> seed;
  double dc = 0.0;
  size_t components = n;
  for (int id : order) {
    int a = find((*walks_)[id].from_instance);
    int b = find((*walks_)[id].to_instance);
    if (a == b) continue;
    parent[a] = b;
    seed.push_back(id);
    dc += (*walks_)[id].length();
    if (--components == 1) break;
  }
  if (components != 1) return;  // instances cannot all be connected
  std::sort(seed.begin(), seed.end());
  pq2_.push(PoolEntry{BuildCandidate(std::move(seed), dc)});
}

bool RankedComposer::IsConnectedGroup(const std::vector<int>& walk_ids) const {
  const size_t n = mapping_->instances.size();
  if (n == 1) return false;  // handled by the single-instance special case
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  size_t components = n;
  for (int id : walk_ids) {
    int a = find((*walks_)[id].from_instance);
    int b = find((*walks_)[id].to_instance);
    if (a != b) {
      parent[a] = b;
      --components;
    }
  }
  return components == 1;
}

CandidateQuery RankedComposer::BuildCandidate(std::vector<int> walk_ids,
                                              double dc) const {
  CandidateQuery cand;
  std::vector<const Walk*> group;
  group.reserve(walk_ids.size());
  for (int id : walk_ids) group.push_back(&(*walks_)[id]);
  cand.query = ComposeQueryFromWalks(*db_, *mapping_, group);
  cand.walk_ids = std::move(walk_ids);
  cand.dc = dc;
  cand.alpha_cost = options_->alpha * dc +
                    (1.0 - options_->alpha) * estimator_.NormalizedCost(cand.query);
  return cand;
}

bool RankedComposer::DrainOne() {
  while (!pq1_.empty()) {
    if (sets_expanded_ >= kMaxSetsExpanded) return false;
    if ((sets_expanded_ & kInterruptPollMask) == 0 && budget_exceeded_ &&
        budget_exceeded_()) {
      return false;
    }
    SetEntry entry = pq1_.top();
    pq1_.pop();
    ++sets_expanded_;

    if (options_->use_feedback_pruning && feedback_->IsDead(entry.walk_ids)) {
      ++sets_pruned_dead_;
      // Dead sets still spawn their children: a child adds a walk with a
      // *smaller* index, and the child set is a superset of the dead parent,
      // hence also dead — so skip the whole subtree instead.
      continue;
    }

    // Children: extend by every walk index below the set's minimum
    // (generates every subset of W exactly once).
    int k = entry.walk_ids.front();
    for (int i = 0; i < k; ++i) {
      SetEntry child;
      child.walk_ids.reserve(entry.walk_ids.size() + 1);
      child.walk_ids.push_back(i);
      child.walk_ids.insert(child.walk_ids.end(), entry.walk_ids.begin(),
                            entry.walk_ids.end());
      child.dc = entry.dc + (*walks_)[i].length();
      if (options_->use_feedback_pruning && feedback_->IsDead(child.walk_ids)) {
        ++sets_pruned_dead_;
        continue;
      }
      pq1_.push(std::move(child));
    }

    if (!IsConnectedGroup(entry.walk_ids)) continue;
    if (options_->variant == QreVariant::kSuperset &&
        entry.walk_ids.size() != mapping_->instances.size() - 1) {
      // Superset QRE: tree-shaped query graphs suffice (Section 1); a
      // connected group over n instances is a tree iff it has n-1 walks.
      continue;
    }
    pq2_.push(PoolEntry{BuildCandidate(entry.walk_ids, entry.dc)});
    return true;
  }
  return false;
}

bool RankedComposer::Next(CandidateQuery* out) {
  // Single-instance mappings have exactly one candidate: the bare instance.
  if (mapping_->instances.size() == 1) {
    if (emitted_single_) return false;
    emitted_single_ = true;
    CandidateQuery cand;
    cand.query.AddInstance(mapping_->instances[0].table);
    for (const auto& [inst, db_col] : mapping_->slots) {
      cand.query.AddProjection(0, db_col);
    }
    cand.dc = 1.0;
    cand.alpha_cost = options_->alpha * cand.dc +
                      (1.0 - options_->alpha) * estimator_.NormalizedCost(cand.query);
    *out = std::move(cand);
    return true;
  }

  if (!options_->use_two_queue_composer) {
    // Basic approach: single queue by Q_dc; validate in generation order.
    while (true) {
      if (!pq2_.empty()) {
        *out = pq2_.top().candidate;  // at most one element in basic mode
        pq2_.pop();
        return true;
      }
      if (!DrainOne()) return false;
    }
  }

  while (true) {
    // Pool policy (Algorithm 1 line 13): keep draining PQ1 while its best
    // Q_dc stays within C1 of PQ2's best and the pool is below C2.
    while (!pq1_.empty() &&
           (pq2_.empty() ||
            (pq1_.top().dc <=
                 pq2_.top().candidate.dc + options_->pool_dc_slack &&
             pq2_.size() < static_cast<size_t>(options_->pool_min_size)))) {
      if (!DrainOne()) break;
    }
    if (pq2_.empty()) {
      if (pq1_.empty() || sets_expanded_ >= kMaxSetsExpanded ||
          (budget_exceeded_ && budget_exceeded_())) {
        return false;
      }
      continue;
    }
    CandidateQuery cand = pq2_.top().candidate;
    pq2_.pop();
    // Feedback may have killed this set after it entered the pool.
    if (options_->use_feedback_pruning && feedback_->IsDead(cand.walk_ids)) {
      ++sets_pruned_dead_;
      continue;
    }
    // The lattice eventually regenerates the spanning-tree seed; emit each
    // walk set at most once.
    if (!emitted_.insert(cand.walk_ids).second) continue;
    *out = std::move(cand);
    return true;
  }
}

}  // namespace fastqre
