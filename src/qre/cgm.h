// Direct column coherence and CGM discovery (Section 4.2).
//
// A column group C of table R is *coherent* w.r.t. columns C_out of R_out if
// there is a 1-to-1 mapping M with pi_Cout(R_out) ⊆ pi_C(R) under M
// (Definition 4.1). The tuple λ = (R, C, M, C_out) is a CGM (Definition
// 4.2); DiscoverCgms computes, per table, all *maximal* CGMs (Definition
// 4.3) — groups not extensible by any further column.
//
// Discovery is apriori-style (the paper notes it is "similar to finding
// association rules and functional dependencies"): coherence is
// anti-monotone, so level k+1 candidates are joined from coherent level-k
// groups and checked with one multi-column index probe per distinct R_out
// tuple.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "qre/column_cover.h"
#include "qre/options.h"
#include "qre/stats.h"
#include "storage/database.h"

namespace fastqre {

/// \brief A maximal CGM λ = (R, C, M, C_out). The mapping M is stored as
/// (out column, db column) pairs sorted by out column; C and C_out are the
/// pair projections.
struct Cgm {
  TableId table;
  std::vector<std::pair<ColumnId, ColumnId>> mapping;

  /// True if this CGM is *guaranteed* to be part of any generating query:
  /// it contains a 1-match column (|S_c| = 1, |Λ_c| = 1) whose database
  /// column is a key within pi_C(R) (Section 4.3.1).
  bool certain = false;

  /// The database column mapped to out column `c`, or -1 if c ∉ C_out.
  int DbColumnFor(ColumnId out_col) const {
    for (const auto& [oc, dc] : mapping) {
      if (oc == out_col) return static_cast<int>(dc);
    }
    return -1;
  }

  std::vector<ColumnId> OutColumns() const {
    std::vector<ColumnId> out;
    out.reserve(mapping.size());
    for (const auto& [oc, dc] : mapping) out.push_back(oc);
    return out;
  }
  std::vector<ColumnId> DbColumns() const {
    std::vector<ColumnId> out;
    out.reserve(mapping.size());
    for (const auto& [oc, dc] : mapping) out.push_back(dc);
    return out;
  }

  std::string ToString(const Database& db, const Table& rout) const;
};

/// \brief All maximal CGMs plus the per-out-column index Λ_c.
struct CgmSet {
  std::vector<Cgm> cgms;
  /// Λ_c: indexes into `cgms` of the CGMs containing out column c
  /// (index-parallel to R_out's columns).
  std::vector<std::vector<int>> of_out_column;
};

/// \brief Discovers all maximal CGMs of `rout` against `db`, marking certain
/// ones. Updates the cgm_* fields of `stats`.
///
/// `interrupt` (may be empty) is polled between coherence checks and inside
/// each check's probe loop, so a time/memory-budgeted or cancelled Reverse()
/// cannot stall in discovery; when it fires the partially discovered set is
/// returned and the caller is expected to abort the search (the partial set
/// is not a usable ranking input). `governor` (may be null) provides the
/// "cgm-discovery" fault-injection point.
CgmSet DiscoverCgms(const Database& db, const Table& rout,
                    const ColumnCover& cover, const QreOptions& options,
                    QreStats* stats,
                    const std::function<bool()>& interrupt = {},
                    ResourceGovernor* governor = nullptr);

}  // namespace fastqre
