#include "qre/mapping.h"

#include <algorithm>

#include "common/interrupt.h"
#include "common/strings.h"

namespace fastqre {

std::string ColumnMapping::ToString(const Database& db, const Table& rout) const {
  std::vector<std::string> parts;
  for (ColumnId c = 0; c < slots.size(); ++c) {
    const auto& [inst, db_col] = slots[c];
    parts.push_back(rout.column(c).name() + "<-" +
                    db.table(instances[inst].table).name() +
                    StringFormat("[%d].", inst) +
                    db.table(instances[inst].table).column(db_col).name());
  }
  return JoinStrings(parts, ", ") + StringFormat(" (score=%.3f)", score);
}

MappingEnumerator::MappingEnumerator(const Database* db, const Table* rout,
                                     const ColumnCover* cover, const CgmSet* cgms,
                                     const QreOptions* options,
                                     std::function<bool()> budget_exceeded,
                                     ResourceGovernor* governor)
    : db_(db),
      rout_(rout),
      cover_(cover),
      cgms_(cgms),
      options_(options),
      budget_exceeded_(std::move(budget_exceeded)),
      governor_(governor) {
  // Per-column optimistic score: the best achievable contribution, used in
  // the admissible heuristic.
  best_col_score_.resize(rout->num_columns(), 0.0);
  for (ColumnId c = 0; c < rout->num_columns(); ++c) {
    double best = 0.0;
    for (const CoverEntry& e : cover->covers[c]) {
      double certain_possible = 0.0;
      if (options->use_cgm_ranking && cgms != nullptr) {
        for (int idx : cgms->of_out_column[c]) {
          const Cgm& g = cgms->cgms[idx];
          if (g.certain && g.table == e.table &&
              g.DbColumnFor(c) == static_cast<int>(e.column)) {
            certain_possible = 1.0;
          }
        }
      }
      best = std::max(best, e.jaccard + certain_possible);
    }
    best_col_score_[c] = best;
  }

  State root;
  root.next_col = 0;
  root.score = 0.0;
  // Through PushState so the root participates in frontier accounting like
  // every other state (pop-side releases assume push-side charges).
  PushState(std::move(root));
}

double MappingEnumerator::OptimisticRest(uint32_t from_col) const {
  double rest = 0.0;
  for (uint32_t c = from_col; c < best_col_score_.size(); ++c) {
    rest += best_col_score_[c];
  }
  return rest;
}

double MappingEnumerator::PairScore(ColumnId out_col, TableId table,
                                    ColumnId db_col, bool certain_bonus) const {
  for (const CoverEntry& e : cover_->covers[out_col]) {
    if (e.table == table && e.column == db_col) {
      return e.jaccard + (certain_bonus ? 1.0 : 0.0);
    }
  }
  return certain_bonus ? 1.0 : 0.0;
}

MappingEnumerator::~MappingEnumerator() {
  // States still queued when the enumeration is abandoned (answer found,
  // budget exceeded) release their accounting here.
  if (governor_ != nullptr && frontier_charged_ > 0) {
    governor_->Release(frontier_charged_);
  }
}

uint64_t MappingEnumerator::EstimateStateBytes(const State& s) {
  uint64_t bytes = sizeof(State) + s.instances.size() * sizeof(InstanceAssignment);
  for (const InstanceAssignment& inst : s.instances) {
    bytes += inst.columns.size() * sizeof(std::pair<ColumnId, ColumnId>);
  }
  return bytes;
}

void MappingEnumerator::PushState(State s) {
  s.optimistic = s.score + OptimisticRest(s.next_col);
  if (governor_ != nullptr) {
    // Required charge: the state is already constructed; overflow escalates
    // the ladder and the enumeration stops at its next budget poll.
    uint64_t bytes = EstimateStateBytes(s);
    governor_->Charge(bytes, "mapping-frontier");
    frontier_charged_ += bytes;
  }
  queue_.push(std::move(s));
}

bool MappingEnumerator::Next(ColumnMapping* out) {
  const uint32_t num_cols = static_cast<uint32_t>(rout_->num_columns());
  while (!queue_.empty()) {
    if (states_expanded_ >= options_->max_mapping_states) return false;
    if ((states_expanded_ & kInterruptPollMask) == 0 && budget_exceeded_ &&
        budget_exceeded_()) {
      return false;
    }
    State s = queue_.top();
    queue_.pop();
    if (governor_ != nullptr) {
      // The copy preserves the shape EstimateStateBytes measures, so this
      // release exactly matches the push-side charge.
      uint64_t bytes = EstimateStateBytes(s);
      governor_->Release(bytes);
      frontier_charged_ -= bytes;
    }
    ++states_expanded_;

    if (s.next_col == num_cols) {
      // Complete: build the slot structure and dedupe.
      ColumnMapping m;
      m.instances = s.instances;
      m.score = s.score;
      m.slots.assign(num_cols, {-1, 0});
      for (size_t i = 0; i < m.instances.size(); ++i) {
        for (const auto& [oc, dc] : m.instances[i].columns) {
          m.slots[oc] = {static_cast<int>(i), dc};
        }
      }
      if (!emitted_.insert(m.slots).second) continue;
      *out = std::move(m);
      return true;
    }

    const ColumnId c = s.next_col;

    // Option (a): join an existing instance.
    for (size_t i = 0; i < s.instances.size(); ++i) {
      const InstanceAssignment& inst = s.instances[i];
      if (inst.cgm_index >= 0) {
        const Cgm& g = cgms_->cgms[inst.cgm_index];
        int dc = g.DbColumnFor(c);
        if (dc < 0) continue;
        State child = s;
        child.next_col = c + 1;
        child.instances[i].columns.emplace_back(c, static_cast<ColumnId>(dc));
        child.score += PairScore(c, inst.table, static_cast<ColumnId>(dc), g.certain);
        PushState(std::move(child));
      } else {
        // Unrestricted mode: any cover column of this table not already used
        // by the instance.
        for (const CoverEntry& e : cover_->covers[c]) {
          if (e.table != inst.table) continue;
          bool used = false;
          for (const auto& [oc, dc] : inst.columns) {
            if (dc == e.column) used = true;
          }
          if (used) continue;
          State child = s;
          child.next_col = c + 1;
          child.instances[i].columns.emplace_back(c, e.column);
          child.score += e.jaccard;
          PushState(std::move(child));
        }
      }
    }

    // Option (b): open a new instance for column c.
    if (options_->use_cgm_ranking && cgms_ != nullptr) {
      for (int idx : cgms_->of_out_column[c]) {
        const Cgm& g = cgms_->cgms[idx];
        int dc = g.DbColumnFor(c);
        if (dc < 0) continue;
        State child = s;
        child.next_col = c + 1;
        InstanceAssignment inst;
        inst.table = g.table;
        inst.cgm_index = idx;
        inst.columns.emplace_back(c, static_cast<ColumnId>(dc));
        child.instances.push_back(std::move(inst));
        child.score += PairScore(c, g.table, static_cast<ColumnId>(dc), g.certain);
        PushState(std::move(child));
      }
    } else {
      for (const CoverEntry& e : cover_->covers[c]) {
        State child = s;
        child.next_col = c + 1;
        InstanceAssignment inst;
        inst.table = e.table;
        inst.cgm_index = -1;
        inst.columns.emplace_back(c, e.column);
        child.instances.push_back(std::move(inst));
        child.score += e.jaccard;
        PushState(std::move(child));
      }
    }
  }
  return false;
}

}  // namespace fastqre
