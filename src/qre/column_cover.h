// Column cover S_c (Example 2.2): for each R_out column c, the set of
// database columns R.a whose value sets contain c's values —
// S_c = {R.a : pi_c(R_out) ⊆ pi_a(R)}.
//
// Containment is computed on dictionary-encoded distinct sets; pattern
// pruning (patterns.h) skips pairs proven incompatible in O(1).
#pragma once

#include <vector>

#include "qre/options.h"
#include "qre/stats.h"
#include "storage/database.h"

namespace fastqre {

/// \brief One cover member for an R_out column: database column + the
/// Jaccard similarity of the two value sets (the ranking signal of §4.3.2).
struct CoverEntry {
  TableId table;
  ColumnId column;
  /// |values(c) ∩ values(R.a)| / |values(c) ∪ values(R.a)|. Because
  /// containment holds, this is |values(c)| / |values(R.a)|; 1.0 means the
  /// column was used exhaustively.
  double jaccard;
};

/// \brief Covers of all R_out columns, index-parallel to R_out's columns.
struct ColumnCover {
  std::vector<std::vector<CoverEntry>> covers;

  /// True if some R_out column has an empty cover (then no PJ query over
  /// this database can generate R_out and the whole search is futile).
  bool HasEmptyCover() const {
    for (const auto& c : covers) {
      if (c.empty()) return true;
    }
    return false;
  }
};

/// \brief Computes the column cover of `rout` against `db`. `rout` must be
/// encoded against db's dictionary. Updates the cover_* fields of `stats`.
ColumnCover ComputeColumnCover(const Database& db, const Table& rout,
                               const QreOptions& options, QreStats* stats);

}  // namespace fastqre
