#include "qre/column_cover.h"

#include "common/timer.h"
#include "storage/pattern.h"

namespace fastqre {

namespace {

// pi_c(rout) ⊆ pi_a(R), on distinct ValueId sets.
bool ColumnContained(const Column& sub, const Column& super) {
  const auto& sub_set = sub.DistinctSet();
  const auto& super_set = super.DistinctSet();
  if (sub_set.size() > super_set.size()) return false;
  for (ValueId id : sub_set) {
    if (super_set.count(id) == 0) return false;
  }
  return true;
}

}  // namespace

ColumnCover ComputeColumnCover(const Database& db, const Table& rout,
                               const QreOptions& options, QreStats* stats) {
  Timer timer;
  const Dictionary& dict = *db.dictionary();

  ColumnCover cover;
  cover.covers.resize(rout.num_columns());
  for (ColumnId c = 0; c < rout.num_columns(); ++c) {
    const Column& out_col = rout.column(c);
    ColumnPattern out_pattern;
    if (options.use_pattern_pruning) {
      out_pattern = ComputeColumnPattern(out_col, dict);
    }
    for (TableId t = 0; t < db.num_tables(); ++t) {
      const Table& table = db.table(t);
      for (ColumnId a = 0; a < table.num_columns(); ++a) {
        ++stats->cover_pairs_total;
        if (options.use_pattern_pruning &&
            !PatternCompatible(out_pattern, db.GetColumnPattern(t, a))) {
          ++stats->cover_pairs_pruned;
          continue;
        }
        ++stats->cover_pairs_checked;
        const Column& db_col = table.column(a);
        if (ColumnContained(out_col, db_col)) {
          double jaccard = db_col.NumDistinct() == 0
                               ? 0.0
                               : static_cast<double>(out_col.NumDistinct()) /
                                     static_cast<double>(db_col.NumDistinct());
          cover.covers[c].push_back(CoverEntry{t, a, jaccard});
        }
      }
    }
  }
  stats->cover_seconds += timer.ElapsedSeconds();
  return cover;
}

}  // namespace fastqre
