// Ranked column-mapping enumeration (Section 4.3).
//
// A column mapping assigns every R_out column to a (table instance, column)
// pair. The enumerator emits mappings in ranked order using the paper's two
// criteria: (1) fewest projection table instances first; (2) ties broken by
// the sum of Jaccard similarities between R_out columns and their assigned
// database columns (§4.3.2 "Ordering Assignments"). CGMs constrain which
// columns may share an instance: a group of R_out columns can be assigned
// to one instance of R only if some maximal CGM of R contains all of them
// (with exactly the chosen per-column correspondence).
//
// Divergence note: for 1-match columns with a key CGM the paper fixes the
// assignment outright ("Certain Column Assignments"). We instead give
// certain CGMs a scoring bonus, which yields the same first-ranked mapping
// while preserving completeness if the certainty heuristic ever misfires.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/resource_governor.h"
#include "qre/cgm.h"
#include "qre/column_cover.h"
#include "qre/options.h"
#include "storage/database.h"

namespace fastqre {

/// \brief One projection table instance of a candidate mapping and the
/// R_out columns it generates.
struct InstanceAssignment {
  TableId table;
  /// Index into CgmSet::cgms constraining this instance, or -1 in
  /// unrestricted (naive / ablation) mode.
  int cgm_index = -1;
  /// (out column, db column) pairs assigned to this instance.
  std::vector<std::pair<ColumnId, ColumnId>> columns;
};

/// \brief A complete column mapping M: every R_out column assigned.
struct ColumnMapping {
  std::vector<InstanceAssignment> instances;
  /// slots[c] = (instance index, db column) for R_out column c.
  std::vector<std::pair<int, ColumnId>> slots;
  /// Jaccard-sum ranking score (plus certainty bonuses).
  double score = 0.0;

  size_t NumInstances() const { return instances.size(); }
  std::string ToString(const Database& db, const Table& rout) const;
};

/// \brief Emits candidate column mappings in ranked order via best-first
/// search. The priority is admissible (instance count only grows; the
/// optimistic score only tightens), so mappings pop in true rank order.
class MappingEnumerator {
 public:
  /// `budget_exceeded` (may be empty) is polled periodically during the
  /// best-first search so a time-budgeted Reverse() call cannot stall
  /// inside mapping enumeration (the search space is exponential without
  /// CGM constraints). `governor` (may be null) is charged for the
  /// best-first frontier's resident bytes ("mapping-frontier"): pushes
  /// charge, pops release, and the destructor releases whatever remains
  /// queued, so an abandoned enumeration leaks no accounting.
  MappingEnumerator(const Database* db, const Table* rout,
                    const ColumnCover* cover, const CgmSet* cgms,
                    const QreOptions* options,
                    std::function<bool()> budget_exceeded = {},
                    ResourceGovernor* governor = nullptr);
  ~MappingEnumerator();

  /// Produces the next-ranked mapping; false when the space (or the state
  /// budget) is exhausted. Emitted mappings are deduplicated by the induced
  /// column->slot structure.
  bool Next(ColumnMapping* out);

  uint64_t states_expanded() const { return states_expanded_; }

 private:
  struct State {
    uint32_t next_col = 0;
    std::vector<InstanceAssignment> instances;
    double score = 0.0;
    double optimistic = 0.0;  // score + best-case remainder
  };
  struct StateOrder {
    bool operator()(const State& a, const State& b) const {
      if (a.instances.size() != b.instances.size()) {
        return a.instances.size() > b.instances.size();  // fewer first
      }
      return a.optimistic < b.optimistic;  // higher optimistic score first
    }
  };

  void PushState(State s);
  /// Size-based byte estimate of a queued state; deterministic in the
  /// state's shape, so the push-side and pop-side estimates always agree.
  static uint64_t EstimateStateBytes(const State& s);
  double OptimisticRest(uint32_t from_col) const;
  double PairScore(ColumnId out_col, TableId table, ColumnId db_col,
                   bool certain_bonus) const;

  const Database* db_;
  const Table* rout_;
  const ColumnCover* cover_;
  const CgmSet* cgms_;
  const QreOptions* options_;

  std::vector<double> best_col_score_;  // per out column, for the heuristic
  std::function<bool()> budget_exceeded_;
  ResourceGovernor* governor_;
  uint64_t frontier_charged_ = 0;  // bytes currently charged for queue_
  std::priority_queue<State, std::vector<State>, StateOrder> queue_;
  std::set<std::vector<std::pair<int, ColumnId>>> emitted_;
  uint64_t states_expanded_ = 0;
};

}  // namespace fastqre
