#include "qre/cgm.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/resource_governor.h"
#include "common/strings.h"
#include "common/timer.h"
#include "engine/compare.h"
#include "engine/executor.h"

namespace fastqre {

namespace {

using Mapping = std::vector<std::pair<ColumnId, ColumnId>>;

// Deterministic cap on per-level candidate growth; prevents pathological
// blowup on databases where many columns accidentally cover many R_out
// columns (the paper's intuition is that accidental coherence is rare, but
// the code must stay bounded even when it is not).
constexpr size_t kMaxGroupsPerLevel = 20000;

// pi_outcols(rout) ⊆ pi_dbcols(table) via one index probe per distinct
// R_out tuple. `interrupt` (may be empty) aborts the probe loop early; the
// resulting false verdict is only ever observed by a caller that is itself
// about to abort, so it never leaks into a kept CGM set.
bool GroupCoherent(const Database& db, const Table& rout, TableId t,
                   const Mapping& mapping,
                   const std::function<bool()>& interrupt) {
  std::vector<ColumnId> out_cols, db_cols;
  out_cols.reserve(mapping.size());
  db_cols.reserve(mapping.size());
  for (const auto& [oc, dc] : mapping) {
    out_cols.push_back(oc);
    db_cols.push_back(dc);
  }
  const HashIndex& index = db.GetOrBuildIndex(t, db_cols);
  // gov: bounded — one projection of R_out (small by problem definition),
  // freed at scope exit.
  TupleSet out_tuples = ProjectToTupleSet(rout, out_cols, interrupt);
  if (interrupt && interrupt()) return false;
  uint64_t work = 0;
  // det: order-insensitive — forall-probe; any visiting order reaches the
  // same boolean verdict.
  for (const auto& tuple : out_tuples) {
    if ((++work & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      return false;
    }
    if (index.Lookup(tuple).empty()) return false;
  }
  return true;
}

}  // namespace

std::string Cgm::ToString(const Database& db, const Table& rout) const {
  std::vector<std::string> pairs;
  for (const auto& [oc, dc] : mapping) {
    pairs.push_back(db.table(table).column(dc).name() + "->" +
                    rout.column(oc).name());
  }
  return db.table(table).name() + "{" + JoinStrings(pairs, ", ") + "}" +
         (certain ? " [certain]" : "");
}

CgmSet DiscoverCgms(const Database& db, const Table& rout,
                    const ColumnCover& cover, const QreOptions& options,
                    QreStats* stats,
                    const std::function<bool()>& interrupt,
                    ResourceGovernor* governor) {
  Timer timer;
  CgmSet result;
  result.of_out_column.resize(rout.num_columns());

  // Once this fires, discovery unwinds and returns what it has; the caller
  // checks the same interrupt right after and aborts the search, so the
  // partial set never ranks mappings.
  bool aborted = false;
  auto stopped = [&]() {
    if (!aborted && interrupt && interrupt()) aborted = true;
    return aborted;
  };

  for (TableId t = 0; t < db.num_tables() && !stopped(); ++t) {
    // Level 1: singleton groups straight from the column cover (already
    // coherent by definition of the cover).
    std::vector<Mapping> level;
    for (ColumnId c = 0; c < rout.num_columns(); ++c) {
      for (const CoverEntry& e : cover.covers[c]) {
        if (e.table == t) level.push_back(Mapping{{c, e.column}});
      }
    }
    if (level.empty()) continue;

    // `maximal[m]` = true until some coherent supergroup subsumes m.
    std::map<Mapping, bool> maximal;
    for (const auto& m : level) maximal[m] = true;

    int level_size = 1;
    while (!level.empty() && level_size < options.max_cgm_columns) {
      // Apriori join: two sorted groups sharing all but the last pair
      // combine into a (k+1)-group; the combination must stay 1-to-1.
      std::sort(level.begin(), level.end());
      std::set<Mapping> level_set(level.begin(), level.end());
      std::vector<Mapping> next;
      for (size_t i = 0; i < level.size(); ++i) {
        for (size_t j = i + 1; j < level.size(); ++j) {
          const Mapping& a = level[i];
          const Mapping& b = level[j];
          if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
          const auto& [a_oc, a_dc] = a.back();
          const auto& [b_oc, b_dc] = b.back();
          if (a_oc == b_oc || a_dc == b_dc) continue;  // violates 1-to-1
          Mapping cand = a;
          cand.push_back(b.back());
          std::sort(cand.begin(), cand.end());
          // Apriori prune: every k-subset must itself be coherent.
          bool all_subsets_coherent = true;
          for (size_t drop = 0; drop + 2 < cand.size() && all_subsets_coherent;
               ++drop) {
            Mapping sub = cand;
            sub.erase(sub.begin() + drop);
            if (level_set.count(sub) == 0) all_subsets_coherent = false;
          }
          if (!all_subsets_coherent) continue;

          if (governor != nullptr) governor->FaultPoint("cgm-discovery");
          if (stopped()) break;
          ++stats->cgm_candidates_checked;
          if (!GroupCoherent(db, rout, t, cand, interrupt)) continue;

          // cand is coherent: all its k-subsets are non-maximal.
          for (size_t drop = 0; drop < cand.size(); ++drop) {
            Mapping sub = cand;
            sub.erase(sub.begin() + drop);
            auto it = maximal.find(sub);
            if (it != maximal.end()) it->second = false;
          }
          maximal[cand] = true;
          next.push_back(std::move(cand));
          if (next.size() >= kMaxGroupsPerLevel) break;
        }
        if (aborted || next.size() >= kMaxGroupsPerLevel) break;
      }
      if (aborted) break;
      // Dedup (the join can produce the same (k+1)-group from multiple
      // parent pairs).
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      level = std::move(next);
      ++level_size;
    }

    for (const auto& [mapping, is_maximal] : maximal) {
      if (!is_maximal) continue;
      Cgm cgm;
      cgm.table = t;
      cgm.mapping = mapping;
      int idx = static_cast<int>(result.cgms.size());
      result.cgms.push_back(std::move(cgm));
      for (const auto& [oc, dc] : mapping) {
        result.of_out_column[oc].push_back(idx);
      }
    }
  }

  // Certainty (Section 4.3.1): a 1-match column c (|S_c| = 1, |Λ_c| = 1)
  // whose database column is a key within pi_C(R) pins its CGM into any
  // generating query.
  for (ColumnId c = 0; c < rout.num_columns() && !stopped(); ++c) {
    if (cover.covers[c].size() != 1 || result.of_out_column[c].size() != 1) {
      continue;
    }
    Cgm& cgm = result.cgms[result.of_out_column[c][0]];
    if (cgm.certain) continue;
    int db_col = cgm.DbColumnFor(c);
    // Key test: within the distinct tuples of pi_C(R), no two tuples share
    // the c' value.
    // gov: bounded — one table projection for the transient certainty test,
    // freed each iteration.
    TupleSet group_tuples =
        ProjectToTupleSet(db.table(cgm.table), cgm.DbColumns(), interrupt);
    if (stopped()) break;
    std::unordered_set<ValueId> key_values;
    size_t key_pos = 0;
    {
      auto db_cols = cgm.DbColumns();
      for (size_t i = 0; i < db_cols.size(); ++i) {
        if (static_cast<int>(db_cols[i]) == db_col) key_pos = i;
      }
    }
    // det: order-insensitive — set insertion; only the final cardinality
    // is compared. A mid-loop stop leaves key_values partial, so the size
    // test below stays false and no certainty is pinned under interrupt.
    uint64_t scanned = 0;
    for (const auto& tuple : group_tuples) {
      if ((++scanned & kInterruptPollMask) == 0 && stopped()) break;
      key_values.insert(tuple[key_pos]);
    }
    if (key_values.size() == group_tuples.size()) cgm.certain = true;
  }

  stats->num_cgms += result.cgms.size();
  stats->cgm_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace fastqre
